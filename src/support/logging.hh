/**
 * @file
 * Error-reporting and status-message helpers, gem5-style.
 *
 * Two error channels are distinguished (following the gem5 convention):
 *
 *  - panic():  something happened that should never happen regardless of
 *              what the user does — a simulator bug. Throws PanicError.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (malformed program, out-of-range address, bad
 *              configuration). Throws FatalError.
 *
 * Both throw exceptions rather than aborting so that library users (and
 * the test suite) can observe and recover from failures.
 *
 * warn()/inform() print advisory messages to stderr and never stop the
 * simulation.
 */

#ifndef XIMD_SUPPORT_LOGGING_HH
#define XIMD_SUPPORT_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ximd {

/** Thrown on user-caused errors (bad program, bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Thrown on internal invariant violations (simulator bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

/** Stream a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void throwFatal(const char *file, int line,
                             const std::string &msg);
[[noreturn]] void throwPanic(const char *file, int line,
                             const std::string &msg);
void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

} // namespace detail

/** Stream a parameter pack into one string: cat("r", 5) == "r5". */
template <typename... Args>
std::string
cat(Args &&...args)
{
    return detail::concat(std::forward<Args>(args)...);
}

/** Report a user error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::throwFatal(nullptr, 0,
                       detail::concat(std::forward<Args>(args)...));
}

/** Report a simulator bug and throw PanicError. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::throwPanic(nullptr, 0,
                       detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitWarn(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational message to stderr; execution continues. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitInform(detail::concat(std::forward<Args>(args)...));
}

/**
 * Suppress or re-enable warn()/inform() output globally.
 * Used by benchmarks that run millions of cycles.
 */
void setQuiet(bool quiet);

/**
 * Internal invariant check; throws PanicError when @p cond is false.
 * Unlike assert(), stays active in release builds: simulator results
 * are meaningless if invariants are broken.
 */
#define XIMD_ASSERT(cond, ...)                                           \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::ximd::detail::throwPanic(__FILE__, __LINE__,               \
                ::ximd::detail::concat("assertion failed: " #cond " ",   \
                                       ##__VA_ARGS__));                  \
        }                                                                \
    } while (0)

} // namespace ximd

#endif // XIMD_SUPPORT_LOGGING_HH
