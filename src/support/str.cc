#include "support/str.hh"

#include <cctype>
#include <cstdio>

namespace ximd {

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view>
split(std::string_view s, char sep)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view>
splitOn(std::string_view s, std::string_view sep)
{
    std::vector<std::string_view> out;
    if (sep.empty()) {
        out.push_back(s);
        return out;
    }
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + sep.size();
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
hex2(unsigned v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02x", v);
    return buf;
}

std::string
padLeft(std::string_view s, std::size_t width)
{
    std::string out(s);
    if (out.size() < width)
        out.insert(0, width - out.size(), ' ');
    return out;
}

std::string
padRight(std::string_view s, std::size_t width)
{
    std::string out(s);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

std::string
fixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

} // namespace ximd
