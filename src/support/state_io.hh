/**
 * @file
 * Binary state serialization: the reader/writer pair underneath the
 * snapshot subsystem (src/snapshot/) plus a stable 64-bit hash.
 *
 * Design constraints, in order:
 *
 *  - determinism: the byte stream produced for a given machine state is
 *    identical across hosts, compilers, and thread counts. All scalars
 *    are written little-endian at fixed widths; containers are written
 *    as an explicit u64 count followed by elements; no padding, no
 *    pointers, no host word sizes;
 *  - self-description for debugging: every component section starts
 *    with a 4-character tag (checkTag() turns a mis-framed stream into
 *    a named error instead of garbage state);
 *  - structured failure: StateReader throws FatalError with a byte
 *    offset on truncation or tag mismatch. The snapshot layer catches
 *    it and reports a snapshot::Error — component code stays clean.
 *
 * The hash is FNV-1a over the serialized byte stream, so a component's
 * stateHash() has exactly one source of truth: its saveState().
 */

#ifndef XIMD_SUPPORT_STATE_IO_HH
#define XIMD_SUPPORT_STATE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace ximd {

/** FNV-1a 64-bit offset basis. */
inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

/** FNV-1a 64-bit prime. */
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/** Fold @p n bytes into an FNV-1a 64-bit running hash @p h. */
inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t n,
      std::uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= kFnvPrime;
    }
    return h;
}

/** Streaming FNV-1a 64-bit hasher with fixed-width scalar helpers. */
class Hash64
{
  public:
    Hash64 &u8(std::uint8_t v)
    {
        h_ = (h_ ^ v) * kFnvPrime;
        return *this;
    }

    Hash64 &u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
        return *this;
    }

    Hash64 &u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
        return *this;
    }

    Hash64 &boolean(bool v) { return u8(v ? 1 : 0); }

    Hash64 &str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            u8(static_cast<std::uint8_t>(c));
        return *this;
    }

    std::uint64_t digest() const { return h_; }

  private:
    std::uint64_t h_ = kFnvOffset;
};

/** Append-only little-endian binary writer. */
class StateWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u16(std::uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Length-prefixed byte string. */
    void str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            u8(static_cast<std::uint8_t>(c));
    }

    /** Open a component section: exactly 4 tag characters. */
    void tag(const char (&t)[5])
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(t[i]));
    }

    /**
     * u64 count followed by per-element writes:
     * `w.count(v.size()); for (x : v) w.u32(x);`
     */
    void count(std::size_t n) { u64(n); }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> takeBytes() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

    /** FNV-1a of everything written so far. */
    std::uint64_t hash() const { return fnv1a(buf_.data(), buf_.size()); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Sequential little-endian reader over a byte buffer (not owned).
 * Underrun and tag mismatch throw FatalError naming the byte offset.
 */
class StateReader
{
  public:
    StateReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit StateReader(const std::vector<std::uint8_t> &bytes)
        : StateReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t u16()
    {
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(u8()) << (8 * i);
        return v;
    }

    std::uint32_t u32()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }

    std::uint64_t u64()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    bool boolean() { return u8() != 0; }

    std::string str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Read and verify a 4-character section tag. */
    void checkTag(const char (&t)[5])
    {
        const std::size_t at = pos_;
        char got[5] = {};
        for (int i = 0; i < 4; ++i)
            got[i] = static_cast<char>(u8());
        for (int i = 0; i < 4; ++i) {
            if (got[i] != t[i])
                fatal("state stream: expected section '", t,
                      "' at byte ", at, ", found '", got, "'");
        }
    }

    /**
     * Read a container count and bound it (guards against reserving
     * gigabytes from a corrupt stream).
     */
    std::size_t count(std::size_t maxAllowed)
    {
        const std::uint64_t n = u64();
        if (n > maxAllowed)
            fatal("state stream: count ", n, " at byte ", pos_ - 8,
                  " exceeds limit ", maxAllowed);
        return static_cast<std::size_t>(n);
    }

    std::size_t offset() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    void need(std::uint64_t n)
    {
        if (n > size_ - pos_)
            fatal("state stream truncated: need ", n, " bytes at byte ",
                  pos_, ", have ", size_ - pos_);
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/**
 * Stable 64-bit state hash of any component exposing
 * saveState(StateWriter&): FNV-1a over its serialized bytes.
 */
template <typename T>
std::uint64_t
stateHashOf(const T &component)
{
    StateWriter w;
    component.saveState(w);
    return w.hash();
}

} // namespace ximd

#endif // XIMD_SUPPORT_STATE_IO_HH
