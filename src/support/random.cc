#include "support/random.hh"

#include "support/logging.hh"

namespace ximd {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    XIMD_ASSERT(lo <= hi, "bad range [", lo, ", ", hi, "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit span
        return static_cast<std::int64_t>(next64());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % span);
    std::uint64_t v;
    do {
        v = next64();
    } while (v > limit);
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::uniform()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace ximd
