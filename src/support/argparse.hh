/**
 * @file
 * The one command-line convention shared by every tool.
 *
 * xsim, vsim, xcc, xfarm and ximd-lint accept the same option
 * grammar: `--flag`, `--option VALUE`, `--option=VALUE`, short
 * aliases with either a separate or an attached value (`-j 8`,
 * `-j8`, `-o out.ximd`), and bare positionals. Before this header
 * each tool hand-rolled that loop with slightly different `=`
 * handling and ad-hoc usage text; now a tool declares its surface
 * once and gets parsing, a uniformly formatted `--help`, and the
 * common exit contract for free.
 *
 * Exit-status contract (stable, scripted against by ci.sh):
 *   0  (kExitOk)      the tool did what was asked
 *   1  (kExitFailure) ran, but the work failed (job failures, lint
 *                     findings, simulation fault, unwritable output)
 *   2  (kExitUsage)   the invocation itself was wrong (unknown
 *                     option, missing value, unparsable number,
 *                     missing input file operand)
 * `--help` prints the full help text to stdout and exits 0.
 *
 * The parser is deliberately callback-based rather than
 * declarative-struct-based: tools bind straight into their existing
 * Options fields, so porting a tool does not change its Options
 * shape, only deletes its parse loop.
 */

#ifndef XIMD_SUPPORT_ARGPARSE_HH
#define XIMD_SUPPORT_ARGPARSE_HH

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

namespace ximd::argparse {

inline constexpr int kExitOk = 0;      ///< Work done.
inline constexpr int kExitFailure = 1; ///< Ran, but the work failed.
inline constexpr int kExitUsage = 2;   ///< Bad invocation.

/** Declarative-enough command-line parser; see the file comment. */
class Parser
{
  public:
    /**
     * @param tool      name used in "usage:" and error prefixes.
     * @param operands  the operand part of the usage line, e.g.
     *                  "[options] program.ximd".
     */
    Parser(std::string tool, std::string operands)
        : tool_(std::move(tool)), operands_(std::move(operands))
    {
    }

    /** Extra lines printed after the option list in --help. */
    void footer(std::string text) { footer_ = std::move(text); }

    /** `--name` (no value). @p alias may be a short form like "-q". */
    void
    flag(const std::string &name, const std::string &help,
         std::function<void()> set, const std::string &alias = {})
    {
        specs_.push_back(
            {name, alias, {}, help,
             [set = std::move(set)](const std::string &) {
                 set();
                 return true;
             },
             false});
    }

    /**
     * `--name VALUE` / `--name=VALUE` (and `-a VALUE` / `-aVALUE`
     * when @p alias is set). @p set returns false to reject the
     * value, which is reported as a usage error.
     */
    void
    option(const std::string &name, const std::string &metavar,
           const std::string &help,
           std::function<bool(const std::string &)> set,
           const std::string &alias = {})
    {
        specs_.push_back(
            {name, alias, metavar, help, std::move(set), true});
    }

    /**
     * Bare (non-option) operands, in order. The caller checks
     * arity after parse(); fail() reports violations uniformly.
     */
    void
    positional(std::function<void(const std::string &)> add)
    {
        positional_ = std::move(add);
    }

    /** Usage error: print the message and the usage line, exit 2. */
    [[noreturn]] void
    fail(const std::string &message) const
    {
        std::cerr << tool_ << ": " << message << "\n"
                  << usageLine() << tool_ << " --help for details\n";
        std::exit(kExitUsage);
    }

    std::string
    helpText() const
    {
        std::string out = usageLine();
        for (const Spec &s : specs_) {
            std::string lhs = "  " + s.name;
            if (!s.alias.empty())
                lhs += ", " + s.alias;
            if (s.takesValue)
                lhs += " " + s.metavar;
            // Two-column layout; long invocations wrap onto their
            // own line so the help column stays aligned.
            if (lhs.size() < kHelpCol) {
                lhs.append(kHelpCol - lhs.size(), ' ');
            } else {
                lhs += "\n";
                lhs.append(kHelpCol, ' ');
            }
            out += lhs;
            // Indent continuation lines of multi-line help.
            for (const char c : s.help) {
                out += c;
                if (c == '\n')
                    out.append(kHelpCol, ' ');
            }
            out += "\n";
        }
        if (!footer_.empty())
            out += footer_ + "\n";
        return out;
    }

    /**
     * Consume argv. `--help`/`-h` prints help and exits 0; any
     * grammar violation exits 2 via fail(). After this returns,
     * every callback has run, in command-line order.
     */
    void
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::cout << helpText();
                std::exit(kExitOk);
            }
            if (arg.empty() || arg[0] != '-' || arg == "-") {
                if (!positional_)
                    fail("unexpected operand '" + arg + "'");
                positional_(arg);
                continue;
            }
            const Spec *spec = nullptr;
            std::string value;
            bool haveValue = false;
            if (arg.rfind("--", 0) == 0) {
                std::string name = arg;
                const std::size_t eq = name.find('=');
                if (eq != std::string::npos) {
                    value = name.substr(eq + 1);
                    name.resize(eq);
                    haveValue = true;
                }
                spec = findLong(name);
                if (!spec)
                    fail("unknown option '" + name + "'");
            } else {
                // Short alias: exact, or with an attached value.
                for (const Spec &s : specs_) {
                    if (s.alias.empty())
                        continue;
                    if (arg == s.alias) {
                        spec = &s;
                        break;
                    }
                    if (s.takesValue &&
                        arg.rfind(s.alias, 0) == 0) {
                        spec = &s;
                        value = arg.substr(s.alias.size());
                        haveValue = true;
                        break;
                    }
                }
                if (!spec)
                    fail("unknown option '" + arg + "'");
            }
            if (spec->takesValue && !haveValue) {
                if (++i >= argc)
                    fail("option '" + spec->name +
                         "' needs a value");
                value = argv[i];
            } else if (!spec->takesValue && haveValue) {
                fail("option '" + spec->name +
                     "' does not take a value");
            }
            if (!spec->set(value))
                fail("bad value '" + value + "' for option '" +
                     spec->name + "'");
        }
    }

    /// @name Value parsers for option() callbacks.
    ///
    /// Return-by-bool so a malformed number becomes the uniform
    /// "bad value" usage error rather than silently parsing as 0.
    /// @{
    template <typename T>
    static bool
    parseNumber(const std::string &text, T &out)
    {
        if (text.empty())
            return false;
        errno = 0;
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(text.c_str(), &end, 0);
        if (errno != 0 || end == text.c_str() || *end != '\0')
            return false;
        if (v > static_cast<unsigned long long>(
                    static_cast<T>(~static_cast<T>(0))))
            return false;
        out = static_cast<T>(v);
        return true;
    }
    /// @}

  private:
    struct Spec
    {
        std::string name;
        std::string alias;
        std::string metavar;
        std::string help;
        std::function<bool(const std::string &)> set;
        bool takesValue;
    };

    static constexpr std::size_t kHelpCol = 22;

    std::string
    usageLine() const
    {
        return "usage: " + tool_ + " " + operands_ + "\n";
    }

    const Spec *
    findLong(const std::string &name) const
    {
        for (const Spec &s : specs_)
            if (s.name == name)
                return &s;
        return nullptr;
    }

    std::string tool_;
    std::string operands_;
    std::string footer_;
    std::vector<Spec> specs_;
    std::function<void(const std::string &)> positional_;
};

} // namespace ximd::argparse

#endif // XIMD_SUPPORT_ARGPARSE_HH
