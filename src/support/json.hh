/**
 * @file
 * Minimal JSON value model, parser, and writer.
 *
 * The batch-run engine (src/farm/) consumes sweep specifications and
 * emits aggregate reports as JSON; the repository deliberately carries
 * no third-party JSON dependency, so this is a small, strict subset
 * implementation sufficient for those uses:
 *
 *  - values: null, bool, number (stored as double; integers up to
 *    2^53 round-trip exactly), string, array, object;
 *  - objects preserve no duplicate keys (last one wins) and serialize
 *    in insertion order, so emitted reports are deterministic;
 *  - parse errors are reported structurally (Result) with a byte
 *    offset and message, never by exception;
 *  - strings support the standard escapes; \uXXXX is accepted for
 *    ASCII code points (sufficient for machine-generated specs).
 *
 * Not supported (rejected at parse time): comments, trailing commas,
 * NaN/Infinity literals.
 */

#ifndef XIMD_SUPPORT_JSON_HH
#define XIMD_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/result.hh"

namespace ximd::json {

/** A parse failure: byte offset into the source plus a message. */
struct ParseError
{
    std::size_t offset = 0;
    std::string message;

    /** "byte 17: expected ':' after object key". */
    std::string formatted() const;
};

/** One JSON value (tree-owning). */
class Value
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    /** Object entries keep insertion order for deterministic output. */
    using Member = std::pair<std::string, Value>;

    Value() : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(std::int64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n))
    {
    }
    Value(std::uint64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n))
    {
    }
    Value(int n) : kind_(Kind::Number), num_(n) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /// @name Scalar access (asserts on kind mismatch).
    /// @{
    bool asBool() const;
    double asNumber() const;
    std::int64_t asInt() const;
    const std::string &asString() const;
    /// @}

    /// @name Array access / construction.
    /// @{
    const std::vector<Value> &items() const;
    void push(Value v);
    /// @}

    /// @name Object access / construction.
    /// @{
    const std::vector<Member> &members() const;

    /** Member @p key, or null when absent (or not an object). */
    const Value *find(std::string_view key) const;

    /** Set member @p key (replaces an existing entry in place). */
    void set(std::string_view key, Value v);
    /// @}

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form. Key order is
     * insertion order; doubles that hold integral values in the
     * +/-2^53 range print without a fraction.
     */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<Member> obj_;
};

/** Parse @p text as one JSON document (trailing junk is an error). */
Result<Value, ParseError> parse(std::string_view text);

/** Escape and quote @p s as a JSON string literal. */
std::string quote(std::string_view s);

} // namespace ximd::json

#endif // XIMD_SUPPORT_JSON_HH
