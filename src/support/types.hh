/**
 * @file
 * Fundamental scalar types shared by every XIMD subsystem.
 *
 * The XIMD-1 research model (Wolfe & Shen, ASPLOS 1991, section 2.2)
 * operates on two 32-bit data types: 32-bit integer and 32-bit float.
 * Registers and memory words hold raw 32-bit patterns; each operation
 * interprets the pattern according to its opcode.
 */

#ifndef XIMD_SUPPORT_TYPES_HH
#define XIMD_SUPPORT_TYPES_HH

#include <cstdint>
#include <cstring>

namespace ximd {

/** Raw 32-bit register/memory word (bit pattern, type-agnostic). */
using Word = std::uint32_t;

/** Signed view of a word, used by the integer datapath. */
using SWord = std::int32_t;

/** Word address in the idealized shared memory (word granularity). */
using Addr = std::uint32_t;

/** Instruction-memory address (row index into the program). */
using InstAddr = std::uint32_t;

/** Simulation cycle count. */
using Cycle = std::uint64_t;

/** Functional-unit index, 0-based. */
using FuId = unsigned;

/** Global register index; XIMD-1 has 256 global registers. */
using RegId = std::uint16_t;

/** Number of global registers in the XIMD-1 register file. */
inline constexpr RegId kNumRegisters = 256;

/** Hard upper bound on functional units supported by this simulator. */
inline constexpr FuId kMaxFus = 32;

/**
 * FU masks (barrier conditions, SyncBus::allDone/anyDone) are packed
 * into a std::uint32_t, one bit per FU; kMaxFus may not outgrow it.
 */
static_assert(kMaxFus <= 32, "FU masks are 32-bit: one bit per FU");

/** Mask selecting every FU of an @p n-unit machine. */
inline constexpr std::uint32_t
fuMaskAll(FuId n)
{
    return n >= 32 ? ~0u : ((1u << n) - 1u);
}

/** Default XIMD-1 configuration: 8 homogeneous universal FUs. */
inline constexpr FuId kDefaultFus = 8;

/** Reinterpret a word's bit pattern as a float (the `f*` datapath view). */
inline float
wordToFloat(Word w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

/** Reinterpret a float's bit pattern as a raw word. */
inline Word
floatToWord(float f)
{
    Word w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

/** Reinterpret a word as a signed 32-bit integer. */
inline SWord
wordToInt(Word w)
{
    SWord s;
    std::memcpy(&s, &w, sizeof(s));
    return s;
}

/** Reinterpret a signed 32-bit integer as a raw word. */
inline Word
intToWord(SWord s)
{
    Word w;
    std::memcpy(&w, &s, sizeof(w));
    return w;
}

} // namespace ximd

#endif // XIMD_SUPPORT_TYPES_HH
