/**
 * @file
 * Small string utilities used by the assembler, disassembler and
 * benchmark table printers. No locale dependence, ASCII only.
 */

#ifndef XIMD_SUPPORT_STR_HH
#define XIMD_SUPPORT_STR_HH

#include <string>
#include <string_view>
#include <vector>

namespace ximd {

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split @p s on @p sep (single char); keeps empty fields. */
std::vector<std::string_view> split(std::string_view s, char sep);

/** Split @p s on a multi-character separator; keeps empty fields. */
std::vector<std::string_view> splitOn(std::string_view s,
                                      std::string_view sep);

/** ASCII lower-case copy. */
std::string toLower(std::string_view s);

/** True when @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Render @p v as a two-digit-minimum lowercase hex string ("0a"). */
std::string hex2(unsigned v);

/** Left-pad @p s with spaces to @p width (no-op when already wider). */
std::string padLeft(std::string_view s, std::size_t width);

/** Right-pad @p s with spaces to @p width (no-op when already wider). */
std::string padRight(std::string_view s, std::size_t width);

/** Render a double with @p digits fractional digits ("3.14"). */
std::string fixed(double v, int digits);

} // namespace ximd

#endif // XIMD_SUPPORT_STR_HH
