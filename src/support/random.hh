/**
 * @file
 * Deterministic pseudo-random number generator (splitmix64-seeded
 * xoshiro256**). All workload generators and property tests draw from
 * this RNG so that every run of the suite is exactly reproducible.
 */

#ifndef XIMD_SUPPORT_RANDOM_HH
#define XIMD_SUPPORT_RANDOM_HH

#include <cstdint>

namespace ximd {

/** Deterministic, seedable PRNG with convenience range helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x1991'0403'5A5A'1234ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace ximd

#endif // XIMD_SUPPORT_RANDOM_HH
