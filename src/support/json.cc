#include "support/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.hh"

namespace ximd::json {

std::string
ParseError::formatted() const
{
    return cat("byte ", offset, ": ", message);
}

bool
Value::asBool() const
{
    XIMD_ASSERT(isBool(), "JSON value is not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    XIMD_ASSERT(isNumber(), "JSON value is not a number");
    return num_;
}

std::int64_t
Value::asInt() const
{
    XIMD_ASSERT(isNumber(), "JSON value is not a number");
    return static_cast<std::int64_t>(num_);
}

const std::string &
Value::asString() const
{
    XIMD_ASSERT(isString(), "JSON value is not a string");
    return str_;
}

const std::vector<Value> &
Value::items() const
{
    XIMD_ASSERT(isArray(), "JSON value is not an array");
    return arr_;
}

void
Value::push(Value v)
{
    XIMD_ASSERT(isArray(), "JSON value is not an array");
    arr_.push_back(std::move(v));
}

const std::vector<Value::Member> &
Value::members() const
{
    XIMD_ASSERT(isObject(), "JSON value is not an object");
    return obj_;
}

const Value *
Value::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const Member &m : obj_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

void
Value::set(std::string_view key, Value v)
{
    XIMD_ASSERT(isObject(), "JSON value is not an object");
    for (Member &m : obj_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(std::string(key), std::move(v));
}

std::string
quote(std::string_view s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace {

std::string
numberText(double d)
{
    // Integral values in the exactly-representable range print as
    // integers, so counters round-trip byte-identically.
    if (std::nearbyint(d) == d && std::fabs(d) <= 9007199254740992.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        return buf;
    }
    // Shortest round-trip form: "0.421001" stays "0.421001" instead
    // of ballooning to 17 significant digits.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    return std::string(buf, res.ptr);
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              (static_cast<std::size_t>(depth) + 1),
                          ' ');
    const std::string close(static_cast<std::size_t>(indent) *
                                static_cast<std::size_t>(depth),
                            ' ');
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Number:
        out += numberText(num_);
        return;
      case Kind::String:
        out += quote(str_);
        return;
      case Kind::Array: {
        if (arr_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += close;
        out += ']';
        return;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            out += pad;
            out += quote(obj_[i].first);
            out += colon;
            obj_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < obj_.size())
                out += ',';
            out += nl;
        }
        out += close;
        out += '}';
        return;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Result<Value, ParseError>
    document()
    {
        Value v;
        if (!parseValue(v))
            return error_;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON document");
        return v;
    }

  private:
    ParseError
    fail(std::string msg)
    {
        error_ = ParseError{pos_, std::move(msg)};
        return error_;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        switch (c) {
          case 'n':
            if (!literal("null")) {
                fail("bad literal");
                return false;
            }
            out = Value();
            return true;
          case 't':
            if (!literal("true")) {
                fail("bad literal");
                return false;
            }
            out = Value(true);
            return true;
          case 'f':
            if (!literal("false")) {
                fail("bad literal");
                return false;
            }
            out = Value(false);
            return true;
          case '"':
            return parseString(out);
          case '[':
            return parseArray(out);
          case '{':
            return parseObject(out);
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            fail(cat("unexpected character '", c, "'"));
            return false;
        }
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || tok.empty()) {
            pos_ = start;
            fail(cat("bad number '", tok, "'"));
            return false;
        }
        out = Value(d);
        return true;
    }

    bool
    parseString(Value &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = Value(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string &s)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    break;
                const char esc = text_[pos_ + 1];
                pos_ += 2;
                switch (esc) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'n': s += '\n'; break;
                  case 'r': s += '\r'; break;
                  case 't': s += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    const std::string hex(text_.substr(pos_, 4));
                    char *end = nullptr;
                    const long code =
                        std::strtol(hex.c_str(), &end, 16);
                    if (end != hex.c_str() + 4 || code > 0x7F) {
                        fail("unsupported \\u escape (ASCII only)");
                        return false;
                    }
                    pos_ += 4;
                    s += static_cast<char>(code);
                    break;
                  }
                  default:
                    pos_ -= 1;
                    fail(cat("bad escape '\\", esc, "'"));
                    return false;
                }
                continue;
            }
            s += c;
            ++pos_;
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseArray(Value &out)
    {
        ++pos_; // '['
        Value arr = Value::array();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            out = std::move(arr);
            return true;
        }
        while (true) {
            Value item;
            if (!parseValue(item))
                return false;
            arr.push(std::move(item));
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                out = std::move(arr);
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool
    parseObject(Value &out)
    {
        ++pos_; // '{'
        Value obj = Value::object();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            out = std::move(obj);
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key string");
                return false;
            }
            std::string key;
            if (!parseRawString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':' after object key");
                return false;
            }
            ++pos_;
            Value item;
            if (!parseValue(item))
                return false;
            obj.set(key, std::move(item));
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                out = std::move(obj);
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    ParseError error_;
};

} // namespace

Result<Value, ParseError>
parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace ximd::json
