#include "support/logging.hh"

#include <atomic>
#include <iostream>

namespace ximd {

namespace {
std::atomic<bool> quietMode{false};
} // namespace

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

namespace detail {

namespace {

std::string
decorate(const char *tag, const char *file, int line,
         const std::string &msg)
{
    std::ostringstream os;
    os << tag << ": " << msg;
    if (file)
        os << " @ " << file << ":" << line;
    return os.str();
}

} // namespace

void
throwFatal(const char *file, int line, const std::string &msg)
{
    throw FatalError(decorate("fatal", file, line, msg));
}

void
throwPanic(const char *file, int line, const std::string &msg)
{
    throw PanicError(decorate("panic", file, line, msg));
}

void
emitWarn(const std::string &msg)
{
    if (!quietMode.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << std::endl;
}

void
emitInform(const std::string &msg)
{
    if (!quietMode.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace ximd
