/**
 * @file
 * Result<T, E> — an std::expected-style sum type for fallible
 * operations that should report failures structurally instead of
 * throwing or writing to a stream.
 *
 * The simulator's library layers historically reported user errors by
 * throwing FatalError with a formatted message. That is fine for a
 * single interactive run, but a batch engine (src/farm/) running
 * thousands of jobs needs per-job failures as data: which job, which
 * check, which line — not a string scraped off stderr. Fallible entry
 * points that batch callers use (assembly, program loading, sweep
 * parsing) therefore come in a Result-returning flavour, with the
 * error type shared with analysis::diagnostics where a Diagnostic
 * fits.
 *
 * The type is intentionally small: construction from a value or an
 * error, hasValue()/operator bool, value()/error() access (asserting
 * on wrong-arm access), and valueOr(). When the repository moves to
 * C++23 this becomes an alias for std::expected.
 */

#ifndef XIMD_SUPPORT_RESULT_HH
#define XIMD_SUPPORT_RESULT_HH

#include <type_traits>
#include <utility>
#include <variant>

#include "support/logging.hh"

namespace ximd {

/** Tag for constructing the error arm when T and E are the same. */
struct ErrTag
{
};
inline constexpr ErrTag errTag{};

/** Value-or-error sum type; exactly one arm is ever engaged. */
template <typename T, typename E>
class Result
{
    static_assert(!std::is_same_v<T, E>,
                  "use the ErrTag constructor to disambiguate");

  public:
    /** Construct the success arm (implicit, like std::expected). */
    Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}

    /** Construct the error arm (implicit, like std::unexpected). */
    Result(E error) : v_(std::in_place_index<1>, std::move(error)) {}

    /** Construct the error arm explicitly. */
    Result(ErrTag, E error) : v_(std::in_place_index<1>, std::move(error))
    {
    }

    bool hasValue() const { return v_.index() == 0; }
    explicit operator bool() const { return hasValue(); }

    /// @name Arm access (asserts on wrong-arm access).
    /// @{
    T &value() &
    {
        XIMD_ASSERT(hasValue(), "Result::value() on error arm");
        return std::get<0>(v_);
    }

    const T &value() const &
    {
        XIMD_ASSERT(hasValue(), "Result::value() on error arm");
        return std::get<0>(v_);
    }

    T &&value() &&
    {
        XIMD_ASSERT(hasValue(), "Result::value() on error arm");
        return std::get<0>(std::move(v_));
    }

    E &error()
    {
        XIMD_ASSERT(!hasValue(), "Result::error() on value arm");
        return std::get<1>(v_);
    }

    const E &error() const
    {
        XIMD_ASSERT(!hasValue(), "Result::error() on value arm");
        return std::get<1>(v_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }
    /// @}

    /** The value, or @p fallback when this holds an error. */
    T valueOr(T fallback) const &
    {
        return hasValue() ? std::get<0>(v_) : std::move(fallback);
    }

  private:
    std::variant<T, E> v_;
};

} // namespace ximd

#endif // XIMD_SUPPORT_RESULT_HH
