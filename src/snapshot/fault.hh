/**
 * @file
 * Seeded transient-fault injection for robustness campaigns.
 *
 * The fault model covers the XIMD-1's state elements and the two
 * machine-level disturbance channels the paper's architecture exposes
 * (sections 2.2-2.3, 3.4):
 *
 *  - reg-flip:   one bit of one global register flips;
 *  - cc-flip:    one FU's condition-code register inverts;
 *  - mem-flip:   one bit of one RAM word flips;
 *  - stuck-sync: one FU's SS line reads a forced value for a span of
 *                cycles (a stuck-at fault on the distribution bus);
 *  - io-delay:   every scripted input port's pending arrivals slip by
 *                a number of cycles (an external-latency perturbation).
 *
 * A FaultPlan is the seeded generator: expandTrial(t) maps trial index
 * t to a concrete list of FaultEvents as a pure function of (plan
 * seed, t), so campaigns are reproducible at any thread count. The
 * FaultInjector applies events through the CycleObserver perturbation
 * hooks (core/observer.hh): onPerturb() fires before the chosen
 * cycle's fetch, and nextWake() keeps busy-wait fast-forward from
 * skipping an injection cycle.
 */

#ifndef XIMD_SNAPSHOT_FAULT_HH
#define XIMD_SNAPSHOT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/observer.hh"
#include "isa/control_op.hh"
#include "support/json.hh"
#include "support/result.hh"
#include "support/types.hh"

namespace ximd::snapshot {

/** The injectable disturbance channels. */
enum class FaultKind : std::uint8_t {
    RegFlip,
    CcFlip,
    MemFlip,
    StuckSync,
    IoDelay,
};

/** "reg-flip" / "cc-flip" / "mem-flip" / "stuck-sync" / "io-delay". */
const char *faultKindName(FaultKind kind);

/** Inverse of faultKindName(); null message on unknown names. */
Result<FaultKind, std::string> faultKindFromName(const std::string &s);

/** One concrete injection: what happens, where, and when. */
struct FaultEvent
{
    Cycle cycle = 0;       ///< Inject before this cycle's fetch.
    FaultKind kind = FaultKind::RegFlip;
    FuId fu = 0;           ///< cc-flip / stuck-sync target.
    RegId reg = 0;         ///< reg-flip target.
    Addr addr = 0;         ///< mem-flip target.
    unsigned bit = 0;      ///< flipped bit (0..31).
    SyncVal stuck = SyncVal::Busy; ///< stuck-sync forced value.
    Cycle duration = 1;    ///< stuck-sync span in cycles.
    Cycle delay = 1;       ///< io-delay slip in cycles.

    /** e.g. "cycle 42: reg-flip r7 bit 13". */
    std::string describe() const;
};

/** A seeded campaign description (parsed from a JSON plan file). */
struct FaultPlan
{
    std::uint64_t seed = 1;
    unsigned trials = 16;
    unsigned faultsPerTrial = 1;
    Cycle windowLo = 1;    ///< Earliest injection cycle.
    Cycle windowHi = 1000; ///< Latest injection cycle.
    std::vector<FaultKind> kinds; ///< Enabled channels (all if empty).
    Addr memLo = 0;        ///< mem-flip address range.
    Addr memHi = 255;
    /** Per-trial cycle budget; exceeding it classifies as wedged. */
    Cycle watchdogCycles = 200'000;

    /**
     * Parse the JSON plan object:
     *
     *     { "seed": 7, "trials": 32, "faults_per_trial": 1,
     *       "window": [1, 500], "kinds": ["reg-flip", "cc-flip"],
     *       "mem_range": [0, 255], "watchdog": 200000 }
     *
     * Every key is optional; unknown keys are an error (a typo must
     * not silently weaken a campaign).
     */
    static Result<FaultPlan, std::string> parse(const json::Value &v);

    /** Read @p path and parse() it. */
    static Result<FaultPlan, std::string> load(const std::string &path);

    /** The channels actually drawn from (kinds, or all when empty). */
    std::vector<FaultKind> effectiveKinds() const;

    /**
     * The concrete events of trial @p trial on a @p numFus-wide
     * machine — a pure function of (seed, trial), sorted by cycle.
     */
    std::vector<FaultEvent> expandTrial(unsigned trial,
                                        FuId numFus) const;

    /** One-line summary for reports. */
    std::string describe() const;
};

/**
 * Applies a trial's events to a running core via the perturbation
 * hooks. Attach with Machine::addObserver() before running; events
 * whose cycle has already passed (resumed runs) inject at the next
 * executed cycle.
 */
class FaultInjector : public CycleObserver
{
  public:
    explicit FaultInjector(std::vector<FaultEvent> events);

    const char *observerName() const override { return "fault-injector"; }
    bool perturbs() const override { return true; }
    Cycle nextWake(const MachineCore &core) const override;
    void onPerturb(MachineCore &core) override;

    /** Events applied so far. */
    unsigned injected() const { return injected_; }

    /** Human-readable record of every applied event. */
    const std::vector<std::string> &log() const { return log_; }

  private:
    void apply(MachineCore &core, const FaultEvent &e);

    std::vector<FaultEvent> events_; ///< Sorted by cycle.
    std::size_t next_ = 0;
    unsigned injected_ = 0;
    std::vector<std::string> log_;
};

} // namespace ximd::snapshot

#endif // XIMD_SNAPSHOT_FAULT_HH
