#include "snapshot/snapshot.hh"

#include <fstream>
#include <iterator>

#include "isa/disasm.hh"
#include "support/logging.hh"
#include "support/state_io.hh"

namespace ximd::snapshot {

namespace {

/** 8-byte container magic. */
constexpr char kMagic[9] = "XIMDSNAP";

void
writeMagic(StateWriter &w)
{
    for (int i = 0; i < 8; ++i)
        w.u8(static_cast<std::uint8_t>(kMagic[i]));
}

bool
readMagic(StateReader &r)
{
    if (r.remaining() < 8)
        return false;
    for (int i = 0; i < 8; ++i)
        if (r.u8() != static_cast<std::uint8_t>(kMagic[i]))
            return false;
    return true;
}

/** Config fields that shape machine state / resumed behaviour. */
void
writeConfig(StateWriter &w, const Machine &m)
{
    const MachineConfig &c = m.config();
    w.tag("CONF");
    w.u8(static_cast<std::uint8_t>(c.mode));
    w.u32(m.numFus());
    w.u64(c.memWords);
    w.u8(static_cast<std::uint8_t>(c.conflictPolicy));
    w.boolean(c.registeredSync);
    w.u32(c.resultLatency);
    w.u64(c.seed);
    w.boolean(c.recordTrace);
    w.boolean(c.trackPartitions);
    w.boolean(c.collectStats);
}

/** Compare one config field; fills @p err on mismatch. */
template <typename T>
bool
match(const char *name, T saved, T actual, Error &err)
{
    if (saved == actual)
        return true;
    err.kind = Error::Kind::ConfigMismatch;
    err.message = std::string("snapshot was taken under a different '")
        + name + "' setting";
    return false;
}

bool
checkConfig(StateReader &r, const Machine &m, Error &err)
{
    r.checkTag("CONF");
    const MachineConfig &c = m.config();
    const auto mode = static_cast<Mode>(r.u8());
    const FuId fus = r.u32();
    const std::uint64_t memWords = r.u64();
    const auto policy = static_cast<ConflictPolicy>(r.u8());
    const bool regSync = r.boolean();
    const unsigned latency = r.u32();
    const std::uint64_t seed = r.u64();
    const bool trace = r.boolean();
    const bool partitions = r.boolean();
    const bool stats = r.boolean();
    return match("mode", mode, c.mode, err) &&
           match("numFus", fus, m.numFus(), err) &&
           match("memWords", memWords,
                 static_cast<std::uint64_t>(c.memWords), err) &&
           match("conflictPolicy", policy, c.conflictPolicy, err) &&
           match("registeredSync", regSync, c.registeredSync, err) &&
           match("resultLatency", latency, c.resultLatency, err) &&
           match("seed", seed, c.seed, err) &&
           match("recordTrace", trace, c.recordTrace, err) &&
           match("trackPartitions", partitions, c.trackPartitions,
                 err) &&
           match("collectStats", stats, c.collectStats, err);
}

} // namespace

const char *
kindName(Error::Kind kind)
{
    switch (kind) {
      case Error::Kind::BadMagic:
        return "bad-magic";
      case Error::Kind::BadVersion:
        return "bad-version";
      case Error::Kind::ProgramMismatch:
        return "program-mismatch";
      case Error::Kind::ConfigMismatch:
        return "config-mismatch";
      case Error::Kind::Corrupt:
        return "corrupt";
      case Error::Kind::Io:
        return "io";
    }
    return "unknown";
}

std::string
Error::formatted() const
{
    return std::string("snapshot error: ") + kindName(kind) + ": " +
           message;
}

std::uint64_t
programDigest(const Program &program)
{
    Hash64 h;
    h.u32(program.width());
    h.u32(program.size());
    // Parcels are hashed through their canonical disassembly —
    // deterministic, covers every executable field, and immune to
    // struct layout. Register names are suppressed so the symbol
    // table cannot alter the digest.
    DisasmOptions opts;
    opts.useRegNames = false;
    opts.showSync = true;
    for (InstAddr a = 0; a < program.size(); ++a)
        for (FuId fu = 0; fu < program.width(); ++fu)
            h.str(formatParcel(program, program.parcel(a, fu), opts));
    for (const auto &[addr, value] : program.memInit()) {
        h.u32(addr);
        h.u32(value);
    }
    for (const auto &[reg, value] : program.regInit()) {
        h.u32(reg);
        h.u32(value);
    }
    return h.digest();
}

std::vector<std::uint8_t>
save(const Machine &machine, const std::string &label)
{
    StateWriter w;
    writeMagic(w);
    w.u32(kFormatVersion);
    w.u64(programDigest(machine.program()));
    w.str(label);
    writeConfig(w, machine);

    const std::size_t stateStart = w.size();
    machine.core().saveState(w);
    machine.saveObserverState(w);
    const std::size_t stateEnd = w.size();

    w.u64(fnv1a(w.bytes().data() + stateStart, stateEnd - stateStart));
    return w.takeBytes();
}

Result<bool, Error>
restore(Machine &machine, const std::vector<std::uint8_t> &bytes)
{
    StateReader r(bytes);
    Error err;
    if (!readMagic(r)) {
        err.kind = Error::Kind::BadMagic;
        err.message = "not a snapshot (bad magic)";
        return {errTag, err};
    }
    try {
        const std::uint32_t version = r.u32();
        if (version != kFormatVersion) {
            err.kind = Error::Kind::BadVersion;
            err.message = "snapshot format version " +
                          std::to_string(version) +
                          ", this build reads version " +
                          std::to_string(kFormatVersion);
            return {errTag, err};
        }
        const std::uint64_t digest = r.u64();
        const std::uint64_t expected = programDigest(machine.program());
        if (digest != expected) {
            err.kind = Error::Kind::ProgramMismatch;
            err.message = "snapshot was taken of a different program";
            return {errTag, err};
        }
        r.str(); // label: identity metadata, not validated here
        if (!checkConfig(r, machine, err))
            return {errTag, err};

        const std::size_t stateStart = r.offset();
        machine.core().loadState(r);
        machine.loadObserverState(r);
        const std::size_t stateEnd = r.offset();

        const std::uint64_t stored = r.u64();
        const std::uint64_t computed = fnv1a(
            bytes.data() + stateStart, stateEnd - stateStart);
        if (stored != computed) {
            err.kind = Error::Kind::Corrupt;
            err.message = "state hash mismatch (snapshot corrupted)";
            return {errTag, err};
        }
    } catch (const FatalError &e) {
        err.kind = Error::Kind::Corrupt;
        err.message = e.what();
        return {errTag, err};
    }
    return true;
}

Result<Info, Error>
peek(const std::vector<std::uint8_t> &bytes)
{
    StateReader r(bytes);
    Error err;
    if (!readMagic(r)) {
        err.kind = Error::Kind::BadMagic;
        err.message = "not a snapshot (bad magic)";
        return {errTag, err};
    }
    Info info;
    try {
        info.version = r.u32();
        if (info.version != kFormatVersion) {
            err.kind = Error::Kind::BadVersion;
            err.message = "snapshot format version " +
                          std::to_string(info.version) +
                          ", this build reads version " +
                          std::to_string(kFormatVersion);
            return {errTag, err};
        }
        info.programDigest = r.u64();
        info.label = r.str();
        r.checkTag("CONF");
        info.mode = static_cast<Mode>(r.u8());
        // Skip the remaining CONF fields, then read the cycle counter
        // out of the MCOR header.
        r.u32();     // numFus
        r.u64();     // memWords
        r.u8();      // conflictPolicy
        r.boolean(); // registeredSync
        r.u32();     // resultLatency
        r.u64();     // seed
        r.boolean(); // recordTrace
        r.boolean(); // trackPartitions
        r.boolean(); // collectStats
        r.checkTag("MCOR");
        r.u8(); // mode (repeated in the core section)
        info.cycle = r.u64();
    } catch (const FatalError &e) {
        err.kind = Error::Kind::Corrupt;
        err.message = e.what();
        return {errTag, err};
    }
    return info;
}

Result<bool, Error>
saveFile(const Machine &machine, const std::string &path,
         const std::string &label)
{
    const std::vector<std::uint8_t> bytes = save(machine, label);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        Error err;
        err.kind = Error::Kind::Io;
        err.message = "cannot open '" + path + "' for writing";
        return {errTag, err};
    }
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
        Error err;
        err.kind = Error::Kind::Io;
        err.message = "short write to '" + path + "'";
        return {errTag, err};
    }
    return true;
}

namespace {

Result<std::vector<std::uint8_t>, Error>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        Error err;
        err.kind = Error::Kind::Io;
        err.message = "cannot open '" + path + "' for reading";
        return {errTag, err};
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return bytes;
}

} // namespace

Result<bool, Error>
restoreFile(Machine &machine, const std::string &path)
{
    auto bytes = readAll(path);
    if (!bytes)
        return {errTag, bytes.error()};
    return restore(machine, *bytes);
}

Result<Info, Error>
peekFile(const std::string &path)
{
    auto bytes = readAll(path);
    if (!bytes)
        return {errTag, bytes.error()};
    return peek(*bytes);
}

} // namespace ximd::snapshot
