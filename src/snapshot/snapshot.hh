/**
 * @file
 * Versioned, deterministic full-machine checkpoints.
 *
 * A snapshot is a self-describing binary container around the byte
 * streams MachineCore::saveState() and Machine::saveObserverState()
 * produce (DESIGN.md section 9):
 *
 *     "XIMDSNAP"            8-byte magic
 *     u32 format version    currently kFormatVersion
 *     u64 program digest    identifies the exact program
 *     str label             free-form run identity (caller-chosen)
 *     CONF section          config fields that shape machine state
 *     MCOR section          complete execution state (all components)
 *     OBSV section          stats / trace / partition state
 *     u64 state hash        FNV-1a of MCOR + OBSV, re-checked on load
 *
 * The invariant restore() enforces: a machine restored from
 * save(M) continues cycle-for-cycle identically to M — same trace
 * entries, same statistics, same final architectural state. That only
 * holds when the restore target was built from the same program (the
 * digest check), with the same state-shaping config (the CONF check),
 * and with the same devices attached (fixtures re-run their setup
 * before restoring; Memory::loadState checks the windows). Violations
 * are reported as snapshot::Error values, not exceptions — campaign
 * and CLI callers need them as data.
 *
 * Versioning: kFormatVersion bumps whenever any component's
 * saveState() layout changes. There is no cross-version migration —
 * snapshots are working state for resumable batches, not archives —
 * so a version mismatch is a structured refusal, never a best-effort
 * parse.
 */

#ifndef XIMD_SNAPSHOT_SNAPSHOT_HH
#define XIMD_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "support/result.hh"

namespace ximd::snapshot {

/** Current container format version. */
inline constexpr std::uint32_t kFormatVersion = 1;

/** Why a snapshot could not be restored (or parsed). */
struct Error
{
    enum class Kind : std::uint8_t {
        BadMagic,        ///< Not a snapshot at all.
        BadVersion,      ///< Produced by a different format version.
        ProgramMismatch, ///< Digest differs: wrong program.
        ConfigMismatch,  ///< State-shaping config field differs.
        Corrupt,         ///< Truncated stream / hash mismatch.
        Io,              ///< File could not be read or written.
    };

    Kind kind = Kind::Corrupt;
    std::string message;

    /** "snapshot error: <kind>: <message>". */
    std::string formatted() const;
};

/** The printable name of @p kind (e.g. "program-mismatch"). */
const char *kindName(Error::Kind kind);

/**
 * Stable 64-bit digest identifying a program's executable content:
 * width, every parcel, and the initial memory / register image.
 * Symbol tables and labels do not contribute (they never affect
 * execution).
 */
std::uint64_t programDigest(const Program &program);

/** Header fields readable without a restore target. */
struct Info
{
    std::uint32_t version = 0;
    std::uint64_t programDigest = 0;
    std::string label;
    Mode mode = Mode::Ximd;
    Cycle cycle = 0;
};

/**
 * Serialize @p machine into a snapshot. @p label travels in the
 * header; resume-style callers use it to bind a snapshot to a run
 * identity (the farm stores the RunSpec label).
 */
std::vector<std::uint8_t> save(const Machine &machine,
                               const std::string &label = "");

/**
 * Restore @p bytes into @p machine, which must have been constructed
 * from the identical program and config, with any devices already
 * attached. On success the machine continues exactly as the saved one
 * would have. On failure the machine may be partially overwritten and
 * must be discarded. Returns true or a structured Error.
 */
Result<bool, Error> restore(Machine &machine,
                            const std::vector<std::uint8_t> &bytes);

/** Parse only the header of @p bytes. */
Result<Info, Error> peek(const std::vector<std::uint8_t> &bytes);

/** save() + write to @p path. */
Result<bool, Error> saveFile(const Machine &machine,
                             const std::string &path,
                             const std::string &label = "");

/** Read @p path + restore(). */
Result<bool, Error> restoreFile(Machine &machine,
                                const std::string &path);

/** Read @p path + peek(). */
Result<Info, Error> peekFile(const std::string &path);

} // namespace ximd::snapshot

#endif // XIMD_SNAPSHOT_SNAPSHOT_HH
