#include "snapshot/fault.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/machine_core.hh"
#include "sim/io_port.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/state_io.hh"

namespace ximd::snapshot {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::RegFlip:
        return "reg-flip";
      case FaultKind::CcFlip:
        return "cc-flip";
      case FaultKind::MemFlip:
        return "mem-flip";
      case FaultKind::StuckSync:
        return "stuck-sync";
      case FaultKind::IoDelay:
        return "io-delay";
    }
    return "unknown";
}

Result<FaultKind, std::string>
faultKindFromName(const std::string &s)
{
    for (FaultKind k :
         {FaultKind::RegFlip, FaultKind::CcFlip, FaultKind::MemFlip,
          FaultKind::StuckSync, FaultKind::IoDelay}) {
        if (s == faultKindName(k))
            return k;
    }
    return {errTag, "unknown fault kind '" + s + "'"};
}

std::string
FaultEvent::describe() const
{
    std::ostringstream os;
    os << "cycle " << cycle << ": " << faultKindName(kind);
    switch (kind) {
      case FaultKind::RegFlip:
        os << " r" << reg << " bit " << bit;
        break;
      case FaultKind::CcFlip:
        os << " cc" << fu;
        break;
      case FaultKind::MemFlip:
        os << " mem[" << addr << "] bit " << bit;
        break;
      case FaultKind::StuckSync:
        os << " ss" << fu << "="
           << (stuck == SyncVal::Done ? "DONE" : "BUSY") << " for "
           << duration << " cycles";
        break;
      case FaultKind::IoDelay:
        os << " +" << delay << " cycles";
        break;
    }
    return os.str();
}

Result<FaultPlan, std::string>
FaultPlan::parse(const json::Value &v)
{
    if (!v.isObject())
        return {errTag, std::string("fault plan must be a JSON object")};
    FaultPlan plan;
    for (const auto &[key, val] : v.members()) {
        if (key == "seed") {
            plan.seed = static_cast<std::uint64_t>(val.asInt());
        } else if (key == "trials") {
            plan.trials = static_cast<unsigned>(val.asInt());
        } else if (key == "faults_per_trial") {
            plan.faultsPerTrial = static_cast<unsigned>(val.asInt());
        } else if (key == "window") {
            if (!val.isArray() || val.items().size() != 2)
                return {errTag,
                        std::string("'window' must be [lo, hi]")};
            plan.windowLo =
                static_cast<Cycle>(val.items()[0].asInt());
            plan.windowHi =
                static_cast<Cycle>(val.items()[1].asInt());
        } else if (key == "kinds") {
            if (!val.isArray())
                return {errTag,
                        std::string("'kinds' must be an array")};
            for (const json::Value &k : val.items()) {
                auto parsed = faultKindFromName(k.asString());
                if (!parsed)
                    return {errTag, parsed.error()};
                plan.kinds.push_back(*parsed);
            }
        } else if (key == "mem_range") {
            if (!val.isArray() || val.items().size() != 2)
                return {errTag,
                        std::string("'mem_range' must be [lo, hi]")};
            plan.memLo = static_cast<Addr>(val.items()[0].asInt());
            plan.memHi = static_cast<Addr>(val.items()[1].asInt());
        } else if (key == "watchdog") {
            plan.watchdogCycles = static_cast<Cycle>(val.asInt());
        } else {
            return {errTag, "unknown fault-plan key '" + key + "'"};
        }
    }
    if (plan.trials == 0)
        return {errTag, std::string("'trials' must be >= 1")};
    if (plan.faultsPerTrial == 0)
        return {errTag,
                std::string("'faults_per_trial' must be >= 1")};
    if (plan.windowLo > plan.windowHi)
        return {errTag, std::string("'window' lo exceeds hi")};
    if (plan.memLo > plan.memHi)
        return {errTag, std::string("'mem_range' lo exceeds hi")};
    if (plan.watchdogCycles == 0)
        return {errTag, std::string("'watchdog' must be >= 1")};
    return plan;
}

Result<FaultPlan, std::string>
FaultPlan::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {errTag, "cannot open fault plan '" + path + "'"};
    std::ostringstream text;
    text << in.rdbuf();
    auto doc = json::parse(text.str());
    if (!doc)
        return {errTag, path + ": " + doc.error().formatted()};
    return parse(*doc);
}

std::vector<FaultKind>
FaultPlan::effectiveKinds() const
{
    if (!kinds.empty())
        return kinds;
    return {FaultKind::RegFlip, FaultKind::CcFlip, FaultKind::MemFlip,
            FaultKind::StuckSync, FaultKind::IoDelay};
}

std::vector<FaultEvent>
FaultPlan::expandTrial(unsigned trial, FuId numFus) const
{
    // The trial stream is seeded from (plan seed, trial index) alone,
    // so a trial's events never depend on execution order.
    Hash64 h;
    h.u64(seed);
    h.u64(trial);
    Rng rng(h.digest());

    const std::vector<FaultKind> ks = effectiveKinds();
    std::vector<FaultEvent> events;
    events.reserve(faultsPerTrial);
    for (unsigned i = 0; i < faultsPerTrial; ++i) {
        FaultEvent e;
        e.cycle = windowLo + static_cast<Cycle>(rng.range(
                                 0, static_cast<std::int64_t>(
                                        windowHi - windowLo)));
        e.kind = ks[static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(ks.size()) - 1))];
        switch (e.kind) {
          case FaultKind::RegFlip:
            e.reg = static_cast<RegId>(
                rng.range(0, kNumRegisters - 1));
            e.bit = static_cast<unsigned>(rng.range(0, 31));
            break;
          case FaultKind::CcFlip:
            e.fu = static_cast<FuId>(rng.range(0, numFus - 1));
            break;
          case FaultKind::MemFlip:
            e.addr = memLo + static_cast<Addr>(rng.range(
                                 0, static_cast<std::int64_t>(
                                        memHi - memLo)));
            e.bit = static_cast<unsigned>(rng.range(0, 31));
            break;
          case FaultKind::StuckSync:
            e.fu = static_cast<FuId>(rng.range(0, numFus - 1));
            e.stuck =
                rng.chance(0.5) ? SyncVal::Done : SyncVal::Busy;
            e.duration = static_cast<Cycle>(rng.range(1, 16));
            break;
          case FaultKind::IoDelay:
            e.delay = static_cast<Cycle>(rng.range(1, 8));
            break;
        }
        events.push_back(e);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
    return events;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << "seed=" << seed << " trials=" << trials
       << " faults/trial=" << faultsPerTrial << " window=["
       << windowLo << "," << windowHi << "] kinds=";
    bool first = true;
    for (FaultKind k : effectiveKinds()) {
        os << (first ? "" : ",") << faultKindName(k);
        first = false;
    }
    os << " mem=[" << memLo << "," << memHi << "] watchdog="
       << watchdogCycles;
    return os.str();
}

FaultInjector::FaultInjector(std::vector<FaultEvent> events)
    : events_(std::move(events))
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
}

Cycle
FaultInjector::nextWake(const MachineCore &core) const
{
    (void)core;
    return next_ < events_.size() ? events_[next_].cycle : kNeverWake;
}

void
FaultInjector::onPerturb(MachineCore &core)
{
    while (next_ < events_.size() &&
           events_[next_].cycle <= core.cycle()) {
        apply(core, events_[next_]);
        ++next_;
    }
}

void
FaultInjector::apply(MachineCore &core, const FaultEvent &e)
{
    switch (e.kind) {
      case FaultKind::RegFlip: {
        const Word old = core.readReg(e.reg);
        core.registers().poke(e.reg, old ^ (Word(1) << e.bit));
        break;
      }
      case FaultKind::CcFlip:
        if (e.fu >= core.numFus())
            return;
        core.condCodes().poke(e.fu, !core.condCodes().read(e.fu));
        break;
      case FaultKind::MemFlip: {
        Memory &mem = core.memory();
        // A flip aimed at a device window or past the end of memory
        // hits no RAM cell; the event is dropped, not redirected.
        if (e.addr >= mem.size() || mem.inDeviceWindow(e.addr))
            return;
        mem.poke(e.addr, mem.peek(e.addr) ^ (Word(1) << e.bit));
        break;
      }
      case FaultKind::StuckSync:
        // A VLIW has no SS bus to disturb.
        if (core.mode() != Mode::Ximd || e.fu >= core.numFus())
            return;
        core.forceSync(e.fu, e.stuck, core.cycle() + e.duration);
        break;
      case FaultKind::IoDelay:
        for (IoDevice *dev : core.memory().attachedDevices()) {
            if (auto *port = dynamic_cast<ScriptedInputPort *>(dev))
                port->delayPending(e.delay);
        }
        break;
    }
    ++injected_;
    log_.push_back(e.describe());
}

} // namespace ximd::snapshot
