/**
 * @file
 * Classic dataflow over each instruction stream: definedness of
 * registers and condition-code bits, plus same-column liveness.
 *
 * The global register file makes cross-stream dataflow undecidable in
 * general (two free-running streams interleave arbitrarily), so the
 * analysis splits the problem the way the architecture does:
 *
 *  - Along one FU's own column the control-flow graph is exact, so we
 *    run a *must-be-defined* forward analysis (intersection over
 *    paths, gen = this column's writes). A register is must-defined
 *    at (row, fu) when every path of FU `fu` from row 0 writes it
 *    first.
 *  - Writes performed by *other* columns are folded in at the entry
 *    as assumed-defined: the analysis never reasons about cross-
 *    stream ordering, so it never reports a register another stream
 *    provably writes (conservative: no false positives from
 *    interleaving, at the cost of missing cross-stream use-before-
 *    def bugs).
 *  - CC bits are exact per column: CCk is written only by compares
 *    executed on FU k (section 2.2), so for a branch on its own CC
 *    the must-analysis is precise, including the registered-CC
 *    timing: a compare's definition propagates to the row's
 *    *successors*, never into its own row — a branch in the same
 *    parcel reads the beginning-of-cycle value (verified against the
 *    paper's Figure 10, cycles 0->1 and 8->9). For a branch on
 *    another FU's CC only existence of a reachable compare on that
 *    column is required.
 *
 * Liveness is a backward may-analysis per column, used to spot dead
 * writes. Registers read by other columns or carrying a symbolic name
 * (observable program outputs) are treated as live everywhere /
 * live-out at exits.
 */

#ifndef XIMD_ANALYSIS_DATAFLOW_HH
#define XIMD_ANALYSIS_DATAFLOW_HH

#include <bitset>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/diagnostics.hh"
#include "isa/program.hh"

namespace ximd::analysis {

/** Register bitset (one bit per global register). */
using RegSet = std::bitset<kNumRegisters>;

/** CC bitset (one bit per FU). */
using CcSet = std::bitset<kMaxFus>;

/** Per-stream dataflow facts, indexed by row. */
struct StreamDataflow
{
    /** Registers must-defined at entry to each row. */
    std::vector<RegSet> regIn;
    /** CC bits must-defined at entry to each row. */
    std::vector<CcSet> ccIn;
    /** Registers live at entry to each row (same-column uses). */
    std::vector<RegSet> liveIn;
    /** Registers live at exit of each row. */
    std::vector<RegSet> liveOut;
};

/** Whole-program dataflow summary. */
struct DataflowResult
{
    std::vector<StreamDataflow> streams; ///< One per FU.

    RegSet everWritten; ///< Written by any executable parcel.
    RegSet everRead;    ///< Read by any executable parcel.
    RegSet initialized; ///< Set by a Program regInit request.
    CcSet ccEverSet;    ///< CCk set by a reachable compare on FU k.

    /** Registers each column reads (executable parcels only). */
    std::vector<RegSet> readBy;
    /** Registers each column writes (executable parcels only). */
    std::vector<RegSet> writtenBy;
};

/** Run the analyses; @p cfg must come from buildCfg(@p prog). */
DataflowResult runDataflow(const Program &prog, const ProgramCfg &cfg);

/**
 * Dataflow diagnostics:
 *  - error   ReadUninit: a register read that no initializer and no
 *    write anywhere in the program covers (warning when only *some*
 *    path misses the write — registers power up as zero, so the
 *    value is deterministic, merely dubious);
 *  - error   BadCcIndex: branch condition names CC >= width;
 *  - error   CcNeverSet: branch on a CC that no reachable compare on
 *    the owning column can have set on some path;
 *  - error   CcSameCycleRead: the special case where the only
 *    candidate compare shares the branch's row — the classic
 *    registered-CC race;
 *  - warning WriteNeverRead: an unnamed register written but never
 *    read by any stream;
 *  - warning DeadWrite: a write overwritten on every path before any
 *    same-column read (only for registers private to one column).
 */
void checkDataflow(const Program &prog, const ProgramCfg &cfg,
                   const DataflowResult &df, DiagnosticList &diags);

} // namespace ximd::analysis

#endif // XIMD_ANALYSIS_DATAFLOW_HH
