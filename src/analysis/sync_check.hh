/**
 * @file
 * Cross-stream checks: write-port conflicts, sync-mask sanity, and
 * deadlock detection over the cooperative SS protocol.
 *
 * The XIMD synchronization contract (sections 2.2, 3.3) is pure
 * software: an FU busy-waits on a branch whose condition reads other
 * FUs' SS fields, and every FU *chooses* what it drives on the bus
 * each cycle. Three ways a program can violate the contract are
 * decidable per column and checked here:
 *
 *  1. Same-cycle structural conflicts. Two FUs that execute the same
 *     instruction row simultaneously and both write one register (or
 *     both store to one statically-known address) hit the undefined
 *     write-port race of section 2.2 — the simulator faults on it at
 *     run time. Statically, two parcels in the *same row* whose FUs
 *     can both reach that row are flagged. (Conservative: distinct
 *     streams that share a row number but can never coincide in time
 *     are still flagged; in compiler-emitted layouts a shared row
 *     means a shared tile, i.e. lockstep execution.)
 *
 *  2. Unsatisfiable waits. A wait on SSk == DONE can only ever
 *     complete if FU k has a reachable parcel that drives DONE or a
 *     reachable halt (a halted FU reads DONE on the bus — see
 *     sync_bus.hh; this is also why a barrier over a *provably
 *     halted* FU is satisfiable, not a deadlock). If FU k can do
 *     neither, the wait never completes. A busy-wait self-loop on
 *     such a condition is a guaranteed deadlock; a non-looping
 *     branch merely has a dead taken-path (warning). The precise
 *     special case: an ALL-sync self-loop whose own FU is in the
 *     mask while the spin parcel drives BUSY vetoes its own barrier
 *     forever.
 *
 *  3. Cyclic waits. FU a busy-waits for FU b's DONE while driving
 *     BUSY, and b can only reach a DONE-driving parcel after its own
 *     BUSY-driving wait on a (directly or through a longer chain):
 *     nobody ever signals, nobody ever advances. Detected as a cycle
 *     in a wait-for graph whose edge a -> b exists when a has a
 *     reachable BUSY spin waiting on b and *every* DONE point of b
 *     lies behind some BUSY spin of b. (Conservative: assumes the
 *     spinning configurations can coincide in time.)
 *
 * Mask hygiene mirrors the SyncBus run-time guards: a mask that
 * selects no existing FU panics the simulator (error); an explicit
 * mask naming FUs beyond the machine width is silently trimmed by
 * the bus (warning). The all-ones default mask means "every FU" and
 * is exempt. FU masks are 32-bit — see the static_assert on kMaxFus
 * in support/types.hh.
 */

#ifndef XIMD_ANALYSIS_SYNC_CHECK_HH
#define XIMD_ANALYSIS_SYNC_CHECK_HH

#include "analysis/cfg.hh"
#include "analysis/diagnostics.hh"
#include "isa/program.hh"

namespace ximd::analysis {

/** Run every cross-stream check, appending findings to @p diags. */
void checkSync(const Program &prog, const ProgramCfg &cfg,
               DiagnosticList &diags);

} // namespace ximd::analysis

#endif // XIMD_ANALYSIS_SYNC_CHECK_HH
