#include "analysis/diagnostics.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace ximd::analysis {

std::string_view
checkName(Check c)
{
    switch (c) {
      case Check::BadBranchTarget:     return "bad-branch-target";
      case Check::UnreachableParcel:   return "unreachable-parcel";
      case Check::BadCcIndex:          return "bad-cc-index";
      case Check::ReadUninit:          return "read-uninit";
      case Check::CcNeverSet:          return "cc-never-set";
      case Check::CcSameCycleRead:     return "cc-same-cycle-read";
      case Check::WriteNeverRead:      return "write-never-read";
      case Check::DeadWrite:           return "dead-write";
      case Check::BadSsIndex:          return "bad-ss-index";
      case Check::BadSyncMask:         return "bad-sync-mask";
      case Check::EmptySyncMask:       return "empty-sync-mask";
      case Check::RegWriteConflict:    return "reg-write-conflict";
      case Check::MemWriteConflict:    return "mem-write-conflict";
      case Check::UnsatisfiableWait:   return "unsatisfiable-wait";
      case Check::SelfDeadlock:        return "deadlock";
      case Check::CrossStreamDeadlock: return "deadlock";
      case Check::MalformedDataOp:     return "malformed-data-op";
      case Check::RegRace:             return "reg-race";
      case Check::MemRace:             return "mem-race";
      case Check::MemMaybeRace:        return "mem-maybe-race";
      case Check::CcRace:              return "cc-race";
      case Check::LostSignal:          return "lost-signal";
      case Check::UnboundedWait:       return "unbounded-wait";
      case Check::RaceBudget:          return "race-budget";
      case Check::AsmParse:            return "asm-parse";
      case Check::LoadFailed:          return "load-failed";
      case Check::RunFailed:           return "run-failed";
    }
    panic("checkName: bad check id ", static_cast<int>(c));
}

void
DiagnosticList::error(Check c, InstAddr row, int fu, std::string msg)
{
    diags_.push_back(
        {Severity::Error, c, row, fu, std::move(msg)});
}

void
DiagnosticList::warning(Check c, InstAddr row, int fu, std::string msg)
{
    diags_.push_back(
        {Severity::Warning, c, row, fu, std::move(msg)});
}

void
DiagnosticList::merge(const DiagnosticList &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

void
DiagnosticList::attachLines(const Program &prog)
{
    for (Diagnostic &d : diags_) {
        if (d.check == Check::AsmParse ||
            d.check == Check::LoadFailed ||
            d.check == Check::RunFailed)
            continue;
        if (d.line == 0)
            d.line = prog.rowLine(d.row);
        if (d.otherLine == 0 && d.otherRow >= 0)
            d.otherLine =
                prog.rowLine(static_cast<InstAddr>(d.otherRow));
    }
}

std::size_t
DiagnosticList::errorCount() const
{
    return static_cast<std::size_t>(
        std::count_if(diags_.begin(), diags_.end(),
                      [](const Diagnostic &d) { return d.isError(); }));
}

std::size_t
DiagnosticList::warningCount() const
{
    return diags_.size() - errorCount();
}

void
DiagnosticList::sort()
{
    std::stable_sort(
        diags_.begin(), diags_.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            if (a.row != b.row)
                return a.row < b.row;
            if (a.fu != b.fu)
                return a.fu < b.fu;
            return a.severity == Severity::Error &&
                   b.severity == Severity::Warning;
        });
}

std::string
DiagnosticList::formatOne(const Diagnostic &d, const Program *prog)
{
    std::ostringstream os;
    os << (d.isError() ? "error" : "warning") << '['
       << checkName(d.check) << ']';
    // Front-end diagnostics are anchored to source lines (or nothing),
    // not instruction rows.
    if (d.check == Check::LoadFailed || d.check == Check::RunFailed) {
        os << ": " << d.message;
        return os.str();
    }
    if (d.check == Check::AsmParse) {
        os << " line " << d.row << ": " << d.message;
        return os.str();
    }
    os << " row " << d.row;
    if (prog) {
        if (auto label = prog->labelAt(d.row))
            os << " (" << *label << ")";
    }
    if (d.fu >= 0)
        os << " fu" << d.fu;
    if (d.line > 0)
        os << " line " << d.line;
    os << ": " << d.message;
    if (d.otherRow >= 0) {
        os << " [other site: row " << d.otherRow;
        if (prog) {
            if (auto label =
                    prog->labelAt(static_cast<InstAddr>(d.otherRow)))
                os << " (" << *label << ")";
        }
        if (d.otherFu >= 0)
            os << " fu" << d.otherFu;
        if (d.otherLine > 0)
            os << " line " << d.otherLine;
        os << "]";
    }
    return os.str();
}

std::string
DiagnosticList::formatted(const Program *prog) const
{
    std::string out;
    for (const Diagnostic &d : diags_) {
        out += formatOne(d, prog);
        out += '\n';
    }
    return out;
}

std::string
DiagnosticList::summary() const
{
    const std::size_t e = errorCount();
    const std::size_t w = warningCount();
    if (e == 0 && w == 0)
        return "";
    std::ostringstream os;
    if (e > 0)
        os << e << (e == 1 ? " error" : " errors");
    if (w > 0) {
        if (e > 0)
            os << ", ";
        os << w << (w == 1 ? " warning" : " warnings");
    }
    return os.str();
}

} // namespace ximd::analysis
