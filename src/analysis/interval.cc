#include "analysis/interval.hh"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "support/logging.hh"

namespace ximd::analysis {

namespace {

constexpr std::int64_t kI32Min =
    std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kI32Max =
    std::numeric_limits<std::int32_t>::max();

/** Join or widen loops converge within this many visits per row. */
constexpr unsigned kWidenAfter = 64;

std::int64_t
clampLo(std::int64_t v)
{
    return std::max(v, -Interval::kInf);
}

std::int64_t
clampHi(std::int64_t v)
{
    return std::min(v, Interval::kInf);
}

} // namespace

Interval
Interval::join(const Interval &a, const Interval &b)
{
    if (a.isEmpty())
        return b;
    if (b.isEmpty())
        return a;
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval
Interval::widen(const Interval &prev, const Interval &next)
{
    if (prev.isEmpty())
        return next;
    if (next.isEmpty())
        return prev;
    Interval w = prev;
    if (next.lo < prev.lo)
        w.lo = -kInf;
    if (next.hi > prev.hi)
        w.hi = kInf;
    return w;
}

bool
Interval::overlaps(const Interval &a, const Interval &b)
{
    if (a.isEmpty() || b.isEmpty())
        return false;
    return a.lo <= b.hi && b.lo <= a.hi;
}

Interval
Interval::add(const Interval &o) const
{
    if (isEmpty() || o.isEmpty())
        return empty();
    const std::int64_t lo2 = clampLo(lo + o.lo);
    const std::int64_t hi2 = clampHi(hi + o.hi);
    // The machine wraps mod 2^32: any result outside int32 may alias
    // anything, so the sum is only exact when it provably fits.
    if (lo2 < kI32Min || hi2 > kI32Max)
        return top();
    return {lo2, hi2};
}

Interval
Interval::sub(const Interval &o) const
{
    if (isEmpty() || o.isEmpty())
        return empty();
    const std::int64_t lo2 = clampLo(lo - o.hi);
    const std::int64_t hi2 = clampHi(hi - o.lo);
    if (lo2 < kI32Min || hi2 > kI32Max)
        return top();
    return {lo2, hi2};
}

std::string
Interval::toString() const
{
    if (isEmpty())
        return "empty";
    if (isTop())
        return "top";
    std::ostringstream os;
    os << (lo <= -kInf ? std::string("(-inf")
                       : "[" + std::to_string(lo));
    os << ",";
    os << (hi >= kInf ? std::string("+inf)")
                      : std::to_string(hi) + "]");
    return os.str();
}

std::vector<char>
externallyWrittenRegs(const Program &prog, const ProgramCfg &cfg,
                      const std::vector<FuId> &members)
{
    std::vector<char> inClass(prog.width(), 0);
    for (FuId m : members)
        inClass[m] = 1;
    std::vector<char> ext(kNumRegisters, 0);
    for (FuId fu = 0; fu < prog.width(); ++fu) {
        if (inClass[fu])
            continue;
        for (InstAddr r = 0; r < prog.size(); ++r) {
            if (!cfg.executable(r, fu))
                continue;
            const DataOp &d = prog.parcel(r, fu).data;
            if (d.hasDest())
                ext[d.dest] = 1;
        }
    }
    return ext;
}

ClassIntervalAnalysis::ClassIntervalAnalysis(
    const Program &prog, const StreamCfg &cfg,
    std::vector<FuId> members, std::vector<char> externalReg)
    : prog_(prog), cfg_(cfg), members_(std::move(members)),
      externalReg_(std::move(externalReg))
{
    const InstAddr rows = prog_.size();
    in_.assign(rows, State(kNumRegisters, Interval::empty()));
    factsIn_.assign(rows, std::vector<CcFact>(members_.size()));
    visited_.assign(rows, 0);
    visits_.assign(rows, 0);
    run();
}

bool
ClassIntervalAnalysis::visited(InstAddr row) const
{
    return row < visited_.size() && visited_[row];
}

Interval
ClassIntervalAnalysis::regAt(InstAddr row, RegId r) const
{
    if (!visited(row) || r >= kNumRegisters)
        return Interval::top();
    return in_[row][r];
}

Interval
ClassIntervalAnalysis::evalIn(const State &st,
                              const Operand &op) const
{
    if (op.isImm())
        return Interval::single(static_cast<SWord>(op.immValue()));
    if (op.isReg()) {
        if (op.regId() >= kNumRegisters ||
            externalReg_[op.regId()])
            return Interval::top();
        return st[op.regId()];
    }
    return Interval::top();
}

Interval
ClassIntervalAnalysis::evalOperand(InstAddr row,
                                   const Operand &op) const
{
    if (op.isImm())
        return Interval::single(static_cast<SWord>(op.immValue()));
    if (!visited(row))
        return Interval::top();
    return evalIn(in_[row], op);
}

Interval
ClassIntervalAnalysis::loadAddr(InstAddr row, FuId fu) const
{
    const DataOp &d = prog_.parcel(row, fu).data;
    return evalOperand(row, d.a).add(evalOperand(row, d.b));
}

Interval
ClassIntervalAnalysis::storeAddr(InstAddr row, FuId fu) const
{
    return evalOperand(row, prog_.parcel(row, fu).data.b);
}

Interval
ClassIntervalAnalysis::storeValue(InstAddr row, FuId fu) const
{
    return evalOperand(row, prog_.parcel(row, fu).data.a);
}

std::optional<bool>
ClassIntervalAnalysis::compareOutcome(InstAddr row, FuId fu) const
{
    if (!visited(row))
        return std::nullopt;
    const DataOp &d = prog_.parcel(row, fu).data;
    if (opInfo(d.op).cls != OpClass::IntCompare)
        return std::nullopt;
    const Interval a = evalIn(in_[row], d.a);
    const Interval b = evalIn(in_[row], d.b);
    if (a.isEmpty() || b.isEmpty())
        return std::nullopt;
    switch (d.op) {
      case Opcode::Eq:
        if (a.isSingle() && b.isSingle())
            return a.lo == b.lo;
        if (!Interval::overlaps(a, b))
            return false;
        return std::nullopt;
      case Opcode::Ne:
        if (a.isSingle() && b.isSingle())
            return a.lo != b.lo;
        if (!Interval::overlaps(a, b))
            return true;
        return std::nullopt;
      case Opcode::Lt:
        if (a.hi < b.lo)
            return true;
        if (a.lo >= b.hi)
            return false;
        return std::nullopt;
      case Opcode::Le:
        if (a.hi <= b.lo)
            return true;
        if (a.lo > b.hi)
            return false;
        return std::nullopt;
      case Opcode::Gt:
        if (a.lo > b.hi)
            return true;
        if (a.hi <= b.lo)
            return false;
        return std::nullopt;
      case Opcode::Ge:
        if (a.lo >= b.hi)
            return true;
        if (a.hi < b.lo)
            return false;
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

ClassIntervalAnalysis::State
ClassIntervalAnalysis::transfer(InstAddr row, const State &in) const
{
    State out = in;
    // All members execute the row in the same cycle; reads observe
    // beginning-of-cycle state, so evaluate every write from `in`
    // before applying any of them.
    std::vector<std::pair<RegId, Interval>> writes;
    for (FuId m : members_) {
        const DataOp &d = prog_.parcel(row, m).data;
        if (!d.hasDest())
            continue;
        Interval v = Interval::top();
        switch (d.op) {
          case Opcode::Iadd:
            v = evalIn(in, d.a).add(evalIn(in, d.b));
            break;
          case Opcode::Isub:
            v = evalIn(in, d.a).sub(evalIn(in, d.b));
            break;
          case Opcode::Mov:
            v = evalIn(in, d.a);
            break;
          case Opcode::Ineg:
            v = Interval::single(0).sub(evalIn(in, d.a));
            break;
          case Opcode::Imult: {
            const Interval a = evalIn(in, d.a);
            const Interval b = evalIn(in, d.b);
            if (a.isSingle() && b.isSingle()) {
                const std::int64_t p = a.lo * b.lo;
                if (p >= kI32Min && p <= kI32Max)
                    v = Interval::single(p);
            }
            break;
          }
          default:
            // Loads, divisions, logic/shift ops, float ops: ⊤.
            break;
        }
        writes.emplace_back(d.dest, v);
    }
    std::vector<char> seen(kNumRegisters, 0);
    for (const auto &[dest, v] : writes) {
        if (externalReg_[dest])
            continue; // pinned to ⊤
        out[dest] = seen[dest] ? Interval::join(out[dest], v) : v;
        seen[dest] = 1;
    }
    return out;
}

namespace {

/** Trim @p v to the values where `regLeft ? v op K : K op v` is
 *  @p outcome. Endpoint-precision for Eq/Ne keeps counter loops
 *  (`iadd r,#1,r` + `eq r,#N`) exactly bounded. */
Interval
refine(Interval v, Opcode op, bool regLeft, std::int64_t k,
       bool outcome)
{
    // Normalize to a relation with the register on the left.
    if (!regLeft) {
        switch (op) {
          case Opcode::Lt: op = Opcode::Gt; break;
          case Opcode::Le: op = Opcode::Ge; break;
          case Opcode::Gt: op = Opcode::Lt; break;
          case Opcode::Ge: op = Opcode::Le; break;
          default: break; // Eq/Ne symmetric
        }
    }
    // Normalize to the true outcome.
    if (!outcome) {
        switch (op) {
          case Opcode::Eq: op = Opcode::Ne; break;
          case Opcode::Ne: op = Opcode::Eq; break;
          case Opcode::Lt: op = Opcode::Ge; break;
          case Opcode::Le: op = Opcode::Gt; break;
          case Opcode::Gt: op = Opcode::Le; break;
          case Opcode::Ge: op = Opcode::Lt; break;
          default: break;
        }
    }
    switch (op) {
      case Opcode::Eq:
        if (!v.contains(k))
            return Interval::empty();
        return Interval::single(k);
      case Opcode::Ne:
        if (v.isSingle() && v.lo == k)
            return Interval::empty();
        if (v.lo == k)
            v.lo = k + 1;
        if (v.hi == k)
            v.hi = k - 1;
        return v;
      case Opcode::Lt:
        v.hi = std::min(v.hi, k - 1);
        return v;
      case Opcode::Le:
        v.hi = std::min(v.hi, k);
        return v;
      case Opcode::Gt:
        v.lo = std::max(v.lo, k + 1);
        return v;
      case Opcode::Ge:
        v.lo = std::max(v.lo, k);
        return v;
      default:
        return v;
    }
}

} // namespace

bool
ClassIntervalAnalysis::joinInto(InstAddr row, const State &state,
                                const std::vector<CcFact> &facts)
{
    if (!visited_[row]) {
        visited_[row] = 1;
        in_[row] = state;
        factsIn_[row] = facts;
        visits_[row] = 1;
        return true;
    }
    bool changed = false;
    const bool widen = visits_[row] > kWidenAfter;
    for (RegId r = 0; r < kNumRegisters; ++r) {
        const Interval merged =
            widen ? Interval::widen(in_[row][r],
                                    Interval::join(in_[row][r],
                                                   state[r]))
                  : Interval::join(in_[row][r], state[r]);
        if (!(merged == in_[row][r])) {
            in_[row][r] = merged;
            changed = true;
        }
    }
    // Facts join by agreement (must-analysis).
    for (std::size_t i = 0; i < members_.size(); ++i) {
        CcFact &cur = factsIn_[row][i];
        if (cur.valid && !(cur == facts[i])) {
            cur = CcFact{};
            changed = true;
        }
    }
    if (changed)
        ++visits_[row];
    return changed;
}

void
ClassIntervalAnalysis::propagate(InstAddr row, const State &out,
                                 std::vector<char> &dirty)
{
    const FuId rep = members_.front();
    const ControlOp &c = prog_.parcel(row, rep).ctrl;

    // Registers written this row (facts about them go stale).
    std::vector<char> wrote(kNumRegisters, 0);
    for (FuId m : members_) {
        const DataOp &d = prog_.parcel(row, m).data;
        if (d.hasDest())
            wrote[d.dest] = 1;
    }

    // Outgoing facts: kill on overwrite, then gen from this row's
    // compares (the new cc commits at end of cycle, so it governs
    // the successors).
    std::vector<CcFact> outFacts = factsIn_[row];
    for (CcFact &f : outFacts)
        if (f.valid &&
            (wrote[f.reg] || (!f.isImm && wrote[f.kreg])))
            f = CcFact{};
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const FuId m = members_[i];
        const DataOp &d = prog_.parcel(row, m).data;
        if (opInfo(d.op).cls != OpClass::IntCompare)
            continue;
        outFacts[i] = CcFact{};
        const bool aReg = d.a.isReg();
        const bool bReg = d.b.isReg();
        CcFact f;
        f.op = d.op;
        if (aReg && d.b.isImm()) {
            f.reg = d.a.regId();
            f.regLeft = true;
            f.isImm = true;
            f.imm = static_cast<SWord>(d.b.immValue());
        } else if (bReg && d.a.isImm()) {
            f.reg = d.b.regId();
            f.regLeft = false;
            f.isImm = true;
            f.imm = static_cast<SWord>(d.a.immValue());
        } else if (aReg && bReg) {
            f.reg = d.a.regId();
            f.regLeft = true;
            f.kreg = d.b.regId();
        } else {
            continue;
        }
        if (f.reg >= kNumRegisters || externalReg_[f.reg] ||
            wrote[f.reg])
            continue;
        if (!f.isImm && (f.kreg >= kNumRegisters ||
                         externalReg_[f.kreg] || wrote[f.kreg]))
            continue;
        f.valid = true;
        outFacts[i] = f;
    }

    // A cc-true branch on a member's fact refines each out-edge.
    const CcFact *guard = nullptr;
    if (c.kind == CondKind::CcTrue) {
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (members_[i] != c.index)
                continue;
            const CcFact &f = factsIn_[row][i];
            // The branch reads the beginning-of-cycle cc, which the
            // incoming fact describes — unless this row just
            // invalidated the compared values.
            if (f.valid && !wrote[f.reg] &&
                (f.isImm || !wrote[f.kreg]))
                guard = &f;
            break;
        }
    }

    auto send = [&](InstAddr succ, std::optional<bool> outcome) {
        if (succ >= prog_.size())
            return;
        if (guard && outcome) {
            std::int64_t k = guard->imm;
            bool haveK = guard->isImm;
            if (!haveK) {
                const Interval ki = out[guard->kreg];
                if (ki.isSingle()) {
                    k = ki.lo;
                    haveK = true;
                }
            }
            if (haveK) {
                State refined = out;
                refined[guard->reg] =
                    refine(out[guard->reg], guard->op,
                           guard->regLeft, k, *outcome);
                if (refined[guard->reg].isEmpty())
                    return; // edge infeasible
                if (joinInto(succ, refined, outFacts))
                    dirty[succ] = 1;
                return;
            }
        }
        if (joinInto(succ, out, outFacts))
            dirty[succ] = 1;
    };

    switch (c.kind) {
      case CondKind::Halt:
        break;
      case CondKind::Always:
        send(c.t1, std::nullopt);
        break;
      case CondKind::CcTrue:
        send(c.t1, true);
        if (c.t2 != c.t1)
            send(c.t2, false);
        break;
      default:
        send(c.t1, std::nullopt);
        if (c.t2 != c.t1)
            send(c.t2, std::nullopt);
        break;
    }
}

void
ClassIntervalAnalysis::run()
{
    if (prog_.empty())
        return;

    // Entry state: initializers as singletons, everything else 0
    // (the register file zero-fills), externals ⊤.
    State entry(kNumRegisters, Interval::single(0));
    for (const auto &[reg, value] : prog_.regInit())
        entry[reg] = Interval::single(static_cast<SWord>(value));
    for (RegId r = 0; r < kNumRegisters; ++r)
        if (externalReg_[r])
            entry[r] = Interval::top();

    visited_[0] = 1;
    in_[0] = entry;
    visits_[0] = 1;

    std::deque<InstAddr> work;
    std::vector<char> queued(prog_.size(), 0);
    work.push_back(0);
    queued[0] = 1;
    while (!work.empty()) {
        const InstAddr row = work.front();
        work.pop_front();
        queued[row] = 0;
        if (!cfg_.isReachable(row))
            continue;
        std::vector<char> dirty(prog_.size(), 0);
        const State out = transfer(row, in_[row]);
        propagate(row, out, dirty);
        for (InstAddr s = 0; s < prog_.size(); ++s)
            if (dirty[s] && !queued[s]) {
                work.push_back(s);
                queued[s] = 1;
            }
    }
}

} // namespace ximd::analysis
