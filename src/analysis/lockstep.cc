#include "analysis/lockstep.hh"

namespace ximd::analysis {

namespace {

/**
 * Do columns @p a and @p b execute the same trajectory? True when
 * their control ops agree at every row @p a can reach; identical
 * control on the reachable closure forces identical reachable sets,
 * so the check is symmetric despite being phrased from a's side.
 */
bool
lockstepEquivalent(const Program &prog, const ProgramCfg &cfg,
                   FuId a, FuId b)
{
    const StreamCfg &sa = cfg.streams[a];
    for (InstAddr r = 0; r < prog.size(); ++r) {
        if (!sa.isReachable(r))
            continue;
        const Parcel &pa = prog.parcel(r, a);
        const Parcel &pb = prog.parcel(r, b);
        if (!(pa.ctrl == pb.ctrl))
            return false;
    }
    return true;
}

} // namespace

LockstepClasses
computeLockstepClasses(const Program &prog, const ProgramCfg &cfg)
{
    LockstepClasses out;
    const FuId width = prog.width();
    out.classOf.assign(width, -1);
    for (FuId fu = 0; fu < width; ++fu) {
        for (std::size_t c = 0; c < out.members.size(); ++c) {
            if (lockstepEquivalent(prog, cfg, out.members[c].front(),
                                   fu)) {
                out.classOf[fu] = static_cast<int>(c);
                out.members[c].push_back(fu);
                break;
            }
        }
        if (out.classOf[fu] < 0) {
            out.classOf[fu] = static_cast<int>(out.members.size());
            out.members.push_back({fu});
        }
    }
    return out;
}

} // namespace ximd::analysis
