#include "analysis/race.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/interval.hh"
#include "analysis/lockstep.hh"
#include "analysis/verify.hh"
#include "support/logging.hh"

namespace ximd::analysis {

namespace {

// ---------------------------------------------------------------- model

enum class Loc : std::uint8_t { Reg, Mem, Cc };

/** One shared-state access by one member of a lockstep class. */
struct Access
{
    InstAddr row = 0;
    FuId fu = 0;
    Loc loc = Loc::Reg;
    bool isWrite = false;
    int id = -1;     ///< Register / cc index; unused for Mem.
    Interval addr;   ///< Mem only.
    Interval value;  ///< Store value (flag-handshake detection).
};

/** Everything the engine precomputes about one lockstep class. */
struct ClassInfo
{
    std::vector<FuId> members;
    std::vector<char> isMember;               // by FuId
    const StreamCfg *cfg = nullptr;           // representative column
    std::unique_ptr<ClassIntervalAnalysis> intervals;
    std::vector<Access> accesses;

    /** reachPlus[a][b]: b reachable from a in >= 1 step. */
    std::vector<std::vector<char>> reachPlus;

    /**
     * futureDone[m][row]: starting at @p row (0 or more steps) the
     * class can reach a row where members[m] drives SS DONE — via its
     * sync field or by halting. False means: once here, that signal
     * is lost forever.
     */
    std::vector<std::vector<char>> futureDone;

    /**
     * prunedTrue[row]: the row is a CcTrue branch on a member's own
     * cc and every reachable compare that sets it is provably false
     * (cc starts false), so the true edge can never be taken.
     */
    std::vector<char> prunedTrue;
};

/** A recognized flag-handshake: gate a poll's exit on the store. */
struct FlagGuard
{
    bool pollOnB = false;     ///< Poll in class B (else in A).
    InstAddr pollRow = 0;     ///< The CcTrue branch row.
    InstAddr exitTarget = 0;  ///< Successor removed until allowed.
    InstAddr loadRow = 0;     ///< The flag load (covered site).
    FuId loadFu = 0;
    InstAddr storeRow = 0;    ///< The flag store (covered site).
    FuId storeFu = 0;
    /** allowed[partnerRow] (+sentinel for HALT): exit reachable. */
    std::vector<char> allowed;
};

/** Order of a co-reachable partner row relative to an access row. */
enum Bucket : unsigned {
    kSame = 1,      ///< Partner is at the access row (same cycle).
    kBefore = 2,    ///< Access strictly in the partner's future.
    kNoFuture = 4,  ///< Access can no longer occur (incl. HALT).
    kLoop = 8,      ///< Access both behind and ahead (loop).
};

struct OrderClass
{
    unsigned buckets = 0;
    std::set<InstAddr> loopRows;

    bool ambiguous() const
    {
        unsigned n = 0;
        for (unsigned b : {kSame, kBefore, kNoFuture, kLoop})
            n += (buckets & b) ? 1 : 0;
        return n >= 2 || loopRows.size() >= 2;
    }
    bool sameOnly() const { return buckets == kSame; }
    bool hasSame() const { return (buckets & kSame) != 0; }
};

// ------------------------------------------------------------- helpers

std::uint32_t
effectiveMask(std::uint32_t mask, FuId width)
{
    const std::uint32_t full =
        width >= 32 ? ~0u : ((1u << width) - 1u);
    return mask & full;
}

/** Collect every shared-state access of @p info's class. */
void
collectAccesses(const Program &prog, ClassInfo &info)
{
    const FuId rep = info.members.front();
    for (InstAddr r = 0; r < prog.size(); ++r) {
        if (!info.cfg->isReachable(r))
            continue;
        for (FuId m : info.members) {
            const DataOp &d = prog.parcel(r, m).data;
            const OpClass cls = opInfo(d.op).cls;
            for (const Operand *op : {&d.a, &d.b}) {
                if (op->isReg())
                    info.accesses.push_back({r, m, Loc::Reg, false,
                                             op->regId(), {}, {}});
            }
            if (d.hasDest())
                info.accesses.push_back(
                    {r, m, Loc::Reg, true, d.dest, {}, {}});
            if (cls == OpClass::MemLoad)
                info.accesses.push_back(
                    {r, m, Loc::Mem, false, -1,
                     info.intervals->loadAddr(r, m), {}});
            if (cls == OpClass::MemStore)
                info.accesses.push_back(
                    {r, m, Loc::Mem, true, -1,
                     info.intervals->storeAddr(r, m),
                     info.intervals->storeValue(r, m)});
            if (setsCondCode(d.op))
                info.accesses.push_back({r, m, Loc::Cc, true,
                                         static_cast<int>(m),
                                         {},
                                         {}});
        }
        // The branch condition is one read of cc[index], identical in
        // every member column; record it once for the class.
        const ControlOp &c = prog.parcel(r, rep).ctrl;
        if (c.kind == CondKind::CcTrue)
            info.accesses.push_back(
                {r, rep, Loc::Cc, false, c.index, {}, {}});
    }
}

/** reachPlus via one forward BFS per reachable row. */
void
computeReachPlus(const Program &prog, ClassInfo &info)
{
    const InstAddr rows = prog.size();
    info.reachPlus.assign(rows, std::vector<char>(rows, 0));
    for (InstAddr from = 0; from < rows; ++from) {
        if (!info.cfg->isReachable(from))
            continue;
        std::vector<char> &seen = info.reachPlus[from];
        std::deque<InstAddr> work(info.cfg->succs[from].begin(),
                                  info.cfg->succs[from].end());
        while (!work.empty()) {
            const InstAddr r = work.front();
            work.pop_front();
            if (r >= rows || seen[r])
                continue;
            seen[r] = 1;
            for (InstAddr s : info.cfg->succs[r])
                work.push_back(s);
        }
    }
}

/** futureDone per member: backward closure from DONE-driving rows. */
void
computeFutureDone(const Program &prog, ClassInfo &info)
{
    const InstAddr rows = prog.size();
    info.futureDone.assign(info.members.size(),
                           std::vector<char>(rows, 0));
    for (std::size_t mi = 0; mi < info.members.size(); ++mi) {
        const FuId m = info.members[mi];
        std::vector<char> &fd = info.futureDone[mi];
        std::deque<InstAddr> work;
        for (InstAddr r = 0; r < rows; ++r) {
            if (!info.cfg->isReachable(r))
                continue;
            const Parcel &p = prog.parcel(r, m);
            if (p.sync == SyncVal::Done || p.ctrl.isHalt()) {
                fd[r] = 1;
                work.push_back(r);
            }
        }
        while (!work.empty()) {
            const InstAddr r = work.front();
            work.pop_front();
            for (InstAddr pr : info.cfg->preds[r]) {
                if (!fd[pr] && info.cfg->isReachable(pr)) {
                    fd[pr] = 1;
                    work.push_back(pr);
                }
            }
        }
    }
}

/** Prove CcTrue edges never taken (own cc, all compares false). */
void
computePrunedTrue(const Program &prog, ClassInfo &info)
{
    const InstAddr rows = prog.size();
    const FuId rep = info.members.front();
    info.prunedTrue.assign(rows, 0);
    for (InstAddr r = 0; r < rows; ++r) {
        if (!info.cfg->isReachable(r))
            continue;
        const ControlOp &c = prog.parcel(r, rep).ctrl;
        if (c.kind != CondKind::CcTrue || c.t1 == c.t2)
            continue;
        const FuId k = c.index;
        if (k >= info.isMember.size() || !info.isMember[k])
            continue; // cross-class cc: the product decides.
        bool allFalse = true;
        for (InstAddr q = 0; q < rows && allFalse; ++q) {
            if (!info.cfg->isReachable(q))
                continue;
            if (!setsCondCode(prog.parcel(q, k).data.op))
                continue;
            const auto out = info.intervals->compareOutcome(q, k);
            if (!out.has_value() || *out)
                allFalse = false;
        }
        // With no reachable compare at all, cc starts (and stays)
        // false, so the edge is equally dead.
        info.prunedTrue[r] = allFalse ? 1 : 0;
    }
}

/**
 * Unbounded busy-waits: a pruned branch that strands the class — it
 * can no longer reach a halt, though the pruned edge would get there.
 */
void
checkUnboundedWaits(const Program &prog, const ClassInfo &info,
                    DiagnosticList &diags)
{
    const InstAddr rows = prog.size();
    const FuId rep = info.members.front();
    auto haltClosure = [&](bool pruned) {
        std::vector<char> can(rows, 0);
        bool changed = true;
        while (changed) {
            changed = false;
            for (InstAddr r = 0; r < rows; ++r) {
                if (can[r] || !info.cfg->isReachable(r))
                    continue;
                const ControlOp &c = prog.parcel(r, rep).ctrl;
                bool ok = c.isHalt();
                for (InstAddr s : info.cfg->succs[r]) {
                    if (pruned && info.prunedTrue[r] && s == c.t1 &&
                        c.t1 != c.t2)
                        continue;
                    ok = ok || (s < rows && can[s]);
                }
                if (ok) {
                    can[r] = 1;
                    changed = true;
                }
            }
        }
        return can;
    };
    const std::vector<char> canPruned = haltClosure(true);
    const std::vector<char> canFull = haltClosure(false);
    for (InstAddr r = 0; r < rows; ++r) {
        if (!info.prunedTrue[r] || !info.cfg->isReachable(r))
            continue;
        if (canPruned[r] || !canFull[r])
            continue;
        const ControlOp &c = prog.parcel(r, rep).ctrl;
        std::ostringstream os;
        os << "unbounded busy-wait: cc" << int{c.index}
           << " is provably always false here, so the exit to row "
           << c.t1 << " can never be taken";
        diags.error(Check::UnboundedWait, r, rep, os.str());
    }
}

// --------------------------------------------------- flag handshakes

/** Singleton value of @p iv, when it has one. */
std::optional<std::int64_t>
singleValue(const Interval &iv)
{
    if (!iv.isEmpty() && iv.isSingle())
        return iv.lo;
    return std::nullopt;
}

/**
 * Recognize flag polls in @p poller gated by a store in @p storer:
 * row p loads a fixed word F, row p+1 compares it against zero, row
 * p+2 loops on the zero outcome. If exactly one reachable store in
 * the whole program can touch F, it writes a non-zero constant, it
 * lives in @p storer, and F is not initialized non-zero, then the
 * poll cannot exit before the store: gate the exit on the partner
 * being past its store row.
 */
void
findFlagGuards(const Program &prog,
               const std::vector<ClassInfo> &classes,
               std::size_t storerIdx, std::size_t pollerIdx,
               bool pollOnB, std::vector<FlagGuard> &out)
{
    const ClassInfo &storer = classes[storerIdx];
    const ClassInfo &poller = classes[pollerIdx];
    const InstAddr rows = prog.size();
    const FuId rep = poller.members.front();
    for (InstAddr p = 0; p + 2 < rows; ++p) {
        if (!poller.cfg->isReachable(p))
            continue;
        if (poller.cfg->succs[p] !=
                std::vector<InstAddr>{static_cast<InstAddr>(p + 1)} ||
            poller.cfg->succs[p + 1] !=
                std::vector<InstAddr>{static_cast<InstAddr>(p + 2)})
            continue;
        for (FuId f : poller.members) {
            const DataOp &ld = prog.parcel(p, f).data;
            if (opInfo(ld.op).cls != OpClass::MemLoad)
                continue;
            const auto flagAddr =
                singleValue(poller.intervals->loadAddr(p, f));
            if (!flagAddr)
                continue;
            const DataOp &cmp = prog.parcel(p + 1, f).data;
            if (opInfo(cmp.op).cls != OpClass::IntCompare ||
                (cmp.op != Opcode::Eq && cmp.op != Opcode::Ne))
                continue;
            const bool regZero =
                (cmp.a.isReg() && cmp.a.regId() == ld.dest &&
                 cmp.b.isImm() && cmp.b.immValue() == 0) ||
                (cmp.b.isReg() && cmp.b.regId() == ld.dest &&
                 cmp.a.isImm() && cmp.a.immValue() == 0);
            if (!regZero)
                continue;
            const ControlOp &br = prog.parcel(p + 2, rep).ctrl;
            if (br.kind != CondKind::CcTrue || br.index != f)
                continue;
            // Exit must be the flag != 0 outcome.
            InstAddr exit = 0;
            if (cmp.op == Opcode::Eq && br.t1 == p)
                exit = br.t2;
            else if (cmp.op == Opcode::Ne && br.t2 == p)
                exit = br.t1;
            else
                continue;
            // The unique store to F, anywhere in the program.
            int nStores = 0;
            InstAddr storeRow = 0;
            FuId storeFu = 0;
            bool inStorer = false;
            bool nonZero = false;
            for (const ClassInfo &ci : classes) {
                for (const Access &a : ci.accesses) {
                    if (a.loc != Loc::Mem || !a.isWrite)
                        continue;
                    if (!a.addr.contains(*flagAddr))
                        continue;
                    ++nStores;
                    storeRow = a.row;
                    storeFu = a.fu;
                    inStorer = (&ci == &storer);
                    const auto v = singleValue(a.value);
                    nonZero = v.has_value() && *v != 0;
                }
            }
            if (nStores != 1 || !inStorer || !nonZero)
                continue;
            bool initNonZero = false;
            for (const auto &[ad, v] : prog.memInit())
                if (static_cast<std::int64_t>(ad) ==
                        *flagAddr &&
                    v != 0)
                    initNonZero = true;
            if (initNonZero)
                continue;
            FlagGuard g;
            g.pollOnB = pollOnB;
            g.pollRow = static_cast<InstAddr>(p + 2);
            g.exitTarget = exit;
            g.loadRow = p;
            g.loadFu = f;
            g.storeRow = storeRow;
            g.storeFu = storeFu;
            g.allowed.assign(rows + 1, 0);
            g.allowed[rows] = 1; // partner halted: store is behind us
            for (InstAddr ra = 0; ra < rows; ++ra)
                if (storer.cfg->isReachable(ra) &&
                    storer.reachPlus[storeRow][ra])
                    g.allowed[ra] = 1;
            out.push_back(std::move(g));
        }
    }
}

// ------------------------------------------------- the product machine

/** Explores the synchronous product of one class pair. */
class PairProduct
{
  public:
    PairProduct(const Program &prog, const ClassInfo &a,
                const ClassInfo &b, std::vector<FlagGuard> guards)
        : prog_(prog), a_(a), b_(b), guards_(std::move(guards)),
          rows_(prog.size()), halt_(prog.size()),
          visited_((rows_ + 1) * (rows_ + 1), 0)
    {
    }

    /**
     * BFS from (0,0). Returns false when @p budget ran out (remaining
     * states unexplored); @p budget is decremented as states are
     * visited. Lost-signal findings land in @p diags.
     */
    bool
    explore(std::size_t &budget, DiagnosticList &diags)
    {
        std::deque<std::pair<InstAddr, InstAddr>> work;
        visit(0, 0, work);
        while (!work.empty()) {
            if (budget == 0)
                return false;
            const auto [ra, rb] = work.front();
            work.pop_front();
            --budget;
            ++statesVisited_;
            checkLostSignal(ra, rb, diags);
            for (const auto &[na, nb] : successors(ra, rb))
                visit(na, nb, work);
        }
        return true;
    }

    bool seen(InstAddr ra, InstAddr rb) const
    {
        return visited_[ra * (rows_ + 1) + rb] != 0;
    }

    InstAddr halt() const { return halt_; }
    std::size_t statesVisited() const { return statesVisited_; }

  private:
    void
    visit(InstAddr ra, InstAddr rb,
          std::deque<std::pair<InstAddr, InstAddr>> &work)
    {
        char &v = visited_[ra * (rows_ + 1) + rb];
        if (!v) {
            v = 1;
            work.emplace_back(ra, rb);
        }
    }

    /** Tri-state SS value of FU @p j at product state (ra, rb). */
    std::optional<bool>
    syncDone(FuId j, InstAddr ra, InstAddr rb) const
    {
        auto on = [&](const ClassInfo &ci, InstAddr r) {
            return r == halt_ ||
                   prog_.parcel(r, j).sync == SyncVal::Done;
        };
        if (j < a_.isMember.size() && a_.isMember[j])
            return on(a_, ra);
        if (j < b_.isMember.size() && b_.isMember[j])
            return on(b_, rb);
        return std::nullopt; // third party: unknown
    }

    /** Tri-state outcome of a sync condition at (ra, rb). */
    std::optional<bool>
    syncCond(const ControlOp &c, InstAddr ra, InstAddr rb) const
    {
        if (c.kind == CondKind::SyncDone)
            return syncDone(c.index, ra, rb);
        const std::uint32_t mask =
            effectiveMask(c.mask, prog_.width());
        bool allKnown = true;
        bool anyDone = false;
        bool anyBusy = false;
        for (FuId j = 0; j < prog_.width(); ++j) {
            if (!(mask & (1u << j)))
                continue;
            const auto v = syncDone(j, ra, rb);
            if (!v.has_value())
                allKnown = false;
            else if (*v)
                anyDone = true;
            else
                anyBusy = true;
        }
        if (c.kind == CondKind::AllSync) {
            if (anyBusy)
                return false;
            if (allKnown)
                return true;
            return std::nullopt;
        }
        // AnySync.
        if (anyDone)
            return true;
        if (allKnown)
            return false;
        return std::nullopt;
    }

    /** Do the two sides branch on the same predicate this cycle? */
    bool
    correlated(const ControlOp &ca, const ControlOp &cb) const
    {
        if (!ca.isConditional() || ca.kind != cb.kind)
            return false;
        switch (ca.kind) {
          case CondKind::CcTrue:
          case CondKind::SyncDone:
            return ca.index == cb.index;
          case CondKind::AllSync:
          case CondKind::AnySync:
            return effectiveMask(ca.mask, prog_.width()) ==
                   effectiveMask(cb.mask, prog_.width());
          default:
            return false;
        }
    }

    /** One side's successor rows, partner pinned at @p rp. */
    std::vector<InstAddr>
    sideSuccs(const ClassInfo &side, InstAddr rs, InstAddr ra,
              InstAddr rb) const
    {
        if (rs == halt_)
            return {halt_};
        const ControlOp &c =
            prog_.parcel(rs, side.members.front()).ctrl;
        switch (c.kind) {
          case CondKind::Always:
            return {c.t1};
          case CondKind::Halt:
            return {halt_};
          case CondKind::CcTrue:
            if (side.prunedTrue[rs])
                return {c.t2};
            return c.t1 == c.t2
                       ? std::vector<InstAddr>{c.t1}
                       : std::vector<InstAddr>{c.t1, c.t2};
          default: {
            const auto v = syncCond(c, ra, rb);
            if (v.has_value())
                return {*v ? c.t1 : c.t2};
            return c.t1 == c.t2
                       ? std::vector<InstAddr>{c.t1}
                       : std::vector<InstAddr>{c.t1, c.t2};
          }
        }
    }

    std::vector<std::pair<InstAddr, InstAddr>>
    successors(InstAddr ra, InstAddr rb) const
    {
        std::vector<std::pair<InstAddr, InstAddr>> out;
        if (ra == halt_ && rb == halt_)
            return out;
        bool joint = false;
        if (ra != halt_ && rb != halt_) {
            const ControlOp &ca =
                prog_.parcel(ra, a_.members.front()).ctrl;
            const ControlOp &cb =
                prog_.parcel(rb, b_.members.front()).ctrl;
            if (correlated(ca, cb)) {
                joint = true;
                std::optional<bool> v;
                if (ca.kind == CondKind::CcTrue) {
                    if (a_.prunedTrue[ra] || b_.prunedTrue[rb])
                        v = false;
                } else {
                    v = syncCond(ca, ra, rb);
                }
                if (v.has_value())
                    out.emplace_back(*v ? ca.t1 : ca.t2,
                                     *v ? cb.t1 : cb.t2);
                else {
                    out.emplace_back(ca.t1, cb.t1);
                    out.emplace_back(ca.t2, cb.t2);
                }
            }
        }
        if (!joint) {
            for (InstAddr na : sideSuccs(a_, ra, ra, rb))
                for (InstAddr nb : sideSuccs(b_, rb, ra, rb))
                    out.emplace_back(na, nb);
        }
        // Flag handshakes: the poll cannot exit before the store.
        out.erase(
            std::remove_if(
                out.begin(), out.end(),
                [&](const std::pair<InstAddr, InstAddr> &s) {
                    for (const FlagGuard &g : guards_) {
                        const InstAddr here = g.pollOnB ? rb : ra;
                        const InstAddr next =
                            g.pollOnB ? s.second : s.first;
                        const InstAddr partner =
                            g.pollOnB ? ra : rb;
                        if (here == g.pollRow &&
                            next == g.exitTarget &&
                            !g.allowed[partner])
                            return true;
                    }
                    return false;
                }),
            out.end());
        // Dedup (cross products repeat targets).
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    }

    /**
     * A spin wait whose producer can no longer signal: at (ra, rb)
     * one side sits on `if ss… exit | here` while every masked FU it
     * needs has provably no DONE in its future.
     */
    void
    checkLostSignal(InstAddr ra, InstAddr rb, DiagnosticList &diags)
    {
        auto check = [&](const ClassInfo &waiter,
                         const ClassInfo &other, InstAddr rw,
                         InstAddr ro) {
            if (rw == halt_)
                return;
            const ControlOp &c =
                prog_.parcel(rw, waiter.members.front()).ctrl;
            if (c.t2 != rw || c.t1 == c.t2)
                return;
            auto dead = [&](FuId j) -> std::optional<bool> {
                // Is j's DONE provably unreachable from here on?
                // (Waiter-class members are base-checker territory;
                // third parties belong to a different pair.)
                for (std::size_t mi = 0; mi < other.members.size();
                     ++mi)
                    if (other.members[mi] == j)
                        return ro != halt_ &&
                               !other.futureDone[mi][ro];
                return std::nullopt;
            };
            auto report = [&](FuId j) {
                if (!lostReported_
                         .insert({rw, waiter.members.front(), j})
                         .second)
                    return;
                std::ostringstream os;
                os << "lost signal: this wait needs fu"
                   << static_cast<int>(j)
                   << " to signal DONE, but from row "
                   << (ro == halt_ ? std::string("halt")
                                   : std::to_string(ro))
                   << " that stream can never drive DONE again";
                Diagnostic d{
                    Severity::Error, Check::LostSignal, rw,
                    static_cast<int>(waiter.members.front()),
                    os.str()};
                if (ro != halt_) {
                    d.otherRow = static_cast<int>(ro);
                    d.otherFu = j;
                }
                diags.add(std::move(d));
            };
            if (c.kind == CondKind::SyncDone) {
                if (dead(c.index).value_or(false))
                    report(c.index);
            } else if (c.kind == CondKind::AllSync) {
                const std::uint32_t mask =
                    effectiveMask(c.mask, prog_.width());
                for (FuId j = 0; j < prog_.width(); ++j)
                    if ((mask & (1u << j)) &&
                        dead(j).value_or(false)) {
                        report(j);
                        break;
                    }
            } else if (c.kind == CondKind::AnySync) {
                const std::uint32_t mask =
                    effectiveMask(c.mask, prog_.width());
                bool allDead = true;
                FuId sample = 0;
                for (FuId j = 0; j < prog_.width() && allDead;
                     ++j) {
                    if (!(mask & (1u << j)))
                        continue;
                    if (waiter.isMember[j]) {
                        // Stuck => the waiter loops here forever,
                        // driving whatever this row drives.
                        allDead = prog_.parcel(rw, j).sync ==
                                  SyncVal::Busy;
                    } else {
                        const auto d = dead(j);
                        allDead = d.has_value() && *d;
                        sample = j;
                    }
                }
                if (allDead)
                    report(sample);
            }
        };
        check(a_, b_, ra, rb);
        check(b_, a_, rb, ra);
    }

    const Program &prog_;
    const ClassInfo &a_;
    const ClassInfo &b_;
    std::vector<FlagGuard> guards_;
    InstAddr rows_;
    InstAddr halt_;
    std::vector<char> visited_;
    std::size_t statesVisited_ = 0;
    std::set<std::tuple<InstAddr, FuId, FuId>> lostReported_;
};

// ------------------------------------------------------ pair analysis

bool
conflicting(const Access &x, const Access &y)
{
    if (x.loc != y.loc || (!x.isWrite && !y.isWrite))
        return false;
    if (x.loc == Loc::Mem)
        return Interval::overlaps(x.addr, y.addr);
    return x.id == y.id;
}

std::string
locName(const Access &a, const Program &prog)
{
    std::ostringstream os;
    if (a.loc == Loc::Reg) {
        os << "r" << a.id;
        if (auto n = prog.regName(static_cast<RegId>(a.id)))
            os << " (" << *n << ")";
    } else if (a.loc == Loc::Cc) {
        os << "cc" << a.id;
    } else {
        os << "M" << a.addr.toString();
    }
    return os.str();
}

/** Classify every partner row co-reachable with @p anchor's row. */
OrderClass
classifyOrder(const PairProduct &prod, const ClassInfo &otherSide,
              bool anchorOnB, InstAddr anchorRow, InstAddr otherRow,
              InstAddr rows)
{
    OrderClass oc;
    for (InstAddr rp = 0; rp <= rows; ++rp) {
        const bool seen = anchorOnB ? prod.seen(rp, anchorRow)
                                    : prod.seen(anchorRow, rp);
        if (!seen)
            continue;
        if (rp == rows) {
            oc.buckets |= kNoFuture;
            continue;
        }
        if (rp == otherRow) {
            oc.buckets |= kSame;
            continue;
        }
        const bool fwd = otherSide.reachPlus[rp][otherRow];
        const bool back = otherSide.reachPlus[otherRow][rp];
        if (fwd && back) {
            oc.buckets |= kLoop;
            oc.loopRows.insert(rp);
        } else if (fwd) {
            oc.buckets |= kBefore;
        } else {
            oc.buckets |= kNoFuture;
        }
    }
    return oc;
}

} // namespace

// ------------------------------------------------------------ driver

RaceReport
analyzeRaces(const Program &prog, const RaceOptions &opts)
{
    RaceReport report;
    if (prog.empty())
        return report;

    // The model assumes a structurally valid program (targets in
    // range, no same-row write conflicts, no self-deadlocks); run the
    // base verifier first and stand down if it already objects.
    AnalyzeOptions base;
    base.warnings = false;
    if (analyze(prog, base).errorCount() > 0) {
        report.baseErrors = true;
        return report;
    }

    const ProgramCfg cfg = buildCfg(prog);
    const LockstepClasses part = computeLockstepClasses(prog, cfg);
    report.classes = part.count();

    std::vector<ClassInfo> classes(part.count());
    for (std::size_t c = 0; c < part.count(); ++c) {
        ClassInfo &ci = classes[c];
        ci.members = part.members[c];
        ci.isMember.assign(prog.width(), 0);
        for (FuId m : ci.members)
            ci.isMember[m] = 1;
        ci.cfg = &cfg.streams[ci.members.front()];
        ci.intervals = std::make_unique<ClassIntervalAnalysis>(
            prog, *ci.cfg, ci.members,
            externallyWrittenRegs(prog, cfg, ci.members));
        collectAccesses(prog, ci);
        computeReachPlus(prog, ci);
        computeFutureDone(prog, ci);
        computePrunedTrue(prog, ci);
        checkUnboundedWaits(prog, ci, report.diags);
    }

    const InstAddr rows = prog.size();
    std::size_t budget = opts.stateBudget;
    std::set<std::tuple<int, InstAddr, int, InstAddr, int>> emitted;
    std::set<std::tuple<InstAddr, int, InstAddr, int>> coveredSet;

    auto cover = [&](InstAddr ra, FuId fa, InstAddr rb, FuId fb) {
        if (coveredSet.insert({ra, fa, rb, fb}).second)
            report.covered.push_back(
                {ra, static_cast<int>(fa), rb,
                 static_cast<int>(fb)});
    };

    for (std::size_t cA = 0; cA < classes.size(); ++cA) {
        for (std::size_t cB = cA + 1; cB < classes.size(); ++cB) {
            const ClassInfo &A = classes[cA];
            const ClassInfo &B = classes[cB];
            ++report.pairsAnalyzed;

            std::vector<FlagGuard> guards;
            findFlagGuards(prog, classes, cA, cB, true, guards);
            findFlagGuards(prog, classes, cB, cA, false, guards);

            // Candidate conflicting pairs (x in A, y in B), minus
            // pairs a recognized handshake orders by construction.
            std::vector<std::pair<const Access *, const Access *>>
                cand;
            for (const Access &x : A.accesses) {
                for (const Access &y : B.accesses) {
                    if (!conflicting(x, y))
                        continue;
                    bool idiom = false;
                    for (const FlagGuard &g : guards) {
                        const Access &st = g.pollOnB ? x : y;
                        const Access &lo = g.pollOnB ? y : x;
                        if (st.row == g.storeRow &&
                            st.fu == g.storeFu &&
                            lo.row == g.loadRow &&
                            lo.fu == g.loadFu) {
                            idiom = true;
                            cover(x.row, x.fu, y.row, y.fu);
                        }
                    }
                    if (!idiom)
                        cand.emplace_back(&x, &y);
                }
            }

            PairProduct prod(prog, A, B, std::move(guards));
            const bool complete =
                prod.explore(budget, report.diags);
            report.productStates += prod.statesVisited();
            if (!complete) {
                report.budgetExceeded = true;
                for (const auto &[x, y] : cand)
                    cover(x->row, x->fu, y->row, y->fu);
                continue;
            }

            for (const auto &[x, y] : cand) {
                const OrderClass onY = classifyOrder(
                    prod, A, true, y->row, x->row, rows);
                const OrderClass onX = classifyOrder(
                    prod, B, false, x->row, y->row, rows);
                if (onY.buckets == 0)
                    continue; // sites never co-exist

                // The read's perspective decides what it can observe;
                // for write/write both perspectives must agree.
                bool race = false;
                bool simultaneous = false;
                if (x->isWrite && y->isWrite) {
                    race = onY.ambiguous() || onX.ambiguous();
                    simultaneous =
                        !race && (onY.hasSame() || onX.hasSame());
                } else {
                    const OrderClass &onRead =
                        x->isWrite ? onY : onX;
                    race = onRead.ambiguous();
                    if (!race && onRead.hasSame()) {
                        // Deterministic same-cycle read-old: benign,
                        // but the dynamic observer will see it.
                        cover(x->row, x->fu, y->row, y->fu);
                        continue;
                    }
                }
                if (!race && !simultaneous)
                    continue;

                Check check = Check::RegRace;
                Severity sev = Severity::Error;
                if (x->loc == Loc::Cc)
                    check = Check::CcRace;
                else if (x->loc == Loc::Mem) {
                    const bool exact = x->addr.isSingle() &&
                                       y->addr.isSingle();
                    check =
                        exact ? Check::MemRace : Check::MemMaybeRace;
                    sev = exact ? Severity::Error
                                : Severity::Warning;
                }
                if (sev == Severity::Warning && !opts.warnings) {
                    cover(x->row, x->fu, y->row, y->fu);
                    continue;
                }
                if (!emitted
                         .insert({static_cast<int>(check), x->row,
                                  static_cast<int>(x->fu), y->row,
                                  static_cast<int>(y->fu)})
                         .second)
                    continue;
                std::ostringstream os;
                os << (simultaneous ? "simultaneous writes to "
                                    : "cross-stream race on ")
                   << locName(*x, prog) << ": "
                   << (x->isWrite ? "write" : "read") << " by fu"
                   << static_cast<int>(x->fu) << " is unordered with "
                   << (y->isWrite ? "write" : "read") << " by fu"
                   << static_cast<int>(y->fu);
                Diagnostic d{sev, check, x->row,
                             static_cast<int>(x->fu), os.str()};
                d.otherRow = static_cast<int>(y->row);
                d.otherFu = static_cast<int>(y->fu);
                report.diags.add(std::move(d));
            }
        }
    }

    if (report.budgetExceeded && opts.warnings)
        report.diags.warning(
            Check::RaceBudget, 0, -1,
            "product-state budget exhausted; unexplored access pairs "
            "were conservatively marked covered, not verified");

    report.diags.attachLines(prog);
    report.diags.sort();
    return report;
}

} // namespace ximd::analysis
