#include "analysis/sync_check.hh"

#include <array>
#include <map>
#include <vector>

#include "support/logging.hh"

namespace ximd::analysis {

namespace {

/** One sync-conditioned branch that can execute. */
struct Wait
{
    InstAddr row = 0;
    FuId fu = 0;
    CondKind kind = CondKind::SyncDone;
    std::uint32_t waitMask = 0; ///< Existing FUs the condition reads.
    bool spin = false;          ///< Not-taken target loops back here.
    SyncVal ownSync = SyncVal::Busy; ///< SS this parcel drives.
};

} // namespace

void
checkSync(const Program &prog, const ProgramCfg &cfg,
          DiagnosticList &diags)
{
    const InstAddr n = prog.size();
    const FuId width = prog.width();
    const std::uint32_t existing = fuMaskAll(width);

    // Rows at which each FU drives DONE on the bus: a reachable
    // parcel with a DONE sync field, or a reachable halt (halted FUs
    // read DONE — sync_bus.hh).
    std::vector<std::vector<InstAddr>> doneRows(width);
    for (FuId fu = 0; fu < width; ++fu)
        for (InstAddr r = 0; r < n; ++r)
            if (cfg.executable(r, fu)) {
                const Parcel &p = prog.parcel(r, fu);
                if (p.ctrl.isHalt() || p.sync == SyncVal::Done)
                    doneRows[fu].push_back(r);
            }
    auto hasDone = [&](FuId fu) { return !doneRows[fu].empty(); };

    // Collect executable sync waits; diagnose indices and masks.
    std::vector<Wait> waits;
    for (InstAddr r = 0; r < n; ++r) {
        for (FuId fu = 0; fu < width; ++fu) {
            if (!cfg.executable(r, fu))
                continue;
            const Parcel &p = prog.parcel(r, fu);
            const ControlOp &c = p.ctrl;

            Wait w;
            w.row = r;
            w.fu = fu;
            w.kind = c.kind;
            w.spin = c.isConditional() && c.t2 == r;
            w.ownSync = p.sync;

            switch (c.kind) {
              case CondKind::SyncDone:
                if (c.index >= width) {
                    diags.error(
                        Check::BadSsIndex, r, static_cast<int>(fu),
                        cat("branch on ss", +c.index,
                            " but the machine has only ", width,
                            " FUs (ss0..ss", width - 1, ")"));
                    continue;
                }
                w.waitMask = 1u << c.index;
                break;
              case CondKind::AllSync:
              case CondKind::AnySync: {
                std::uint32_t m = c.mask;
                if (m != ~0u && (m & ~existing) != 0)
                    diags.warning(
                        Check::BadSyncMask, r, static_cast<int>(fu),
                        cat("sync mask selects FUs beyond the "
                            "machine width ", width,
                            "; the extra bits are ignored"));
                m &= existing;
                if (m == 0) {
                    diags.error(
                        Check::EmptySyncMask, r, static_cast<int>(fu),
                        "sync mask selects no existing FU; the "
                        "simulator rejects this barrier");
                    continue;
                }
                w.waitMask = m;
                break;
              }
              default:
                continue;
            }
            waits.push_back(w);
        }
    }

    // Unsatisfiable waits and self-vetoed barriers.
    for (const Wait &w : waits) {
        const int fu = static_cast<int>(w.fu);
        const bool selfInMask = (w.waitMask >> w.fu) & 1u;

        if (w.kind == CondKind::AnySync) {
            // ANY completes if any partner can signal, or this FU's
            // own parcel drives DONE and is in the mask.
            bool satisfiable = selfInMask && w.ownSync == SyncVal::Done;
            for (FuId k = 0; k < width && !satisfiable; ++k)
                if (k != w.fu && ((w.waitMask >> k) & 1u) &&
                    hasDone(k))
                    satisfiable = true;
            if (!satisfiable) {
                const auto msg =
                    cat("any-sync over a mask in which no FU ever "
                        "drives DONE or halts");
                if (w.spin)
                    diags.error(Check::UnsatisfiableWait, w.row, fu,
                                cat("deadlock: FU", w.fu,
                                    " busy-waits here forever — ",
                                    msg));
                else
                    diags.warning(Check::UnsatisfiableWait, w.row, fu,
                                  cat(msg, "; the taken path is "
                                           "unreachable"));
            }
            continue;
        }

        // SyncDone and AllSync: every waited-on FU must be able to
        // signal. The FU's own bit is special: while it waits here
        // it drives this parcel's sync field.
        if (selfInMask && w.ownSync == SyncVal::Busy && w.spin) {
            diags.error(
                Check::SelfDeadlock, w.row, fu,
                cat("deadlock: FU", w.fu, " busy-waits at row ",
                    w.row, " for ",
                    w.kind == CondKind::AllSync
                        ? cat("ALL(SS)==DONE with itself in the mask")
                        : cat("its own ss", w.fu, "==DONE"),
                    " but drives BUSY while waiting; the barrier "
                    "can never complete (drive DONE on the spin "
                    "parcel, as the paper's barriers do)"));
        }
        for (FuId k = 0; k < width; ++k) {
            if (k == w.fu || !((w.waitMask >> k) & 1u) || hasDone(k))
                continue;
            if (w.spin)
                diags.error(
                    Check::UnsatisfiableWait, w.row, fu,
                    cat("deadlock: FU", w.fu, " busy-waits at row ",
                        w.row, " for ss", k, "==DONE, but FU", k,
                        " never drives DONE and never halts"));
            else
                diags.warning(
                    Check::UnsatisfiableWait, w.row, fu,
                    cat("waits for ss", k, "==DONE, but FU", k,
                        " never drives DONE and never halts; the "
                        "taken path is unreachable"));
        }
    }

    // Cyclic waits. Edge a -> b: a has a reachable BUSY-driving spin
    // waiting on b, and every DONE point of b is behind some
    // BUSY-driving spin of b (b cannot signal without first being
    // released itself).
    std::vector<std::vector<InstAddr>> busySpins(width);
    for (const Wait &w : waits)
        if (w.spin && w.ownSync == SyncVal::Busy &&
            (w.kind == CondKind::SyncDone ||
             w.kind == CondKind::AllSync))
            busySpins[w.fu].push_back(w.row);

    std::vector<char> guarded(width, 0);
    for (FuId fu = 0; fu < width; ++fu) {
        if (busySpins[fu].empty() || n == 0)
            continue;
        // Reachability from row 0 that refuses to pass a BUSY spin.
        std::vector<char> blocked(n, 0);
        for (InstAddr r : busySpins[fu])
            blocked[r] = 1;
        std::vector<char> seen(n, 0);
        std::vector<InstAddr> work{0};
        seen[0] = 1;
        while (!work.empty()) {
            const InstAddr r = work.back();
            work.pop_back();
            if (blocked[r])
                continue; // May enter a spin, never assume release.
            for (InstAddr t : cfg.streams[fu].succs[r])
                if (!seen[t]) {
                    seen[t] = 1;
                    work.push_back(t);
                }
        }
        bool unguardedDone = false;
        for (InstAddr r : doneRows[fu])
            if (seen[r] && !blocked[r])
                unguardedDone = true;
        guarded[fu] = !unguardedDone;
    }

    std::map<std::pair<FuId, FuId>, InstAddr> edges;
    for (const Wait &w : waits) {
        if (!w.spin || w.ownSync != SyncVal::Busy)
            continue;
        if (w.kind != CondKind::SyncDone &&
            w.kind != CondKind::AllSync)
            continue;
        for (FuId k = 0; k < width; ++k)
            if (k != w.fu && ((w.waitMask >> k) & 1u) && guarded[k])
                edges.try_emplace({w.fu, k}, w.row);
    }

    // Transitive closure over <= 32 nodes, then report one finding
    // per strongly connected set of mutually-waiting FUs.
    std::array<std::uint32_t, kMaxFus> reach{};
    for (const auto &[e, row] : edges)
        reach[e.first] |= 1u << e.second;
    for (FuId mid = 0; mid < width; ++mid)
        for (FuId f = 0; f < width; ++f)
            if ((reach[f] >> mid) & 1u)
                reach[f] |= reach[mid];

    std::uint32_t reported = 0;
    for (FuId f = 0; f < width; ++f) {
        if (!((reach[f] >> f) & 1u) || ((reported >> f) & 1u))
            continue;
        // Every FU mutually reachable with f waits, transitively, on
        // itself; report the whole component once.
        const auto inScc = [&](FuId k) {
            return k == f ||
                   (((reach[f] >> k) & 1u) && ((reach[k] >> f) & 1u));
        };
        for (FuId k = 0; k < width; ++k)
            if (inScc(k))
                reported |= 1u << k;

        // Extract one concrete cycle: walk inside the component
        // until a node repeats, then describe the repeated segment.
        std::vector<FuId> path{f};
        std::vector<InstAddr> spinRow;
        std::vector<int> posOf(width, -1);
        posOf[f] = 0;
        std::size_t cycleStart = 0;
        for (;;) {
            const FuId cur = path.back();
            FuId next = cur;
            for (FuId k = 0; k < width; ++k) {
                auto it = edges.find({cur, k});
                if (it != edges.end() && inScc(k)) {
                    next = k;
                    spinRow.push_back(it->second);
                    break;
                }
            }
            XIMD_ASSERT(next != cur, "deadlock cycle walk stuck");
            if (posOf[next] >= 0) {
                cycleStart = static_cast<std::size_t>(posOf[next]);
                break;
            }
            posOf[next] = static_cast<int>(path.size());
            path.push_back(next);
        }

        std::string desc;
        for (std::size_t i = cycleStart; i < path.size(); ++i) {
            const FuId waiter = path[i];
            const FuId waited = i + 1 < path.size()
                                    ? path[i + 1]
                                    : path[cycleStart];
            if (!desc.empty())
                desc += "; ";
            desc += cat("FU", waiter, " busy-waits at row ",
                        spinRow[i], " for FU", waited);
        }
        diags.error(
            Check::CrossStreamDeadlock, spinRow[cycleStart],
            static_cast<int>(path[cycleStart]),
            cat("cross-stream deadlock: ", desc,
                " — every FU in the cycle drives BUSY while "
                "waiting, so none of the waited-for sync signals "
                "can ever read DONE"));
    }

    // Same-cycle structural conflicts within one row.
    for (InstAddr r = 0; r < n; ++r) {
        for (FuId f1 = 0; f1 < width; ++f1) {
            if (!cfg.executable(r, f1))
                continue;
            const DataOp &d1 = prog.parcel(r, f1).data;
            for (FuId f2 = f1 + 1; f2 < width; ++f2) {
                if (!cfg.executable(r, f2))
                    continue;
                const DataOp &d2 = prog.parcel(r, f2).data;
                if (d1.hasDest() && d2.hasDest() &&
                    d1.dest == d2.dest)
                    diags.error(
                        Check::RegWriteConflict, r, -1,
                        cat("FU", f1, " and FU", f2,
                            " both write r", d1.dest,
                            " in this row; executed in the same "
                            "cycle this is an undefined register "
                            "write-port conflict (the simulator "
                            "faults)"));
                if (d1.op == Opcode::Store &&
                    d2.op == Opcode::Store && d1.b.isImm() &&
                    d2.b.isImm() &&
                    d1.b.immValue() == d2.b.immValue())
                    diags.error(
                        Check::MemWriteConflict, r, -1,
                        cat("FU", f1, " and FU", f2,
                            " both store to address ",
                            d1.b.immValue(),
                            " in this row; executed in the same "
                            "cycle this is an undefined memory "
                            "write conflict (the simulator "
                            "faults)"));
            }
        }
    }
}

} // namespace ximd::analysis
