/**
 * @file
 * The static program verifier: one entry point over every pass.
 *
 * analyze() never throws on a malformed program — it turns what it
 * finds into diagnostics, so tools can report *all* problems at once
 * instead of dying on the first. verify() is the strict form used as
 * a machine-checkable contract for compiler-emitted code: it throws
 * FatalError when any error-severity finding exists.
 *
 * Pass ordering (each pass feeds the next):
 *   1. structural  — parcel shapes (malformed data ops);
 *   2. cfg         — per-FU control-flow graphs, target validation,
 *                    unreachable-parcel detection;
 *   3. dataflow    — must-defined registers/CCs, liveness;
 *   4. sync_check  — cross-stream conflicts and deadlocks.
 */

#ifndef XIMD_ANALYSIS_VERIFY_HH
#define XIMD_ANALYSIS_VERIFY_HH

#include "analysis/diagnostics.hh"
#include "isa/program.hh"

namespace ximd::analysis {

/** Analysis knobs. */
struct AnalyzeOptions
{
    /** Emit warning-severity findings (errors are always emitted). */
    bool warnings = true;
};

/** Run every pass over @p prog; findings come back sorted. */
DiagnosticList analyze(const Program &prog,
                       const AnalyzeOptions &opts = {});

/**
 * Throw FatalError (message = every error finding) when @p prog has
 * error-severity findings; warnings are ignored.
 */
void verify(const Program &prog);

/**
 * Self-check hook for compiler-emitted programs: verify() in debug
 * builds, no-op when NDEBUG is defined. Called from the scheduler's
 * code generator and thread composer so every Program they produce
 * is checked against the contract the moment it is built.
 */
void debugVerify(const Program &prog);

} // namespace ximd::analysis

#endif // XIMD_ANALYSIS_VERIFY_HH
