/**
 * @file
 * Lockstep-class partition of a program's functional units.
 *
 * Two FUs whose columns carry the *same* control operation at every
 * row either of them can reach execute identical PC trajectories
 * forever: both sequencers start at row 0, and identical condition
 * fields read the same globally-visible CC / SS-bus values, so every
 * branch resolves the same way in both columns (induction over
 * cycles). The race engine exploits this: accesses inside one
 * lockstep class are deterministically interleaved and can never race
 * with each other, so the cross-stream analysis only has to reason
 * about *pairs of classes* — e.g. the differential-fuzz corpus (all
 * eight columns identical) collapses to a single class and is
 * trivially race-free by construction.
 */

#ifndef XIMD_ANALYSIS_LOCKSTEP_HH
#define XIMD_ANALYSIS_LOCKSTEP_HH

#include <vector>

#include "analysis/cfg.hh"
#include "isa/program.hh"

namespace ximd::analysis {

/** The partition: classOf[fu] indexes members[]. */
struct LockstepClasses
{
    std::vector<int> classOf;          ///< Per FU, its class index.
    std::vector<std::vector<FuId>> members; ///< Per class, its FUs.

    std::size_t count() const { return members.size(); }

    /** Lowest-numbered FU of class @p c (its CFG represents all). */
    FuId representative(int c) const { return members[c].front(); }

    bool sameClass(FuId a, FuId b) const
    {
        return classOf[a] == classOf[b];
    }
};

/**
 * Partition @p prog's FUs into lockstep classes. Two FUs share a
 * class iff their control operations agree on every row reachable by
 * the first (which then implies the reachable sets coincide).
 */
LockstepClasses computeLockstepClasses(const Program &prog,
                                       const ProgramCfg &cfg);

} // namespace ximd::analysis

#endif // XIMD_ANALYSIS_LOCKSTEP_HH
