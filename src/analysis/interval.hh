/**
 * @file
 * A small value-range (interval) domain over one lockstep class.
 *
 * The race engine needs three things from values: bounds on load and
 * store address expressions (to separate a B[] store from a marker
 * store, or a flag word from a data window), proof that a busy-wait's
 * exit compare is constant, and proof that a flag store writes a
 * non-zero word. A classic interval domain over the signed 32-bit
 * interpretation of register words delivers all three.
 *
 * Soundness decisions:
 *  - all members of a lockstep class execute the same row each cycle
 *    and reads observe beginning-of-cycle register state, so one
 *    analysis per class over merged columns is exact for in-class
 *    dataflow;
 *  - any register also written outside the class is pinned to ⊤ — a
 *    foreign write can land between any two in-class cycles;
 *  - integer add/sub widen to ⊤ whenever the result might leave the
 *    int32 range (the machine wraps mod 2^32); loads produce ⊤;
 *  - loop counters stay finite through *guard refinement*: a compare
 *    `op r, #K` (or against a never-written register with a singleton
 *    range) establishes a fact about cc of the comparing FU, and a
 *    later `if cc` branch trims r's interval on each out-edge. This
 *    keeps `iadd r,#1,r` / `eq r,#N` loops exactly bounded without
 *    needing a widening threshold to converge first.
 */

#ifndef XIMD_ANALYSIS_INTERVAL_HH
#define XIMD_ANALYSIS_INTERVAL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "isa/program.hh"

namespace ximd::analysis {

/** A closed interval of int64 values; lo > hi encodes the empty set. */
struct Interval
{
    // ±kInf are the unbounded sentinels; arithmetic never produces
    // values beyond int32, so the gap to the sentinels cannot wrap.
    static constexpr std::int64_t kInf = std::int64_t{1} << 40;

    std::int64_t lo = -kInf;
    std::int64_t hi = kInf;

    static Interval top() { return {}; }
    static Interval empty() { return {1, 0}; }
    static Interval single(std::int64_t v) { return {v, v}; }
    static Interval range(std::int64_t lo, std::int64_t hi)
    {
        return {lo, hi};
    }

    bool isEmpty() const { return lo > hi; }
    bool isTop() const { return lo <= -kInf && hi >= kInf; }
    bool isSingle() const { return lo == hi; }
    bool contains(std::int64_t v) const { return lo <= v && v <= hi; }

    bool operator==(const Interval &o) const
    {
        return (isEmpty() && o.isEmpty()) ||
               (lo == o.lo && hi == o.hi);
    }

    static Interval join(const Interval &a, const Interval &b);
    static Interval widen(const Interval &prev, const Interval &next);
    static bool overlaps(const Interval &a, const Interval &b);

    /** Wrap-sound add/sub: exact when the result fits int32, else ⊤. */
    Interval add(const Interval &o) const;
    Interval sub(const Interval &o) const;

    /** "[3,3]", "[0,7]", "[64,+inf)", "top", "empty". */
    std::string toString() const;
};

/**
 * Forward interval analysis over one lockstep class.
 *
 * Query results describe the state *entering* a row (reads see
 * beginning-of-cycle values). Rows the class cannot reach answer ⊤ /
 * nullopt and report visited() == false.
 */
class ClassIntervalAnalysis
{
  public:
    /**
     * @p externalReg marks registers written by reachable parcels of
     * FUs outside @p members; those stay ⊤ throughout.
     */
    ClassIntervalAnalysis(const Program &prog, const StreamCfg &cfg,
                          std::vector<FuId> members,
                          std::vector<char> externalReg);

    bool visited(InstAddr row) const;

    /** Interval of register @p r entering @p row. */
    Interval regAt(InstAddr row, RegId r) const;

    /** Interval of @p op (reg or imm) entering @p row. */
    Interval evalOperand(InstAddr row, const Operand &op) const;

    /** Address interval of a load at (@p row, @p fu): val(a)+val(b). */
    Interval loadAddr(InstAddr row, FuId fu) const;

    /** Address interval of a store at (@p row, @p fu): val(b). */
    Interval storeAddr(InstAddr row, FuId fu) const;

    /** Value interval of a store at (@p row, @p fu): val(a). */
    Interval storeValue(InstAddr row, FuId fu) const;

    /**
     * Constant outcome of the integer compare at (@p row, @p fu), if
     * its operand intervals decide it; nullopt otherwise (including
     * float compares and unreached rows).
     */
    std::optional<bool> compareOutcome(InstAddr row, FuId fu) const;

  private:
    struct CcFact
    {
        bool valid = false;
        RegId reg = 0;       ///< Refined register.
        Opcode op = Opcode::Eq;
        bool regLeft = true; ///< reg is the compare's first operand.
        bool isImm = false;  ///< Constant side is an immediate.
        std::int64_t imm = 0;
        RegId kreg = 0;      ///< Constant side's register when !isImm.

        bool operator==(const CcFact &o) const
        {
            return valid == o.valid && reg == o.reg && op == o.op &&
                   regLeft == o.regLeft && isImm == o.isImm &&
                   imm == o.imm && kreg == o.kreg;
        }
    };

    using State = std::vector<Interval>; // one per register

    void run();
    State transfer(InstAddr row, const State &in) const;
    void propagate(InstAddr row, const State &out,
                   std::vector<char> &dirty);
    bool joinInto(InstAddr row, const State &state,
                  const std::vector<CcFact> &facts);
    Interval evalIn(const State &st, const Operand &op) const;

    const Program &prog_;
    const StreamCfg &cfg_;
    std::vector<FuId> members_;
    std::vector<char> externalReg_;
    std::vector<State> in_;                      // per row
    std::vector<std::vector<CcFact>> factsIn_;   // per row, per member
    std::vector<char> visited_;
    std::vector<unsigned> visits_;
};

/**
 * Registers written (via a data-op destination) by any reachable
 * parcel of an FU *outside* @p members; indexed by RegId.
 */
std::vector<char> externallyWrittenRegs(const Program &prog,
                                        const ProgramCfg &cfg,
                                        const std::vector<FuId> &members);

} // namespace ximd::analysis

#endif // XIMD_ANALYSIS_INTERVAL_HH
