/**
 * @file
 * Per-FU control-flow graphs over an assembled Program.
 *
 * In an XIMD machine every FU owns a sequencer that walks its own
 * column of the parcel grid (section 2.2), so control flow is a
 * per-column property: the parcel at (row, fu) can only ever execute
 * if FU `fu`'s sequencer can reach `row` from the shared entry row 0.
 *
 * Each column's graph has one node per instruction row. Edges follow
 * the two-target control fields: an unconditional branch contributes
 * {t1}, a conditional branch {t1, t2}, and halt nothing. There is no
 * fall-through in the ISA (no PC incrementer, Figure 8); the
 * assembler materializes textual fall-through as explicit jumps, so
 * the graph needs no implicit edges.
 *
 * Branch targets outside the program are dropped from the graph (and
 * diagnosed by checkCfg) so the remaining passes can run on malformed
 * inputs without faulting.
 */

#ifndef XIMD_ANALYSIS_CFG_HH
#define XIMD_ANALYSIS_CFG_HH

#include <vector>

#include "analysis/diagnostics.hh"
#include "isa/program.hh"

namespace ximd::analysis {

/** Control-flow graph of one FU's instruction stream. */
struct StreamCfg
{
    FuId fu = 0;
    /** Per row: successor rows (0, 1 or 2 entries, deduplicated). */
    std::vector<std::vector<InstAddr>> succs;
    /** Per row: predecessor rows. */
    std::vector<std::vector<InstAddr>> preds;
    /** Per row: reachable from row 0 along this column. */
    std::vector<char> reachable;

    bool
    isReachable(InstAddr row) const
    {
        return row < reachable.size() && reachable[row];
    }
};

/** CFGs for every FU of a program. */
struct ProgramCfg
{
    std::vector<StreamCfg> streams;

    /** True when the parcel at (@p row, @p fu) can ever execute. */
    bool
    executable(InstAddr row, FuId fu) const
    {
        return fu < streams.size() && streams[fu].isReachable(row);
    }
};

/** Build every column's CFG. Tolerates out-of-range branch targets. */
ProgramCfg buildCfg(const Program &prog);

/**
 * Control-flow diagnostics:
 *  - error   BadBranchTarget: a branch target outside the program;
 *  - warning UnreachableParcel: a parcel that does real work (non-nop
 *    data op or a DONE sync field) at a row its own FU can never
 *    reach. Trivial filler (nop, BUSY) is expected in packed/composed
 *    programs and is not reported.
 */
void checkCfg(const Program &prog, const ProgramCfg &cfg,
              DiagnosticList &diags);

} // namespace ximd::analysis

#endif // XIMD_ANALYSIS_CFG_HH
