#include "analysis/verify.hh"

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/sync_check.hh"
#include "support/logging.hh"

namespace ximd::analysis {

DiagnosticList
analyze(const Program &prog, const AnalyzeOptions &opts)
{
    DiagnosticList diags;

    // Structural pass: a data op the ISA rejects would fault every
    // later consumer; report it and keep going.
    for (InstAddr r = 0; r < prog.size(); ++r) {
        for (FuId fu = 0; fu < prog.width(); ++fu) {
            try {
                prog.parcel(r, fu).data.validate();
            } catch (const FatalError &e) {
                diags.error(Check::MalformedDataOp, r,
                            static_cast<int>(fu), e.what());
            }
        }
    }

    const ProgramCfg cfg = buildCfg(prog);
    checkCfg(prog, cfg, diags);

    const DataflowResult df = runDataflow(prog, cfg);
    checkDataflow(prog, cfg, df, diags);

    checkSync(prog, cfg, diags);

    if (!opts.warnings) {
        DiagnosticList errorsOnly;
        for (const Diagnostic &d : diags.all())
            if (d.isError())
                errorsOnly.error(d.check, d.row, d.fu, d.message);
        diags = std::move(errorsOnly);
    }
    diags.sort();
    return diags;
}

void
verify(const Program &prog)
{
    AnalyzeOptions opts;
    opts.warnings = false;
    const DiagnosticList diags = analyze(prog, opts);
    if (diags.hasErrors())
        fatal("program verification failed (", diags.summary(),
              "):\n", diags.formatted(&prog));
}

void
debugVerify(const Program &prog)
{
#ifdef NDEBUG
    (void)prog;
#else
    verify(prog);
#endif
}

} // namespace ximd::analysis
