/**
 * @file
 * Cross-stream happens-before / may-happen-in-parallel race engine.
 *
 * An XIMD program is a set of per-FU instruction streams whose only
 * ordering comes from three channels: lockstep time itself (every
 * sequencer steps once per cycle), the combinational SS bus, and
 * condition codes. This pass builds a sound model of those channels
 * and reports shared-state accesses whose relative order the model
 * cannot pin down:
 *
 *  1. FUs are first partitioned into *lockstep classes* (identical
 *     control columns ⇒ identical PC trajectories; see lockstep.hh).
 *     Accesses within one class interleave deterministically and are
 *     exempt.
 *  2. For every class pair a *synchronous product automaton* is
 *     explored: states are (rowA, rowB) pairs, both sides stepping
 *     every cycle from (0, 0). Sync branches evaluate tri-state
 *     against the partner's parcel (third parties are unknown), and
 *     branches with the *same predicate* on both sides (equal cc
 *     index, or equal sync condition) resolve jointly — this is what
 *     keeps barrier rows and shared-cc fan-out from exploding into
 *     false interleavings.
 *  3. A flag-handshake idiom (busy-poll a memory word that exactly
 *     one foreign store sets non-zero) is recognized and turned into
 *     a happens-before edge: the poll's exit states are gated on the
 *     partner being past its store.
 *  4. For each conflicting access pair (same register / overlapping
 *     memory interval / same cc, at least one write) the product
 *     states co-reachable with each access are classified as
 *     same-cycle / before / after / loop relative to the other site.
 *     A pair whose classification is unambiguous has a fixed order on
 *     every execution; anything else is a race.
 *
 * Memory addresses and busy-wait exit conditions are bounded with the
 * per-class interval domain (interval.hh), which also powers two
 * liveness checks: *lost signals* (a sync wait whose producer can no
 * longer drive DONE in any future) and *unbounded busy-waits* (a cc
 * poll whose compare is provably constant false).
 *
 * Soundness/precision contract (checked by tests/fuzz):
 *  - every same-cycle conflicting access pair observable on a real
 *    run of the unperturbed program corresponds to a reported
 *    diagnostic or a recorded covered() pair;
 *  - scheduler-emitted code (single lockstep class by construction)
 *    and the sync idioms used by the built-in workloads produce no
 *    findings.
 */

#ifndef XIMD_ANALYSIS_RACE_HH
#define XIMD_ANALYSIS_RACE_HH

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.hh"
#include "isa/program.hh"

namespace ximd::analysis {

/** Race-engine knobs. */
struct RaceOptions
{
    /** Emit warning-severity findings (maybe-races, budget notes). */
    bool warnings = true;

    /**
     * Total product-state budget across all class pairs. When
     * exhausted the engine stops exploring, emits a race-budget
     * warning and moves the unresolved candidates to covered() so the
     * dynamic cross-check stays conservative.
     */
    std::size_t stateBudget = std::size_t{1} << 22;
};

/**
 * A pair of access sites proven benign (deterministic same-cycle
 * read-old, or ordered by a recognized handshake). Kept so the
 * dynamic RaceObserver can be cross-validated: every runtime event
 * must match either a diagnostic or a covered pair.
 */
struct SitePair
{
    InstAddr rowA = 0;
    int fuA = -1;
    InstAddr rowB = 0;
    int fuB = -1;
};

/** Everything the race engine found. */
struct RaceReport
{
    /** Races, lost signals, unbounded waits (and budget warnings). */
    DiagnosticList diags;

    /** Benign conflicting pairs (see SitePair). */
    std::vector<SitePair> covered;

    std::size_t classes = 0;       ///< Lockstep classes found.
    std::size_t pairsAnalyzed = 0; ///< Class pairs explored.
    std::size_t productStates = 0; ///< Product states visited (total).
    bool budgetExceeded = false;   ///< stateBudget ran out.

    /**
     * Base verifier found errors; race analysis was skipped (its
     * model assumes a structurally valid program). diags is empty —
     * callers should surface analyze()'s findings instead.
     */
    bool baseErrors = false;

    bool clean() const { return !baseErrors && diags.empty(); }
};

/** Run the cross-stream race engine over @p prog. */
RaceReport analyzeRaces(const Program &prog,
                        const RaceOptions &opts = {});

} // namespace ximd::analysis

#endif // XIMD_ANALYSIS_RACE_HH
