/**
 * @file
 * Diagnostic records produced by the static program verifier.
 *
 * Every finding is anchored to an instruction row and (usually) a
 * functional unit, carries a severity and a stable check identifier,
 * and renders with the row's label when the program has one — so a
 * report reads like the paper's listings: "error[deadlock] row 03
 * (bar) fu0: ...".
 *
 * Severity policy (see DESIGN.md, "Static verification"):
 *  - Error:   the program provably misbehaves on some execution the
 *             analysis can exhibit (deadlock, undefined write race,
 *             read of a value no instruction produces), or it would
 *             fault the simulator outright (bad target, bad index).
 *  - Warning: suspicious but not provably wrong (dead code, masks
 *             naming nonexistent FUs, values computed and discarded).
 */

#ifndef XIMD_ANALYSIS_DIAGNOSTICS_HH
#define XIMD_ANALYSIS_DIAGNOSTICS_HH

#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hh"
#include "support/types.hh"

namespace ximd::analysis {

/** How bad a finding is. */
enum class Severity : std::uint8_t { Warning, Error };

/** Stable identifier of the check that produced a diagnostic. */
enum class Check : std::uint8_t {
    // Control-flow checks (cfg.hh).
    BadBranchTarget,   ///< Branch target outside the program.
    UnreachableParcel, ///< Non-trivial parcel its FU can never fetch.

    // Dataflow checks (dataflow.hh).
    BadCcIndex,     ///< Branch condition names a nonexistent CC.
    ReadUninit,     ///< Register read that no write covers.
    CcNeverSet,     ///< Branch on a CC no reachable compare sets.
    CcSameCycleRead,///< Branch reads a CC written in the same cycle.
    WriteNeverRead, ///< Register written, never read, never named.
    DeadWrite,      ///< Value overwritten on every path before a read.

    // Cross-stream checks (sync_check.hh).
    BadSsIndex,         ///< Sync condition names a nonexistent FU.
    BadSyncMask,        ///< Explicit mask selects nonexistent FUs.
    EmptySyncMask,      ///< Mask selects no existing FU (sim panics).
    RegWriteConflict,   ///< Same-cycle same-register write conflict.
    MemWriteConflict,   ///< Same-cycle same-address store conflict.
    UnsatisfiableWait,  ///< Sync condition that can never become true.
    SelfDeadlock,       ///< FU waits for a DONE it suppresses itself.
    CrossStreamDeadlock,///< Cyclic wait between busy-waiting FUs.

    // Structural checks (verify.cc).
    MalformedDataOp,    ///< Operand shape rejected by the ISA.

    // Happens-before / may-happen-in-parallel race checks (race.hh).
    RegRace,       ///< Cross-stream register access with ambiguous order.
    MemRace,       ///< Cross-stream memory access, proven overlapping.
    MemMaybeRace,  ///< Cross-stream memory access, possible overlap.
    CcRace,        ///< Cross-stream condition-code access, ambiguous.
    LostSignal,    ///< Wait on a DONE the partner can no longer drive.
    UnboundedWait, ///< Busy-wait loop whose exit compare is constant.
    RaceBudget,    ///< Product-state budget exhausted; pair downgraded.

    // Front-end failures (asm/assembler.hh Result API; `row` holds the
    // source line for AsmParse and is meaningless for LoadFailed).
    AsmParse,   ///< Assembly source rejected by the assembler.
    LoadFailed, ///< Program file missing or unreadable.

    // Batch-run failures (farm/run_spec.hh; `row` is meaningless).
    RunFailed,  ///< Simulation faulted, wedged, or failed its check.
};

/** Short stable name used in rendered output, e.g. "deadlock". */
std::string_view checkName(Check c);

/** One finding. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    Check check = Check::BadBranchTarget;
    InstAddr row = 0;
    int fu = -1; ///< Column, or -1 when the finding spans the row.
    std::string message;

    // Optional provenance, filled by checks that relate two program
    // points (the race engine) or know source lines. Rendering only
    // changes when these are set, so existing checks keep their exact
    // output format.
    int otherRow = -1; ///< Second site's row, or -1 when absent.
    int otherFu = -1;  ///< Second site's FU, or -1 when absent.
    int line = 0;      ///< 1-based source line of `row`; 0 unknown.
    int otherLine = 0; ///< 1-based source line of `otherRow`.

    bool isError() const { return severity == Severity::Error; }
};

/** An ordered collection of findings. */
class DiagnosticList
{
  public:
    void error(Check c, InstAddr row, int fu, std::string msg);
    void warning(Check c, InstAddr row, int fu, std::string msg);

    /** Append a fully-built finding (race engine two-site reports). */
    void add(Diagnostic d) { diags_.push_back(std::move(d)); }

    /** Append every finding of @p other. */
    void merge(const DiagnosticList &other);

    /**
     * Fill each finding's line provenance from @p prog's row→source
     * map (rows the assembler saw; no-op for rows without one).
     */
    void attachLines(const Program &prog);

    const std::vector<Diagnostic> &all() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }

    std::size_t errorCount() const;
    std::size_t warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }

    /** Order findings by (row, fu), errors before warnings. */
    void sort();

    /**
     * Render every finding, one per line. When @p prog is given, rows
     * that carry labels are annotated with them.
     */
    std::string formatted(const Program *prog = nullptr) const;

    /** Render a single finding (same format, no newline). */
    static std::string formatOne(const Diagnostic &d,
                                 const Program *prog = nullptr);

    /** "2 errors, 1 warning" (empty string when clean). */
    std::string summary() const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace ximd::analysis

#endif // XIMD_ANALYSIS_DIAGNOSTICS_HH
