#include "analysis/cfg.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ximd::analysis {

namespace {

/** In-range targets of @p op, deduplicated. */
std::vector<InstAddr>
targetsOf(const ControlOp &op, InstAddr numRows)
{
    std::vector<InstAddr> out;
    if (op.isHalt())
        return out;
    if (op.t1 < numRows)
        out.push_back(op.t1);
    if (op.isConditional() && op.t2 != op.t1 && op.t2 < numRows)
        out.push_back(op.t2);
    return out;
}

} // namespace

ProgramCfg
buildCfg(const Program &prog)
{
    const InstAddr n = prog.size();
    ProgramCfg cfg;
    cfg.streams.resize(prog.width());

    for (FuId fu = 0; fu < prog.width(); ++fu) {
        StreamCfg &s = cfg.streams[fu];
        s.fu = fu;
        s.succs.resize(n);
        s.preds.resize(n);
        s.reachable.assign(n, 0);

        for (InstAddr r = 0; r < n; ++r)
            s.succs[r] = targetsOf(prog.parcel(r, fu).ctrl, n);
        for (InstAddr r = 0; r < n; ++r)
            for (InstAddr t : s.succs[r])
                s.preds[t].push_back(r);

        // Depth-first reachability from the shared entry row 0.
        if (n == 0)
            continue;
        std::vector<InstAddr> work{0};
        s.reachable[0] = 1;
        while (!work.empty()) {
            const InstAddr r = work.back();
            work.pop_back();
            for (InstAddr t : s.succs[r]) {
                if (!s.reachable[t]) {
                    s.reachable[t] = 1;
                    work.push_back(t);
                }
            }
        }
    }
    return cfg;
}

void
checkCfg(const Program &prog, const ProgramCfg &cfg,
         DiagnosticList &diags)
{
    const InstAddr n = prog.size();
    for (InstAddr r = 0; r < n; ++r) {
        for (FuId fu = 0; fu < prog.width(); ++fu) {
            const Parcel &p = prog.parcel(r, fu);
            const ControlOp &c = p.ctrl;

            if (!c.isHalt()) {
                if (c.t1 >= n)
                    diags.error(
                        Check::BadBranchTarget, r, static_cast<int>(fu),
                        cat("branch target ", c.t1,
                            " is outside the program (", n,
                            " rows)"));
                if (c.isConditional() && c.t2 >= n)
                    diags.error(
                        Check::BadBranchTarget, r, static_cast<int>(fu),
                        cat("fall-back target ", c.t2,
                            " is outside the program (", n,
                            " rows)"));
            }

            // Dead parcels that do real work are almost certainly a
            // mislaid label or a wrong branch target. Filler parcels
            // (nop data, BUSY sync) are normal in packed layouts.
            const bool nontrivial =
                !p.data.isNop() || p.sync == SyncVal::Done;
            if (nontrivial && !cfg.executable(r, fu))
                diags.warning(
                    Check::UnreachableParcel, r, static_cast<int>(fu),
                    cat("parcel '", p.data.toString(),
                        "' can never execute: FU", fu,
                        " cannot reach this row from row 0"));
        }
    }
}

} // namespace ximd::analysis
