#include "analysis/dataflow.hh"

#include <set>

#include "support/logging.hh"

namespace ximd::analysis {

namespace {

/** Append the register ids @p d reads to @p out (0..2 entries). */
void
srcRegs(const DataOp &d, RegId out[2], unsigned &count)
{
    count = 0;
    const unsigned n = opInfo(d.op).numSrcs;
    if (n >= 1 && d.a.isReg())
        out[count++] = d.a.regId();
    if (n >= 2 && d.b.isReg())
        out[count++] = d.b.regId();
}

/** "r12 ('tz')" or "r12" when the register has no name. */
std::string
regDesc(const Program &prog, RegId r)
{
    if (auto name = prog.regName(r))
        return cat("r", r, " ('", *name, "')");
    return cat("r", r);
}

} // namespace

DataflowResult
runDataflow(const Program &prog, const ProgramCfg &cfg)
{
    const InstAddr n = prog.size();
    const FuId width = prog.width();

    DataflowResult df;
    df.streams.resize(width);
    df.readBy.resize(width);
    df.writtenBy.resize(width);

    for (const auto &[r, value] : prog.regInit())
        df.initialized.set(r);

    // Pass 1: per-column read/write/compare summaries over the
    // parcels that can actually execute.
    for (FuId fu = 0; fu < width; ++fu) {
        for (InstAddr r = 0; r < n; ++r) {
            if (!cfg.executable(r, fu))
                continue;
            const DataOp &d = prog.parcel(r, fu).data;
            RegId srcs[2];
            unsigned nsrcs;
            srcRegs(d, srcs, nsrcs);
            for (unsigned i = 0; i < nsrcs; ++i)
                df.readBy[fu].set(srcs[i]);
            if (d.hasDest())
                df.writtenBy[fu].set(d.dest);
            if (setsCondCode(d.op))
                df.ccEverSet.set(fu);
        }
        df.everRead |= df.readBy[fu];
        df.everWritten |= df.writtenBy[fu];
    }

    // Registers with a symbolic name are observable outputs (read by
    // tools and tests after the run); treat them as used.
    RegSet named;
    for (RegId r = 0; r < kNumRegisters; ++r)
        if (prog.regName(r))
            named.set(r);

    // Pass 2: per-column must-defined (forward, intersection) and
    // liveness (backward, union).
    for (FuId fu = 0; fu < width; ++fu) {
        const StreamCfg &s = cfg.streams[fu];
        StreamDataflow &sd = df.streams[fu];
        sd.regIn.assign(n, RegSet{});
        sd.ccIn.assign(n, CcSet{});
        sd.liveIn.assign(n, RegSet{});
        sd.liveOut.assign(n, RegSet{});
        if (n == 0)
            continue;

        // Definedness assumed on entry: initializers, anything some
        // other column writes (ordering across streams is not
        // modeled), and the CCs of columns that execute compares.
        RegSet regSeed = df.initialized;
        CcSet ccSeed;
        for (FuId k = 0; k < width; ++k) {
            if (k == fu)
                continue;
            regSeed |= df.writtenBy[k];
            if (df.ccEverSet[k])
                ccSeed.set(k);
        }

        // Definedness only grows along a path (no kill), so the
        // intersection over every arrival at row 0 equals the seed.
        // Must-analysis: start everything at TOP (all-defined) and
        // narrow — starting from empty would let a loop back edge
        // pin its header at the wrong (least) fixpoint.
        const RegSet fullRegs = ~RegSet{};
        const CcSet fullCcs = ~CcSet{};
        std::vector<RegSet> regOut(n, fullRegs);
        std::vector<CcSet> ccOut(n, fullCcs);
        for (InstAddr r = 0; r < n; ++r) {
            sd.regIn[r] = fullRegs;
            sd.ccIn[r] = fullCcs;
        }
        sd.regIn[0] = regSeed;
        sd.ccIn[0] = ccSeed;

        auto genOf = [&](InstAddr r, RegSet &reg, CcSet &cc) {
            const DataOp &d = prog.parcel(r, fu).data;
            reg.reset();
            cc.reset();
            if (d.hasDest())
                reg.set(d.dest);
            if (setsCondCode(d.op))
                cc.set(fu);
        };

        bool changed = true;
        while (changed) {
            changed = false;
            for (InstAddr r = 0; r < n; ++r) {
                if (!s.isReachable(r))
                    continue;
                if (r != 0) {
                    RegSet regIn = fullRegs;
                    CcSet ccIn = fullCcs;
                    for (InstAddr p : s.preds[r]) {
                        if (!s.isReachable(p))
                            continue;
                        regIn &= regOut[p];
                        ccIn &= ccOut[p];
                    }
                    if (regIn != sd.regIn[r] || ccIn != sd.ccIn[r]) {
                        sd.regIn[r] = regIn;
                        sd.ccIn[r] = ccIn;
                        changed = true;
                    }
                }
                RegSet gen;
                CcSet ccGen;
                genOf(r, gen, ccGen);
                const RegSet out = sd.regIn[r] | gen;
                const CcSet ccOutNew = sd.ccIn[r] | ccGen;
                if (out != regOut[r] || ccOutNew != ccOut[r]) {
                    regOut[r] = out;
                    ccOut[r] = ccOutNew;
                    changed = true;
                }
            }
        }

        // Liveness. Registers other columns read can be consumed at
        // any time; registers with names are observable at exit.
        RegSet alwaysLive = named;
        for (FuId k = 0; k < width; ++k)
            if (k != fu)
                alwaysLive |= df.readBy[k];

        changed = true;
        while (changed) {
            changed = false;
            for (InstAddr rr = n; rr-- > 0;) {
                if (!s.isReachable(rr))
                    continue;
                RegSet liveOut = alwaysLive;
                for (InstAddr t : s.succs[rr])
                    liveOut |= sd.liveIn[t];
                const DataOp &d = prog.parcel(rr, fu).data;
                RegSet use, def;
                RegId srcs[2];
                unsigned nsrcs;
                srcRegs(d, srcs, nsrcs);
                for (unsigned i = 0; i < nsrcs; ++i)
                    use.set(srcs[i]);
                if (d.hasDest())
                    def.set(d.dest);
                const RegSet liveIn = use | (liveOut & ~def);
                if (liveOut != sd.liveOut[rr] ||
                    liveIn != sd.liveIn[rr]) {
                    sd.liveOut[rr] = liveOut;
                    sd.liveIn[rr] = liveIn;
                    changed = true;
                }
            }
        }
    }
    return df;
}

void
checkDataflow(const Program &prog, const ProgramCfg &cfg,
              const DataflowResult &df, DiagnosticList &diags)
{
    const InstAddr n = prog.size();
    const FuId width = prog.width();

    std::set<RegId> reportedNeverRead;
    std::set<RegId> reportedUninit;

    for (InstAddr r = 0; r < n; ++r) {
        for (FuId fu = 0; fu < width; ++fu) {
            if (!cfg.executable(r, fu))
                continue;
            const Parcel &p = prog.parcel(r, fu);
            const StreamDataflow &sd = df.streams[fu];

            // Reads of registers nothing defines.
            RegId srcs[2];
            unsigned nsrcs;
            srcRegs(p.data, srcs, nsrcs);
            for (unsigned i = 0; i < nsrcs; ++i) {
                const RegId reg = srcs[i];
                if (sd.regIn[r][reg])
                    continue;
                if (!reportedUninit.insert(reg).second)
                    continue;
                // Registers power up as zero, so a maybe-uninit
                // read computes a deterministic (if dubious) value:
                // error only when no instruction anywhere produces
                // the register, warn on the path-sensitive case.
                const bool neverAnywhere =
                    !df.everWritten[reg] && !df.initialized[reg];
                if (neverAnywhere)
                    diags.error(
                        Check::ReadUninit, r, static_cast<int>(fu),
                        cat("reads ", regDesc(prog, reg),
                            " which is never initialized and "
                            "never written by any instruction"));
                else
                    diags.warning(
                        Check::ReadUninit, r, static_cast<int>(fu),
                        cat("reads ", regDesc(prog, reg),
                            " which may be used before any "
                            "write: some path of FU", fu,
                            " from row 0 reaches this parcel "
                            "without defining it (reads 0 on that "
                            "path)"));
            }

            // Branches on condition codes.
            const ControlOp &c = p.ctrl;
            if (c.kind == CondKind::CcTrue) {
                const FuId k = c.index;
                if (k >= width) {
                    diags.error(
                        Check::BadCcIndex, r, static_cast<int>(fu),
                        cat("branch on cc", k,
                            " but the machine has only ", width,
                            " FUs (cc0..cc", width - 1, ")"));
                } else if (!sd.ccIn[r][k]) {
                    const DataOp &setter = prog.parcel(r, k).data;
                    if (setsCondCode(setter.op) &&
                        cfg.executable(r, k)) {
                        diags.error(
                            Check::CcSameCycleRead, r,
                            static_cast<int>(fu),
                            cat("branch reads cc", k,
                                " in the same cycle as the compare '",
                                setter.toString(),
                                "' that sets it; CC is a register "
                                "(commits at end of cycle), so the "
                                "branch sees the previous value, "
                                "which no earlier compare "
                                "establishes on some path"));
                    } else if (!df.ccEverSet[k]) {
                        diags.error(
                            Check::CcNeverSet, r,
                            static_cast<int>(fu),
                            cat("branch on cc", k, " but FU", k,
                                " never executes a compare; cc", k,
                                " is never set"));
                    } else {
                        diags.error(
                            Check::CcNeverSet, r,
                            static_cast<int>(fu),
                            cat("branch on cc", k,
                                " may execute before any compare "
                                "sets it: some path of FU", k,
                                " from row 0 reaches this row "
                                "without a compare"));
                    }
                }
            }

            // Writes nobody can observe.
            if (p.data.hasDest()) {
                const RegId reg = p.data.dest;
                const bool named = prog.regName(reg).has_value();
                if (!df.everRead[reg] && !named) {
                    if (reportedNeverRead.insert(reg).second)
                        diags.warning(
                            Check::WriteNeverRead, r,
                            static_cast<int>(fu),
                            cat("writes ", regDesc(prog, reg),
                                " which is never read by any FU "
                                "and has no symbolic name; the "
                                "result is unobservable"));
                } else if (!sd.liveOut[r][reg]) {
                    diags.warning(
                        Check::DeadWrite, r, static_cast<int>(fu),
                        cat("value written to ", regDesc(prog, reg),
                            " is overwritten or discarded on every "
                            "path before it is read"));
                }
            }
        }
    }
}

} // namespace ximd::analysis
