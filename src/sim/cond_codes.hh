/**
 * @file
 * Per-FU condition-code registers.
 *
 * Section 2.2: "Each functional unit also contains one condition code
 * register CCi. This register can hold one of two values, TRUE or
 * FALSE. Compare operations set or clear the condition code register
 * corresponding to the functional unit which executes the operation.
 * Other operations leave the condition code register unchanged."
 *
 * CC values are registered state: a branch in cycle t observes the CC
 * values as they existed at the *beginning* of cycle t (verified
 * against the paper's Figure 10 address trace). Writes queued during a
 * cycle become visible after commit().
 */

#ifndef XIMD_SIM_COND_CODES_HH
#define XIMD_SIM_COND_CODES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/state_io.hh"
#include "support/types.hh"

namespace ximd {

/** The distributed condition-code register file. */
class CondCodeFile
{
  public:
    explicit CondCodeFile(FuId numFus);

    FuId numFus() const { return static_cast<FuId>(cur_.size()); }

    /** Beginning-of-cycle value of CC[fu]. */
    bool read(FuId fu) const;

    /** Queue FU @p fu's compare result; visible after commit(). */
    void queueWrite(FuId fu, bool value);

    /** Make queued writes visible. */
    void commit();

    /** Discard queued writes. */
    void squash();

    /** Test/debug: set a CC immediately. */
    void poke(FuId fu, bool value);

    /**
     * Render as the paper's Figure 10 does: one character per FU,
     * 'T' / 'F', or 'X' for CCs never written yet.
     */
    std::string formatted() const;

    /// @name Checkpointing (see DESIGN.md section 9).
    /// @{
    /** Serialize full state (values, ever-written flags, queue). */
    void saveState(StateWriter &w) const;

    /** Restore state saved by saveState(); FU counts must match. */
    void loadState(StateReader &r);

    /** Stable 64-bit hash of the serialized state. */
    std::uint64_t stateHash() const { return stateHashOf(*this); }

    /** Fold only the architectural contents (CC values) into @p h. */
    void hashContents(Hash64 &h) const;
    /// @}

  private:
    // The threaded execution backend (core/threaded_backend.cc)
    // mirrors the CC values into a flat array for its block runs and
    // writes values + ever-written flags back at block boundaries.
    friend class ThreadedBackend;

    void checkIndex(FuId fu) const;

    std::vector<bool> cur_;
    std::vector<bool> everWritten_;
    struct Pending
    {
        FuId fu;
        bool value;
    };
    std::vector<Pending> pending_;
};

} // namespace ximd

#endif // XIMD_SIM_COND_CODES_HH
