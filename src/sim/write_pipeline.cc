#include "sim/write_pipeline.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ximd {

WritePipeline::WritePipeline(unsigned latency)
    : latency_(latency)
{
    if (latency < 1 || latency > 16)
        fatal("write pipeline latency ", latency,
              " outside supported range 1..16");
}

bool
WritePipeline::empty() const
{
    return regs_.empty() && ccs_.empty() && mems_.empty();
}

void
WritePipeline::pushReg(Cycle now, RegId reg, Word value, FuId fu)
{
    regs_.push_back({due(now), reg, value, fu});
}

void
WritePipeline::pushCc(Cycle now, FuId fu, bool value)
{
    ccs_.push_back({due(now), fu, value});
}

void
WritePipeline::pushStore(Cycle now, Addr addr, Word value, FuId fu)
{
    mems_.push_back({due(now), addr, value, fu});
}

void
WritePipeline::drainInto(Cycle now, RegisterFile &regs, Memory &mem,
                         CondCodeFile &ccs)
{
    auto take = [&](auto &vec, auto &&apply) {
        for (const auto &w : vec)
            if (w.due == now)
                apply(w);
        vec.erase(std::remove_if(vec.begin(), vec.end(),
                                 [&](const auto &w) {
                                     return w.due <= now;
                                 }),
                  vec.end());
    };
    take(regs_, [&](const RegWrite &w) {
        regs.queueWrite(w.reg, w.value, w.fu);
    });
    take(ccs_,
         [&](const CcWrite &w) { ccs.queueWrite(w.fu, w.value); });
    take(mems_, [&](const MemWrite &w) {
        mem.queueStore(w.addr, w.value, w.fu);
    });
}

void
WritePipeline::squash()
{
    regs_.clear();
    ccs_.clear();
    mems_.clear();
}

void
WritePipeline::saveState(StateWriter &w) const
{
    w.tag("PIPE");
    w.u32(latency_);
    w.count(regs_.size());
    for (const RegWrite &x : regs_) {
        w.u64(x.due);
        w.u32(x.reg);
        w.u32(x.value);
        w.u32(x.fu);
    }
    w.count(ccs_.size());
    for (const CcWrite &x : ccs_) {
        w.u64(x.due);
        w.u32(x.fu);
        w.boolean(x.value);
    }
    w.count(mems_.size());
    for (const MemWrite &x : mems_) {
        w.u64(x.due);
        w.u32(x.addr);
        w.u32(x.value);
        w.u32(x.fu);
    }
}

void
WritePipeline::loadState(StateReader &r)
{
    r.checkTag("PIPE");
    const unsigned latency = r.u32();
    if (latency != latency_)
        fatal("write-pipeline state has latency ", latency,
              ", this machine has ", latency_);
    const std::size_t maxInFlight =
        static_cast<std::size_t>(latency_) * kMaxFus * 4;
    regs_.resize(r.count(maxInFlight));
    for (RegWrite &x : regs_) {
        x.due = r.u64();
        x.reg = r.u32();
        x.value = r.u32();
        x.fu = r.u32();
    }
    ccs_.resize(r.count(maxInFlight));
    for (CcWrite &x : ccs_) {
        x.due = r.u64();
        x.fu = r.u32();
        x.value = r.boolean();
    }
    mems_.resize(r.count(maxInFlight));
    for (MemWrite &x : mems_) {
        x.due = r.u64();
        x.addr = r.u32();
        x.value = r.u32();
        x.fu = r.u32();
    }
}

} // namespace ximd
