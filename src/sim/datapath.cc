#include "sim/datapath.hh"

#include "sim/alu.hh"
#include "support/logging.hh"

namespace ximd {

void
executeDataOp(const DataOp &op, ExecContext &ctx)
{
    switch (opInfo(op.op).cls) {
      case OpClass::Nop:
        return;

      case OpClass::IntAlu: {
        Word result;
        switch (op.op) {
          case Opcode::Ineg:
            result = intToWord(-wordToInt(ctx.readOperand(op.a)));
            break;
          case Opcode::Not:
            result = ~ctx.readOperand(op.a);
            break;
          case Opcode::Mov:
            result = ctx.readOperand(op.a);
            break;
          default:
            result = alu::intBinary(op.op, ctx.readOperand(op.a),
                                    ctx.readOperand(op.b));
            break;
        }
        ctx.writeReg(op.dest, result);
        return;
      }

      case OpClass::IntCompare:
        ctx.writeCc(alu::intCompare(op.op, ctx.readOperand(op.a),
                                    ctx.readOperand(op.b)));
        return;

      case OpClass::FloatAlu: {
        Word result;
        if (op.op == Opcode::Fneg)
            result = floatToWord(-wordToFloat(ctx.readOperand(op.a)));
        else
            result = alu::floatBinary(op.op, ctx.readOperand(op.a),
                                      ctx.readOperand(op.b));
        ctx.writeReg(op.dest, result);
        return;
      }

      case OpClass::FloatCompare:
        ctx.writeCc(alu::floatCompare(op.op, ctx.readOperand(op.a),
                                      ctx.readOperand(op.b)));
        return;

      case OpClass::Convert: {
        const Word a = ctx.readOperand(op.a);
        Word result;
        if (op.op == Opcode::Itof)
            result = floatToWord(static_cast<float>(wordToInt(a)));
        else
            result = intToWord(static_cast<SWord>(wordToFloat(a)));
        ctx.writeReg(op.dest, result);
        return;
      }

      case OpClass::MemLoad: {
        const Addr addr = ctx.readOperand(op.a) + ctx.readOperand(op.b);
        ctx.writeReg(op.dest, ctx.loadMem(addr));
        return;
      }

      case OpClass::MemStore: {
        const Word value = ctx.readOperand(op.a);
        const Addr addr = ctx.readOperand(op.b);
        ctx.storeMem(addr, value);
        return;
      }
    }
    panic("executeDataOp: unhandled op class for ", opcodeName(op.op));
}

} // namespace ximd
