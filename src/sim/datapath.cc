#include "sim/datapath.hh"

#include <limits>

#include "support/logging.hh"

namespace ximd {

namespace {

Word
intBinary(Opcode op, Word wa, Word wb)
{
    const SWord a = wordToInt(wa);
    const SWord b = wordToInt(wb);
    switch (op) {
      case Opcode::Iadd:
        return wa + wb;
      case Opcode::Isub:
        return wa - wb;
      case Opcode::Imult:
        return intToWord(static_cast<SWord>(
            static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)));
      case Opcode::Idiv:
        if (b == 0)
            fatal("integer divide by zero");
        if (a == std::numeric_limits<SWord>::min() && b == -1)
            return intToWord(std::numeric_limits<SWord>::min());
        return intToWord(a / b);
      case Opcode::Imod:
        if (b == 0)
            fatal("integer modulo by zero");
        if (a == std::numeric_limits<SWord>::min() && b == -1)
            return 0;
        return intToWord(a % b);
      case Opcode::And:
        return wa & wb;
      case Opcode::Or:
        return wa | wb;
      case Opcode::Xor:
        return wa ^ wb;
      case Opcode::Shl:
        return wa << (wb & 31u);
      case Opcode::Shr:
        return wa >> (wb & 31u);
      case Opcode::Sar:
        return intToWord(a >> (wb & 31u));
      default:
        panic("intBinary: unexpected opcode ", opcodeName(op));
    }
}

bool
intCompare(Opcode op, Word wa, Word wb)
{
    const SWord a = wordToInt(wa);
    const SWord b = wordToInt(wb);
    switch (op) {
      case Opcode::Eq: return a == b;
      case Opcode::Ne: return a != b;
      case Opcode::Lt: return a < b;
      case Opcode::Le: return a <= b;
      case Opcode::Gt: return a > b;
      case Opcode::Ge: return a >= b;
      default:
        panic("intCompare: unexpected opcode ", opcodeName(op));
    }
}

Word
floatBinary(Opcode op, Word wa, Word wb)
{
    const float a = wordToFloat(wa);
    const float b = wordToFloat(wb);
    switch (op) {
      case Opcode::Fadd:  return floatToWord(a + b);
      case Opcode::Fsub:  return floatToWord(a - b);
      case Opcode::Fmult: return floatToWord(a * b);
      case Opcode::Fdiv:  return floatToWord(a / b);
      default:
        panic("floatBinary: unexpected opcode ", opcodeName(op));
    }
}

bool
floatCompare(Opcode op, Word wa, Word wb)
{
    const float a = wordToFloat(wa);
    const float b = wordToFloat(wb);
    switch (op) {
      case Opcode::Feq: return a == b;
      case Opcode::Fne: return a != b;
      case Opcode::Flt: return a < b;
      case Opcode::Fle: return a <= b;
      case Opcode::Fgt: return a > b;
      case Opcode::Fge: return a >= b;
      default:
        panic("floatCompare: unexpected opcode ", opcodeName(op));
    }
}

} // namespace

void
executeDataOp(const DataOp &op, ExecContext &ctx)
{
    switch (opInfo(op.op).cls) {
      case OpClass::Nop:
        return;

      case OpClass::IntAlu: {
        Word result;
        switch (op.op) {
          case Opcode::Ineg:
            result = intToWord(-wordToInt(ctx.readOperand(op.a)));
            break;
          case Opcode::Not:
            result = ~ctx.readOperand(op.a);
            break;
          case Opcode::Mov:
            result = ctx.readOperand(op.a);
            break;
          default:
            result = intBinary(op.op, ctx.readOperand(op.a),
                               ctx.readOperand(op.b));
            break;
        }
        ctx.writeReg(op.dest, result);
        return;
      }

      case OpClass::IntCompare:
        ctx.writeCc(intCompare(op.op, ctx.readOperand(op.a),
                               ctx.readOperand(op.b)));
        return;

      case OpClass::FloatAlu: {
        Word result;
        if (op.op == Opcode::Fneg)
            result = floatToWord(-wordToFloat(ctx.readOperand(op.a)));
        else
            result = floatBinary(op.op, ctx.readOperand(op.a),
                                 ctx.readOperand(op.b));
        ctx.writeReg(op.dest, result);
        return;
      }

      case OpClass::FloatCompare:
        ctx.writeCc(floatCompare(op.op, ctx.readOperand(op.a),
                                 ctx.readOperand(op.b)));
        return;

      case OpClass::Convert: {
        const Word a = ctx.readOperand(op.a);
        Word result;
        if (op.op == Opcode::Itof)
            result = floatToWord(static_cast<float>(wordToInt(a)));
        else
            result = intToWord(static_cast<SWord>(wordToFloat(a)));
        ctx.writeReg(op.dest, result);
        return;
      }

      case OpClass::MemLoad: {
        const Addr addr = ctx.readOperand(op.a) + ctx.readOperand(op.b);
        ctx.writeReg(op.dest, ctx.loadMem(addr));
        return;
      }

      case OpClass::MemStore: {
        const Word value = ctx.readOperand(op.a);
        const Addr addr = ctx.readOperand(op.b);
        ctx.storeMem(addr, value);
        return;
      }
    }
    panic("executeDataOp: unhandled op class for ", opcodeName(op.op));
}

} // namespace ximd
