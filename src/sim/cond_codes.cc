#include "sim/cond_codes.hh"

#include "support/logging.hh"

namespace ximd {

CondCodeFile::CondCodeFile(FuId numFus)
    : cur_(numFus, false), everWritten_(numFus, false)
{
    if (numFus == 0 || numFus > kMaxFus)
        fatal("condition-code file size ", numFus,
              " outside supported range 1..", kMaxFus);
}

void
CondCodeFile::checkIndex(FuId fu) const
{
    if (fu >= cur_.size())
        fatal("condition code cc", fu, " out of range (", cur_.size(),
              " FUs)");
}

bool
CondCodeFile::read(FuId fu) const
{
    checkIndex(fu);
    return cur_[fu];
}

void
CondCodeFile::queueWrite(FuId fu, bool value)
{
    checkIndex(fu);
    pending_.push_back({fu, value});
}

void
CondCodeFile::commit()
{
    for (const auto &p : pending_) {
        cur_[p.fu] = p.value;
        everWritten_[p.fu] = true;
    }
    pending_.clear();
}

void
CondCodeFile::squash()
{
    pending_.clear();
}

void
CondCodeFile::poke(FuId fu, bool value)
{
    checkIndex(fu);
    cur_[fu] = value;
    everWritten_[fu] = true;
}

void
CondCodeFile::saveState(StateWriter &w) const
{
    w.tag("CCND");
    w.count(cur_.size());
    for (FuId i = 0; i < cur_.size(); ++i) {
        w.boolean(cur_[i]);
        w.boolean(everWritten_[i]);
    }
    w.count(pending_.size());
    for (const Pending &p : pending_) {
        w.u32(p.fu);
        w.boolean(p.value);
    }
}

void
CondCodeFile::loadState(StateReader &r)
{
    r.checkTag("CCND");
    const std::size_t n = r.count(kMaxFus);
    if (n != cur_.size())
        fatal("condition-code state has ", n, " FUs, this machine has ",
              cur_.size());
    for (FuId i = 0; i < cur_.size(); ++i) {
        cur_[i] = r.boolean();
        everWritten_[i] = r.boolean();
    }
    pending_.resize(r.count(kMaxFus * kMaxFus));
    for (Pending &p : pending_) {
        p.fu = r.u32();
        p.value = r.boolean();
        checkIndex(p.fu);
    }
}

void
CondCodeFile::hashContents(Hash64 &h) const
{
    for (FuId i = 0; i < cur_.size(); ++i) {
        h.boolean(cur_[i]);
        h.boolean(everWritten_[i]);
    }
}

std::string
CondCodeFile::formatted() const
{
    std::string s;
    s.reserve(cur_.size());
    for (FuId i = 0; i < cur_.size(); ++i) {
        if (!everWritten_[i])
            s += 'X';
        else
            s += cur_[i] ? 'T' : 'F';
    }
    return s;
}

} // namespace ximd
