/**
 * @file
 * The idealized shared memory of the XIMD-1 research model.
 *
 * Section 2.3: "Each functional unit can read or write to memory every
 * cycle. All ports use a single shared address space. Memory operations
 * complete in one cycle. Multiple writes to the same location in one
 * cycle are undefined."
 *
 * The memory is word-addressed. Loads observe beginning-of-cycle
 * contents; stores are queued and committed at end of cycle, with
 * same-address conflict detection. Address windows can be claimed by
 * IoDevice instances (section 3.4's I/O ports); device reads happen
 * combinationally during execute, device writes at commit.
 */

#ifndef XIMD_SIM_MEMORY_HH
#define XIMD_SIM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "sim/io_port.hh"
#include "sim/register_file.hh" // ConflictPolicy
#include "support/types.hh"

namespace ximd {

/** Word-addressed shared memory with device windows. */
class Memory
{
  public:
    explicit Memory(std::size_t words,
                    ConflictPolicy policy = ConflictPolicy::Fault);

    std::size_t size() const { return words_.size(); }

    /**
     * Attach @p device to the address window [lo, hi] (inclusive).
     * Windows must not overlap each other. The device receives offsets
     * relative to @p lo. The device is not owned.
     */
    void attachDevice(Addr lo, Addr hi, IoDevice *device);

    /** Load a word (beginning-of-cycle value, or device read). */
    Word load(Addr addr, Cycle now);

    /** Queue a store from @p fu; committed at end of cycle. */
    void queueStore(Addr addr, Word value, FuId fu);

    /** Commit queued stores; detects same-address conflicts. */
    void commit(Cycle now);

    /** Discard queued stores (used on machine fault). */
    void squash() { pending_.clear(); }

    /** Test/debug: write a word immediately (RAM only). */
    void poke(Addr addr, Word value);

    /** Test/debug: read a word without side effects (RAM only). */
    Word peek(Addr addr) const;

    /** True when any device window is attached. */
    bool hasDevices() const { return !windows_.empty(); }

    /** True when @p addr falls inside an attached device window. */
    bool inDeviceWindow(Addr addr) const
    {
        return findWindow(addr) != nullptr;
    }

    /** Total loads performed. */
    std::uint64_t loadCount() const { return loads_; }

    /** Total stores committed. */
    std::uint64_t storeCount() const { return stores_; }

    /** Devices attached, in attachment order (fault-engine access). */
    std::vector<IoDevice *> attachedDevices() const;

    /// @name Checkpointing (see DESIGN.md section 9).
    /// @{
    /**
     * Serialize full state. The word array is run-length encoded
     * (idealized memory is overwhelmingly zero), pending stores and
     * counters follow, then each attached device's state in
     * attachment order.
     */
    void saveState(StateWriter &w) const;

    /**
     * Restore state saved by saveState(). The memory must have the
     * same word count and conflict policy, and the same device
     * windows must already be attached (restore callers re-run their
     * fixture setup first); throws FatalError otherwise.
     */
    void loadState(StateReader &r);

    /** Stable 64-bit hash of the serialized state. */
    std::uint64_t stateHash() const { return stateHashOf(*this); }

    /** Fold only the architectural contents (RAM words) into @p h. */
    void hashContents(Hash64 &h) const;
    /// @}

  private:
    // The threaded execution backend (core/threaded_backend.cc)
    // accesses the word array directly (it only runs with no device
    // windows attached) and bulk-updates the counters.
    friend class ThreadedBackend;

    struct DeviceWindow
    {
        Addr lo;
        Addr hi;
        IoDevice *device;
    };

    struct PendingStore
    {
        Addr addr;
        Word value;
        FuId fu;
    };

    void checkAddr(Addr addr) const;
    const DeviceWindow *findWindow(Addr addr) const;

    std::vector<Word> words_;
    ConflictPolicy policy_;
    std::vector<DeviceWindow> windows_;
    std::vector<PendingStore> pending_;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace ximd

#endif // XIMD_SIM_MEMORY_HH
