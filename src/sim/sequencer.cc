#include "sim/sequencer.hh"

#include "support/logging.hh"

namespace ximd {

NextPc
evaluateControlOp(const ControlOp &op, const CondCodeFile &ccs,
                  const SyncBus &ss)
{
    NextPc next;
    bool cond;
    switch (op.kind) {
      case CondKind::Halt:
        next.halt = true;
        return next;
      case CondKind::Always:
        cond = true;
        break;
      case CondKind::CcTrue:
        cond = ccs.read(op.index);
        break;
      case CondKind::SyncDone:
        cond = ss.get(op.index) == SyncVal::Done;
        break;
      case CondKind::AllSync:
        cond = ss.allDone(op.mask);
        break;
      case CondKind::AnySync:
        cond = ss.anyDone(op.mask);
        break;
      default:
        panic("evaluateControlOp: bad condition kind");
    }
    next.taken = cond;
    next.pc = cond ? op.t1 : op.t2;
    return next;
}

} // namespace ximd
