#include "sim/sync_bus.hh"

#include "support/logging.hh"

namespace ximd {

SyncBus::SyncBus(FuId numFus)
    : vals_(numFus, SyncVal::Done)
{
    if (numFus == 0 || numFus > kMaxFus)
        fatal("sync bus size ", numFus, " outside supported range 1..",
              kMaxFus);
}

void
SyncBus::beginCycle()
{
    for (auto &v : vals_)
        v = SyncVal::Done;
}

void
SyncBus::checkIndex(FuId fu) const
{
    if (fu >= vals_.size())
        fatal("sync signal ss", fu, " out of range (", vals_.size(),
              " FUs)");
}

void
SyncBus::set(FuId fu, SyncVal v)
{
    checkIndex(fu);
    vals_[fu] = v;
}

SyncVal
SyncBus::get(FuId fu) const
{
    checkIndex(fu);
    return vals_[fu];
}

std::uint32_t
SyncBus::effectiveMask(std::uint32_t mask) const
{
    return mask & fuMaskAll(numFus());
}

bool
SyncBus::allDone(std::uint32_t mask) const
{
    const std::uint32_t m = effectiveMask(mask);
    XIMD_ASSERT(m != 0, "barrier mask selects no existing FU");
    for (FuId i = 0; i < numFus(); ++i)
        if ((m & (1u << i)) && vals_[i] != SyncVal::Done)
            return false;
    return true;
}

bool
SyncBus::anyDone(std::uint32_t mask) const
{
    const std::uint32_t m = effectiveMask(mask);
    XIMD_ASSERT(m != 0, "any-sync mask selects no existing FU");
    for (FuId i = 0; i < numFus(); ++i)
        if ((m & (1u << i)) && vals_[i] == SyncVal::Done)
            return true;
    return false;
}

void
SyncBus::saveState(StateWriter &w) const
{
    w.tag("SYNC");
    w.count(vals_.size());
    for (SyncVal v : vals_)
        w.u8(static_cast<std::uint8_t>(v));
}

void
SyncBus::loadState(StateReader &r)
{
    r.checkTag("SYNC");
    const std::size_t n = r.count(kMaxFus);
    if (n != vals_.size())
        fatal("sync-bus state has ", n, " FUs, this machine has ",
              vals_.size());
    for (auto &v : vals_)
        v = static_cast<SyncVal>(r.u8());
}

std::string
SyncBus::formatted() const
{
    std::string s;
    s.reserve(vals_.size());
    for (SyncVal v : vals_)
        s += v == SyncVal::Done ? 'D' : 'B';
    return s;
}

} // namespace ximd
