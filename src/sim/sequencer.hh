/**
 * @file
 * The per-FU instruction sequencer (Figure 8 of the paper).
 *
 * Each FU's next-state function delta_i selects between the parcel's
 * two explicit branch targets by evaluating the condition-selection
 * criteria against the distributed condition codes (registered,
 * beginning-of-cycle values) and synchronization signals (combinational
 * current-cycle values).
 */

#ifndef XIMD_SIM_SEQUENCER_HH
#define XIMD_SIM_SEQUENCER_HH

#include "isa/control_op.hh"
#include "sim/cond_codes.hh"
#include "sim/sync_bus.hh"

namespace ximd {

/** Result of evaluating a control operation. */
struct NextPc
{
    bool halt = false;  ///< The FU stops after this cycle.
    bool taken = false; ///< Condition evaluated TRUE (t1 selected).
    InstAddr pc = 0;    ///< Next instruction address (when !halt).
};

/**
 * Evaluate one control operation.
 *
 * @param op   the parcel's control fields.
 * @param ccs  condition codes (beginning-of-cycle values).
 * @param ss   sync signals (current-cycle values).
 */
NextPc evaluateControlOp(const ControlOp &op, const CondCodeFile &ccs,
                         const SyncBus &ss);

} // namespace ximd

#endif // XIMD_SIM_SEQUENCER_HH
