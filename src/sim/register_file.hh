/**
 * @file
 * The global multi-ported register file.
 *
 * XIMD-1 (section 2.2): 256 global registers; "the register file
 * simultaneously supports two reads and one write per functional unit
 * for a total of 16 reads and 8 writes per cycle". The prototype
 * realizes this as the custom 24-port chip of section 4.4.
 *
 * Cycle discipline: reads during a cycle observe beginning-of-cycle
 * values; writes are queued and committed at end of cycle. Two FUs
 * writing the same register in one cycle is undefined behaviour in the
 * architecture; the simulator detects it and, by default, faults.
 */

#ifndef XIMD_SIM_REGISTER_FILE_HH
#define XIMD_SIM_REGISTER_FILE_HH

#include <cstdint>
#include <vector>

#include "support/state_io.hh"
#include "support/types.hh"

namespace ximd {

/** Policy for architecturally-undefined same-cycle write conflicts. */
enum class ConflictPolicy : std::uint8_t {
    Fault,      ///< Throw FatalError (default; surfaces program bugs).
    LowestFuWins, ///< Deterministic arbitration: lowest FU id commits.
};

/** The global register file with end-of-cycle write commit. */
class RegisterFile
{
  public:
    explicit RegisterFile(RegId count = kNumRegisters,
                          ConflictPolicy policy = ConflictPolicy::Fault);

    RegId count() const { return count_; }

    /** Read the beginning-of-cycle value of register @p r. */
    Word read(RegId r) const;

    /** Queue a write from @p fu; visible after commit(). */
    void queueWrite(RegId r, Word value, FuId fu);

    /** Apply all queued writes; detects same-register conflicts. */
    void commit();

    /** Discard queued writes (used on machine fault). */
    void squash() { pending_.clear(); }

    /** Test/debug: set a register immediately. */
    void poke(RegId r, Word value);

    /** Test/debug: alias of read(). */
    Word peek(RegId r) const { return read(r); }

    /** Total architectural reads observed. */
    std::uint64_t readCount() const { return reads_; }

    /** Total committed writes. */
    std::uint64_t writeCount() const { return writes_; }

    /// @name Checkpointing (see DESIGN.md section 9).
    /// @{
    /** Serialize full state (contents, queued writes, counters). */
    void saveState(StateWriter &w) const;

    /**
     * Restore state saved by saveState(). The file must have been
     * constructed with the same register count and conflict policy;
     * throws FatalError otherwise.
     */
    void loadState(StateReader &r);

    /** Stable 64-bit hash of the serialized state. */
    std::uint64_t stateHash() const { return stateHashOf(*this); }

    /** Fold only the architectural contents (register values) into @p h. */
    void hashContents(Hash64 &h) const;
    /// @}

  private:
    // The threaded execution backend (core/threaded_backend.cc) reads
    // and commits register values directly and bulk-updates the
    // counters; it must preserve exactly what saveState() serializes.
    friend class ThreadedBackend;

    struct PendingWrite
    {
        RegId reg;
        Word value;
        FuId fu;
    };

    void checkIndex(RegId r) const;

    RegId count_;
    ConflictPolicy policy_;
    std::vector<Word> regs_;
    std::vector<PendingWrite> pending_;
    mutable std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace ximd

#endif // XIMD_SIM_REGISTER_FILE_HH
