/**
 * @file
 * Delayed write-back pipeline for the prototype's 3-stage datapath.
 *
 * Section 4.3: the hardware prototype differs from the research model
 * by a "3-stage Data Path Pipeline (Operand Fetch - Execute - Write
 * Back)" with a non-pipelined control path. We model this with a
 * configurable result latency L: an operation issued in cycle t makes
 * its register / condition-code / memory write visible at the
 * beginning of cycle t + L (L = 1 is the research model's end-of-
 * cycle commit). The control path stays single-cycle: branches still
 * take effect the next cycle, reading whatever CC values have been
 * written back so far — exactly why latency-1 code is miscompiled for
 * the prototype and the compiler must be told (CodegenOptions::
 * rawLatency).
 *
 * Memory reads are modeled at issue time (idealized memory); only the
 * write-back side is delayed. Same-cycle write-back races fault
 * through the usual RegisterFile/Memory conflict detection.
 */

#ifndef XIMD_SIM_WRITE_PIPELINE_HH
#define XIMD_SIM_WRITE_PIPELINE_HH

#include <vector>

#include "sim/cond_codes.hh"
#include "sim/memory.hh"
#include "sim/register_file.hh"
#include "support/state_io.hh"
#include "support/types.hh"

namespace ximd {

/** In-flight write-backs, bucketed by due cycle. */
class WritePipeline
{
  public:
    /** @param latency  cycles from issue to visibility (>= 1). */
    explicit WritePipeline(unsigned latency);

    unsigned latency() const { return latency_; }

    /** True when nothing is in flight. */
    bool empty() const;

    /// @name Issue-time capture (during cycle @p now).
    /// @{
    void pushReg(Cycle now, RegId reg, Word value, FuId fu);
    void pushCc(Cycle now, FuId fu, bool value);
    void pushStore(Cycle now, Addr addr, Word value, FuId fu);
    /// @}

    /**
     * Move every write due at the end of cycle @p now into the
     * architectural structures (which then commit them as usual).
     */
    void drainInto(Cycle now, RegisterFile &regs, Memory &mem,
                   CondCodeFile &ccs);

    /** Drop all in-flight writes (machine fault). */
    void squash();

    /// @name Checkpointing (see DESIGN.md section 9).
    /// @{
    /** Serialize all in-flight write-backs. */
    void saveState(StateWriter &w) const;

    /** Restore state saved by saveState(); latencies must match. */
    void loadState(StateReader &r);

    /** Stable 64-bit hash of the serialized state. */
    std::uint64_t stateHash() const { return stateHashOf(*this); }
    /// @}

  private:
    struct RegWrite
    {
        Cycle due;
        RegId reg;
        Word value;
        FuId fu;
    };
    struct CcWrite
    {
        Cycle due;
        FuId fu;
        bool value;
    };
    struct MemWrite
    {
        Cycle due;
        Addr addr;
        Word value;
        FuId fu;
    };

    Cycle due(Cycle now) const { return now + latency_ - 1; }

    unsigned latency_;
    std::vector<RegWrite> regs_;
    std::vector<CcWrite> ccs_;
    std::vector<MemWrite> mems_;
};

} // namespace ximd

#endif // XIMD_SIM_WRITE_PIPELINE_HH
