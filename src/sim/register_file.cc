#include "sim/register_file.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ximd {

RegisterFile::RegisterFile(RegId count, ConflictPolicy policy)
    : count_(count), policy_(policy), regs_(count, 0)
{
    if (count == 0)
        fatal("register file must contain at least one register");
}

void
RegisterFile::checkIndex(RegId r) const
{
    if (r >= count_)
        fatal("register r", r, " out of range (file has ", count_,
              " registers)");
}

Word
RegisterFile::read(RegId r) const
{
    checkIndex(r);
    ++reads_;
    return regs_[r];
}

void
RegisterFile::queueWrite(RegId r, Word value, FuId fu)
{
    checkIndex(r);
    pending_.push_back({r, value, fu});
}

void
RegisterFile::commit()
{
    if (pending_.empty())
        return;
    // Detect same-register conflicts between distinct FUs.
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const PendingWrite &x, const PendingWrite &y) {
                         if (x.reg != y.reg)
                             return x.reg < y.reg;
                         return x.fu < y.fu;
                     });
    for (std::size_t i = 1; i < pending_.size(); ++i) {
        const auto &prev = pending_[i - 1];
        const auto &cur = pending_[i];
        if (prev.reg == cur.reg && prev.fu != cur.fu &&
            policy_ == ConflictPolicy::Fault) {
            pending_.clear();
            fatal("register write conflict: FU", prev.fu, " and FU",
                  cur.fu, " both write r", cur.reg, " this cycle");
        }
    }
    // LowestFuWins: later (higher-FU) writes to the same register are
    // skipped; under Fault we only reach here conflict-free.
    RegId last_reg = 0;
    bool have_last = false;
    for (const auto &w : pending_) {
        if (have_last && w.reg == last_reg)
            continue;
        regs_[w.reg] = w.value;
        ++writes_;
        last_reg = w.reg;
        have_last = true;
    }
    pending_.clear();
}

void
RegisterFile::poke(RegId r, Word value)
{
    checkIndex(r);
    regs_[r] = value;
}

void
RegisterFile::saveState(StateWriter &w) const
{
    w.tag("REGS");
    w.u16(count_);
    w.u8(static_cast<std::uint8_t>(policy_));
    for (Word v : regs_)
        w.u32(v);
    w.count(pending_.size());
    for (const PendingWrite &p : pending_) {
        w.u16(p.reg);
        w.u32(p.value);
        w.u32(p.fu);
    }
    w.u64(reads_);
    w.u64(writes_);
}

void
RegisterFile::loadState(StateReader &r)
{
    r.checkTag("REGS");
    const RegId count = r.u16();
    if (count != count_)
        fatal("register-file state has ", count, " registers, this "
              "machine has ", count_);
    const auto policy = static_cast<ConflictPolicy>(r.u8());
    if (policy != policy_)
        fatal("register-file state was saved under a different "
              "conflict policy");
    for (Word &v : regs_)
        v = r.u32();
    pending_.resize(r.count(kNumRegisters * kMaxFus));
    for (PendingWrite &p : pending_) {
        p.reg = r.u16();
        p.value = r.u32();
        p.fu = r.u32();
    }
    reads_ = r.u64();
    writes_ = r.u64();
}

void
RegisterFile::hashContents(Hash64 &h) const
{
    for (Word v : regs_)
        h.u32(v);
}

} // namespace ximd
