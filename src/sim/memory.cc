#include "sim/memory.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ximd {

Memory::Memory(std::size_t words, ConflictPolicy policy)
    : words_(words, 0), policy_(policy)
{
    if (words == 0)
        fatal("memory must contain at least one word");
}

void
Memory::attachDevice(Addr lo, Addr hi, IoDevice *device)
{
    XIMD_ASSERT(device != nullptr, "null device");
    if (lo > hi)
        fatal("device '", device->name(), "': window [", lo, ", ", hi,
              "] is empty");
    checkAddr(hi);
    for (const auto &w : windows_) {
        if (lo <= w.hi && w.lo <= hi)
            fatal("device '", device->name(), "' window [", lo, ", ", hi,
                  "] overlaps '", w.device->name(), "' [", w.lo, ", ",
                  w.hi, "]");
    }
    windows_.push_back({lo, hi, device});
}

void
Memory::checkAddr(Addr addr) const
{
    if (addr >= words_.size())
        fatal("memory address ", addr, " out of range (", words_.size(),
              " words)");
}

const Memory::DeviceWindow *
Memory::findWindow(Addr addr) const
{
    for (const auto &w : windows_)
        if (addr >= w.lo && addr <= w.hi)
            return &w;
    return nullptr;
}

Word
Memory::load(Addr addr, Cycle now)
{
    checkAddr(addr);
    ++loads_;
    if (const DeviceWindow *w = findWindow(addr))
        return w->device->read(addr - w->lo, now);
    return words_[addr];
}

void
Memory::queueStore(Addr addr, Word value, FuId fu)
{
    checkAddr(addr);
    pending_.push_back({addr, value, fu});
}

void
Memory::commit(Cycle now)
{
    if (pending_.empty())
        return;
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const PendingStore &x, const PendingStore &y) {
                         if (x.addr != y.addr)
                             return x.addr < y.addr;
                         return x.fu < y.fu;
                     });
    for (std::size_t i = 1; i < pending_.size(); ++i) {
        const auto &prev = pending_[i - 1];
        const auto &cur = pending_[i];
        if (prev.addr == cur.addr && prev.fu != cur.fu &&
            policy_ == ConflictPolicy::Fault) {
            pending_.clear();
            fatal("memory write conflict: FU", prev.fu, " and FU",
                  cur.fu, " both store to address ", cur.addr,
                  " this cycle");
        }
    }
    Addr last_addr = 0;
    bool have_last = false;
    for (const auto &s : pending_) {
        if (have_last && s.addr == last_addr)
            continue;
        if (const DeviceWindow *w = findWindow(s.addr))
            w->device->write(s.addr - w->lo, s.value, now);
        else
            words_[s.addr] = s.value;
        ++stores_;
        last_addr = s.addr;
        have_last = true;
    }
    pending_.clear();
}

void
Memory::poke(Addr addr, Word value)
{
    checkAddr(addr);
    if (findWindow(addr))
        fatal("poke() into device window at address ", addr);
    words_[addr] = value;
}

Word
Memory::peek(Addr addr) const
{
    checkAddr(addr);
    if (findWindow(addr))
        fatal("peek() into device window at address ", addr);
    return words_[addr];
}

std::vector<IoDevice *>
Memory::attachedDevices() const
{
    std::vector<IoDevice *> out;
    out.reserve(windows_.size());
    for (const DeviceWindow &w : windows_)
        out.push_back(w.device);
    return out;
}

void
Memory::saveState(StateWriter &w) const
{
    w.tag("MEMY");
    w.u64(words_.size());
    w.u8(static_cast<std::uint8_t>(policy_));

    // Run-length encode the word array: (count, value) pairs. The
    // idealized memory is 2^20 words and almost entirely zero, so
    // this keeps snapshots compact without a real compressor.
    std::uint64_t runs = 0;
    for (std::size_t i = 0; i < words_.size();) {
        std::size_t j = i + 1;
        while (j < words_.size() && words_[j] == words_[i])
            ++j;
        ++runs;
        i = j;
    }
    w.count(runs);
    for (std::size_t i = 0; i < words_.size();) {
        std::size_t j = i + 1;
        while (j < words_.size() && words_[j] == words_[i])
            ++j;
        w.u64(j - i);
        w.u32(words_[i]);
        i = j;
    }

    w.count(pending_.size());
    for (const PendingStore &p : pending_) {
        w.u32(p.addr);
        w.u32(p.value);
        w.u32(p.fu);
    }
    w.u64(loads_);
    w.u64(stores_);

    w.count(windows_.size());
    for (const DeviceWindow &win : windows_) {
        w.u32(win.lo);
        w.u32(win.hi);
        w.str(win.device->name());
        win.device->saveState(w);
    }
}

void
Memory::loadState(StateReader &r)
{
    r.checkTag("MEMY");
    const std::uint64_t size = r.u64();
    if (size != words_.size())
        fatal("memory state has ", size, " words, this machine has ",
              words_.size());
    const auto policy = static_cast<ConflictPolicy>(r.u8());
    if (policy != policy_)
        fatal("memory state was saved under a different conflict "
              "policy");

    const std::size_t runs = r.count(words_.size());
    std::size_t at = 0;
    for (std::size_t i = 0; i < runs; ++i) {
        const std::uint64_t len = r.u64();
        const Word value = r.u32();
        if (len > words_.size() - at)
            fatal("memory state run overflows the word array at word ",
                  at);
        for (std::uint64_t k = 0; k < len; ++k)
            words_[at++] = value;
    }
    if (at != words_.size())
        fatal("memory state covers ", at, " of ", words_.size(),
              " words");

    pending_.resize(r.count(words_.size()));
    for (PendingStore &p : pending_) {
        p.addr = r.u32();
        p.value = r.u32();
        p.fu = r.u32();
    }
    loads_ = r.u64();
    stores_ = r.u64();

    const std::size_t nwin = r.count(1u << 16);
    if (nwin != windows_.size())
        fatal("memory state has ", nwin, " device windows, this "
              "machine has ", windows_.size(),
              " (restore requires the fixture to re-attach the same "
              "devices first)");
    for (DeviceWindow &win : windows_) {
        const Addr lo = r.u32();
        const Addr hi = r.u32();
        const std::string name = r.str();
        if (lo != win.lo || hi != win.hi || name != win.device->name())
            fatal("memory state window [", lo, ", ", hi, "] '", name,
                  "' does not match attached window [", win.lo, ", ",
                  win.hi, "] '", win.device->name(), "'");
        win.device->loadState(r);
    }
}

void
Memory::hashContents(Hash64 &h) const
{
    // Hash as runs so the cost tracks occupancy, not capacity: the
    // idealized memory is 2^20 words and campaigns hash every job.
    for (std::size_t i = 0; i < words_.size();) {
        std::size_t j = i + 1;
        while (j < words_.size() && words_[j] == words_[i])
            ++j;
        h.u64(j - i);
        h.u32(words_[i]);
        i = j;
    }
}

} // namespace ximd
