#include "sim/memory.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ximd {

Memory::Memory(std::size_t words, ConflictPolicy policy)
    : words_(words, 0), policy_(policy)
{
    if (words == 0)
        fatal("memory must contain at least one word");
}

void
Memory::attachDevice(Addr lo, Addr hi, IoDevice *device)
{
    XIMD_ASSERT(device != nullptr, "null device");
    if (lo > hi)
        fatal("device '", device->name(), "': window [", lo, ", ", hi,
              "] is empty");
    checkAddr(hi);
    for (const auto &w : windows_) {
        if (lo <= w.hi && w.lo <= hi)
            fatal("device '", device->name(), "' window [", lo, ", ", hi,
                  "] overlaps '", w.device->name(), "' [", w.lo, ", ",
                  w.hi, "]");
    }
    windows_.push_back({lo, hi, device});
}

void
Memory::checkAddr(Addr addr) const
{
    if (addr >= words_.size())
        fatal("memory address ", addr, " out of range (", words_.size(),
              " words)");
}

const Memory::DeviceWindow *
Memory::findWindow(Addr addr) const
{
    for (const auto &w : windows_)
        if (addr >= w.lo && addr <= w.hi)
            return &w;
    return nullptr;
}

Word
Memory::load(Addr addr, Cycle now)
{
    checkAddr(addr);
    ++loads_;
    if (const DeviceWindow *w = findWindow(addr))
        return w->device->read(addr - w->lo, now);
    return words_[addr];
}

void
Memory::queueStore(Addr addr, Word value, FuId fu)
{
    checkAddr(addr);
    pending_.push_back({addr, value, fu});
}

void
Memory::commit(Cycle now)
{
    if (pending_.empty())
        return;
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const PendingStore &x, const PendingStore &y) {
                         if (x.addr != y.addr)
                             return x.addr < y.addr;
                         return x.fu < y.fu;
                     });
    for (std::size_t i = 1; i < pending_.size(); ++i) {
        const auto &prev = pending_[i - 1];
        const auto &cur = pending_[i];
        if (prev.addr == cur.addr && prev.fu != cur.fu &&
            policy_ == ConflictPolicy::Fault) {
            pending_.clear();
            fatal("memory write conflict: FU", prev.fu, " and FU",
                  cur.fu, " both store to address ", cur.addr,
                  " this cycle");
        }
    }
    Addr last_addr = 0;
    bool have_last = false;
    for (const auto &s : pending_) {
        if (have_last && s.addr == last_addr)
            continue;
        if (const DeviceWindow *w = findWindow(s.addr))
            w->device->write(s.addr - w->lo, s.value, now);
        else
            words_[s.addr] = s.value;
        ++stores_;
        last_addr = s.addr;
        have_last = true;
    }
    pending_.clear();
}

void
Memory::poke(Addr addr, Word value)
{
    checkAddr(addr);
    if (findWindow(addr))
        fatal("poke() into device window at address ", addr);
    words_[addr] = value;
}

Word
Memory::peek(Addr addr) const
{
    checkAddr(addr);
    if (findWindow(addr))
        fatal("peek() into device window at address ", addr);
    return words_[addr];
}

} // namespace ximd
