/**
 * @file
 * Memory-mapped I/O devices with bounded-nondeterministic timing.
 *
 * Section 3.4 / Figure 12 of the paper: "Each process reads some data
 * from an I/O port until the port returns a non-zero, valid value."
 * The arrival time is outside compiler control. We model this with a
 * scripted input port: each value carries an arrival cycle; loads
 * before arrival return 0, the first load at-or-after arrival returns
 * (and consumes) the value. An output port records every word written
 * together with its cycle, so tests and benches can check ordering and
 * latency.
 */

#ifndef XIMD_SIM_IO_PORT_HH
#define XIMD_SIM_IO_PORT_HH

#include <deque>
#include <string>
#include <vector>

#include "support/state_io.hh"
#include "support/types.hh"

namespace ximd {

/** Interface for devices mapped into the shared address space. */
class IoDevice
{
  public:
    virtual ~IoDevice() = default;

    /** Combinational read of @p offset within the device window. */
    virtual Word read(Addr offset, Cycle now) = 0;

    /** End-of-cycle write to @p offset within the device window. */
    virtual void write(Addr offset, Word value, Cycle now) = 0;

    /** Human-readable name for diagnostics. */
    virtual std::string name() const = 0;

    /// @name Checkpointing (see DESIGN.md section 9).
    ///
    /// Devices are attached by fixtures, not owned by the machine, so
    /// a snapshot stores each window's device state in attachment
    /// order and restore requires the same windows to be re-attached
    /// first. Stateless devices can keep the no-op defaults.
    /// @{
    virtual void saveState(StateWriter &w) const { (void)w; }
    virtual void loadState(StateReader &r) { (void)r; }
    /// @}
};

/**
 * Input port delivering scripted values at scripted cycles.
 *
 * Reads at any offset behave identically (the port is one word wide;
 * the window is usually a single address). A read before the head
 * value's arrival cycle returns 0; a read at or after it returns the
 * value and pops it. Writes are ignored (and counted, for tests).
 */
class ScriptedInputPort : public IoDevice
{
  public:
    explicit ScriptedInputPort(std::string name);

    /** Schedule @p value (must be non-zero) to arrive at @p cycle. */
    void schedule(Cycle cycle, Word value);

    Word read(Addr offset, Cycle now) override;
    void write(Addr offset, Word value, Cycle now) override;
    std::string name() const override { return name_; }

    /** Number of reads that polled before data was ready. */
    std::uint64_t emptyPolls() const { return emptyPolls_; }

    /** Number of values consumed so far. */
    std::uint64_t consumed() const { return consumed_; }

    /** True when all scheduled values have been consumed. */
    bool drained() const { return queue_.empty(); }

    /**
     * Push every not-yet-consumed arrival @p extra cycles into the
     * future (the fault engine's I/O delay perturbation).
     */
    void delayPending(Cycle extra);

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    struct Item
    {
        Cycle arrival;
        Word value;
    };

    std::string name_;
    std::deque<Item> queue_;
    std::uint64_t emptyPolls_ = 0;
    std::uint64_t consumed_ = 0;
    std::uint64_t ignoredWrites_ = 0;
};

/** Output port recording every written word with its cycle. */
class OutputPort : public IoDevice
{
  public:
    explicit OutputPort(std::string name);

    Word read(Addr offset, Cycle now) override;
    void write(Addr offset, Word value, Cycle now) override;
    std::string name() const override { return name_; }

    struct Record
    {
        Cycle cycle;
        Word value;
    };

    /** All words written, in commit order. */
    const std::vector<Record> &records() const { return records_; }

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    std::string name_;
    std::vector<Record> records_;
};

} // namespace ximd

#endif // XIMD_SIM_IO_PORT_HH
