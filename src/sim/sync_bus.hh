/**
 * @file
 * The synchronization-signal distribution bus.
 *
 * Section 2.2 / Figure 8: every instruction parcel carries a two-valued
 * synchronization field SSi (BUSY / DONE) that is "distributed to the
 * other functional units for use in process synchronization". The SS
 * value is an *instruction field*, not a register: the hardware wires
 * it combinationally into every FU's branch-condition PAL, so a branch
 * evaluated in cycle t sees the SS values emitted by the parcels
 * executing in cycle t.
 *
 * Halted FUs have no executing parcel; their SS reads DONE so that
 * whole-machine barriers cannot deadlock on dead units (programs that
 * need finer control use masked barriers).
 */

#ifndef XIMD_SIM_SYNC_BUS_HH
#define XIMD_SIM_SYNC_BUS_HH

#include <string>
#include <vector>

#include "isa/control_op.hh"
#include "support/state_io.hh"
#include "support/types.hh"

namespace ximd {

/** Current-cycle SS values of every FU. */
class SyncBus
{
  public:
    explicit SyncBus(FuId numFus);

    FuId numFus() const { return static_cast<FuId>(vals_.size()); }

    /** Reset all signals to DONE at the start of a cycle. */
    void beginCycle();

    /** Drive FU @p fu's signal for the current cycle. */
    void set(FuId fu, SyncVal v);

    /** Current-cycle value of SS[fu]. */
    SyncVal get(FuId fu) const;

    /** True when every masked, existing FU signals DONE. */
    bool allDone(std::uint32_t mask = ~0u) const;

    /** True when at least one masked, existing FU signals DONE. */
    bool anyDone(std::uint32_t mask = ~0u) const;

    /** One char per FU: 'D' or 'B'. */
    std::string formatted() const;

    /// @name Checkpointing (see DESIGN.md section 9).
    ///
    /// SS values are per-cycle combinational state, re-driven from
    /// the executing parcels at every fetch; they are serialized
    /// anyway so a snapshot is a complete bit-image of the machine.
    /// @{
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);
    std::uint64_t stateHash() const { return stateHashOf(*this); }
    /// @}

  private:
    void checkIndex(FuId fu) const;

    /** Restrict @p mask to FUs that exist. */
    std::uint32_t effectiveMask(std::uint32_t mask) const;

    std::vector<SyncVal> vals_;
};

} // namespace ximd

#endif // XIMD_SIM_SYNC_BUS_HH
