/**
 * @file
 * The universal functional-unit datapath.
 *
 * "The model contains 8 homogeneous universal functional units. These
 * functional units can perform a wide variety of operations on multiple
 * data types. Each functional unit is essentially capable of performing
 * all of the operations of a RISC type processor, including loads,
 * stores, and branches." (section 2.2)
 *
 * executeDataOp() evaluates one data operation against an ExecContext,
 * which supplies operand values and absorbs the operation's effects
 * (queued register/CC writes, memory traffic). The split keeps the
 * arithmetic semantics in one place, shared by xsim, vsim, and unit
 * tests with mock contexts.
 */

#ifndef XIMD_SIM_DATAPATH_HH
#define XIMD_SIM_DATAPATH_HH

#include "isa/data_op.hh"
#include "support/types.hh"

namespace ximd {

/** Per-FU view of machine state during one cycle. */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;

    /** Resolve a source operand (register read or immediate). */
    virtual Word readOperand(const Operand &op) = 0;

    /** Combinational memory read (1-cycle idealized memory). */
    virtual Word loadMem(Addr addr) = 0;

    /** Queue a store; commits at end of cycle. */
    virtual void storeMem(Addr addr, Word value) = 0;

    /** Queue a register write; commits at end of cycle. */
    virtual void writeReg(RegId reg, Word value) = 0;

    /** Queue this FU's compare result; commits at end of cycle. */
    virtual void writeCc(bool value) = 0;
};

/**
 * Execute one data operation.
 *
 * Integer semantics: two's-complement wraparound for add/sub/mult/neg;
 * shifts use the low five bits of the shift amount; idiv/imod are
 * signed-truncating and fault (FatalError) on a zero divisor; the
 * INT_MIN/-1 overflow case wraps to INT_MIN. Float semantics are IEEE
 * single precision as provided by the host.
 *
 * @param op   the operation; must be validate()-clean.
 * @param ctx  per-FU machine access.
 */
void executeDataOp(const DataOp &op, ExecContext &ctx);

} // namespace ximd

#endif // XIMD_SIM_DATAPATH_HH
