/**
 * @file
 * Scalar arithmetic of the universal FU datapath, as inline helpers.
 *
 * The semantics pinned down in datapath.hh (two's-complement
 * wraparound, 5-bit shift amounts, signed-truncating idiv/imod with a
 * divide-by-zero fault, host IEEE single-precision floats) live here
 * so the virtual-dispatch interpreter (sim/datapath.cc) and the
 * predecoded hot loop (core/machine_core.cc) share one definition.
 */

#ifndef XIMD_SIM_ALU_HH
#define XIMD_SIM_ALU_HH

#include <limits>

#include "isa/opcode.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace ximd::alu {

inline Word
intBinary(Opcode op, Word wa, Word wb)
{
    const SWord a = wordToInt(wa);
    const SWord b = wordToInt(wb);
    switch (op) {
      case Opcode::Iadd:
        return wa + wb;
      case Opcode::Isub:
        return wa - wb;
      case Opcode::Imult:
        return intToWord(static_cast<SWord>(
            static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)));
      case Opcode::Idiv:
        if (b == 0)
            fatal("integer divide by zero");
        if (a == std::numeric_limits<SWord>::min() && b == -1)
            return intToWord(std::numeric_limits<SWord>::min());
        return intToWord(a / b);
      case Opcode::Imod:
        if (b == 0)
            fatal("integer modulo by zero");
        if (a == std::numeric_limits<SWord>::min() && b == -1)
            return 0;
        return intToWord(a % b);
      case Opcode::And:
        return wa & wb;
      case Opcode::Or:
        return wa | wb;
      case Opcode::Xor:
        return wa ^ wb;
      case Opcode::Shl:
        return wa << (wb & 31u);
      case Opcode::Shr:
        return wa >> (wb & 31u);
      case Opcode::Sar:
        return intToWord(a >> (wb & 31u));
      default:
        panic("intBinary: unexpected opcode ", opcodeName(op));
    }
}

inline bool
intCompare(Opcode op, Word wa, Word wb)
{
    const SWord a = wordToInt(wa);
    const SWord b = wordToInt(wb);
    switch (op) {
      case Opcode::Eq: return a == b;
      case Opcode::Ne: return a != b;
      case Opcode::Lt: return a < b;
      case Opcode::Le: return a <= b;
      case Opcode::Gt: return a > b;
      case Opcode::Ge: return a >= b;
      default:
        panic("intCompare: unexpected opcode ", opcodeName(op));
    }
}

inline Word
floatBinary(Opcode op, Word wa, Word wb)
{
    const float a = wordToFloat(wa);
    const float b = wordToFloat(wb);
    switch (op) {
      case Opcode::Fadd:  return floatToWord(a + b);
      case Opcode::Fsub:  return floatToWord(a - b);
      case Opcode::Fmult: return floatToWord(a * b);
      case Opcode::Fdiv:  return floatToWord(a / b);
      default:
        panic("floatBinary: unexpected opcode ", opcodeName(op));
    }
}

inline bool
floatCompare(Opcode op, Word wa, Word wb)
{
    const float a = wordToFloat(wa);
    const float b = wordToFloat(wb);
    switch (op) {
      case Opcode::Feq: return a == b;
      case Opcode::Fne: return a != b;
      case Opcode::Flt: return a < b;
      case Opcode::Fle: return a <= b;
      case Opcode::Fgt: return a > b;
      case Opcode::Fge: return a >= b;
      default:
        panic("floatCompare: unexpected opcode ", opcodeName(op));
    }
}

} // namespace ximd::alu

#endif // XIMD_SIM_ALU_HH
