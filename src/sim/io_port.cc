#include "sim/io_port.hh"

#include "support/logging.hh"

namespace ximd {

ScriptedInputPort::ScriptedInputPort(std::string name)
    : name_(std::move(name))
{
}

void
ScriptedInputPort::schedule(Cycle cycle, Word value)
{
    if (value == 0)
        fatal("input port '", name_, "': scheduled value must be "
              "non-zero (zero means 'not ready', per the paper's "
              "polling protocol)");
    if (!queue_.empty() && queue_.back().arrival > cycle)
        fatal("input port '", name_, "': arrivals must be scheduled in "
              "non-decreasing cycle order");
    queue_.push_back({cycle, value});
}

Word
ScriptedInputPort::read(Addr, Cycle now)
{
    if (queue_.empty() || queue_.front().arrival > now) {
        ++emptyPolls_;
        return 0;
    }
    const Word v = queue_.front().value;
    queue_.pop_front();
    ++consumed_;
    return v;
}

void
ScriptedInputPort::write(Addr, Word, Cycle)
{
    ++ignoredWrites_;
}

void
ScriptedInputPort::delayPending(Cycle extra)
{
    for (Item &item : queue_)
        item.arrival += extra;
}

void
ScriptedInputPort::saveState(StateWriter &w) const
{
    w.tag("IPRT");
    w.str(name_);
    w.count(queue_.size());
    for (const Item &item : queue_) {
        w.u64(item.arrival);
        w.u32(item.value);
    }
    w.u64(emptyPolls_);
    w.u64(consumed_);
    w.u64(ignoredWrites_);
}

void
ScriptedInputPort::loadState(StateReader &r)
{
    r.checkTag("IPRT");
    const std::string name = r.str();
    if (name != name_)
        fatal("input port state is for '", name, "', this port is '",
              name_, "'");
    queue_.resize(r.count(1u << 24));
    for (Item &item : queue_) {
        item.arrival = r.u64();
        item.value = r.u32();
    }
    emptyPolls_ = r.u64();
    consumed_ = r.u64();
    ignoredWrites_ = r.u64();
}

OutputPort::OutputPort(std::string name)
    : name_(std::move(name))
{
}

Word
OutputPort::read(Addr, Cycle)
{
    // Reading an output port returns the most recently written word,
    // or 0 when nothing has been written yet.
    return records_.empty() ? 0 : records_.back().value;
}

void
OutputPort::write(Addr, Word value, Cycle now)
{
    records_.push_back({now, value});
}

void
OutputPort::saveState(StateWriter &w) const
{
    w.tag("OPRT");
    w.str(name_);
    w.count(records_.size());
    for (const Record &rec : records_) {
        w.u64(rec.cycle);
        w.u32(rec.value);
    }
}

void
OutputPort::loadState(StateReader &r)
{
    r.checkTag("OPRT");
    const std::string name = r.str();
    if (name != name_)
        fatal("output port state is for '", name, "', this port is '",
              name_, "'");
    records_.resize(r.count(1u << 24));
    for (Record &rec : records_) {
        rec.cycle = r.u64();
        rec.value = r.u32();
    }
}

} // namespace ximd
