#include "sim/io_port.hh"

#include "support/logging.hh"

namespace ximd {

ScriptedInputPort::ScriptedInputPort(std::string name)
    : name_(std::move(name))
{
}

void
ScriptedInputPort::schedule(Cycle cycle, Word value)
{
    if (value == 0)
        fatal("input port '", name_, "': scheduled value must be "
              "non-zero (zero means 'not ready', per the paper's "
              "polling protocol)");
    if (!queue_.empty() && queue_.back().arrival > cycle)
        fatal("input port '", name_, "': arrivals must be scheduled in "
              "non-decreasing cycle order");
    queue_.push_back({cycle, value});
}

Word
ScriptedInputPort::read(Addr, Cycle now)
{
    if (queue_.empty() || queue_.front().arrival > now) {
        ++emptyPolls_;
        return 0;
    }
    const Word v = queue_.front().value;
    queue_.pop_front();
    ++consumed_;
    return v;
}

void
ScriptedInputPort::write(Addr, Word, Cycle)
{
    ++ignoredWrites_;
}

OutputPort::OutputPort(std::string name)
    : name_(std::move(name))
{
}

Word
OutputPort::read(Addr, Cycle)
{
    // Reading an output port returns the most recently written word,
    // or 0 when nothing has been written yet.
    return records_.empty() ? 0 : records_.back().value;
}

void
OutputPort::write(Addr, Word value, Cycle now)
{
    records_.push_back({now, value});
}

} // namespace ximd
