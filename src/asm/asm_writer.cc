#include "asm/asm_writer.hh"

#include <map>
#include <sstream>
#include <vector>

#include "support/logging.hh"

namespace ximd {

namespace {

/** Registers print as rN: unambiguous regardless of name bindings. */
std::string
regText(RegId r)
{
    return "r" + std::to_string(r);
}

/** Immediates print as raw unsigned words: bit-exact for floats too. */
std::string
immText(Word w)
{
    return "#" + std::to_string(w);
}

std::string
operandText(const Operand &o)
{
    if (o.isReg())
        return regText(o.regId());
    return immText(o.immValue());
}

std::string
dataText(const DataOp &d)
{
    if (d.isNop())
        return "nop";
    const OpInfo &info = opInfo(d.op);
    std::ostringstream os;
    os << info.name;
    bool first = true;
    auto emit = [&](const std::string &s) {
        os << (first ? " " : ",") << s;
        first = false;
    };
    if (info.numSrcs >= 1)
        emit(operandText(d.a));
    if (info.numSrcs >= 2)
        emit(operandText(d.b));
    if (info.hasDest)
        emit(regText(d.dest));
    return os.str();
}

std::string
ctrlText(const ControlOp &c)
{
    std::ostringstream os;
    auto mask = [&]() {
        if (c.mask == ~0u)
            return std::string();
        std::ostringstream m;
        m << "(";
        bool first = true;
        for (FuId i = 0; i < kMaxFus; ++i) {
            if (c.mask & (1u << i)) {
                if (!first)
                    m << ",";
                m << unsigned(i);
                first = false;
            }
        }
        m << ")";
        return m.str();
    };
    switch (c.kind) {
      case CondKind::Always:
        os << "-> " << c.t1;
        break;
      case CondKind::CcTrue:
        os << "if cc" << unsigned(c.index) << " " << c.t1 << " "
           << c.t2;
        break;
      case CondKind::SyncDone:
        os << "if ss" << unsigned(c.index) << " " << c.t1 << " "
           << c.t2;
        break;
      case CondKind::AllSync:
        os << "if all" << mask() << " " << c.t1 << " " << c.t2;
        break;
      case CondKind::AnySync:
        os << "if any" << mask() << " " << c.t1 << " " << c.t2;
        break;
      case CondKind::Halt:
        os << "halt";
        break;
    }
    return os.str();
}

} // namespace

std::string
writeAssembly(const Program &prog)
{
    std::ostringstream os;
    os << ".fus " << unsigned(prog.width()) << "\n";

    // Register names, by index so auto-allocation never interferes.
    for (const auto &[r, name] : prog.regNames())
        os << ".reg " << name << " " << unsigned(r) << "\n";

    // The assembler pre-defines maxint/minint and would reject a
    // redefinition, so those builtins are never re-emitted.
    for (const auto &[name, value] : prog.symbols()) {
        if ((name == "maxint" && value == 0x7FFFFFFFu) ||
            (name == "minint" && value == 0x80000000u))
            continue;
        os << ".const " << name << " " << value << "\n";
    }

    // Initializers keep program order (later writes win, like the
    // loader); .init accepts the rN numeric form for unnamed regs.
    for (const auto &[r, value] : prog.regInit())
        os << ".init r" << unsigned(r) << " " << value << "\n";

    // Memory initializers, coalescing runs of consecutive addresses.
    const auto &mem = prog.memInit();
    for (std::size_t i = 0; i < mem.size();) {
        std::size_t j = i + 1;
        while (j < mem.size() && mem[j].first == mem[j - 1].first + 1)
            ++j;
        os << ".word " << mem[i].first;
        for (std::size_t k = i; k < j; ++k)
            os << " " << mem[k].second;
        os << "\n";
        i = j;
    }

    // Labels by address so each can prefix its row.
    std::multimap<InstAddr, std::string> labelsAt;
    for (const auto &[name, addr] : prog.labels())
        labelsAt.emplace(addr, name);

    for (InstAddr a = 0; a < prog.size(); ++a) {
        for (auto [it, end] = labelsAt.equal_range(a); it != end; ++it)
            os << it->second << ":\n";
        const InstRow &row = prog.row(a);
        for (FuId fu = 0; fu < prog.width(); ++fu) {
            if (fu)
                os << " || ";
            os << ctrlText(row[fu].ctrl) << " ; "
               << dataText(row[fu].data);
            if (row[fu].sync == SyncVal::Done)
                os << " ; done";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace ximd
