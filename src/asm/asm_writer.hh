/**
 * @file
 * Assembly writer: renders a Program back into the assembler's source
 * notation (assembler.hh), such that re-assembling the text rebuilds
 * an equivalent program.
 *
 * This is the inverse the compiler driver (xcc) needs: scheduler-
 * emitted Programs become `.ximd` files that xsim/vsim/ximd-lint can
 * consume without any C++ glue, and golden tests can diff compiler
 * output as stable text instead of binary dumps.
 *
 * Round-trip guarantee (tested in tests/asm/test_asm_writer.cc):
 * `assembleString(writeAssembly(p))` reproduces p's parcel grid,
 * register/memory initializers, named constants, register names and
 * row labels. Immediates are written as raw integers (floats by bit
 * pattern), so the round trip is bit-exact. Where one row carries
 * several labels, each is emitted; the label↔address maps survive,
 * though labelAt() may prefer a different one of the aliases.
 */

#ifndef XIMD_ASM_ASM_WRITER_HH
#define XIMD_ASM_ASM_WRITER_HH

#include <string>

#include "isa/program.hh"

namespace ximd {

/** Render @p prog as assembler source text. */
std::string writeAssembly(const Program &prog);

} // namespace ximd

#endif // XIMD_ASM_ASM_WRITER_HH
