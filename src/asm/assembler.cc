#include "asm/assembler.hh"

#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "support/logging.hh"
#include "support/str.hh"

namespace ximd {

namespace {

/** Assembly context built up across the two passes. */
class AsmContext
{
  public:
    explicit AsmContext(std::string_view source);

    Program assemble();

  private:
    struct RawRow
    {
        std::string text;
        int line;
    };

    [[noreturn]] void err(int line, const std::string &msg) const;

    void firstPass();
    void handleDirective(std::string_view body, int line);

    InstRow parseRow(const RawRow &raw);
    Parcel parseParcel(std::string_view text, InstAddr addr, FuId fu,
                       int line);
    ControlOp parseCtrl(std::string_view text, InstAddr addr, int line);
    DataOp parseData(std::string_view text, int line);
    Operand parseOperand(std::string_view text, int line);
    RegId parseRegister(std::string_view text, int line);
    InstAddr parseTarget(std::string_view text, int line);
    Word parseIntValue(std::string_view text, int line);
    long long parseIntLiteral(std::string_view text, int line,
                              bool *ok = nullptr);

    std::vector<std::string> lines_;
    std::map<std::string, Word, std::less<>> consts_;
    std::map<std::string, RegId, std::less<>> regs_;
    std::vector<bool> regUsed_;
    std::map<std::string, InstAddr, std::less<>> labels_;
    std::vector<RawRow> rows_;
    std::vector<std::pair<Addr, Word>> memInit_;
    std::vector<std::pair<RegId, Word>> regInit_;
    FuId width_ = 0;
    int widthLine_ = 0;
    Program prog_{1};
};

AsmContext::AsmContext(std::string_view source)
    : regUsed_(kNumRegisters, false)
{
    // Builtin constants used throughout the paper's examples.
    consts_["maxint"] = 0x7FFFFFFFu;
    consts_["minint"] = 0x80000000u;

    for (std::string_view raw : split(source, '\n')) {
        // Strip comments.
        std::size_t pos = raw.find("//");
        if (pos != std::string_view::npos)
            raw = raw.substr(0, pos);
        lines_.emplace_back(raw);
    }
}

void
AsmContext::err(int line, const std::string &msg) const
{
    throw AsmError(line, msg);
}

void
AsmContext::firstPass()
{
    bool sawDirectiveAfterRows = false;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const int line = static_cast<int>(i) + 1;
        std::string_view text = trim(lines_[i]);
        if (text.empty())
            continue;

        if (text[0] == '.') {
            if (!rows_.empty())
                sawDirectiveAfterRows = true;
            handleDirective(text, line);
            continue;
        }

        // One or more labels may prefix a row on the same line:
        //   "loop:  -> loop ; iadd k,#1,k"
        while (true) {
            std::size_t colon = text.find(':');
            if (colon == std::string_view::npos)
                break;
            std::string_view head = trim(text.substr(0, colon));
            // A label must be a single identifier; otherwise the ':'
            // belongs to something else (there is nothing else in this
            // grammar, so reject weird heads).
            if (head.empty() ||
                head.find_first_of(" \t,;|#") != std::string_view::npos)
                break;
            const auto addr = static_cast<InstAddr>(rows_.size());
            if (labels_.count(std::string(head)))
                err(line, "label '" + std::string(head) +
                              "' redefined");
            labels_.emplace(std::string(head), addr);
            text = trim(text.substr(colon + 1));
            if (text.empty())
                break;
        }
        if (text.empty())
            continue;
        rows_.push_back({std::string(text), line});
    }
    if (width_ == 0)
        fatal("asm: missing .fus directive");
    if (sawDirectiveAfterRows) {
        // Permitted (constants may be declared late), but register and
        // width declarations must precede use; width is checked above.
    }
}

void
AsmContext::handleDirective(std::string_view body, int line)
{
    std::istringstream is{std::string(body)};
    std::string word;
    is >> word;

    if (word == ".fus") {
        unsigned n = 0;
        if (!(is >> n) || n == 0 || n > kMaxFus)
            err(line, ".fus expects a count in 1.." +
                          std::to_string(kMaxFus));
        if (width_ != 0)
            err(line, "duplicate .fus directive");
        if (!rows_.empty())
            err(line, ".fus must precede instruction rows");
        width_ = n;
        widthLine_ = line;
        return;
    }

    if (word == ".reg") {
        std::string name;
        if (!(is >> name))
            err(line, ".reg expects a name");
        if (name.size() >= 2 && name[0] == 'r' &&
            name.find_first_not_of("0123456789", 1) == std::string::npos)
            err(line, "register name '" + name +
                          "' collides with rN numeric form");
        if (regs_.count(name))
            err(line, "register '" + name + "' redefined");
        long long idx = -1;
        std::string idxTok;
        if (is >> idxTok) {
            bool ok = false;
            idx = parseIntLiteral(idxTok, line, &ok);
            if (!ok || idx < 0 || idx >= kNumRegisters)
                err(line, "bad register index '" + idxTok + "'");
        } else {
            // Auto-allocate the lowest unused register.
            for (RegId r = 0; r < kNumRegisters; ++r) {
                if (!regUsed_[r]) {
                    idx = r;
                    break;
                }
            }
            if (idx < 0)
                err(line, "register file exhausted");
        }
        regUsed_[static_cast<std::size_t>(idx)] = true;
        regs_.emplace(name, static_cast<RegId>(idx));
        return;
    }

    if (word == ".const") {
        std::string name, valTok;
        if (!(is >> name >> valTok))
            err(line, ".const expects a name and a value");
        if (consts_.count(name))
            err(line, "constant '" + name + "' redefined");
        consts_.emplace(name, parseIntValue(valTok, line));
        return;
    }

    if (word == ".init" || word == ".initf") {
        std::string name, valTok;
        if (!(is >> name >> valTok))
            err(line, word + " expects a register name and a value");
        RegId reg;
        auto it = regs_.find(name);
        if (it != regs_.end())
            reg = it->second;
        else if (name.size() >= 2 && name[0] == 'r' &&
                 name.find_first_not_of("0123456789", 1) ==
                     std::string::npos)
            reg = parseRegister(name, line); // rN numeric form
        else
            err(line, "unknown register '" + name +
                          "' (declare with .reg first)");
        Word v;
        if (word == ".initf") {
            char *end = nullptr;
            const float f = std::strtof(valTok.c_str(), &end);
            if (end == valTok.c_str() || *end != '\0')
                err(line, "bad float literal '" + valTok + "'");
            v = floatToWord(f);
        } else {
            v = parseIntValue(valTok, line);
        }
        regInit_.emplace_back(reg, v);
        return;
    }

    if (word == ".word" || word == ".float") {
        std::string addrTok;
        if (!(is >> addrTok))
            err(line, word + " expects an address");
        Addr addr = parseIntValue(addrTok, line);
        std::string valTok;
        bool any = false;
        while (is >> valTok) {
            any = true;
            Word v;
            if (word == ".float") {
                char *end = nullptr;
                const float f =
                    std::strtof(valTok.c_str(), &end);
                if (end == valTok.c_str() || *end != '\0')
                    err(line, "bad float literal '" + valTok + "'");
                v = floatToWord(f);
            } else {
                v = parseIntValue(valTok, line);
            }
            memInit_.emplace_back(addr++, v);
        }
        if (!any)
            err(line, word + " expects at least one value");
        return;
    }

    err(line, "unknown directive '" + std::string(word) + "'");
}

Word
AsmContext::parseIntValue(std::string_view text, int line)
{
    bool ok = false;
    const long long v = parseIntLiteral(text, line, &ok);
    if (ok) {
        if (v < -2147483648LL || v > 4294967295LL)
            err(line, "integer '" + std::string(text) +
                          "' does not fit in 32 bits");
        return static_cast<Word>(static_cast<std::uint64_t>(v));
    }
    auto it = consts_.find(text);
    if (it == consts_.end())
        err(line, "undefined constant '" + std::string(text) + "'");
    return it->second;
}

long long
AsmContext::parseIntLiteral(std::string_view text, int line, bool *ok)
{
    const std::string s(text);
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 0);
    const bool good = end != s.c_str() && *end == '\0';
    if (ok) {
        *ok = good;
        return good ? v : 0;
    }
    if (!good)
        err(line, "bad integer literal '" + s + "'");
    return v;
}

InstAddr
AsmContext::parseTarget(std::string_view text, int line)
{
    auto it = labels_.find(text);
    if (it != labels_.end())
        return it->second;
    bool ok = false;
    const long long v = parseIntLiteral(text, line, &ok);
    if (ok && v >= 0 && v < static_cast<long long>(rows_.size()))
        return static_cast<InstAddr>(v);
    if (ok)
        err(line, "branch target " + std::string(text) +
                      " out of range");
    err(line, "undefined label '" + std::string(text) + "'");
}

RegId
AsmContext::parseRegister(std::string_view text, int line)
{
    if (text.size() >= 2 && text[0] == 'r' &&
        text.find_first_not_of("0123456789", 1) ==
            std::string_view::npos) {
        const long long v = parseIntLiteral(text.substr(1), line);
        if (v < 0 || v >= kNumRegisters)
            err(line, "register " + std::string(text) + " out of range");
        return static_cast<RegId>(v);
    }
    auto it = regs_.find(text);
    if (it == regs_.end())
        err(line, "unknown register '" + std::string(text) + "'");
    return it->second;
}

Operand
AsmContext::parseOperand(std::string_view text, int line)
{
    text = trim(text);
    if (text.empty())
        err(line, "empty operand");
    if (text[0] == '#') {
        std::string_view lit = text.substr(1);
        if (lit.empty())
            err(line, "empty immediate");
        // Float immediates contain a '.' (hex literals never do).
        if (lit.find('.') != std::string_view::npos) {
            const std::string s(lit);
            char *end = nullptr;
            const float f = std::strtof(s.c_str(), &end);
            if (end == s.c_str() || *end != '\0')
                err(line, "bad float immediate '" + s + "'");
            return Operand::immFloat(f);
        }
        return Operand::imm(parseIntValue(lit, line));
    }
    return Operand::reg(parseRegister(text, line));
}

DataOp
AsmContext::parseData(std::string_view text, int line)
{
    text = trim(text);
    if (text.empty())
        return DataOp::nop();

    std::size_t sp = text.find_first_of(" \t");
    std::string_view mnemonic =
        sp == std::string_view::npos ? text : text.substr(0, sp);
    auto opc = parseOpcode(toLower(mnemonic));
    if (!opc)
        err(line, "unknown mnemonic '" + std::string(mnemonic) + "'");

    std::vector<Operand> ops;
    std::vector<std::string_view> opTexts;
    if (sp != std::string_view::npos) {
        for (std::string_view f : split(text.substr(sp + 1), ',')) {
            f = trim(f);
            if (f.empty())
                err(line, "empty operand in '" + std::string(text) +
                              "'");
            opTexts.push_back(f);
        }
    }

    const OpInfo &info = opInfo(*opc);
    const std::size_t expected =
        static_cast<std::size_t>(info.numSrcs) + (info.hasDest ? 1 : 0);
    if (opTexts.size() != expected)
        err(line, std::string(info.name) + " expects " +
                      std::to_string(expected) + " operands, got " +
                      std::to_string(opTexts.size()));

    DataOp d;
    d.op = *opc;
    if (info.numSrcs >= 1)
        d.a = parseOperand(opTexts[0], line);
    if (info.numSrcs >= 2)
        d.b = parseOperand(opTexts[1], line);
    if (info.hasDest)
        d.dest = parseRegister(trim(opTexts.back()), line);
    d.validate();
    return d;
}

ControlOp
AsmContext::parseCtrl(std::string_view text, InstAddr addr, int line)
{
    text = trim(text);
    if (text.empty()) {
        // Default: fall through to the next row.
        if (addr + 1 >= rows_.size())
            err(line, "fall-through past end of program (add an "
                      "explicit branch or halt)");
        return ControlOp::jump(addr + 1);
    }

    std::istringstream is{std::string(text)};
    std::string tok;
    is >> tok;

    if (tok == "halt") {
        std::string extra;
        if (is >> extra)
            err(line, "halt takes no operands");
        return ControlOp::halt();
    }

    if (tok == "->") {
        std::string target;
        if (!(is >> target))
            err(line, "-> expects a target");
        std::string extra;
        if (is >> extra)
            err(line, "unexpected token '" + extra + "' after target");
        return ControlOp::jump(parseTarget(target, line));
    }

    if (tok == "if") {
        std::string cond, t1, t2;
        if (!(is >> cond >> t1 >> t2))
            err(line, "if expects: condition target1 target2");
        std::string extra;
        if (is >> extra)
            err(line, "unexpected token '" + extra + "'");
        const InstAddr a1 = parseTarget(t1, line);
        const InstAddr a2 = parseTarget(t2, line);

        const std::string c = toLower(cond);
        auto parseMask = [&](std::string_view inner) -> std::uint32_t {
            std::uint32_t mask = 0;
            for (std::string_view f : split(inner, ',')) {
                f = trim(f);
                const long long v = parseIntLiteral(f, line);
                if (v < 0 || v >= static_cast<long long>(width_))
                    err(line, "mask FU index out of range");
                mask |= 1u << v;
            }
            if (mask == 0)
                err(line, "empty FU mask");
            return mask;
        };

        if (startsWith(c, "cc")) {
            const long long v = parseIntLiteral(c.substr(2), line);
            if (v < 0 || v >= static_cast<long long>(width_))
                err(line, "condition code index out of range");
            return ControlOp::onCc(static_cast<unsigned>(v), a1, a2);
        }
        if (startsWith(c, "ss")) {
            const long long v = parseIntLiteral(c.substr(2), line);
            if (v < 0 || v >= static_cast<long long>(width_))
                err(line, "sync signal index out of range");
            return ControlOp::onSync(static_cast<unsigned>(v), a1, a2);
        }
        if (c == "all")
            return ControlOp::onAllSync(a1, a2);
        if (c == "any")
            return ControlOp::onAnySync(a1, a2);
        if (startsWith(c, "all(") && c.back() == ')')
            return ControlOp::onAllSync(
                a1, a2, parseMask(c.substr(4, c.size() - 5)));
        if (startsWith(c, "any(") && c.back() == ')')
            return ControlOp::onAnySync(
                a1, a2, parseMask(c.substr(4, c.size() - 5)));
        err(line, "unknown branch condition '" + cond + "'");
    }

    err(line, "unrecognized control operation '" + std::string(text) +
                  "'");
}

Parcel
AsmContext::parseParcel(std::string_view text, InstAddr addr, FuId fu,
                        int line)
{
    (void)fu;
    auto fields = split(text, ';');
    if (fields.size() > 3)
        err(line, "parcel has more than three ';' fields");

    Parcel p;
    p.ctrl = parseCtrl(fields.empty() ? "" : fields[0], addr, line);
    p.data = parseData(fields.size() > 1 ? fields[1] : "", line);
    std::string_view syncText =
        fields.size() > 2 ? trim(fields[2]) : "";
    if (syncText.empty() || toLower(syncText) == "busy")
        p.sync = SyncVal::Busy;
    else if (toLower(syncText) == "done")
        p.sync = SyncVal::Done;
    else
        err(line, "bad sync field '" + std::string(syncText) + "'");
    return p;
}

InstRow
AsmContext::parseRow(const RawRow &raw)
{
    const auto addr = static_cast<InstAddr>(&raw - rows_.data());
    auto cells = splitOn(raw.text, "||");
    if (cells.size() != width_)
        err(raw.line, "row has " + std::to_string(cells.size()) +
                          " parcels; .fus is " + std::to_string(width_));
    InstRow row;
    row.reserve(width_);
    for (FuId fu = 0; fu < width_; ++fu)
        row.push_back(parseParcel(cells[fu], addr, fu, raw.line));
    return row;
}

Program
AsmContext::assemble()
{
    firstPass();

    prog_ = Program(width_);
    for (const auto &[addr, value] : memInit_)
        prog_.addMemInit(addr, value);
    for (const auto &[reg, value] : regInit_)
        prog_.addRegInit(reg, value);
    for (const RawRow &raw : rows_) {
        const InstAddr addr = prog_.addRow(parseRow(raw));
        prog_.setRowLine(addr, raw.line);
    }

    for (const auto &[name, addr] : labels_) {
        if (addr >= prog_.size())
            fatal("label '", name, "' points past the last row");
        prog_.setLabel(name, addr);
    }
    for (const auto &[name, value] : consts_)
        prog_.setSymbol(name, value);
    for (const auto &[name, reg] : regs_)
        prog_.nameRegister(name, reg);

    prog_.validate();
    return std::move(prog_);
}

} // namespace

Program
assembleString(std::string_view source)
{
    AsmContext ctx(source);
    return ctx.assemble();
}

Program
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return assembleString(buf.str());
}

namespace {

/** Map an assembler exception onto a structured diagnostic. */
analysis::Diagnostic
asmDiagnostic(const AsmError &e)
{
    return {analysis::Severity::Error, analysis::Check::AsmParse,
            static_cast<InstAddr>(e.line()), -1, e.rawMessage()};
}

} // namespace

Result<Program, analysis::Diagnostic>
assembleStringResult(std::string_view source)
{
    try {
        return assembleString(source);
    } catch (const AsmError &e) {
        return {errTag, asmDiagnostic(e)};
    } catch (const FatalError &e) {
        // Post-assembly validation failures carry no line anchor.
        return {errTag,
                analysis::Diagnostic{analysis::Severity::Error,
                                     analysis::Check::AsmParse, 0, -1,
                                     e.what()}};
    }
}

Result<Program, analysis::Diagnostic>
assembleFileResult(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return {errTag,
                analysis::Diagnostic{
                    analysis::Severity::Error,
                    analysis::Check::LoadFailed, 0, -1,
                    "cannot open assembly file '" + path + "'"}};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return assembleStringResult(buf.str());
}

} // namespace ximd
