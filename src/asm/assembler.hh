/**
 * @file
 * Assembler for XIMD programs in the paper's listing notation.
 *
 * The source format mirrors Figure 9 ("Example Code Format"): each
 * instruction-memory address holds one parcel per FU; a parcel is a
 * control operation, a data operation and a sync field.
 *
 * Grammar (line oriented; `//` starts a comment):
 *
 *   .fus N                    number of functional units (before rows)
 *   .reg NAME [INDEX]         bind a symbolic register (auto index if
 *                             omitted); NAME must not look like rN
 *   .const NAME VALUE         named integer constant
 *   .word ADDR V0 V1 ...      initial memory words at ADDR
 *   .float ADDR F0 F1 ...     initial memory floats at ADDR
 *   .init NAME VALUE          initial integer value of register NAME
 *                             (NAME may be the rN numeric form)
 *   .initf NAME VALUE         initial float value of register NAME
 *   LABEL:                    label the next instruction row
 *   P0 || P1 || ... || Pn-1   one instruction row, one parcel per FU
 *
 * Parcel P: `CTRL ; DATA ; SYNC` — all three fields optional:
 *
 *   CTRL:  -> TARGET
 *          if ccK T1 T2
 *          if ssK T1 T2
 *          if all T1 T2         (barrier over every FU)
 *          if all(0,2,5) T1 T2  (masked barrier, paper section 3.3)
 *          if any T1 T2
 *          if any(0,2,5) T1 T2
 *          halt
 *          (empty: falls through as `-> <next row>`)
 *   DATA:  MNEMONIC OP,OP[,OP]  — registers by name or rN; immediates
 *          as #INT, #0xHEX, #FLOAT (contains '.'), or #CONSTNAME;
 *          builtins #maxint and #minint. (empty: nop)
 *   SYNC:  busy | done          (empty: busy)
 *
 * TARGET is a label or an absolute row number. Errors carry the source
 * line number and throw FatalError.
 */

#ifndef XIMD_ASM_ASSEMBLER_HH
#define XIMD_ASM_ASSEMBLER_HH

#include <string>
#include <string_view>
#include <utility>

#include "analysis/diagnostics.hh"
#include "isa/program.hh"
#include "support/logging.hh"
#include "support/result.hh"

namespace ximd {

/**
 * Assembly rejection. Subclasses FatalError so existing catch sites
 * keep working and what() keeps its historical shape
 * ("fatal: asm line N: msg"), but additionally carries the source line
 * and the undecorated message for structured reporting.
 */
class AsmError : public FatalError
{
  public:
    AsmError(int line, std::string raw)
        : FatalError(cat("fatal: asm line ", line, ": ", raw)),
          line_(line),
          raw_(std::move(raw))
    {
    }

    /** 1-based source line of the offending construct. */
    int line() const { return line_; }

    /** The message without the "fatal: asm line N:" decoration. */
    const std::string &rawMessage() const { return raw_; }

  private:
    int line_;
    std::string raw_;
};

/** Assemble XIMD assembly text into a validated Program. */
Program assembleString(std::string_view source);

/** Assemble the file at @p path. */
Program assembleFile(const std::string &path);

/**
 * Non-throwing assembly: the error arm carries a structured
 * analysis::Diagnostic (Check::AsmParse with the source line in `row`,
 * or Check::LoadFailed for file problems) instead of unwinding with
 * FatalError. This is the form batch drivers (farm/) use so one bad
 * program fails one job, not the whole sweep.
 */
Result<Program, analysis::Diagnostic>
assembleStringResult(std::string_view source);

/** Non-throwing counterpart of assembleFile. */
Result<Program, analysis::Diagnostic>
assembleFileResult(const std::string &path);

} // namespace ximd

#endif // XIMD_ASM_ASSEMBLER_HH
