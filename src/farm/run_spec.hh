/**
 * @file
 * The unit of batch simulation: one fully-described run.
 *
 * A RunSpec is a value object naming everything a worker thread needs
 * to execute one simulation: a shared immutable PreparedProgram, a
 * MachineConfig carried by value (mode, observers, seed, cycle
 * budget), and an optional fixture factory for jobs that need devices
 * attached or outputs checked. Because the spec owns nothing mutable
 * and the program is shared read-only, any thread may execute any spec
 * at any time — determinism is a property of the spec, not of the
 * schedule (DESIGN.md section 8).
 *
 * A spec whose construction already failed (e.g. its assembly file did
 * not parse) carries the structured diagnostic in `loadError`; the
 * farm turns it into a failed JobResult without running anything, so
 * one bad program fails one job rather than the whole sweep.
 */

#ifndef XIMD_FARM_RUN_SPEC_HH
#define XIMD_FARM_RUN_SPEC_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "core/arch_view.hh"
#include "core/machine.hh"
#include "core/machine_config.hh"
#include "core/run_result.hh"
#include "core/stats.hh"
#include "isa/decoded_program.hh"
#include "support/types.hh"

namespace ximd::farm {

struct RunSpec;

/**
 * Per-job environment, constructed on the worker thread just before
 * the run. Fixtures own whatever devices the job attaches (I/O ports,
 * scripted arrival schedules derived from the spec's seed) and get a
 * chance to validate machine state afterwards. One fixture instance
 * serves exactly one run; it is never shared.
 */
class JobFixture
{
  public:
    virtual ~JobFixture() = default;

    /** Attach devices / poke initial state before the run starts. */
    virtual void setUp(Machine &machine) { (void)machine; }

    /**
     * Inspect the machine after the run. Return an empty string when
     * the job passed, or a failure description (which becomes a
     * Check::RunFailed diagnostic on the JobResult).
     */
    virtual std::string check(const Machine &machine,
                              const RunResult &result)
    {
        (void)machine;
        (void)result;
        return {};
    }
};

/** Builds the fixture for a spec; called on the worker thread. */
using FixtureFactory =
    std::function<std::unique_ptr<JobFixture>(const RunSpec &)>;

/**
 * Pure post-run verification: reads only final architectural state
 * through ArchView, returns an empty string on pass or a failure
 * description (which becomes a Check::RunFailed diagnostic).
 *
 * This is the batchable counterpart to JobFixture::check. A fixture
 * holds per-run objects and may attach devices, so a fixture job must
 * run on its own scalar Machine; a ResultCheck consumes nothing but
 * the end state, so checked jobs stay eligible for the lockstep batch
 * engine. Prefer a ResultCheck unless the job really needs setUp.
 * Checks run only for runs that halt cleanly — a fault or an
 * exhausted cycle budget already failed the job.
 */
using ResultCheck =
    std::function<std::string(const ArchView &, const RunResult &)>;

/** Everything needed to execute one simulation. */
struct RunSpec
{
    /** Unique, stable job name ("minmax/ximd/n=1024/seed=7"). */
    std::string name;

    /** Shared immutable program; many specs may point at one. */
    std::shared_ptr<const PreparedProgram> program;

    /** By-value machine parameters, including mode and seed. */
    MachineConfig config;

    /** Cycle budget; 0 uses config.defaultMaxCycles. */
    Cycle maxCycles = 0;

    /** Set when building the spec itself failed; the job won't run. */
    std::optional<analysis::Diagnostic> loadError;

    /** Optional per-run environment builder (may be empty). */
    FixtureFactory fixture;

    /** Optional post-run state check (may be empty; batchable). */
    ResultCheck check;

    /// @name Checkpoint / resume (src/snapshot/).
    ///
    /// Checkpointing changes nothing about the result: the job's
    /// statsJson and final state are byte-identical with and without
    /// it, because a snapshot boundary is invisible to the machine.
    /// @{
    /** Write a checkpoint every N executed cycles (0: never). */
    Cycle checkpointEvery = 0;

    /** Snapshot file periodic checkpoints overwrite. */
    std::string checkpointPath;

    /** Snapshot file to restore (after fixture setUp) before running. */
    std::string resumeFrom;
    /// @}
};

/** Outcome of one RunSpec. */
struct JobResult
{
    std::string name;

    /** True when a machine actually executed (no load error). */
    bool ran = false;

    RunResult run;

    /** Final collected statistics (meaningful when `ran`). */
    RunStats stats{1};

    /**
     * Effective execution backend that drove the run ("interp" /
     * "threaded") — the configured one after any observer-fidelity
     * demotion. Meaningful when `ran`.
     */
    std::string backend;

    /**
     * stats.json(cycleTimeNs) captured at completion. A pure function
     * of the RunSpec — byte-identical across thread counts — which is
     * what the determinism tests compare.
     */
    std::string statsJson;

    /** Structured failure: load error, fault, wedge, or check fail. */
    std::optional<analysis::Diagnostic> error;

    /**
     * Hash of the final architectural contents (registers, memory,
     * condition codes; see MachineCore::archStateHash). Meaningful
     * when `ran`; the campaign engine and differential tests compare
     * these across runs.
     */
    std::uint64_t archHash = 0;

    /** Host wall time spent on this job (informational only). */
    double hostMillis = 0.0;

    bool ok() const { return ran && !error.has_value(); }
};

/** Outcome of a whole batch, in spec order. */
struct BatchResult
{
    std::vector<JobResult> jobs;

    /** Worker threads actually used. */
    unsigned threads = 1;

    /** Host wall time for the whole batch (informational only). */
    double wallMillis = 0.0;

    /** Number of jobs with a structured failure. */
    std::size_t failures() const;

    bool allOk() const { return failures() == 0; }

    /**
     * Fold of every ran job's stats via RunStats::merge — the
     * whole-sweep operation mix.
     */
    RunStats merged() const;

    /**
     * Aggregate sweep report as a JSON object: per-job results in spec
     * order plus the merged totals. @p includeTiming controls the
     * host-timing fields; leave it off to get output that is
     * byte-identical across thread counts and hosts.
     */
    std::string json(bool includeTiming = true) const;
};

} // namespace ximd::farm

#endif // XIMD_FARM_RUN_SPEC_HH
