/**
 * @file
 * The built-in workload grid: the paper's section 4.1 suite as
 * RunSpecs.
 *
 * Every workload the benchmarks exercise is available here by name, so
 * xfarm, sweep files and tests all draw from one factory:
 *
 *   tproc                ximd | vliw   Example 1 (single stream)
 *   loop12               ximd | vliw   pipelined Livermore Loop 12
 *   minmax               ximd | vliw   Example 2 fork/join
 *   multisearch          ximd | vliw   6 concurrent search streams
 *   bitcount             ximd | vliw   Example 3 (vliw = serial code)
 *   bitcount-lockstep    vliw only     branchless lockstep baseline
 *   nonblocking          ximd only     Figure 12, scripted I/O ports
 *   nonblocking-barrier  ximd only     lock-step barrier baseline
 *   nonblocking-memflag  ximd only     polled memory-flag baseline
 *
 * Workload inputs are generated from the request's seed, and the
 * nonblocking family attaches scripted input ports whose arrival
 * cycles also derive from that seed — so a spec fully determines its
 * run, which is what the farm's determinism guarantee rests on.
 */

#ifndef XIMD_FARM_SUITE_HH
#define XIMD_FARM_SUITE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "farm/run_spec.hh"
#include "support/result.hh"

namespace ximd::farm {

/**
 * Memoizes generated programs by identity so spec variants that share
 * machine code (e.g. tproc on both modes, or one workload swept over
 * many configs) share one PreparedProgram. Build-time only; not
 * thread-safe — expand specs on one thread, run them on many.
 */
class ProgramCache
{
  public:
    std::shared_ptr<const PreparedProgram>
    getOrBuild(const std::string &key,
               const std::function<Program()> &build);

  private:
    std::map<std::string, std::shared_ptr<const PreparedProgram>> map_;
};

/** Request for one named workload run. */
struct WorkloadRequest
{
    std::string workload;     ///< Name from the table above.
    Mode mode = Mode::Ximd;   ///< Sequencing discipline.
    unsigned n = 256;         ///< Input size (where meaningful).
    std::uint64_t seed = 1;   ///< Input / I/O-schedule seed.
    MachineConfig config;     ///< Base config (mode/seed overridden).
    Cycle maxCycles = 0;      ///< 0: config default.
};

/** All names accepted by makeWorkloadSpec, in suite order. */
const std::vector<std::string> &suiteWorkloads();

/**
 * Build the spec for @p req. The error arm reports unknown workload
 * names and invalid workload/mode combinations as structured
 * diagnostics (Check::LoadFailed).
 */
Result<RunSpec, analysis::Diagnostic>
makeWorkloadSpec(const WorkloadRequest &req,
                 ProgramCache *cache = nullptr);

/** Options shaping the default grid. */
struct SuiteOptions
{
    unsigned n = 256;       ///< Input size for data-driven workloads.
    std::uint64_t seed = 1; ///< Base seed.

    /** Also emit registered-sync ablation variants (XIMD only). */
    bool registeredSyncAxis = false;
};

/**
 * The full built-in grid: every workload in every valid mode (plus
 * the registered-sync ablation axis when requested), in stable order.
 */
std::vector<RunSpec> builtinSuite(const SuiteOptions &opts = {});

} // namespace ximd::farm

#endif // XIMD_FARM_SUITE_HH
