#include "farm/service.hh"

#include <utility>

#include "core/stats.hh"
#include "farm/batch_runner.hh"
#include "farm/farm.hh"
#include "farm/suite.hh"
#include "farm/sweep.hh"
#include "snapshot/snapshot.hh"
#include "support/json.hh"

namespace ximd::farm {

namespace {

const char *
stopName(StopReason reason)
{
    switch (reason) {
      case StopReason::Halted:    return "halted";
      case StopReason::MaxCycles: return "max-cycles";
      case StopReason::Fault:     return "fault";
    }
    return "unknown";
}

json::Value
responseBase()
{
    json::Value v = json::Value::object();
    v.set("schema", static_cast<std::uint64_t>(kStatsJsonSchema));
    return v;
}

void
emitError(const Service::LineSink &out, const std::string &message)
{
    json::Value v = responseBase();
    v.set("ok", false);
    v.set("error", message);
    out(v.dump(0));
}

const char *
stateName(bool queued, bool running)
{
    return queued ? "queued" : running ? "running" : "done";
}

} // namespace

Service::Service() : worker_([this] { workerLoop(); }) {}

Service::~Service()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

void
Service::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        Batch *next = nullptr;
        cv_.wait(lock, [&] {
            if (stop_)
                return true;
            for (const auto &b : batches_)
                if (b->state == State::Queued) {
                    next = b.get();
                    return true;
                }
            return false;
        });
        if (stop_)
            return;
        next->state = State::Running;
        lock.unlock();
        // Execution happens unlocked: submits, status polls, and
        // result waits stay responsive during a long batch.
        BatchResult result =
            next->useBatch
                ? BatchRunner::run(next->specs, next->threads,
                                   next->width)
                : Farm::run(next->specs, next->threads);
        lock.lock();
        next->result = std::move(result);
        next->state = State::Done;
        doneCv_.notify_all();
    }
}

Service::Batch *
Service::findLocked(std::size_t id)
{
    for (const auto &b : batches_)
        if (b->id == id)
            return b.get();
    return nullptr;
}

void
Service::emitStatus(const Batch &b, const LineSink &out)
{
    json::Value v = responseBase();
    v.set("ok", true);
    v.set("event", "status");
    v.set("batch", static_cast<std::uint64_t>(b.id));
    v.set("state", stateName(b.state == State::Queued,
                             b.state == State::Running));
    v.set("jobs", static_cast<std::uint64_t>(b.specs.size()));
    if (b.state == State::Done)
        v.set("failures",
              static_cast<std::uint64_t>(b.result.failures()));
    out(v.dump(0));
}

void
Service::emitResults(const Batch &b, const LineSink &out)
{
    // One line per job, in spec order, with no host-timing fields:
    // the stream is a pure function of the submission.
    for (const JobResult &j : b.result.jobs) {
        json::Value v = responseBase();
        v.set("event", "job");
        v.set("batch", static_cast<std::uint64_t>(b.id));
        v.set("name", j.name);
        v.set("ok", j.ok());
        if (j.ran) {
            v.set("stop", stopName(j.run.reason));
            v.set("backend", j.backend);
            v.set("cycles",
                  static_cast<std::uint64_t>(j.run.cycles));
            auto stats = json::parse(j.statsJson);
            if (stats.hasValue())
                v.set("stats", std::move(stats.value()));
        }
        if (j.error)
            v.set("error",
                  analysis::DiagnosticList::formatOne(*j.error));
        out(v.dump(0));
    }
    json::Value v = responseBase();
    v.set("event", "done");
    v.set("batch", static_cast<std::uint64_t>(b.id));
    v.set("jobs", static_cast<std::uint64_t>(b.result.jobs.size()));
    v.set("failures",
          static_cast<std::uint64_t>(b.result.failures()));
    out(v.dump(0));
}

Service::Action
Service::handleLine(const std::string &line, const LineSink &out)
{
    auto parsed = json::parse(line);
    if (!parsed.hasValue()) {
        emitError(out, "bad request: " + parsed.error().formatted());
        return Action::Continue;
    }
    const json::Value req = std::move(parsed.value());
    const json::Value *cmd = req.find("cmd");
    if (!cmd || !cmd->isString()) {
        emitError(out, "request needs a string \"cmd\"");
        return Action::Continue;
    }

    if (cmd->asString() == "ping") {
        json::Value v = responseBase();
        v.set("ok", true);
        v.set("event", "pong");
        out(v.dump(0));
        return Action::Continue;
    }

    if (cmd->asString() == "submit") {
        std::vector<RunSpec> specs;
        if (const json::Value *sweep = req.find("sweep")) {
            auto loaded = parseSweep(sweep->dump(0));
            if (!loaded.hasValue()) {
                emitError(out,
                          analysis::DiagnosticList::formatOne(
                              loaded.error()));
                return Action::Continue;
            }
            specs = std::move(loaded.value());
        } else if (const json::Value *suite = req.find("suite")) {
            SuiteOptions so;
            if (const json::Value *n = suite->find("n"))
                so.n = static_cast<unsigned>(n->asInt());
            if (const json::Value *seed = suite->find("seed"))
                so.seed =
                    static_cast<std::uint64_t>(seed->asInt());
            if (const json::Value *ax = suite->find("regsync_axis"))
                so.registeredSyncAxis = ax->asBool();
            specs = builtinSuite(so);
            if (const json::Value *filter = suite->find("filter")) {
                std::vector<RunSpec> kept;
                for (RunSpec &s : specs)
                    for (const json::Value &f : filter->items())
                        if (s.name.find(f.asString()) !=
                            std::string::npos) {
                            kept.push_back(std::move(s));
                            break;
                        }
                specs = std::move(kept);
            }
        } else {
            emitError(out, "submit needs \"sweep\" or \"suite\"");
            return Action::Continue;
        }
        if (specs.empty()) {
            emitError(out, "submission selects no jobs");
            return Action::Continue;
        }

        // Warm start: restore an XIMDSNAP file into the job it was
        // saved from, matched by the snapshot's label.
        if (const json::Value *resume = req.find("resume")) {
            auto info = snapshot::peekFile(resume->asString());
            if (!info.hasValue()) {
                emitError(out, info.error().formatted());
                return Action::Continue;
            }
            bool found = false;
            for (RunSpec &s : specs)
                if (s.name == info.value().label) {
                    s.resumeFrom = resume->asString();
                    found = true;
                }
            if (!found) {
                emitError(out, "snapshot label '" +
                                   info.value().label +
                                   "' matches no submitted job");
                return Action::Continue;
            }
        }

        auto batch = std::make_unique<Batch>();
        batch->specs = std::move(specs);
        if (const json::Value *b = req.find("batch"))
            batch->useBatch = b->asBool();
        if (const json::Value *t = req.find("threads"))
            batch->threads = static_cast<unsigned>(t->asInt());
        if (const json::Value *w = req.find("width"))
            batch->width = static_cast<unsigned>(w->asInt());

        std::size_t id;
        std::size_t jobs;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (draining_) {
                emitError(out,
                          "service is draining; not accepting jobs");
                return Action::Continue;
            }
            id = batches_.size();
            batch->id = id;
            jobs = batch->specs.size();
            batches_.push_back(std::move(batch));
        }
        cv_.notify_all();

        json::Value v = responseBase();
        v.set("ok", true);
        v.set("event", "submitted");
        v.set("batch", static_cast<std::uint64_t>(id));
        v.set("jobs", static_cast<std::uint64_t>(jobs));
        out(v.dump(0));
        return Action::Continue;
    }

    if (cmd->asString() == "status") {
        std::lock_guard<std::mutex> lock(mu_);
        if (const json::Value *id = req.find("batch")) {
            const Batch *b =
                findLocked(static_cast<std::size_t>(id->asInt()));
            if (!b) {
                emitError(out, "no such batch");
                return Action::Continue;
            }
            emitStatus(*b, out);
        } else {
            for (const auto &b : batches_)
                emitStatus(*b, out);
            if (batches_.empty()) {
                json::Value v = responseBase();
                v.set("ok", true);
                v.set("event", "status");
                v.set("batches", static_cast<std::uint64_t>(0));
                out(v.dump(0));
            }
        }
        return Action::Continue;
    }

    if (cmd->asString() == "results") {
        const json::Value *id = req.find("batch");
        if (!id) {
            emitError(out, "results needs \"batch\"");
            return Action::Continue;
        }
        const json::Value *wait = req.find("wait");
        std::unique_lock<std::mutex> lock(mu_);
        Batch *b =
            findLocked(static_cast<std::size_t>(id->asInt()));
        if (!b) {
            emitError(out, "no such batch");
            return Action::Continue;
        }
        if (wait && wait->asBool())
            doneCv_.wait(lock,
                         [&] { return b->state == State::Done; });
        if (b->state != State::Done) {
            emitStatus(*b, out);
            return Action::Continue;
        }
        emitResults(*b, out);
        return Action::Continue;
    }

    if (cmd->asString() == "drain") {
        drain();
        json::Value v = responseBase();
        v.set("ok", true);
        v.set("event", "drained");
        out(v.dump(0));
        return Action::Continue;
    }

    if (cmd->asString() == "shutdown") {
        drain();
        json::Value v = responseBase();
        v.set("ok", true);
        v.set("event", "bye");
        out(v.dump(0));
        return Action::Shutdown;
    }

    emitError(out, "unknown cmd '" + cmd->asString() + "'");
    return Action::Continue;
}

void
Service::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    doneCv_.wait(lock, [&] {
        for (const auto &b : batches_)
            if (b->state != State::Done)
                return false;
        return true;
    });
}

} // namespace ximd::farm
