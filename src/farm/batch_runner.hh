/**
 * @file
 * Cohort dispatch: route a batch of RunSpecs through the SoA lockstep
 * engine where fidelity allows, and through scalar Machines elsewhere.
 *
 * BatchRunner::run consumes the same `std::vector<RunSpec>` as
 * Farm::run and returns the same BatchResult in spec order — RunSpec
 * is the single job description for the scalar, farm, and batched
 * paths (DESIGN.md section 8). The difference is purely mechanical:
 * batch-eligible specs are grouped into *cohorts* that share one
 * PreparedProgram and one semantics-relevant configuration, each
 * cohort runs through one batch::BatchEngine, and everything else
 * falls back to Farm::runOne on the worker pool.
 *
 * Eligibility mirrors MachineCore::demotionReason(): a job batches
 * only when nothing about it needs per-cycle observation. Fixtures
 * (devices, per-run setUp hooks), traces, checkpoints, snapshot
 * resumes, registered sync, multi-cycle result latency, and an
 * explicitly forced interpreter all demote the job to the scalar path
 * — batchDemotionReason() names the first reason, exactly as
 * demotionReason() does for the threaded backend. A RunSpec::check
 * does NOT demote: it reads only final state through ArchView, so the
 * engine evaluates it against the retiring lane (batch::LaneCheck)
 * with the same fault > budget > check precedence as Farm::runOne.
 *
 * A batched job's JobResult reports backend "batch"; everything else
 * about it — RunResult, RunStats, archHash, the error strings for
 * faults and exhausted budgets — is bit-identical to the scalar run,
 * which tests/batch/ and the ci.sh batch-parity stage verify.
 */

#ifndef XIMD_FARM_BATCH_RUNNER_HH
#define XIMD_FARM_BATCH_RUNNER_HH

#include <vector>

#include "farm/run_spec.hh"

namespace ximd::farm {

/**
 * Why @p spec cannot run through the batch engine, or nullptr when it
 * is batch-eligible. The string is static, human-readable, and stable
 * enough to assert on.
 */
const char *batchDemotionReason(const RunSpec &spec);

class BatchRunner
{
  public:
    /**
     * Execute every spec; return results in spec order, exactly like
     * Farm::run. Batch-eligible specs run through per-cohort
     * BatchEngines on the calling thread; demoted specs run through
     * Farm::run's worker pool.
     *
     * @param threads  worker count for the scalar fallback jobs;
     *                 0 picks the hardware concurrency.
     * @param width    lanes per engine (capped at the cohort size);
     *                 0 picks the default of 256.
     */
    static BatchResult run(const std::vector<RunSpec> &specs,
                           unsigned threads = 0, unsigned width = 0);
};

} // namespace ximd::farm

#endif // XIMD_FARM_BATCH_RUNNER_HH
