#include "farm/campaign.hh"

#include <cstdio>
#include <memory>

#include "farm/farm.hh"
#include "support/json.hh"

namespace ximd::farm {

namespace {

/** Slot a trial's fixture reports injection data into at teardown. */
struct TrialScratch
{
    unsigned injected = 0;
    std::vector<std::string> faults;
};

/**
 * Wraps the workload's own fixture and owns the trial's injector.
 * The injector must outlive the run (the core holds a raw observer
 * pointer), and its application log is only complete once the run
 * ends — including wedged and faulted runs, where check() is never
 * called — so the log is harvested in the destructor.
 */
class FaultFixture : public JobFixture
{
  public:
    FaultFixture(std::unique_ptr<JobFixture> inner,
                 std::vector<snapshot::FaultEvent> events,
                 std::shared_ptr<TrialScratch> scratch)
        : inner_(std::move(inner)), injector_(std::move(events)),
          scratch_(std::move(scratch))
    {
    }

    ~FaultFixture() override
    {
        scratch_->injected = injector_.injected();
        scratch_->faults = injector_.log();
    }

    void setUp(Machine &machine) override
    {
        if (inner_)
            inner_->setUp(machine);
        machine.addObserver(&injector_);
    }

    std::string check(const Machine &machine,
                      const RunResult &result) override
    {
        return inner_ ? inner_->check(machine, result)
                      : std::string();
    }

  private:
    std::unique_ptr<JobFixture> inner_;
    snapshot::FaultInjector injector_;
    std::shared_ptr<TrialScratch> scratch_;
};

/** "0x0123456789abcdef" — u64 hashes exceed JSON's exact range. */
std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

Outcome
classify(const JobResult &baseline, const JobResult &trial)
{
    if (!trial.ran || trial.run.reason == StopReason::Fault)
        return Outcome::Faulted;
    if (trial.run.reason == StopReason::MaxCycles)
        return Outcome::Wedged;
    // Halted. A remaining error can only be a failed fixture check:
    // the workload produced wrong results.
    if (trial.error)
        return Outcome::Faulted;
    if (baseline.ran && baseline.run.reason == StopReason::Halted &&
        trial.run.cycles == baseline.run.cycles &&
        trial.archHash == baseline.archHash)
        return Outcome::Unaffected;
    return Outcome::Degraded;
}

} // namespace

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Unaffected:
        return "unaffected";
      case Outcome::Degraded:
        return "degraded";
      case Outcome::Wedged:
        return "wedged";
      case Outcome::Faulted:
        return "faulted";
    }
    return "unknown";
}

std::size_t
CampaignJob::countOf(Outcome outcome) const
{
    std::size_t n = 0;
    for (const TrialResult &t : trials)
        if (t.outcome == outcome)
            ++n;
    return n;
}

std::size_t
CampaignResult::countOf(Outcome outcome) const
{
    std::size_t n = 0;
    for (const CampaignJob &j : jobs)
        n += j.countOf(outcome);
    return n;
}

CampaignResult
runCampaign(const std::vector<RunSpec> &specs,
            const snapshot::FaultPlan &plan, unsigned threads)
{
    CampaignResult out;
    out.planSummary = plan.describe();

    // Phase 1: fault-free baselines under the watchdog budget.
    std::vector<RunSpec> base = specs;
    for (RunSpec &s : base)
        s.maxCycles = plan.watchdogCycles;
    const BatchResult baselines = Farm::run(base, threads);

    // Phase 2: every (spec, trial) pair as an independent job. Each
    // trial's events are a pure function of (plan seed, trial index),
    // and each job writes only its own result slot, so the whole
    // campaign is schedule-independent.
    std::vector<RunSpec> trialSpecs;
    std::vector<std::shared_ptr<TrialScratch>> scratch;
    trialSpecs.reserve(specs.size() * plan.trials);
    for (const RunSpec &s : specs) {
        const FuId width = s.program ? s.program->width() : 1;
        for (unsigned t = 0; t < plan.trials; ++t) {
            RunSpec ts = s;
            ts.name = s.name + "/trial=" + std::to_string(t);
            ts.maxCycles = plan.watchdogCycles;
            auto sc = std::make_shared<TrialScratch>();
            const FixtureFactory inner = s.fixture;
            const auto events = plan.expandTrial(t, width);
            ts.fixture = [inner, events,
                          sc](const RunSpec &spec) {
                std::unique_ptr<JobFixture> wrapped;
                if (inner)
                    wrapped = inner(spec);
                return std::make_unique<FaultFixture>(
                    std::move(wrapped), events, sc);
            };
            scratch.push_back(std::move(sc));
            trialSpecs.push_back(std::move(ts));
        }
    }
    const BatchResult trials = Farm::run(trialSpecs, threads);

    // Phase 3: classify in spec order.
    out.jobs.reserve(specs.size());
    std::size_t at = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const JobResult &baseline = baselines.jobs[i];
        CampaignJob job;
        job.name = specs[i].name;
        job.baselineOk =
            baseline.ran && baseline.run.reason == StopReason::Halted;
        job.baselineCycles = baseline.run.cycles;
        job.baselineArchHash = baseline.archHash;
        job.trials.reserve(plan.trials);
        for (unsigned t = 0; t < plan.trials; ++t, ++at) {
            const JobResult &res = trials.jobs[at];
            TrialResult tr;
            tr.trial = t;
            tr.outcome = classify(baseline, res);
            tr.injected = scratch[at]->injected;
            tr.faults = scratch[at]->faults;
            tr.cycles = res.run.cycles;
            tr.archHash = res.archHash;
            job.trials.push_back(std::move(tr));
        }
        out.jobs.push_back(std::move(job));
    }
    return out;
}

std::string
CampaignResult::json() const
{
    json::Value root = json::Value::object();
    root.set("schema",
             static_cast<std::uint64_t>(kStatsJsonSchema));
    root.set("plan", planSummary);

    json::Value arr = json::Value::array();
    for (const CampaignJob &j : jobs) {
        json::Value o = json::Value::object();
        o.set("name", j.name);
        json::Value b = json::Value::object();
        b.set("ok", j.baselineOk);
        b.set("cycles", static_cast<std::uint64_t>(j.baselineCycles));
        b.set("arch_hash", hex64(j.baselineArchHash));
        o.set("baseline", std::move(b));

        json::Value ts = json::Value::array();
        for (const TrialResult &t : j.trials) {
            json::Value v = json::Value::object();
            v.set("trial", static_cast<std::uint64_t>(t.trial));
            v.set("outcome", outcomeName(t.outcome));
            v.set("injected",
                  static_cast<std::uint64_t>(t.injected));
            v.set("cycles", static_cast<std::uint64_t>(t.cycles));
            v.set("arch_hash", hex64(t.archHash));
            json::Value fs = json::Value::array();
            for (const std::string &f : t.faults)
                fs.push(f);
            v.set("faults", std::move(fs));
            ts.push(std::move(v));
        }
        o.set("trials", std::move(ts));

        json::Value sum = json::Value::object();
        for (Outcome oc :
             {Outcome::Unaffected, Outcome::Degraded, Outcome::Wedged,
              Outcome::Faulted})
            sum.set(outcomeName(oc),
                    static_cast<std::uint64_t>(j.countOf(oc)));
        o.set("summary", std::move(sum));
        arr.push(std::move(o));
    }
    root.set("jobs", std::move(arr));

    json::Value total = json::Value::object();
    std::size_t trials = 0;
    for (const CampaignJob &j : jobs)
        trials += j.trials.size();
    total.set("trials", static_cast<std::uint64_t>(trials));
    for (Outcome oc : {Outcome::Unaffected, Outcome::Degraded,
                       Outcome::Wedged, Outcome::Faulted})
        total.set(outcomeName(oc),
                  static_cast<std::uint64_t>(countOf(oc)));
    root.set("summary", std::move(total));

    return root.dump(2);
}

} // namespace ximd::farm
