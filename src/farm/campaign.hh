/**
 * @file
 * Fault-injection campaigns: seeded fault trials over a batch of
 * workloads, with outcome triage against fault-free baselines.
 *
 * A campaign takes the RunSpecs of a batch (typically the built-in
 * section 4.1 suite) and a snapshot::FaultPlan, then:
 *
 *  1. runs every spec clean under the plan's watchdog budget — the
 *     baseline trajectory (cycle count, final architectural hash);
 *  2. runs plan.trials perturbed copies of every spec, each with a
 *     FaultInjector carrying expandTrial(t)'s events;
 *  3. classifies each trial against its baseline:
 *
 *     - unaffected:  halted with the baseline's cycle count AND the
 *                    baseline's architectural hash (the fault was
 *                    masked — hit dead state or was overwritten);
 *     - degraded:    halted, fixture correctness check still passed,
 *                    but trajectory or final state differ (took
 *                    longer / left different scratch state, results
 *                    still correct);
 *     - wedged:      still running when the watchdog budget expired
 *                    (e.g. a stuck-BUSY sync line parked a barrier);
 *     - faulted:     machine fault (write conflict, bad address) or
 *                    wrong results (fixture check failed).
 *
 * Everything is deterministic at any thread count: trials are pure
 * functions of (spec, plan seed, trial index), the farm writes
 * results in spec order, and CampaignResult::json() carries no host
 * timing. `runCampaign(specs, plan, 1)` and `... , 8)` emit
 * byte-identical reports — enforced by the regression suite.
 */

#ifndef XIMD_FARM_CAMPAIGN_HH
#define XIMD_FARM_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "farm/run_spec.hh"
#include "snapshot/fault.hh"

namespace ximd::farm {

/** Triage class of one fault trial. */
enum class Outcome : std::uint8_t {
    Unaffected,
    Degraded,
    Wedged,
    Faulted,
};

/** "unaffected" / "degraded" / "wedged" / "faulted". */
const char *outcomeName(Outcome outcome);

/** One perturbed run, classified. */
struct TrialResult
{
    unsigned trial = 0;
    Outcome outcome = Outcome::Unaffected;
    unsigned injected = 0; ///< Fault events actually applied.
    Cycle cycles = 0;
    std::uint64_t archHash = 0;
    std::vector<std::string> faults; ///< Applied events, described.
};

/** One workload's baseline plus its trials. */
struct CampaignJob
{
    std::string name;
    bool baselineOk = false; ///< Baseline halted cleanly.
    Cycle baselineCycles = 0;
    std::uint64_t baselineArchHash = 0;
    std::vector<TrialResult> trials;

    /** Trials with @p outcome. */
    std::size_t countOf(Outcome outcome) const;
};

/** A whole campaign's outcome. */
struct CampaignResult
{
    std::string planSummary; ///< FaultPlan::describe().
    std::vector<CampaignJob> jobs;

    /** Trials with @p outcome across all jobs. */
    std::size_t countOf(Outcome outcome) const;

    /**
     * Deterministic JSON report: plan summary, per-job baselines and
     * classified trials (hashes as hex strings — they exceed JSON's
     * exact-integer range), outcome tallies. No host timing; byte-
     * identical across thread counts.
     */
    std::string json() const;
};

/**
 * Run the campaign described by @p plan over @p specs.
 * @param threads  worker count, as Farm::run.
 */
CampaignResult runCampaign(const std::vector<RunSpec> &specs,
                           const snapshot::FaultPlan &plan,
                           unsigned threads = 0);

} // namespace ximd::farm

#endif // XIMD_FARM_CAMPAIGN_HH
