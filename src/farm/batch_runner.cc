#include "farm/batch_runner.hh"

#include <chrono>
#include <map>
#include <tuple>
#include <utility>

#include "batch/batch_engine.hh"
#include "farm/farm.hh"

namespace ximd::farm {

namespace {

using Clock = std::chrono::steady_clock;

analysis::Diagnostic
runFailure(std::string message)
{
    return {analysis::Severity::Error, analysis::Check::RunFailed, 0,
            -1, std::move(message)};
}

constexpr unsigned kDefaultWidth = 256;

/**
 * Everything that changes execution semantics inside the engine; specs
 * agreeing on this (and on the program) may share lanes. Per-job
 * fields — cycle budget, seed, cycleTimeNs — stay per-lane.
 */
using CohortKey = std::tuple<const PreparedProgram *, Mode, std::size_t,
                             ConflictPolicy, bool, bool, bool>;

CohortKey
cohortKeyOf(const RunSpec &spec)
{
    return {spec.program.get(),
            spec.config.mode,
            spec.config.memWords,
            spec.config.conflictPolicy,
            spec.config.collectStats,
            spec.config.trackPartitions,
            spec.config.fastForward};
}

/** Map one retired lane back onto the scalar JobResult contract. */
JobResult
laneToJobResult(const RunSpec &spec, const batch::LaneResult &lane)
{
    JobResult res;
    res.name = spec.name;
    if (!lane.ran) {
        // Construction failed: the scalar path reports the
        // FatalError's message through the same catch-all.
        res.error = runFailure(lane.error);
        return res;
    }
    res.ran = true;
    res.run = lane.run;
    res.stats = lane.stats;
    res.backend = "batch";
    res.statsJson =
        res.stats.json(spec.config.cycleTimeNs, res.backend);
    res.archHash = lane.archHash;
    if (lane.run.reason == StopReason::Fault) {
        res.error =
            runFailure("simulation fault: " + lane.run.faultMessage);
    } else if (lane.run.reason == StopReason::MaxCycles) {
        res.error = runFailure("cycle budget exhausted after " +
                               std::to_string(lane.run.cycles) +
                               " cycles");
    } else if (!lane.checkError.empty()) {
        res.error = runFailure(lane.checkError);
    }
    return res;
}

} // namespace

const char *
batchDemotionReason(const RunSpec &spec)
{
    if (spec.loadError)
        return "spec carries a load error";
    if (!spec.program)
        return "spec has no program";
    if (spec.fixture)
        return "job fixture attaches devices or per-run hooks";
    if (spec.checkpointEvery > 0 && !spec.checkpointPath.empty())
        return "periodic checkpoints observe every boundary";
    if (!spec.resumeFrom.empty())
        return "snapshot resume restores mid-run machine state";
    if (spec.config.backend == Backend::Interp)
        return "interpreter backend forced by configuration";
    if (spec.config.recordTrace)
        return "trace observer needs per-cycle fidelity";
    if (spec.config.resultLatency != 1)
        return "multi-cycle result latency needs the write pipeline";
    if (spec.config.registeredSync)
        return "registered sync distribution needs per-cycle state";
    return nullptr;
}

BatchResult
BatchRunner::run(const std::vector<RunSpec> &specs, unsigned threads,
                 unsigned width)
{
    if (width == 0)
        width = kDefaultWidth;

    const auto start = Clock::now();

    // Split the batch: cohorts (first-seen order, members in spec
    // order) vs. scalar-fallback indices.
    std::map<CohortKey, std::vector<std::size_t>> cohorts;
    std::vector<std::size_t> scalar;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (batchDemotionReason(specs[i]))
            scalar.push_back(i);
        else
            cohorts[cohortKeyOf(specs[i])].push_back(i);
    }

    BatchResult batch;
    batch.jobs.resize(specs.size());

    // Scalar fallback first, through the ordinary farm pool — its
    // results scatter back into spec order.
    batch.threads = 1;
    if (!scalar.empty()) {
        std::vector<RunSpec> fallback;
        fallback.reserve(scalar.size());
        for (std::size_t i : scalar)
            fallback.push_back(specs[i]);
        BatchResult ran = Farm::run(fallback, threads);
        batch.threads = ran.threads;
        for (std::size_t k = 0; k < scalar.size(); ++k)
            batch.jobs[scalar[k]] = std::move(ran.jobs[k]);
    }

    // Each cohort shares one engine; lanes retire and refill inside.
    for (const auto &[key, members] : cohorts) {
        (void)key;
        const RunSpec &first = specs[members.front()];
        batch::EngineConfig ec;
        ec.mode = first.config.mode;
        ec.memWords = first.config.memWords;
        ec.conflictPolicy = first.config.conflictPolicy;
        ec.collectStats = first.config.collectStats;
        ec.trackPartitions = first.config.trackPartitions;
        ec.fastForward = first.config.fastForward;
        const unsigned lanes = static_cast<unsigned>(
            std::min<std::size_t>(width, members.size()));
        batch::BatchEngine engine(first.program, ec, lanes);
        for (std::size_t i : members) {
            const RunSpec &spec = specs[i];
            engine.submit(spec.maxCycles
                              ? spec.maxCycles
                              : spec.config.defaultMaxCycles,
                          spec.check);
        }
        engine.runAll();
        for (std::size_t k = 0; k < members.size(); ++k)
            batch.jobs[members[k]] =
                laneToJobResult(specs[members[k]], engine.result(k));
    }

    batch.wallMillis =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    return batch;
}

} // namespace ximd::farm
