#include "farm/farm.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "snapshot/snapshot.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace ximd::farm {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

analysis::Diagnostic
runFailure(std::string message)
{
    return {analysis::Severity::Error, analysis::Check::RunFailed, 0,
            -1, std::move(message)};
}

const char *
stopName(StopReason reason)
{
    switch (reason) {
      case StopReason::Halted:    return "halted";
      case StopReason::MaxCycles: return "max-cycles";
      case StopReason::Fault:     return "fault";
    }
    return "unknown";
}

/**
 * Run @p machine to completion, writing a checkpoint to
 * spec.checkpointPath at every checkpointEvery-cycle boundary. The
 * budget is absolute — resumed machines get the remainder, not a
 * fresh allowance — and the trajectory is identical to an
 * uncheckpointed run (chunked run() calls compose exactly).
 */
RunResult
runWithCheckpoints(Machine &machine, const RunSpec &spec)
{
    const Cycle budget =
        spec.maxCycles ? spec.maxCycles
                       : spec.config.defaultMaxCycles;
    const Cycle limit = machine.cycle() + budget;
    for (;;) {
        const Cycle left = limit - machine.cycle();
        const Cycle chunk = spec.checkpointEvery < left
                                ? spec.checkpointEvery
                                : left;
        const RunResult run = machine.run(chunk);
        if (run.reason != StopReason::MaxCycles ||
            machine.cycle() >= limit)
            return run;
        auto saved = snapshot::saveFile(machine, spec.checkpointPath,
                                        spec.name);
        if (!saved)
            fatal(saved.error().formatted());
    }
}

} // namespace

JobResult
Farm::runOne(const RunSpec &spec)
{
    JobResult res;
    res.name = spec.name;
    if (spec.loadError) {
        res.error = spec.loadError;
        return res;
    }

    const auto start = Clock::now();
    try {
        Machine machine(spec.program, spec.config);

        std::unique_ptr<JobFixture> fixture;
        if (spec.fixture) {
            fixture = spec.fixture(spec);
            if (fixture)
                fixture->setUp(machine);
        }

        if (!spec.resumeFrom.empty()) {
            auto restored =
                snapshot::restoreFile(machine, spec.resumeFrom);
            if (!restored) {
                res.error =
                    runFailure(restored.error().formatted());
                return res;
            }
        }

        const RunResult run =
            spec.checkpointEvery > 0 && !spec.checkpointPath.empty()
                ? runWithCheckpoints(machine, spec)
                : machine.run(spec.maxCycles);
        res.ran = true;
        res.run = run;
        res.stats = machine.stats();
        res.backend = machine.core().effectiveBackendName();
        res.statsJson =
            res.stats.json(spec.config.cycleTimeNs, res.backend);
        res.archHash = machine.archStateHash();

        if (run.reason == StopReason::Fault) {
            res.error = runFailure("simulation fault: " +
                                   run.faultMessage);
        } else if (run.reason == StopReason::MaxCycles) {
            res.error = runFailure("cycle budget exhausted after " +
                                   std::to_string(run.cycles) +
                                   " cycles");
        } else {
            if (fixture) {
                std::string msg = fixture->check(machine, run);
                if (!msg.empty())
                    res.error = runFailure(std::move(msg));
            }
            if (!res.error && spec.check) {
                std::string msg = spec.check(machine, run);
                if (!msg.empty())
                    res.error = runFailure(std::move(msg));
            }
        }
    } catch (const std::exception &e) {
        // Machine construction or fixture setup rejected the job
        // (FatalError from validation, PanicError from a sim bug).
        // Contain it: one bad job must not take down the batch.
        res.error = runFailure(e.what());
    }
    res.hostMillis = millisSince(start);
    return res;
}

BatchResult
Farm::run(const std::vector<RunSpec> &specs, unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    if (threads > specs.size())
        threads = static_cast<unsigned>(specs.size());
    if (threads == 0)
        threads = 1;

    BatchResult batch;
    batch.threads = threads;
    batch.jobs.resize(specs.size());

    const auto start = Clock::now();

    // Work distribution: each worker claims the next unclaimed index
    // and writes only that slot, so results land in spec order with no
    // locks and no dependence on which thread ran what.
    std::atomic<std::size_t> next{0};
    const auto worker = [&specs, &batch, &next] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            batch.jobs[i] = runOne(specs[i]);
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    batch.wallMillis = millisSince(start);
    return batch;
}

std::size_t
BatchResult::failures() const
{
    std::size_t n = 0;
    for (const JobResult &j : jobs)
        if (!j.ok())
            ++n;
    return n;
}

RunStats
BatchResult::merged() const
{
    RunStats total(1);
    for (const JobResult &j : jobs)
        if (j.ran)
            total.merge(j.stats);
    return total;
}

std::string
BatchResult::json(bool includeTiming) const
{
    json::Value root = json::Value::object();
    root.set("schema",
             static_cast<std::uint64_t>(kStatsJsonSchema));
    root.set("job_count",
             static_cast<std::uint64_t>(jobs.size()));
    root.set("failures", static_cast<std::uint64_t>(failures()));
    if (includeTiming) {
        root.set("threads", static_cast<std::uint64_t>(threads));
        root.set("wall_millis", wallMillis);
    }

    json::Value arr = json::Value::array();
    for (const JobResult &j : jobs) {
        json::Value o = json::Value::object();
        o.set("name", j.name);
        o.set("ok", j.ok());
        if (j.ran) {
            o.set("stop", stopName(j.run.reason));
            o.set("backend", j.backend);
            o.set("cycles", static_cast<std::uint64_t>(j.run.cycles));
            // Per-job stats are kept as structured JSON so the report
            // nests cleanly; the raw string is what determinism tests
            // compare.
            auto stats = json::parse(j.statsJson);
            if (stats)
                o.set("stats", std::move(stats.value()));
        }
        if (j.error)
            o.set("error",
                  analysis::DiagnosticList::formatOne(*j.error));
        if (includeTiming)
            o.set("host_millis", j.hostMillis);
        arr.push(std::move(o));
    }
    root.set("jobs", std::move(arr));

    // Rates are meaningless summed across different programs, so the
    // merged block reports counts only (cycleNs = 0 zeroes the rates).
    auto merged_ = json::parse(merged().json(0.0));
    if (merged_)
        root.set("merged", std::move(merged_.value()));

    return root.dump(2);
}

} // namespace ximd::farm
