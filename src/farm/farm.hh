/**
 * @file
 * xfarm — the parallel batch-run engine.
 *
 * Farm::run executes a vector of RunSpecs across a pool of worker
 * threads and returns one JobResult per spec, in spec order. The
 * design makes determinism structural rather than aspirational:
 *
 *  - Work distribution is an atomic claim counter over the spec
 *    vector; each worker writes only results[i] for the indices it
 *    claimed, so no locks, no reordering, no shared accumulation.
 *  - Every job's outcome is a pure function of its RunSpec: the
 *    program is immutable and shared, the config is by value, and any
 *    randomness (scripted I/O arrival times) derives from
 *    config.seed. Running with 1 thread or 8 produces byte-identical
 *    statsJson for every job.
 *  - A job that faults, wedges, or fails its fixture check produces a
 *    structured diagnostic on its own JobResult; the batch keeps
 *    going.
 *
 * See DESIGN.md section 8 for the thread-safety contract this layer
 * relies on.
 */

#ifndef XIMD_FARM_FARM_HH
#define XIMD_FARM_FARM_HH

#include <vector>

#include "farm/run_spec.hh"

namespace ximd::farm {

class Farm
{
  public:
    /**
     * Execute every spec; return results in spec order.
     *
     * @param threads  worker count; 0 picks the hardware concurrency.
     *                 Capped at the number of specs.
     */
    static BatchResult run(const std::vector<RunSpec> &specs,
                           unsigned threads = 0);

    /** Execute a single spec on the calling thread. */
    static JobResult runOne(const RunSpec &spec);
};

} // namespace ximd::farm

namespace ximd {

/** Public façade name: `ximd::Farm::run(specs, threads)`. */
using farm::Farm;

} // namespace ximd

#endif // XIMD_FARM_FARM_HH
