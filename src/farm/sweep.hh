/**
 * @file
 * Sweep files: a JSON description of a batch, expanded to RunSpecs.
 *
 * A sweep is an object with an optional `defaults` block and a `runs`
 * array. Each run entry names either a built-in `workload` (see
 * farm/suite.hh) or a `program` assembly file, and any of the axis
 * fields below. An axis given as an array is swept — the entry
 * expands to the cartesian product of all its array-valued axes:
 *
 *   {
 *     "defaults": { "n": 256, "seed": 1 },
 *     "runs": [
 *       { "workload": "minmax",
 *         "mode": ["ximd", "vliw"],
 *         "seed": [1, 2, 3] },
 *       { "program": "kernels/custom.xasm", "mode": "ximd" }
 *     ]
 *   }
 *
 * expands to 6 minmax jobs plus one assembled-from-file job.
 *
 * Axes: workload | program, mode ("ximd"/"vliw"), n, seed,
 * max_cycles, registered_sync, result_latency, fast_forward.
 *
 * Structural problems with the sweep file itself (unparseable JSON,
 * unknown keys, missing workload/program) fail the whole load — they
 * are authoring errors. A program file that does not assemble is a
 * per-job failure instead: its RunSpec carries the diagnostic in
 * `loadError` and the rest of the sweep still runs.
 */

#ifndef XIMD_FARM_SWEEP_HH
#define XIMD_FARM_SWEEP_HH

#include <string>
#include <string_view>
#include <vector>

#include "farm/run_spec.hh"
#include "support/result.hh"

namespace ximd::farm {

/** Expand sweep-file text into specs (see file comment for format). */
Result<std::vector<RunSpec>, analysis::Diagnostic>
parseSweep(std::string_view text);

/** Read and expand the sweep file at @p path. */
Result<std::vector<RunSpec>, analysis::Diagnostic>
loadSweep(const std::string &path);

} // namespace ximd::farm

#endif // XIMD_FARM_SWEEP_HH
