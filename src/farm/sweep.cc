#include "farm/sweep.hh"

#include <array>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "asm/assembler.hh"
#include "farm/suite.hh"
#include "support/json.hh"

namespace ximd::farm {

namespace {

analysis::Diagnostic
sweepError(std::string message)
{
    return {analysis::Severity::Error, analysis::Check::LoadFailed, 0,
            -1, "sweep: " + std::move(message)};
}

/** Axis keys, in the canonical nesting order for expansion. */
constexpr std::array<std::string_view, 10> kAxisKeys = {
    "workload",        "program",        "mode",
    "n",               "seed",           "max_cycles",
    "registered_sync", "result_latency", "fast_forward",
    "backend",
};

bool
knownKey(std::string_view key)
{
    for (std::string_view k : kAxisKeys)
        if (k == key)
            return true;
    return false;
}

/** Expands one `runs` entry; collects errors in `error`. */
class Expander
{
  public:
    Expander(const json::Value *defaults, ProgramCache &cache,
             std::vector<RunSpec> &out)
        : defaults_(defaults), cache_(cache), out_(out)
    {
    }

    /** Returns false (with `error()` set) on a structural problem. */
    bool expand(const json::Value &entry)
    {
        entry_ = &entry;
        if (!entry.isObject())
            return fail("every runs[] entry must be an object");
        for (const auto &[key, value] : entry.members()) {
            (void)value;
            if (!knownKey(key))
                return fail("unknown key '" + key + "'");
        }

        const bool hasWorkload = lookup("workload") != nullptr;
        const bool hasProgram = lookup("program") != nullptr;
        if (hasWorkload == hasProgram) {
            return fail("each entry needs exactly one of 'workload' "
                        "or 'program'");
        }
        return expandAxis(0);
    }

    const std::string &error() const { return error_; }

  private:
    /** Entry value for @p key, falling back to the defaults block. */
    const json::Value *lookup(std::string_view key) const
    {
        if (const json::Value *v = entry_->find(key))
            return v;
        return defaults_ ? defaults_->find(key) : nullptr;
    }

    bool fail(std::string message)
    {
        error_ = std::move(message);
        return false;
    }

    /** Recurse over kAxisKeys, pinning one scalar per axis. */
    bool expandAxis(std::size_t axis)
    {
        if (axis == kAxisKeys.size())
            return emit();
        const std::string_view key = kAxisKeys[axis];
        const json::Value *v = lookup(key);
        if (v == nullptr || !v->isArray()) {
            pinned_[key] = v;
            return expandAxis(axis + 1);
        }
        if (v->items().empty())
            return fail("axis '" + std::string(key) +
                        "' swept over an empty array");
        for (const json::Value &item : v->items()) {
            if (item.isArray())
                return fail("axis '" + std::string(key) +
                            "' has nested arrays");
            pinned_[key] = &item;
            if (!expandAxis(axis + 1))
                return false;
        }
        return true;
    }

    /// @name Typed scalar access to the pinned combination.
    /// @{
    bool getString(std::string_view key, std::string &dst)
    {
        const json::Value *v = pinned_[key];
        if (v == nullptr)
            return true;
        if (!v->isString())
            return fail("'" + std::string(key) +
                        "' must be a string");
        dst = v->asString();
        return true;
    }

    template <typename T>
    bool getUint(std::string_view key, T &dst)
    {
        const json::Value *v = pinned_[key];
        if (v == nullptr)
            return true;
        if (!v->isNumber() || v->asNumber() < 0)
            return fail("'" + std::string(key) +
                        "' must be a non-negative number");
        dst = static_cast<T>(v->asInt());
        return true;
    }

    bool getBool(std::string_view key, bool &dst)
    {
        const json::Value *v = pinned_[key];
        if (v == nullptr)
            return true;
        if (!v->isBool())
            return fail("'" + std::string(key) +
                        "' must be a boolean");
        dst = v->asBool();
        return true;
    }
    /// @}

    /** Build the RunSpec for the currently pinned combination. */
    bool emit()
    {
        std::string modeStr = "ximd";
        if (!getString("mode", modeStr))
            return false;
        Mode mode;
        if (modeStr == "ximd")
            mode = Mode::Ximd;
        else if (modeStr == "vliw")
            mode = Mode::Vliw;
        else
            return fail("'mode' must be \"ximd\" or \"vliw\", got \"" +
                        modeStr + "\"");

        unsigned n = 256;
        std::uint64_t seed = 1;
        Cycle maxCycles = 0;
        MachineConfig config;
        if (!getUint("n", n) || !getUint("seed", seed) ||
            !getUint("max_cycles", maxCycles) ||
            !getBool("registered_sync", config.registeredSync) ||
            !getUint("result_latency", config.resultLatency) ||
            !getBool("fast_forward", config.fastForward)) {
            return false;
        }

        std::string backendStr = backendName(config.backend);
        if (!getString("backend", backendStr))
            return false;
        if (backendStr == "interp")
            config.backend = Backend::Interp;
        else if (backendStr == "threaded")
            config.backend = Backend::Threaded;
        else
            return fail("'backend' must be \"interp\" or "
                        "\"threaded\", got \"" +
                        backendStr + "\"");

        std::string workload;
        std::string program;
        if (!getString("workload", workload) ||
            !getString("program", program)) {
            return false;
        }

        if (!workload.empty())
            return emitWorkload(workload, mode, n, seed, maxCycles,
                                config);
        return emitProgramFile(program, mode, seed, maxCycles, config);
    }

    bool emitWorkload(const std::string &workload, Mode mode,
                      unsigned n, std::uint64_t seed, Cycle maxCycles,
                      const MachineConfig &config)
    {
        // A typo'd workload name is an authoring error that fails the
        // whole load; an invalid workload/mode combination can arise
        // from a legitimate mode sweep, so it becomes a per-job
        // failure instead.
        bool known = false;
        for (const std::string &w : suiteWorkloads())
            known = known || w == workload;
        if (!known)
            return fail("unknown workload '" + workload + "'");

        WorkloadRequest req;
        req.workload = workload;
        req.mode = mode;
        req.n = n;
        req.seed = seed;
        req.config = config;
        req.maxCycles = maxCycles;
        auto spec = makeWorkloadSpec(req, &cache_);
        if (spec.hasValue()) {
            out_.push_back(std::move(spec.value()));
        } else {
            RunSpec broken;
            broken.name = workload + "/" + modeName(mode) +
                          "/n=" + std::to_string(n) +
                          "/seed=" + std::to_string(seed);
            broken.loadError = spec.error();
            out_.push_back(std::move(broken));
        }
        return true;
    }

    bool emitProgramFile(const std::string &path, Mode mode,
                         std::uint64_t seed, Cycle maxCycles,
                         const MachineConfig &config)
    {
        RunSpec spec;
        spec.name = path + "/" + modeName(mode) +
                    "/seed=" + std::to_string(seed);
        spec.config = config;
        spec.config.mode = mode;
        spec.config.seed = seed;
        spec.maxCycles = maxCycles;

        // A file that fails to assemble is a per-job failure: the
        // spec carries the diagnostic and the rest of the sweep runs.
        auto cached = fileCache_.find(path);
        if (cached == fileCache_.end()) {
            auto assembled = assembleFileResult(path);
            if (assembled.hasValue()) {
                cached = fileCache_
                             .emplace(path, PreparedProgram::make(
                                                std::move(
                                                    assembled.value())))
                             .first;
            } else {
                spec.loadError = assembled.error();
                out_.push_back(std::move(spec));
                return true;
            }
        }
        spec.program = cached->second;
        out_.push_back(std::move(spec));
        return true;
    }

    const json::Value *defaults_;
    ProgramCache &cache_;
    std::vector<RunSpec> &out_;
    const json::Value *entry_ = nullptr;
    std::map<std::string_view, const json::Value *> pinned_;
    std::map<std::string, std::shared_ptr<const PreparedProgram>>
        fileCache_;
    std::string error_;
};

} // namespace

Result<std::vector<RunSpec>, analysis::Diagnostic>
parseSweep(std::string_view text)
{
    auto doc = json::parse(text);
    if (!doc.hasValue())
        return {errTag, sweepError(doc.error().formatted())};
    const json::Value &root = doc.value();
    if (!root.isObject())
        return {errTag, sweepError("top level must be an object")};
    for (const auto &[key, value] : root.members()) {
        (void)value;
        if (key != "defaults" && key != "runs")
            return {errTag,
                    sweepError("unknown top-level key '" + key + "'")};
    }
    const json::Value *defaults = root.find("defaults");
    if (defaults != nullptr) {
        if (!defaults->isObject())
            return {errTag,
                    sweepError("'defaults' must be an object")};
        for (const auto &[key, value] : defaults->members()) {
            (void)value;
            if (!knownKey(key))
                return {errTag, sweepError(
                                    "unknown key '" + key +
                                    "' in defaults")};
        }
    }
    const json::Value *runs = root.find("runs");
    if (runs == nullptr || !runs->isArray())
        return {errTag, sweepError("missing 'runs' array")};

    std::vector<RunSpec> out;
    ProgramCache cache;
    Expander expander(defaults, cache, out);
    for (const json::Value &entry : runs->items()) {
        if (!expander.expand(entry))
            return {errTag, sweepError(expander.error())};
    }
    return out;
}

Result<std::vector<RunSpec>, analysis::Diagnostic>
loadSweep(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return {errTag, sweepError("cannot open sweep file '" + path +
                                   "'")};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseSweep(buf.str());
}

} // namespace ximd::farm
