#include "farm/suite.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>

#include "sched/pipeline.hh"
#include "sim/io_port.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "workloads/bitcount.hh"
#include "workloads/kernels.hh"
#include "workloads/loop12.hh"
#include "workloads/minmax.hh"
#include "workloads/nonblocking.hh"
#include "workloads/randprog.hh"
#include "workloads/reference.hh"

namespace ximd::farm {

namespace {

using workloads::kNonblockingValues;

analysis::Diagnostic
loadFailure(std::string message)
{
    return {analysis::Severity::Error, analysis::Check::LoadFailed, 0,
            -1, std::move(message)};
}

/**
 * Figure 12 environment: scripted input ports with seed-derived
 * arrival times, recording output ports, and a post-run check that
 * every value crossed between the two processes.
 */
class NonblockingFixture : public JobFixture
{
  public:
    explicit NonblockingFixture(std::uint64_t seed)
        : seed_(seed)
    {
    }

    void setUp(Machine &machine) override
    {
        const Program &prog = machine.program();
        // Arrival times are the nondeterministic part of the paper's
        // section 3.4 scenario ("the arrival time is outside compiler
        // control"); deriving them from the spec's seed pins them per
        // run, so the batch stays reproducible.
        Rng rng(seed_ ^ 0x9E3779B97F4A7C15ULL);
        Cycle arriveA = 0;
        Cycle arriveB = 0;
        for (unsigned i = 0; i < kNonblockingValues; ++i) {
            arriveA += static_cast<Cycle>(rng.range(1, 40));
            const Word a = static_cast<Word>(rng.range(1, 1 << 20));
            inA_.schedule(arriveA, a);
            expectB_.push_back(a); // FU7 copies a,b,c to OUTB.

            arriveB += static_cast<Cycle>(rng.range(1, 40));
            const Word x = static_cast<Word>(rng.range(1, 1 << 20));
            inB_.schedule(arriveB, x);
            expectA_.push_back(x); // FU3 copies x,y,z to OUTA.
        }

        const Addr ina = prog.symbolOrDie("INA");
        const Addr inb = prog.symbolOrDie("INB");
        const Addr outa = prog.symbolOrDie("OUTA");
        const Addr outb = prog.symbolOrDie("OUTB");
        machine.attachDevice(ina, ina, &inA_);
        machine.attachDevice(inb, inb, &inB_);
        machine.attachDevice(outa, outa, &outA_);
        machine.attachDevice(outb, outb, &outB_);
    }

    std::string check(const Machine &machine,
                      const RunResult &result) override
    {
        (void)machine;
        (void)result;
        if (!inA_.drained() || !inB_.drained())
            return "input ports not fully consumed";
        if (std::string e = checkPort(outA_, expectA_); !e.empty())
            return e;
        return checkPort(outB_, expectB_);
    }

  private:
    static std::string checkPort(const OutputPort &port,
                                 const std::vector<Word> &expect)
    {
        if (port.records().size() != expect.size()) {
            return port.name() + ": expected " +
                   std::to_string(expect.size()) + " writes, saw " +
                   std::to_string(port.records().size());
        }
        for (std::size_t i = 0; i < expect.size(); ++i) {
            if (port.records()[i].value != expect[i])
                return port.name() + ": value " + std::to_string(i) +
                       " mismatch";
        }
        return {};
    }

    std::uint64_t seed_;
    ScriptedInputPort inA_{"INA"};
    ScriptedInputPort inB_{"INB"};
    OutputPort outA_{"OUTA"};
    OutputPort outB_{"OUTB"};
    std::vector<Word> expectA_;
    std::vector<Word> expectB_;
};

FixtureFactory
nonblockingFixtureFactory()
{
    return [](const RunSpec &spec) {
        return std::make_unique<NonblockingFixture>(spec.config.seed);
    };
}

std::vector<SWord>
signedData(Rng &rng, unsigned n)
{
    std::vector<SWord> data(n);
    for (SWord &v : data)
        v = static_cast<SWord>(rng.range(0, 100000));
    return data;
}

/** What a workload name maps to, before mode/size specialization. */
struct WorkloadDef
{
    bool ximdOk;
    bool vliwOk;
    bool usesData; ///< Input size / seed shape the program.
    bool usesIo;   ///< Needs the Figure 12 fixture.
};

const std::map<std::string, WorkloadDef> &
defs()
{
    static const std::map<std::string, WorkloadDef> table = {
        {"tproc",               {true, true, false, false}},
        {"loop12",              {true, true, true, false}},
        {"minmax",              {true, true, true, false}},
        {"multisearch",         {true, true, true, false}},
        {"bitcount",            {true, true, true, false}},
        {"bitcount-lockstep",   {false, true, true, false}},
        // Compiled random loops (workloads/randprog.hh), one per
        // scheduler tier — the exact-vs-heuristic sweep axis. Same
        // (n, seed) pair = same loop, so paired jobs are comparable.
        {"randloop",            {true, true, true, false}},
        {"randloop-exact",      {true, true, true, false}},
        {"nonblocking",         {true, false, false, true}},
        {"nonblocking-barrier", {true, false, false, true}},
        {"nonblocking-memflag", {true, false, false, true}},
    };
    return table;
}

Program
buildProgram(const std::string &workload, Mode mode, unsigned n,
             std::uint64_t seed)
{
    Rng rng(seed);
    if (workload == "tproc")
        return workloads::tprocPaper(3, -4, 7, 11);
    if (workload == "loop12") {
        std::vector<float> y(n + 1);
        for (float &v : y)
            v = static_cast<float>(rng.range(-50, 50));
        return workloads::loop12Pipelined(y);
    }
    if (workload == "minmax") {
        const auto data = signedData(rng, n);
        return mode == Mode::Ximd ? workloads::minmaxXimd(data)
                                  : workloads::minmaxVliw(data);
    }
    if (workload == "multisearch") {
        const auto data = signedData(rng, n);
        return mode == Mode::Ximd
                   ? workloads::multiSearchXimd(6, data)
                   : workloads::multiSearchVliw(6, data);
    }
    if (workload == "bitcount" || workload == "bitcount-lockstep") {
        const unsigned rounded = std::max(4u, (n + 3u) & ~3u);
        std::vector<Word> data(rounded);
        for (Word &v : data)
            v = static_cast<Word>(rng.next64() & 0xFFFFF);
        if (workload == "bitcount-lockstep")
            return workloads::bitcountVliwLockstep(data);
        return mode == Mode::Ximd
                   ? workloads::bitcountXimd(data)
                   : workloads::bitcountVliwSerial(data);
    }
    if (workload == "randloop" || workload == "randloop-exact") {
        workloads::RandLoopOptions lo;
        lo.seed = seed;
        lo.bodyOps = 2 + n % 11;
        lo.tripCount = 3 + static_cast<unsigned>(seed % 5);
        sched::PipelineOptions po;
        po.schedule = workload == "randloop-exact"
                          ? sched::ScheduleTier::Exact
                          : sched::ScheduleTier::Heuristic;
        po.verify = true;
        sched::Compiler c(po);
        return valueOrFatal(c.compile(workloads::randomLoopIr(lo)))
            .program;
    }
    if (workload == "nonblocking")
        return workloads::nonblockingXimd();
    if (workload == "nonblocking-barrier")
        return workloads::lockstepBarrier();
    if (workload == "nonblocking-memflag")
        return workloads::memoryFlagXimd();
    panic("buildProgram: unhandled workload '", workload, "'");
}

/**
 * Identity of the generated machine code. Mode only matters for
 * workloads that emit different programs per mode, so mode-invariant
 * workloads share one PreparedProgram between their ximd and vliw
 * specs.
 */
std::string
programKey(const std::string &workload, Mode mode, unsigned n,
           std::uint64_t seed, const WorkloadDef &def)
{
    std::string key = workload;
    const bool modeInvariant =
        workload == "tproc" || workload == "loop12" ||
        workload == "randloop" || workload == "randloop-exact";
    if (!modeInvariant)
        key += std::string("/") + modeName(mode);
    if (def.usesData)
        key += "/n=" + std::to_string(n) +
               "/seed=" + std::to_string(seed);
    return key;
}

/**
 * Post-run correctness check against the plain-C++ reference models.
 * Every deterministic workload gets one, so a failed job means wrong
 * *results*, not just a fault — which is also what lets fault
 * campaigns (farm/campaign.hh) separate "degraded but correct" from
 * "produced wrong answers". Inputs are regenerated from (n, seed)
 * with the same recipe buildProgram used.
 *
 * These are RunSpec::check functions, not fixtures: they read only
 * final state through ArchView, which keeps every deterministic
 * workload eligible for the batch engine (farm/batch_runner.hh).
 */
ResultCheck
referenceCheck(const std::string &workload, unsigned n,
               std::uint64_t seed)
{
    if (workload == "tproc") {
        return [](const ArchView &m, const RunResult &) -> std::string {
            if (wordToInt(m.readRegByName("f")) !=
                workloads::referenceTproc(3, -4, 7, 11))
                return "tproc: f differs from reference";
            return {};
        };
    }
    if (workload == "minmax") {
        return [n, seed](const ArchView &m,
                         const RunResult &) -> std::string {
            Rng rng(seed);
            const auto data = signedData(rng, n);
            const auto [lo, hi] = workloads::referenceMinmax(data);
            if (wordToInt(m.readRegByName("min")) != lo)
                return "minmax: min differs from reference";
            if (wordToInt(m.readRegByName("max")) != hi)
                return "minmax: max differs from reference";
            return {};
        };
    }
    if (workload == "multisearch") {
        return [n, seed](const ArchView &m,
                         const RunResult &) -> std::string {
            Rng rng(seed);
            const auto data = signedData(rng, n);
            const auto expect =
                workloads::referenceMultiSearch(6, data);
            for (unsigned s = 0; s < 6; ++s) {
                if (m.readRegByName("c" + std::to_string(s)) !=
                    expect[s])
                    return "multisearch: c" + std::to_string(s) +
                           " differs from reference";
            }
            return {};
        };
    }
    if (workload == "bitcount" || workload == "bitcount-lockstep") {
        return [n, seed](const ArchView &m,
                         const RunResult &) -> std::string {
            const unsigned rounded = std::max(4u, (n + 3u) & ~3u);
            std::vector<Word> data(rounded);
            Rng rng(seed);
            for (Word &v : data)
                v = static_cast<Word>(rng.next64() & 0xFFFFF);
            const auto expect =
                workloads::referenceBitcountCumulative(data);
            const Word b0 = m.program().symbolOrDie("B0");
            for (std::size_t i = 0; i <= data.size(); ++i)
                if (m.peekMem(static_cast<Addr>(b0 + i)) != expect[i])
                    return "bitcount: B[" + std::to_string(i) +
                           "] differs from reference";
            return {};
        };
    }
    if (workload == "randloop" || workload == "randloop-exact") {
        return [n, seed](const ArchView &m,
                         const RunResult &) -> std::string {
            workloads::RandLoopOptions lo;
            lo.seed = seed;
            lo.bodyOps = 2 + n % 11;
            lo.tripCount = 3 + static_cast<unsigned>(seed % 5);
            const sched::IrProgram ir = workloads::randomLoopIr(lo);
            std::vector<Word> mem(4096, 0);
            const std::vector<Word> vregs =
                sched::interpretIr(ir, mem, 1u << 20);
            if (m.readRegByName("v1") != vregs[1])
                return "randloop: accumulator differs from "
                       "interpretIr reference";
            for (Addr a = lo.outBase;
                 a <= lo.outBase + lo.tripCount; ++a)
                if (m.peekMem(a) != mem[a])
                    return "randloop: mem[" + std::to_string(a) +
                           "] differs from interpretIr reference";
            return {};
        };
    }
    // loop12 (float pipeline) keeps its coverage in tests/workloads/.
    return {};
}

} // namespace

const std::vector<std::string> &
suiteWorkloads()
{
    static const std::vector<std::string> names = {
        "tproc",
        "loop12",
        "minmax",
        "multisearch",
        "bitcount",
        "bitcount-lockstep",
        "randloop",
        "randloop-exact",
        "nonblocking",
        "nonblocking-barrier",
        "nonblocking-memflag",
    };
    return names;
}

Result<RunSpec, analysis::Diagnostic>
makeWorkloadSpec(const WorkloadRequest &req, ProgramCache *cache)
{
    const auto it = defs().find(req.workload);
    if (it == defs().end()) {
        return {errTag, loadFailure("unknown workload '" +
                                    req.workload + "'")};
    }
    const WorkloadDef &def = it->second;
    const bool modeOk =
        req.mode == Mode::Ximd ? def.ximdOk : def.vliwOk;
    if (!modeOk) {
        return {errTag,
                loadFailure("workload '" + req.workload +
                            "' does not support mode '" +
                            modeName(req.mode) + "'")};
    }

    RunSpec spec;
    spec.name = req.workload + "/" + modeName(req.mode) +
                "/n=" + std::to_string(req.n) +
                "/seed=" + std::to_string(req.seed);
    spec.config = req.config;
    spec.config.mode = req.mode;
    spec.config.seed = req.seed;
    spec.maxCycles = req.maxCycles;
    if (def.usesIo)
        spec.fixture = nonblockingFixtureFactory();
    else
        spec.check = referenceCheck(req.workload, req.n, req.seed);

    try {
        const std::string key =
            programKey(req.workload, req.mode, req.n, req.seed, def);
        if (cache) {
            spec.program = cache->getOrBuild(key, [&] {
                return buildProgram(req.workload, req.mode, req.n,
                                    req.seed);
            });
        } else {
            spec.program = PreparedProgram::make(buildProgram(
                req.workload, req.mode, req.n, req.seed));
        }
    } catch (const FatalError &e) {
        return {errTag, loadFailure(e.what())};
    }
    return spec;
}

std::shared_ptr<const PreparedProgram>
ProgramCache::getOrBuild(const std::string &key,
                         const std::function<Program()> &build)
{
    auto it = map_.find(key);
    if (it != map_.end())
        return it->second;
    auto prepared = PreparedProgram::make(build());
    map_.emplace(key, prepared);
    return prepared;
}

std::vector<RunSpec>
builtinSuite(const SuiteOptions &opts)
{
    std::vector<RunSpec> out;
    ProgramCache cache;

    const auto add = [&](const std::string &workload, Mode mode,
                         bool regSync = false) {
        WorkloadRequest req;
        req.workload = workload;
        req.mode = mode;
        req.n = opts.n;
        req.seed = opts.seed;
        req.config.registeredSync = regSync;
        auto spec = makeWorkloadSpec(req, &cache);
        // The grid below only names valid combinations.
        XIMD_ASSERT(spec.hasValue(), "builtinSuite: bad grid entry");
        if (regSync)
            spec.value().name += "/regsync";
        out.push_back(std::move(spec.value()));
    };

    for (const std::string &w : suiteWorkloads()) {
        const WorkloadDef &def = defs().at(w);
        if (def.ximdOk)
            add(w, Mode::Ximd);
        if (def.vliwOk)
            add(w, Mode::Vliw);
    }
    if (opts.registeredSyncAxis) {
        // The ablation only affects sync-signal evaluation, so run it
        // on the workloads that synchronize.
        add("minmax", Mode::Ximd, true);
        add("bitcount", Mode::Ximd, true);
        add("nonblocking", Mode::Ximd, true);
    }
    return out;
}

} // namespace ximd::farm
