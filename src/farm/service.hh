/**
 * @file
 * xfarm as a service: the JSON-lines request engine behind --serve.
 *
 * A Service owns a queue of submitted batches and one worker thread
 * that drains it through BatchRunner (or the scalar farm). The wire
 * protocol is JSON lines — one request object in, one or more response
 * objects out, every response stamped `"schema": N` — so any client
 * that can write a line and read lines can drive it; the daemon layer
 * in tools/xfarm_main.cc is a thin AF_UNIX socket loop around
 * handleLine(), and tests drive handleLine() directly, in process.
 *
 * Requests (`{"cmd": ...}`):
 *
 *   {"cmd":"ping"}
 *       -> {"schema":1,"ok":true,"event":"pong"}
 *   {"cmd":"submit","sweep":{...}}          inline sweep object
 *   {"cmd":"submit","suite":{"n":256,"seed":1,"regsync_axis":false,
 *                            "filter":["minmax"]}}
 *       Options: "batch":false forces the scalar farm path,
 *       "threads":N workers for scalar jobs, "width":N lanes,
 *       "resume":"file.snap" warm-starts the job whose name matches
 *       the XIMDSNAP label (exactly like xfarm --resume).
 *       -> {"schema":1,"ok":true,"event":"submitted","batch":B,
 *           "jobs":N}
 *   {"cmd":"status"}  or  {"cmd":"status","batch":B}
 *       -> one {"event":"status","batch":B,"state":"queued|running|
 *          done","jobs":N,["failures":K]} line per batch
 *   {"cmd":"results","batch":B,["wait":true]}
 *       -> one {"event":"job",...} line per job in spec order (name,
 *          ok, stop, backend, cycles, stats, error), then
 *          {"event":"done","batch":B,"jobs":N,"failures":K}.
 *          Without "wait" an unfinished batch answers its status line
 *          instead.
 *   {"cmd":"drain"}     stop accepting submits, finish queued work
 *   {"cmd":"shutdown"}  drain, then ask the daemon to exit
 *
 * Errors answer {"schema":1,"ok":false,"error":"..."} and leave the
 * connection usable. Job records carry no host-timing fields, so a
 * batch's results stream is a pure function of its submission —
 * byte-identical across -j1/-jN and across polls.
 */

#ifndef XIMD_FARM_SERVICE_HH
#define XIMD_FARM_SERVICE_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "farm/run_spec.hh"

namespace ximd::farm {

class Service
{
  public:
    /** What the transport should do after a handled line. */
    enum class Action {
        Continue, ///< Keep the connection open.
        Shutdown, ///< Client asked the daemon to exit.
    };

    /** Receives one response line (no trailing newline). */
    using LineSink = std::function<void(const std::string &)>;

    Service();
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Handle one request line, emitting response lines through
     * @p out. Thread-safe: connections may call concurrently. A
     * "results ... wait" request blocks until that batch finishes.
     */
    Action handleLine(const std::string &line, const LineSink &out);

    /**
     * Stop accepting new submissions and block until every queued
     * batch has finished (the SIGTERM path). Idempotent.
     */
    void drain();

  private:
    enum class State { Queued, Running, Done };

    struct Batch
    {
        std::size_t id = 0;
        std::vector<RunSpec> specs;
        bool useBatch = true;
        unsigned threads = 1;
        unsigned width = 0;
        State state = State::Queued;
        BatchResult result;
    };

    void workerLoop();
    Batch *findLocked(std::size_t id);
    void emitStatus(const Batch &b, const LineSink &out);
    void emitResults(const Batch &b, const LineSink &out);

    std::mutex mu_;
    std::condition_variable cv_;      ///< Worker wakeup.
    std::condition_variable doneCv_;  ///< Batch-completion waiters.
    std::vector<std::unique_ptr<Batch>> batches_;
    bool draining_ = false;
    bool stop_ = false;
    std::thread worker_;
};

} // namespace ximd::farm

#endif // XIMD_FARM_SERVICE_HH
