/**
 * @file
 * Batched structure-of-arrays lockstep execution of many machines.
 *
 * The farm's scalar path pays a fixed cost per job that has nothing to
 * do with the job's cycle count: a Machine allocates and zeroes the
 * full idealized memory (4 MB at the default 2^20 words), the threaded
 * backend builds a per-core token table, and archStateHash() walks
 * every memory word. For the short jobs a sweep is made of, that setup
 * dwarfs execution — and thread fan-out cannot help on a host where
 * xfarm scaling is flat (BENCH xfarm_scaling).
 *
 * BatchEngine amortizes all of it across N lanes that share one
 * immutable PreparedProgram:
 *
 *  - per-lane register files, condition codes, PCs, live masks, cycle
 *    budgets and partition histograms live in contiguous per-lane
 *    arrays owned by the engine (structure-of-arrays, one allocation
 *    for the whole batch, reused as lanes retire and refill);
 *  - execution dispatches directly over the shared FlatProgram — its
 *    operands are register *indices*, not per-core pointers, so a lane
 *    needs zero per-job token preparation;
 *  - lane memory is paged (4096-word pages allocated on first store),
 *    so resetting a retired lane and hashing its final contents cost
 *    O(pages touched), not O(memWords) — while loads of untouched
 *    pages still read the architectural zero;
 *  - finished or faulted lanes are masked out of the lockstep loop,
 *    retire their LaneResult, and are immediately refilled from the
 *    pending-job queue.
 *
 * Fidelity contract: a lane's RunResult, RunStats and archStateHash
 * are bit-identical to running the same RunSpec through the scalar
 * farm path. The inner loop is a clone of the threaded backend's block
 * executor (core/threaded_backend.cc) — same five-phase cycle, same
 * commit ordering and conflict faults, same beginning-of-cycle
 * partition charge, same busy-wait fast-forward accounting — and the
 * parity suite in tests/batch/ checks the hash and the stats byte for
 * byte across the section 4.1 grid and randprog corpora.
 *
 * Batching lives *above* one machine: this is not a MachineConfig
 * backend (a single MachineCore has nothing to batch). The farm-side
 * dispatcher (farm/batch_runner.hh) forms same-program cohorts and
 * falls back to scalar Machine runs for jobs that need per-cycle
 * fidelity, mirroring MachineCore::demotionReason().
 *
 * Thread-safety: an engine is confined to one thread, like a
 * MachineCore. Many engines may share one PreparedProgram.
 */

#ifndef XIMD_BATCH_BATCH_ENGINE_HH
#define XIMD_BATCH_BATCH_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/arch_view.hh"
#include "core/machine_config.hh"
#include "core/run_result.hh"
#include "core/stats.hh"
#include "isa/decoded_program.hh"
#include "support/types.hh"

namespace ximd::batch {

/**
 * The configuration shared by every lane of one engine. These are the
 * MachineConfig fields that change execution semantics; per-job fields
 * (cycle budget, seed, cycleTimeNs) stay per-lane / per-caller.
 */
struct EngineConfig
{
    Mode mode = Mode::Ximd;
    std::size_t memWords = 1u << 20;
    ConflictPolicy conflictPolicy = ConflictPolicy::Fault;
    bool collectStats = true;
    bool trackPartitions = true;
    bool fastForward = true;
};

/** Outcome of one batched job, mirroring the scalar Machine surface. */
struct LaneResult
{
    /** False when lane construction itself failed (see `error`). */
    bool ran = false;

    RunResult run;

    /** Final statistics (meaningful when `ran`). */
    RunStats stats{1};

    /** MachineCore::archStateHash of the final lane state. */
    std::uint64_t archHash = 0;

    /**
     * Construction failure (invalid VLIW program, memory-init out of
     * range) — exactly the FatalError message the scalar Machine
     * constructor would have thrown. Empty when `ran`.
     */
    std::string error;

    /**
     * Non-empty when the job's post-run check rejected the final
     * state (or itself faulted reading it). Checks only run for
     * cleanly-halted lanes, mirroring the farm's fault > budget >
     * check precedence.
     */
    std::string checkError;
};

/**
 * Post-run verification over one retired lane's architectural state.
 * Signature-compatible with farm::ResultCheck: the same callable
 * verifies a scalar Machine and a batch lane.
 */
using LaneCheck =
    std::function<std::string(const ArchView &, const RunResult &)>;

/** Lockstep SoA executor for N same-program machines. */
class BatchEngine
{
  public:
    /**
     * Build an engine with @p width concurrent lanes executing
     * @p prepared under @p config. Jobs beyond @p width queue and fill
     * lanes as earlier jobs retire.
     */
    BatchEngine(std::shared_ptr<const PreparedProgram> prepared,
                EngineConfig config, unsigned width);

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /**
     * Queue one job with cycle budget @p budget (must be the resolved
     * budget — callers apply their defaultMaxCycles first) and an
     * optional post-run @p check, evaluated at retirement while the
     * lane's final state is still resident.
     * @return the job id used with result().
     */
    std::size_t submit(Cycle budget, LaneCheck check = {});

    /** Number of jobs submitted so far. */
    std::size_t jobCount() const { return jobs_.size(); }

    /**
     * Run every queued job to completion, retiring and refilling lanes
     * as they finish. May be called repeatedly (submit more, run
     * again); results of completed jobs are stable.
     */
    void runAll();

    /** Result of job @p id; valid after runAll() returned. */
    const LaneResult &result(std::size_t id) const
    {
        return jobs_[id].result;
    }

    unsigned width() const { return width_; }

  private:
    struct Pend;
    class LaneView;

    /** Per-job bookkeeping. */
    struct JobState
    {
        Cycle budget = 0;
        LaneCheck check;
        bool done = false;
        LaneResult result;
    };

    static constexpr std::size_t kNoJob = ~std::size_t(0);
    static constexpr unsigned kPageShift = 12; ///< 4096-word pages.
    static constexpr std::size_t kPageWords = std::size_t(1)
                                              << kPageShift;

    /** Per-lane committed-cycle accounting (BlockStats equivalent). */
    struct LaneStats
    {
        Cycle cycles = 0;
        std::uint64_t parcels = 0;
        std::uint64_t classCounts[8] = {};
        std::uint64_t condBranches = 0;
        std::uint64_t takenBranches = 0;
        std::uint64_t busyWaitFuCycles = 0;
        Cycle partitionCycles[kMaxFus + 1] = {};
    };

    enum class LaneExit { Running, Halted, Faulted, Limit };

    void resetLane(unsigned lane, std::size_t job);
    void retireLane(unsigned lane, LaneExit exit);
    bool refillLane(unsigned lane);

    LaneExit runSlice(unsigned lane, Cycle sliceCycles);
    template <bool kStats, bool kPart>
    LaneExit runSliceXimd(unsigned lane, Cycle sliceLimit);
    template <bool kStats>
    LaneExit runSliceVliw(unsigned lane, Cycle sliceLimit);

    void commitPend(Pend &pend, unsigned lane);
    void updateGrouping(unsigned lane, const FlatParcel *const *cur,
                        std::uint32_t liveMask, std::uint32_t haltMask);

    Word *ensurePage(unsigned lane, std::size_t pageIdx);
    std::uint64_t laneArchHash(unsigned lane) const;
    RunStats foldStats(unsigned lane) const;

    std::shared_ptr<const PreparedProgram> prepared_;
    EngineConfig config_;
    unsigned width_;
    FuId fus_;
    InstAddr rows_;
    std::size_t numPages_;

    /** Non-empty when the whole cohort fails construction. */
    std::string ctorError_;

    std::vector<JobState> jobs_;
    std::size_t nextPending_ = 0;

    // ---- Structure-of-arrays lane state ------------------------------
    std::vector<std::size_t> laneJob_;   ///< kNoJob when idle.
    std::vector<Word> regs_;             ///< width * kNumRegisters.
    std::vector<std::uint8_t> cc_;       ///< width * fus.
    std::vector<std::uint32_t> ccEver_;  ///< per-lane ever-written mask.
    std::vector<InstAddr> pc_;           ///< width * fus.
    std::vector<std::uint32_t> live_;    ///< per-lane live-FU mask.
    std::vector<Cycle> cyc_;             ///< per-lane current cycle.
    std::vector<Cycle> limit_;           ///< per-lane budget limit.
    std::vector<unsigned> streams_;      ///< SSET count of last cycle.
    std::vector<LaneStats> stats_;
    std::vector<std::string> faultMsg_;

    /** Lane memory pages: [lane * numPages_ + page], empty = zero. */
    std::vector<std::vector<Word>> pages_;
    /** Raw page pointers for the hot loop (null = zero page). */
    std::vector<Word *> pageTbl_;
    /** Pages touched since the lane's last reset. */
    std::vector<std::vector<std::uint32_t>> dirty_;

    // SSET-grouping scratch (engine-level: one lane runs at a time).
    std::vector<std::uint64_t> keyStamp_;
    std::vector<int> keyDense_;
    std::uint64_t stamp_ = 0;
};

} // namespace ximd::batch

#endif // XIMD_BATCH_BATCH_ENGINE_HH
