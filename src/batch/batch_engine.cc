#include "batch/batch_engine.hh"

#include <algorithm>

#include "sim/alu.hh"
#include "support/logging.hh"

// The per-lane execute bodies, cloned from the threaded backend's
// XIMD_DATA_OPS table (core/threaded_backend.cc) with register-index
// operands resolved against the lane's register slab instead of
// per-core pointers. Names in scope at expansion: `t` (FlatParcel),
// `fu`, `pend`, `lregs`, `lpages`, `memWords`. Fault points are
// identical to the scalar path: ALU helpers raise divide-by-zero with
// the interpreter's message, and an out-of-range load faults with
// Memory::checkAddr's exact text.
#define XBATCH_A                                                          \
    ((t.flags & FlatParcel::kAReg) ? lregs[t.aVal] : t.aVal)
#define XBATCH_B                                                          \
    ((t.flags & FlatParcel::kBReg) ? lregs[t.bVal] : t.bVal)

#define XBATCH_DATA_OPS(X)                                                \
    X(Iadd, PUSH_REG(XBATCH_A + XBATCH_B))                                \
    X(Isub, PUSH_REG(XBATCH_A - XBATCH_B))                                \
    X(Imult, PUSH_REG(alu::intBinary(Opcode::Imult, XBATCH_A, XBATCH_B))) \
    X(Idiv, PUSH_REG(alu::intBinary(Opcode::Idiv, XBATCH_A, XBATCH_B)))   \
    X(Imod, PUSH_REG(alu::intBinary(Opcode::Imod, XBATCH_A, XBATCH_B)))   \
    X(Ineg, PUSH_REG(intToWord(-wordToInt(XBATCH_A))))                    \
    X(And, PUSH_REG(XBATCH_A & XBATCH_B))                                 \
    X(Or, PUSH_REG(XBATCH_A | XBATCH_B))                                  \
    X(Xor, PUSH_REG(XBATCH_A ^ XBATCH_B))                                 \
    X(Not, PUSH_REG(~XBATCH_A))                                           \
    X(Shl, PUSH_REG(XBATCH_A << (XBATCH_B & 31u)))                        \
    X(Shr, PUSH_REG(XBATCH_A >> (XBATCH_B & 31u)))                        \
    X(Sar, PUSH_REG(intToWord(wordToInt(XBATCH_A) >>                      \
                              (XBATCH_B & 31u))))                         \
    X(Mov, PUSH_REG(XBATCH_A))                                            \
    X(Eq, PUSH_CC(alu::intCompare(Opcode::Eq, XBATCH_A, XBATCH_B)))       \
    X(Ne, PUSH_CC(alu::intCompare(Opcode::Ne, XBATCH_A, XBATCH_B)))       \
    X(Lt, PUSH_CC(alu::intCompare(Opcode::Lt, XBATCH_A, XBATCH_B)))       \
    X(Le, PUSH_CC(alu::intCompare(Opcode::Le, XBATCH_A, XBATCH_B)))       \
    X(Gt, PUSH_CC(alu::intCompare(Opcode::Gt, XBATCH_A, XBATCH_B)))       \
    X(Ge, PUSH_CC(alu::intCompare(Opcode::Ge, XBATCH_A, XBATCH_B)))       \
    X(Fadd, PUSH_REG(alu::floatBinary(Opcode::Fadd, XBATCH_A, XBATCH_B))) \
    X(Fsub, PUSH_REG(alu::floatBinary(Opcode::Fsub, XBATCH_A, XBATCH_B))) \
    X(Fmult, PUSH_REG(alu::floatBinary(Opcode::Fmult, XBATCH_A,           \
                                       XBATCH_B)))                        \
    X(Fdiv, PUSH_REG(alu::floatBinary(Opcode::Fdiv, XBATCH_A, XBATCH_B))) \
    X(Fneg, PUSH_REG(floatToWord(-wordToFloat(XBATCH_A))))                \
    X(Feq, PUSH_CC(alu::floatCompare(Opcode::Feq, XBATCH_A, XBATCH_B)))   \
    X(Fne, PUSH_CC(alu::floatCompare(Opcode::Fne, XBATCH_A, XBATCH_B)))   \
    X(Flt, PUSH_CC(alu::floatCompare(Opcode::Flt, XBATCH_A, XBATCH_B)))   \
    X(Fle, PUSH_CC(alu::floatCompare(Opcode::Fle, XBATCH_A, XBATCH_B)))   \
    X(Fgt, PUSH_CC(alu::floatCompare(Opcode::Fgt, XBATCH_A, XBATCH_B)))   \
    X(Fge, PUSH_CC(alu::floatCompare(Opcode::Fge, XBATCH_A, XBATCH_B)))   \
    X(Itof, PUSH_REG(floatToWord(                                         \
        static_cast<float>(wordToInt(XBATCH_A)))))                        \
    X(Ftoi, PUSH_REG(intToWord(                                           \
        static_cast<SWord>(wordToFloat(XBATCH_A)))))                      \
    X(Load, do {                                                          \
        const Addr addr = XBATCH_A + XBATCH_B;                            \
        if (addr >= memWords)                                             \
            fatal("memory address ", addr, " out of range (", memWords,   \
                  " words)");                                             \
        const Word *pg = lpages[addr >> kPageShift];                      \
        PUSH_REG(pg ? pg[addr & (kPageWords - 1)] : 0);                   \
    } while (0))                                                          \
    X(Store, PUSH_MEM(XBATCH_B, XBATCH_A))

#define PUSH_REG(v)                                                       \
    (pend.regW[pend.nReg].reg = t.dest, pend.regW[pend.nReg].fu = fu,     \
     pend.regW[pend.nReg].val = (v), ++pend.nReg)
#define PUSH_CC(v)                                                        \
    (pend.ccW[pend.nCc].fu = fu,                                          \
     pend.ccW[pend.nCc].val = static_cast<std::uint8_t>(v), ++pend.nCc)
#define PUSH_MEM(a_, v_)                                                  \
    (pend.memW[pend.nMem].addr = (a_), pend.memW[pend.nMem].fu = fu,      \
     pend.memW[pend.nMem].val = (v_), ++pend.nMem)

namespace ximd::batch {

namespace {

inline FuId
lowestSetFu(std::uint32_t m)
{
#if defined(__GNUC__)
    return static_cast<FuId>(__builtin_ctz(m));
#else
    FuId fu = 0;
    while (!(m & 1u)) {
        m >>= 1;
        ++fu;
    }
    return fu;
#endif
}

/**
 * MachineCore::validateVliwProgram, reproduced with identical fault
 * messages so a batched cohort rejects a bad VLIW program exactly as
 * each scalar Machine construction would have.
 */
void
validateVliwProgram(const Program &program)
{
    for (InstAddr a = 0; a < program.size(); ++a) {
        for (FuId fu = 0; fu < program.width(); ++fu) {
            const Parcel &p = program.row(a)[fu];
            switch (p.ctrl.kind) {
              case CondKind::SyncDone:
              case CondKind::AllSync:
              case CondKind::AnySync:
                fatal("row ", a, " FU", fu, ": sync-signal branch "
                      "conditions do not exist on a VLIW machine");
              default:
                break;
            }
            if (p.sync != SyncVal::Busy)
                fatal("row ", a, " FU", fu, ": sync fields do not "
                      "exist on a VLIW machine");
        }
    }
}

} // namespace

/** Writes queued by one cycle, committed in component order. */
struct BatchEngine::Pend
{
    struct RegW
    {
        RegId reg;
        FuId fu;
        Word val;
    };
    struct CcW
    {
        FuId fu;
        std::uint8_t val;
    };
    struct MemW
    {
        Addr addr;
        FuId fu;
        Word val;
    };
    RegW regW[kMaxFus];
    CcW ccW[kMaxFus];
    MemW memW[kMaxFus];
    int nReg = 0;
    int nCc = 0;
    int nMem = 0;
};

BatchEngine::BatchEngine(std::shared_ptr<const PreparedProgram> prepared,
                         EngineConfig config, unsigned width)
    : prepared_(std::move(prepared)),
      config_(config),
      width_(width ? width : 1),
      fus_(prepared_->width()),
      rows_(prepared_->flat().size()),
      numPages_((config.memWords + kPageWords - 1) >> kPageShift)
{
    try {
        if (config_.memWords == 0)
            fatal("memory must contain at least one word");
        if (config_.mode == Mode::Vliw)
            validateVliwProgram(prepared_->program());
    } catch (const FatalError &e) {
        ctorError_ = e.what();
    }

    laneJob_.assign(width_, kNoJob);
    regs_.assign(std::size_t(width_) * kNumRegisters, 0);
    cc_.assign(std::size_t(width_) * fus_, 0);
    ccEver_.assign(width_, 0);
    pc_.assign(std::size_t(width_) * fus_, 0);
    live_.assign(width_, 0);
    cyc_.assign(width_, 0);
    limit_.assign(width_, 0);
    streams_.assign(width_, 1);
    stats_.assign(width_, LaneStats{});
    faultMsg_.assign(width_, std::string());
    pages_.resize(std::size_t(width_) * numPages_);
    pageTbl_.assign(std::size_t(width_) * numPages_, nullptr);
    dirty_.resize(width_);
    keyStamp_.assign(prepared_->flat().numKeys(), 0);
    keyDense_.assign(prepared_->flat().numKeys(), 0);
}

std::size_t
BatchEngine::submit(Cycle budget, LaneCheck check)
{
    JobState js;
    js.budget = budget;
    js.check = std::move(check);
    jobs_.push_back(std::move(js));
    return jobs_.size() - 1;
}

/**
 * ArchView over one lane's SoA slices, valid while the lane holds its
 * job (checks run at retirement, before the refill recycles the
 * state). Accessors fault with MachineCore's exact messages so a
 * check failure reads identically either way.
 */
class BatchEngine::LaneView final : public ArchView
{
  public:
    LaneView(const BatchEngine &engine, unsigned lane)
        : engine_(engine), lane_(lane)
    {
    }

    const Program &program() const override
    {
        return engine_.prepared_->program();
    }

    Word readRegByName(const std::string &name) const override
    {
        const auto r = program().regByName(name);
        if (!r)
            fatal("program defines no register named '", name, "'");
        return engine_.regs_[std::size_t(lane_) * kNumRegisters + *r];
    }

    Word peekMem(Addr addr) const override
    {
        if (addr >= engine_.config_.memWords)
            fatal("memory address ", addr, " out of range (",
                  engine_.config_.memWords, " words)");
        const Word *pg =
            engine_.pageTbl_[std::size_t(lane_) * engine_.numPages_ +
                             (addr >> kPageShift)];
        return pg ? pg[addr & (kPageWords - 1)] : 0;
    }

  private:
    const BatchEngine &engine_;
    unsigned lane_;
};

Word *
BatchEngine::ensurePage(unsigned lane, std::size_t pageIdx)
{
    const std::size_t slot = std::size_t(lane) * numPages_ + pageIdx;
    if (Word *pg = pageTbl_[slot])
        return pg;
    std::vector<Word> &store = pages_[slot];
    if (store.empty())
        store.assign(kPageWords, 0);
    else
        std::fill(store.begin(), store.end(), 0);
    pageTbl_[slot] = store.data();
    dirty_[lane].push_back(static_cast<std::uint32_t>(pageIdx));
    return pageTbl_[slot];
}

void
BatchEngine::resetLane(unsigned lane, std::size_t job)
{
    std::fill_n(regs_.begin() + std::size_t(lane) * kNumRegisters,
                kNumRegisters, 0);
    std::fill_n(cc_.begin() + std::size_t(lane) * fus_, fus_, 0);
    ccEver_[lane] = 0;
    std::fill_n(pc_.begin() + std::size_t(lane) * fus_, fus_, 0);
    live_[lane] = fuMaskAll(fus_);
    cyc_[lane] = 0;
    limit_[lane] = jobs_[job].budget;
    streams_[lane] = 1;
    stats_[lane] = LaneStats{};
    faultMsg_[lane].clear();
    for (std::uint32_t p : dirty_[lane])
        pageTbl_[std::size_t(lane) * numPages_ + p] = nullptr;
    dirty_[lane].clear();

    // Initial memory / register images, exactly as MachineCore's
    // applyMemInit() pokes them (an out-of-range address faults with
    // Memory::checkAddr's message, failing this job's construction).
    Word *const lregs = regs_.data() + std::size_t(lane) * kNumRegisters;
    for (const auto &[addr, value] : prepared_->program().memInit()) {
        if (addr >= config_.memWords)
            fatal("memory address ", addr, " out of range (",
                  config_.memWords, " words)");
        ensurePage(lane, addr >> kPageShift)[addr & (kPageWords - 1)] =
            value;
    }
    for (const auto &[reg, value] : prepared_->program().regInit())
        lregs[reg] = value;
}

bool
BatchEngine::refillLane(unsigned lane)
{
    while (nextPending_ < jobs_.size()) {
        const std::size_t job = nextPending_++;
        if (jobs_[job].done)
            continue;
        if (!ctorError_.empty()) {
            jobs_[job].result.ran = false;
            jobs_[job].result.error = ctorError_;
            jobs_[job].done = true;
            continue;
        }
        try {
            resetLane(lane, job);
        } catch (const FatalError &e) {
            jobs_[job].result.ran = false;
            jobs_[job].result.error = e.what();
            jobs_[job].done = true;
            continue;
        }
        laneJob_[lane] = job;
        return true;
    }
    return false;
}

void
BatchEngine::commitPend(Pend &pend, unsigned lane)
{
    // Clone of ThreadedBackend::commitPend over lane-local state: a
    // store's address check is the first commit-time fault; registers
    // sort/conflict/apply next; memory conflicts fault *after* the
    // register commit applied; condition codes never fault.
    const std::size_t memWords = config_.memWords;
    for (int i = 0; i < pend.nMem; ++i) {
        if (pend.memW[i].addr >= memWords)
            fatal("memory address ", pend.memW[i].addr,
                  " out of range (", memWords, " words)");
    }

    const ConflictPolicy policy = config_.conflictPolicy;

    if (pend.nReg) {
        Word *const lregs =
            regs_.data() + std::size_t(lane) * kNumRegisters;
        for (int i = 1; i < pend.nReg; ++i) {
            const Pend::RegW w = pend.regW[i];
            int j = i - 1;
            while (j >= 0 && (pend.regW[j].reg > w.reg ||
                              (pend.regW[j].reg == w.reg &&
                               pend.regW[j].fu > w.fu))) {
                pend.regW[j + 1] = pend.regW[j];
                --j;
            }
            pend.regW[j + 1] = w;
        }
        if (policy == ConflictPolicy::Fault) {
            for (int i = 1; i < pend.nReg; ++i) {
                const Pend::RegW &prev = pend.regW[i - 1];
                const Pend::RegW &cur = pend.regW[i];
                if (prev.reg == cur.reg && prev.fu != cur.fu)
                    fatal("register write conflict: FU", prev.fu,
                          " and FU", cur.fu, " both write r", cur.reg,
                          " this cycle");
            }
        }
        RegId lastReg = 0;
        bool haveLast = false;
        for (int i = 0; i < pend.nReg; ++i) {
            const Pend::RegW &w = pend.regW[i];
            if (haveLast && w.reg == lastReg)
                continue;
            lregs[w.reg] = w.val;
            lastReg = w.reg;
            haveLast = true;
        }
    }

    if (pend.nMem) {
        for (int i = 1; i < pend.nMem; ++i) {
            const Pend::MemW w = pend.memW[i];
            int j = i - 1;
            while (j >= 0 && (pend.memW[j].addr > w.addr ||
                              (pend.memW[j].addr == w.addr &&
                               pend.memW[j].fu > w.fu))) {
                pend.memW[j + 1] = pend.memW[j];
                --j;
            }
            pend.memW[j + 1] = w;
        }
        if (policy == ConflictPolicy::Fault) {
            for (int i = 1; i < pend.nMem; ++i) {
                const Pend::MemW &prev = pend.memW[i - 1];
                const Pend::MemW &cur = pend.memW[i];
                if (prev.addr == cur.addr && prev.fu != cur.fu)
                    fatal("memory write conflict: FU", prev.fu,
                          " and FU", cur.fu, " both store to address ",
                          cur.addr, " this cycle");
            }
        }
        Addr lastAddr = 0;
        bool haveLast = false;
        for (int i = 0; i < pend.nMem; ++i) {
            const Pend::MemW &w = pend.memW[i];
            if (haveLast && w.addr == lastAddr)
                continue;
            ensurePage(lane, w.addr >> kPageShift)[w.addr &
                                                   (kPageWords - 1)] =
                w.val;
            lastAddr = w.addr;
            haveLast = true;
        }
    }

    std::uint8_t *const lcc = cc_.data() + std::size_t(lane) * fus_;
    for (int i = 0; i < pend.nCc; ++i) {
        lcc[pend.ccW[i].fu] = pend.ccW[i].val;
        ccEver_[lane] |= 1u << pend.ccW[i].fu;
    }
}

void
BatchEngine::updateGrouping(unsigned lane, const FlatParcel *const *cur,
                            std::uint32_t liveMask,
                            std::uint32_t haltMask)
{
    // ThreadedBackend::updateGrouping: PartitionTracker's keying over
    // interned keyIds, an epoch stamp replacing the tuple map.
    ++stamp_;
    int next = 0;
    for (FuId fu = 0; fu < fus_; ++fu) {
        const std::uint32_t bit = 1u << fu;
        if (!(liveMask & bit) || (haltMask & bit))
            continue;
        const std::uint16_t k = cur[fu]->keyId;
        if (keyStamp_[k] != stamp_) {
            keyStamp_[k] = stamp_;
            keyDense_[k] = next++;
        }
    }
    streams_[lane] = static_cast<unsigned>(next);
}

template <bool kStats, bool kPart>
BatchEngine::LaneExit
BatchEngine::runSliceXimd(unsigned lane, Cycle sliceLimit)
{
    const FlatProgram &flat = prepared_->flat();
    const std::uint32_t fullMask = fuMaskAll(fus_);
    const std::size_t memWords = config_.memWords;
    const bool fastForward = config_.fastForward;
    Word *const lregs = regs_.data() + std::size_t(lane) * kNumRegisters;
    std::uint8_t *const lcc = cc_.data() + std::size_t(lane) * fus_;
    InstAddr *const lpc = pc_.data() + std::size_t(lane) * fus_;
    Word *const *const lpages =
        pageTbl_.data() + std::size_t(lane) * numPages_;
    LaneStats &ls = stats_[lane];
    const Cycle laneLimit = limit_[lane];
    std::uint32_t liveMask = live_[lane];
    Cycle cyc = cyc_[lane];

    const FlatParcel *cur[kMaxFus];
    InstAddr nxPc[kMaxFus];
    Pend pend;

    const auto leave = [&](LaneExit e) {
        live_[lane] = liveMask;
        cyc_[lane] = cyc;
        return e;
    };

    for (;;) {
        if (cyc >= laneLimit)
            return leave(LaneExit::Limit);
        if (liveMask == 0)
            return leave(LaneExit::Halted);
        if (cyc >= sliceLimit)
            return leave(LaneExit::Running);

        // Beginning-of-cycle partition charge (StatsObserver::onCycle
        // fires before fetch, so a faulting cycle is still charged).
        if constexpr (kStats && kPart)
            ls.partitionCycles[streams_[lane]] += 1;

        // Fetch: gather live parcels and drive the combinational sync
        // bus (halted FUs read DONE).
        std::uint32_t ssDone = ~liveMask & fullMask;
        for (std::uint32_t m = liveMask; m; m &= m - 1) {
            const FuId fu = lowestSetFu(m);
            const FlatParcel &t = flat.at(lpc[fu], fu);
            cur[fu] = &t;
            ssDone |= t.ssDoneBit;
        }

        // Execute + sequence each live FU in FU order, then commit.
        std::uint32_t haltMask = 0;
        std::uint32_t takenMask = 0;
        pend.nReg = pend.nMem = pend.nCc = 0;
        try {
            for (std::uint32_t m = liveMask; m; m &= m - 1) {
                const FuId fu = lowestSetFu(m);
                const std::uint32_t bit = 1u << fu;
                const FlatParcel &t = *cur[fu];

                switch (t.kind) {
                  // Fused superinstructions: control-only parcels.
                  case ExecKind::Jump:
                    nxPc[fu] = t.t1;
                    continue;
                  case ExecKind::HaltTok:
                    haltMask |= bit;
                    continue;
                  case ExecKind::PollCc: {
                    const bool taken = lcc[t.cindex] != 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    continue;
                  }
                  case ExecKind::PollSs: {
                    const bool taken = (ssDone >> t.cindex) & 1u;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    continue;
                  }
                  case ExecKind::PollAll: {
                    const bool taken = (t.cmask & ~ssDone) == 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    continue;
                  }
                  case ExecKind::PollAny: {
                    const bool taken = (t.cmask & ssDone) != 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    continue;
                  }
#define X(name, body)                                                     \
                  case ExecKind::name:                                    \
                    body;                                                 \
                    break;
                  XBATCH_DATA_OPS(X)
#undef X
                  default:
                    break; // ExecKind::Nop: no data-path effect
                }

                // Shared sequencing for data tokens (mirrors
                // evalDecodedControl against the lane's CC values and
                // this cycle's SS values).
                switch (t.ckind) {
                  case CondKind::Always:
                    nxPc[fu] = t.t1;
                    break;
                  case CondKind::Halt:
                    haltMask |= bit;
                    break;
                  case CondKind::CcTrue: {
                    const bool taken = lcc[t.cindex] != 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    break;
                  }
                  case CondKind::SyncDone: {
                    const bool taken = (ssDone >> t.cindex) & 1u;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    break;
                  }
                  case CondKind::AllSync: {
                    const bool taken = (t.cmask & ~ssDone) == 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    break;
                  }
                  case CondKind::AnySync: {
                    const bool taken = (t.cmask & ssDone) != 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    break;
                  }
                }
            }

            commitPend(pend, lane);
        } catch (const FatalError &e) {
            faultMsg_[lane] = e.what();
            return leave(LaneExit::Faulted);
        }

        // Fold the committed cycle's stats, advance control state, and
        // detect a busy-wait fixpoint.
        bool allSpin = fastForward && haltMask == 0;
        for (std::uint32_t m = liveMask; m; m &= m - 1) {
            const FuId fu = lowestSetFu(m);
            const std::uint32_t bit = 1u << fu;
            const FlatParcel &t = *cur[fu];
            if constexpr (kStats) {
                ls.parcels += 1;
                ls.classCounts[t.cls] += 1;
                if (t.flags & FlatParcel::kConditional) {
                    ls.condBranches += 1;
                    if (takenMask & bit)
                        ls.takenBranches += 1;
                    if (!(haltMask & bit) && nxPc[fu] == lpc[fu])
                        ls.busyWaitFuCycles += 1;
                }
            }
            if (!(haltMask & bit)) {
                if (!(t.flags & FlatParcel::kCanSelfSpin) ||
                    nxPc[fu] != lpc[fu])
                    allSpin = false;
                lpc[fu] = nxPc[fu];
            }
        }
        if constexpr (kStats)
            ls.cycles += 1;
        if constexpr (kPart)
            updateGrouping(lane, cur, liveMask, haltMask);
        liveMask &= ~haltMask;
        cyc += 1;

        if (allSpin) {
            // Fixpoint: every remaining budget cycle repeats this one
            // (batch-eligible jobs have no observers to cap the skip).
            if (laneLimit > cyc) {
                const Cycle skip = laneLimit - cyc;
                if constexpr (kStats) {
                    ls.cycles += skip;
                    if constexpr (kPart)
                        ls.partitionCycles[streams_[lane]] += skip;
                    for (std::uint32_t m = liveMask; m; m &= m - 1) {
                        const FuId fu = lowestSetFu(m);
                        const std::uint32_t bit = 1u << fu;
                        const FlatParcel &t = *cur[fu];
                        ls.parcels += skip;
                        ls.classCounts[t.cls] += skip;
                        if (t.flags & FlatParcel::kConditional) {
                            ls.condBranches += skip;
                            if (takenMask & bit)
                                ls.takenBranches += skip;
                            ls.busyWaitFuCycles += skip;
                        }
                    }
                }
                cyc = laneLimit;
            }
        }
    }
}

template <bool kStats>
BatchEngine::LaneExit
BatchEngine::runSliceVliw(unsigned lane, Cycle sliceLimit)
{
    const FlatProgram &flat = prepared_->flat();
    const std::size_t memWords = config_.memWords;
    const bool fastForward = config_.fastForward;
    Word *const lregs = regs_.data() + std::size_t(lane) * kNumRegisters;
    std::uint8_t *const lcc = cc_.data() + std::size_t(lane) * fus_;
    InstAddr *const lpc = pc_.data() + std::size_t(lane) * fus_;
    Word *const *const lpages =
        pageTbl_.data() + std::size_t(lane) * numPages_;
    LaneStats &ls = stats_[lane];
    const Cycle laneLimit = limit_[lane];
    std::uint32_t liveMask = live_[lane];
    Cycle cyc = cyc_[lane];
    Pend pend;

    const auto leave = [&](LaneExit e) {
        live_[lane] = liveMask;
        cyc_[lane] = cyc;
        return e;
    };

    for (;;) {
        if (cyc >= laneLimit)
            return leave(LaneExit::Limit);
        if (liveMask == 0)
            return leave(LaneExit::Halted);
        if (cyc >= sliceLimit)
            return leave(LaneExit::Running);

        const InstAddr pc0 = lpc[0];
        const FlatParcel &ctrl = flat.at(pc0, 0);

        // Sequence via FU0 alone; VLIW validation rejected sync
        // conditions, so only Always / CcTrue / Halt occur.
        bool halt = false;
        bool conditional = false;
        bool taken = false;
        InstAddr nx = pc0;
        switch (ctrl.ckind) {
          case CondKind::Always:
            nx = ctrl.t1;
            break;
          case CondKind::Halt:
            halt = true;
            break;
          case CondKind::CcTrue:
            conditional = true;
            taken = lcc[ctrl.cindex] != 0;
            nx = taken ? ctrl.t1 : ctrl.t2;
            break;
          default:
            panic("batch VLIW lane: sync condition on a VLIW machine");
        }

        pend.nReg = pend.nMem = pend.nCc = 0;
        try {
            for (FuId fu = 0; fu < fus_; ++fu) {
                const FlatParcel &t = flat.at(pc0, fu);
                switch (t.kind) {
#define X(name, body)                                                     \
                  case ExecKind::name:                                    \
                    body;                                                 \
                    break;
                  XBATCH_DATA_OPS(X)
#undef X
                  default:
                    break; // fused control-only tokens: no data path
                }
            }
            commitPend(pend, lane);
        } catch (const FatalError &e) {
            faultMsg_[lane] = e.what();
            return leave(LaneExit::Faulted);
        }

        if constexpr (kStats) {
            ls.cycles += 1;
            for (FuId fu = 0; fu < fus_; ++fu) {
                const FlatParcel &t = flat.at(pc0, fu);
                ls.parcels += 1;
                ls.classCounts[t.cls] += 1;
            }
            if (conditional) {
                ls.condBranches += 1;
                if (taken)
                    ls.takenBranches += 1;
                if (!halt && nx == pc0)
                    ls.busyWaitFuCycles += 1;
            }
        }

        if (halt)
            liveMask = 0;
        else
            lpc[0] = nx;
        cyc += 1;

        // Busy-wait fixpoint: an all-nop row spinning on itself.
        if (fastForward && !halt && nx == pc0 &&
            (ctrl.flags & FlatParcel::kRowAllNop)) {
            if (laneLimit > cyc) {
                const Cycle skip = laneLimit - cyc;
                if constexpr (kStats) {
                    ls.cycles += skip;
                    ls.parcels += static_cast<std::uint64_t>(fus_) * skip;
                    ls.classCounts[static_cast<std::uint8_t>(
                        OpClass::Nop)] +=
                        static_cast<std::uint64_t>(fus_) * skip;
                    if (conditional) {
                        ls.condBranches += skip;
                        if (taken)
                            ls.takenBranches += skip;
                        ls.busyWaitFuCycles += skip;
                    }
                }
                cyc = laneLimit;
            }
        }
    }
}

BatchEngine::LaneExit
BatchEngine::runSlice(unsigned lane, Cycle sliceCycles)
{
    const Cycle sliceLimit = cyc_[lane] + sliceCycles;
    const bool kS = config_.collectStats;
    if (config_.mode == Mode::Ximd) {
        const bool kP = kS && config_.trackPartitions;
        if (kS && kP)
            return runSliceXimd<true, true>(lane, sliceLimit);
        if (kS)
            return runSliceXimd<true, false>(lane, sliceLimit);
        return runSliceXimd<false, false>(lane, sliceLimit);
    }
    return kS ? runSliceVliw<true>(lane, sliceLimit)
              : runSliceVliw<false>(lane, sliceLimit);
}

RunStats
BatchEngine::foldStats(unsigned lane) const
{
    // StatsObserver::onBlock's fold, including the XIMD-only busy-wait
    // accounting and the VLIW fixed single-stream histogram.
    RunStats s(fus_);
    if (!config_.collectStats)
        return s;
    const LaneStats &ls = stats_[lane];
    if (config_.mode == Mode::Ximd) {
        if (config_.trackPartitions) {
            for (unsigned n = 1; n <= kMaxFus; ++n)
                if (ls.partitionCycles[n])
                    s.countPartitions(n, ls.partitionCycles[n]);
        }
    } else if (config_.trackPartitions) {
        s.countPartitions(1, ls.cycles);
    }
    for (std::size_t c = 0; c < 8; ++c)
        if (ls.classCounts[c])
            s.countParcels(static_cast<OpClass>(c), ls.classCounts[c]);
    if (ls.takenBranches)
        s.countConditionalBranches(true, ls.takenBranches);
    if (ls.condBranches > ls.takenBranches)
        s.countConditionalBranches(false,
                                   ls.condBranches - ls.takenBranches);
    if (config_.mode == Mode::Ximd && ls.busyWaitFuCycles)
        s.countBusyWaits(ls.busyWaitFuCycles);
    s.countCycles(ls.cycles);
    return s;
}

std::uint64_t
BatchEngine::laneArchHash(unsigned lane) const
{
    // MachineCore::archStateHash: register words, memory as RLE runs,
    // CC values + ever-written flags. The run decomposition replayed
    // here over the page table is identical to Memory::hashContents'
    // dense scan (absent pages contribute zero runs that merge with
    // neighbouring zero words exactly as the scan would).
    Hash64 h;
    const Word *const lregs =
        regs_.data() + std::size_t(lane) * kNumRegisters;
    for (RegId r = 0; r < kNumRegisters; ++r)
        h.u32(lregs[r]);

    const Word *const *const lpages =
        pageTbl_.data() + std::size_t(lane) * numPages_;
    std::uint64_t runLen = 0;
    Word runVal = 0;
    bool haveRun = false;
    const auto flush = [&] {
        if (haveRun) {
            h.u64(runLen);
            h.u32(runVal);
        }
    };
    for (std::size_t p = 0; p < numPages_; ++p) {
        const std::size_t base = p << kPageShift;
        const std::size_t n =
            std::min(kPageWords, config_.memWords - base);
        const Word *pg = lpages[p];
        if (!pg) {
            if (haveRun && runVal == 0) {
                runLen += n;
            } else {
                flush();
                runVal = 0;
                runLen = n;
                haveRun = true;
            }
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            const Word v = pg[i];
            if (haveRun && v == runVal) {
                ++runLen;
            } else {
                flush();
                runVal = v;
                runLen = 1;
                haveRun = true;
            }
        }
    }
    flush();

    const std::uint8_t *const lcc =
        cc_.data() + std::size_t(lane) * fus_;
    for (FuId fu = 0; fu < fus_; ++fu) {
        h.boolean(lcc[fu] != 0);
        h.boolean((ccEver_[lane] >> fu) & 1u);
    }
    return h.digest();
}

void
BatchEngine::retireLane(unsigned lane, LaneExit exit)
{
    (void)exit;
    const std::size_t job = laneJob_[lane];
    JobState &js = jobs_[job];
    LaneResult &res = js.result;
    res.ran = true;
    res.run.cycles = cyc_[lane];
    // Same verdict order as MachineCore::run(): fault wins, then
    // halted, then budget exhaustion.
    if (!faultMsg_[lane].empty()) {
        res.run.reason = StopReason::Fault;
        res.run.faultMessage = faultMsg_[lane];
    } else if (live_[lane] == 0) {
        res.run.reason = StopReason::Halted;
    } else {
        res.run.reason = StopReason::MaxCycles;
    }
    res.stats = foldStats(lane);
    res.archHash = laneArchHash(lane);
    // Checks see only cleanly-halted state (fault / exhausted budget
    // already failed the job), matching Farm::runOne's precedence. A
    // check that itself faults — bad register name, out-of-range peek
    // — fails the job with the FatalError's message, as scalar does.
    if (res.run.reason == StopReason::Halted && js.check) {
        try {
            res.checkError = js.check(LaneView(*this, lane), res.run);
        } catch (const std::exception &e) {
            res.checkError = e.what();
        }
    }
    js.done = true;
    laneJob_[lane] = kNoJob;
}

void
BatchEngine::runAll()
{
    // Lockstep round-robin: every active lane advances one slice, a
    // finished lane retires and its slot refills from the pending
    // queue on the next sweep. Lanes are independent machines, so any
    // interleaving of slices produces identical per-lane results; the
    // slice length only balances cache residency against scheduling
    // granularity.
    constexpr Cycle kSliceCycles = 4096;
    for (;;) {
        bool any = false;
        for (unsigned lane = 0; lane < width_; ++lane) {
            if (laneJob_[lane] == kNoJob && !refillLane(lane))
                continue;
            any = true;
            const LaneExit e = runSlice(lane, kSliceCycles);
            if (e != LaneExit::Running)
                retireLane(lane, e);
        }
        if (!any)
            return;
    }
}

} // namespace ximd::batch
