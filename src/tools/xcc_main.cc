/**
 * @file
 * xcc — the compiler driver over the sched pass pipeline.
 *
 * Input is the textual IR of sched/ir_print.hh (one `.ir` file per
 * thread) or, with --input=c, a C-like kernel source lowered through
 * the frontend; output is assembler source (`.ximd`) that xsim /
 * vsim / ximd-lint consume directly. One input compiles through the
 * block pipeline (validate-ir [merge-blocks] regalloc build-ddg
 * list-schedule codegen); several inputs with --compose go through
 * the Figure-13 path (tile, pack, compose) into one XIMD program.
 *
 * Usage:
 *   xcc [options] kernel.ir [more.ir ...]
 *     --input ir|c        input language (default ir)
 *     --emit ximd|ir|ddg  what to write (default ximd)
 *     --width N           functional units to schedule for
 *     --latency N         data-path result latency to compile for
 *     --schedule TIER     heuristic (default) or
 *                         exact[:budget-ms[:max-nodes]] — the exact
 *                         tier proves per-block II minimality within
 *                         its budget and falls back to the heuristic
 *                         schedule on timeout (warning, exit 0)
 *     --reg-base N        base of the physical register window
 *     --num-regs N        size of the physical register window
 *     --spill             spill excess vregs to memory instead of
 *                         failing on window exhaustion
 *     --spill-base A      base address of the spill-slot region
 *     --spill-slots N     spill slots available in that region
 *     --no-names          do not bind v<N> register names
 *     --merge-blocks      straighten jump-only chains first
 *     --compose STRAT     pack threads with STRAT (stacked, first-fit,
 *                         skyline, balanced-groups, exhaustive) and
 *                         compose them into one program
 *     --regs-per-thread N architectural registers per thread (24)
 *     --verify            run the static verifier as a final pass
 *     --analyze=race      run the cross-stream race engine as a final
 *                         pass (rejects races / lost signals /
 *                         unbounded busy-waits in the emitted code)
 *     --verify-between    re-verify IR and program after every pass
 *     --dump-after PASS   print pipeline state after PASS to stderr
 *                         (repeatable; PASS may be 'all')
 *     --stats-json        print per-pass timings/counters to stderr
 *     -o FILE             write output to FILE (default stdout)
 */

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "asm/asm_writer.hh"
#include "frontend/frontend.hh"
#include "sched/ir_print.hh"
#include "sched/pipeline.hh"
#include "support/argparse.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;
using namespace ximd::sched;

struct Options
{
    std::vector<std::string> files;
    std::string output;
    std::string input = "ir";
    std::string emit = "ximd";
    std::string compose; ///< Pack strategy; empty = block pipeline.
    std::set<std::string> dumpAfter;
    bool statsJson = false;
    PipelineOptions pipe;
};

template <typename T>
std::function<bool(const std::string &)>
intoNumber(T &field)
{
    return [&field](const std::string &text) {
        return argparse::Parser::parseNumber(text, field);
    };
}

/** --schedule=heuristic | exact[:budget-ms[:max-nodes]]. */
bool
parseScheduleTier(const std::string &v, PipelineOptions &pipe)
{
    if (v == "heuristic") {
        pipe.schedule = ScheduleTier::Heuristic;
        return true;
    }
    if (v.rfind("exact", 0) != 0)
        return false;
    pipe.schedule = ScheduleTier::Exact;
    std::string rest = v.substr(5);
    if (rest.empty())
        return true;
    if (rest[0] != ':')
        return false;
    rest = rest.substr(1);
    const auto colon = rest.find(':');
    if (!argparse::Parser::parseNumber(rest.substr(0, colon),
                                       pipe.exact.budgetMs))
        return false;
    if (colon != std::string::npos &&
        !argparse::Parser::parseNumber(rest.substr(colon + 1),
                                       pipe.exact.maxNodes))
        return false;
    return true;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    argparse::Parser p("xcc", "[options] kernel.ir [more.ir ...]");
    p.option("--input", "ir|c",
             "input language (default ir)",
             [&](const std::string &v) {
                 o.input = v;
                 return v == "ir" || v == "c";
             });
    p.option("--emit", "ximd|ir|ddg",
             "what to write (default ximd)",
             [&](const std::string &v) {
                 o.emit = v;
                 return v == "ximd" || v == "ir" || v == "ddg";
             });
    p.option("--width", "N", "functional units to schedule for",
             intoNumber(o.pipe.width));
    p.option("--latency", "N", "data-path result latency",
             intoNumber(o.pipe.rawLatency));
    p.option("--schedule", "TIER",
             "heuristic (default) or\n"
             "exact[:budget-ms[:max-nodes]]:\nprove II-minimal "
             "schedules, falling back\nto the heuristic on timeout",
             [&](const std::string &v) {
                 return parseScheduleTier(v, o.pipe);
             });
    p.option("--reg-base", "N",
             "base of the physical register window",
             intoNumber(o.pipe.alloc.window.base));
    p.option("--num-regs", "N",
             "size of the physical register window",
             intoNumber(o.pipe.alloc.window.count));
    p.flag("--spill",
           "spill excess vregs to memory instead of\nfailing on "
           "window exhaustion",
           [&] { o.pipe.alloc.spill = true; });
    p.option("--spill-base", "A",
             "base address of the spill-slot region",
             intoNumber(o.pipe.alloc.spillBase));
    p.option("--spill-slots", "N",
             "spill slots available in that region",
             intoNumber(o.pipe.alloc.spillSlots));
    p.flag("--no-names", "do not bind v<N> register names",
           [&] { o.pipe.nameVregs = false; });
    p.flag("--merge-blocks", "straighten jump-only chains first",
           [&] { o.pipe.mergeBlocks = true; });
    p.option("--compose", "STRAT",
             "pack + compose inputs as threads\n(stacked, "
             "first-fit, skyline,\nbalanced-groups, exhaustive)",
             [&](const std::string &v) {
                 o.compose = v;
                 return true;
             });
    p.option("--regs-per-thread", "N",
             "registers per composed thread",
             intoNumber(o.pipe.regsPerThread));
    p.flag("--verify", "final static-verification pass",
           [&] { o.pipe.verify = true; });
    p.option("--analyze", "race",
             "final cross-stream race analysis",
             [&](const std::string &v) {
                 o.pipe.analyzeRace = true;
                 return v == "race";
             });
    p.flag("--verify-between", "re-verify after every pass",
           [&] { o.pipe.verifyBetween = true; });
    p.option("--dump-after", "PASS",
             "dump state after PASS (or 'all')",
             [&](const std::string &v) {
                 o.dumpAfter.insert(v);
                 return true;
             });
    p.flag("--stats-json", "per-pass stats JSON to stderr",
           [&] { o.statsJson = true; });
    p.option("--out", "FILE", "output file (default stdout)",
             [&](const std::string &v) {
                 o.output = v;
                 return true;
             },
             "-o");
    p.positional(
        [&](const std::string &f) { o.files.push_back(f); });
    p.footer("exit status: 0 compiled, 1 compile/verify failure, "
             "2 usage error");
    p.parse(argc, argv);
    if (o.files.empty())
        p.fail("at least one kernel file is required");
    if (o.files.size() > 1 && o.compose.empty())
        p.fail("several inputs need --compose");
    if (!o.compose.empty() && o.emit != "ximd")
        p.fail("--compose only supports --emit=ximd");
    if (!o.compose.empty() &&
        o.pipe.schedule == ScheduleTier::Exact)
        p.fail("--schedule=exact only applies to the block pipeline");
    return o;
}

CompileResult<IrProgram>
parseInputFile(const Options &o, const std::string &path,
               std::string &loweredIr)
{
    std::ifstream in(path);
    if (!in) {
        CompileError e =
            compileError(o.input == "c" ? "c-parse" : "ir-parse",
                         "cannot open '" + path + "'");
        return e;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (o.input == "c") {
        auto ir = frontend::compileC(text.str());
        if (ir)
            loweredIr = printIr(ir.value());
        return ir;
    }
    return parseIr(text.str());
}

/** Textual DDG dump: per-block node/edge lists with latencies. */
std::string
formatDdgs(const CompileContext &cx)
{
    std::ostringstream os;
    for (std::size_t b = 0; b < cx.ddgs.size(); ++b) {
        const Ddg &g = cx.ddgs[b];
        os << "ddg " << cx.ir.blocks[b].name << ": " << g.numNodes()
           << " ops, " << g.edges().size() << " edges, critical path "
           << g.criticalPathLength() << "\n";
        for (const DdgEdge &e : g.edges())
            os << "  " << e.from << " -> " << e.to << " lat "
               << e.latency << "\n";
    }
    return os.str();
}

/** Textual schedule dump: per-block cycle rows of op indices. */
std::string
formatSchedules(const CompileContext &cx)
{
    std::ostringstream os;
    for (std::size_t b = 0; b < cx.schedules.size(); ++b) {
        const BlockSchedule &s = cx.schedules[b];
        os << "schedule " << cx.ir.blocks[b].name << ": "
           << s.numRows() << " rows\n";
        for (std::size_t c = 0; c < s.cycles.size(); ++c) {
            os << "  cycle " << c << ":";
            for (int op : s.cycles[c]) {
                // -1 = explicit nop slot (exact-tier CC pinning).
                if (op < 0)
                    os << " .";
                else
                    os << " " << op;
            }
            os << "\n";
        }
    }
    return os.str();
}

std::string
formatTiles(const CompileContext &cx)
{
    std::ostringstream os;
    for (const TileSet &set : cx.tiles) {
        os << "tiles thread " << set.threadId << ":";
        for (const Tile &t : set.impls)
            os << " " << t.width << "x" << t.height;
        os << "\n";
    }
    return os.str();
}

std::string
formatPacking(const CompileContext &cx)
{
    std::ostringstream os;
    os << "packing " << cx.packing.strategy << ": height "
       << cx.packing.totalHeight << "\n";
    for (const Placement &p : cx.packing.placements)
        os << "  thread " << p.threadId << ": " << p.width << "x"
           << p.height << " at col " << p.col << " row " << p.row
           << "\n";
    return os.str();
}

/** Render whatever @p pass just produced in @p cx. */
std::string
renderAfter(const std::string &pass, const CompileContext &cx)
{
    if (pass == "validate-ir" || pass == "merge-blocks" ||
        pass == "regalloc")
        return printIr(cx.ir);
    if (pass == "build-ddg")
        return formatDdgs(cx);
    if (pass == "list-schedule" || pass == "exact-schedule")
        return formatSchedules(cx);
    if (pass == "tile")
        return formatTiles(cx);
    if (pass == "pack")
        return formatPacking(cx);
    // codegen / modulo / compose / verify: the emitted program.
    if (cx.hasProgram)
        return writeAssembly(cx.program);
    return "";
}

int
runCompiler(const Options &o)
{
    Compiler compiler(o.pipe);
    std::set<std::string> dumped;
    if (!o.dumpAfter.empty()) {
        compiler.setAfterPass([&](const std::string &pass,
                                  const CompileContext &cx) {
            if (!o.dumpAfter.count(pass) && !o.dumpAfter.count("all"))
                return;
            dumped.insert(pass);
            std::cerr << "// --- after " << pass << " ---\n"
                      << renderAfter(pass, cx);
        });
    }

    // Front end: parse (and with --input=c, lower) every input.
    std::vector<IrProgram> threads;
    for (const std::string &file : o.files) {
        std::string loweredIr;
        auto ir = parseInputFile(o, file, loweredIr);
        if (!ir) {
            std::cerr << "xcc: " << file << ": "
                      << ir.error().format() << "\n";
            return 1;
        }
        // "lower" is a frontend stage, not a pipeline pass; dump it
        // here, right after the frontend produced the IR.
        if (!loweredIr.empty() &&
            (o.dumpAfter.count("lower") || o.dumpAfter.count("all"))) {
            dumped.insert("lower");
            std::cerr << "// --- after lower ---\n" << loweredIr;
        }
        threads.push_back(std::move(ir).value());
    }

    // Middle + back end through the pipeline.
    std::string out;
    if (!o.compose.empty()) {
        auto composed =
            compiler.compose(std::move(threads), o.compose);
        if (!composed) {
            std::cerr << "xcc: " << composed.error().format() << "\n";
        } else {
            out = writeAssembly(composed.value().program);
        }
    } else {
        auto code = compiler.compile(std::move(threads[0]));
        if (!code) {
            std::cerr << "xcc: " << code.error().format() << "\n";
        } else if (o.emit == "ir") {
            out = printIr(compiler.context().ir);
        } else if (o.emit == "ddg") {
            out = formatDdgs(compiler.context());
        } else {
            out = writeAssembly(code.value().program);
        }
    }

    // Exhausted exact budgets are warnings, not errors: the emitted
    // program is the (always-valid) heuristic schedule.
    for (const ExactLoopStat &l : compiler.context().loopStats)
        if (l.timedOut)
            std::cerr << "xcc: warning: exact schedule for block '"
                      << l.block << "' exhausted its budget ("
                      << l.nodes << " nodes); emitted the heuristic "
                      << "schedule (ii " << l.achievedIi
                      << ", proven lower bound " << l.minimalIi
                      << ")\n";

    const bool failed = out.empty() && o.emit == "ximd";
    for (const std::string &want : o.dumpAfter)
        if (want != "all" && !dumped.count(want))
            std::cerr << "xcc: warning: no pass named '" << want
                      << "' ran (passes: lower validate-ir "
                         "merge-blocks regalloc build-ddg "
                         "list-schedule exact-schedule codegen "
                         "modulo tile pack compose verify "
                         "race-check)\n";
    if (o.statsJson)
        std::cerr << compiler.statsJson();
    if (failed)
        return 1;

    if (o.output.empty()) {
        std::cout << out;
    } else {
        std::ofstream os(o.output);
        if (!os) {
            std::cerr << "xcc: cannot write '" << o.output << "'\n";
            return 1;
        }
        os << out;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    try {
        return runCompiler(o);
    } catch (const FatalError &e) {
        std::cerr << "xcc: " << e.what() << "\n";
        return 1;
    }
}
