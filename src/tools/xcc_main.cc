/**
 * @file
 * xcc — the compiler driver over the sched pass pipeline.
 *
 * Input is the textual IR of sched/ir_print.hh (one `.ir` file per
 * thread); output is assembler source (`.ximd`) that xsim / vsim /
 * ximd-lint consume directly. One input compiles through the block
 * pipeline (validate-ir [merge-blocks] build-ddg list-schedule
 * codegen); several inputs with --compose go through the Figure-13
 * path (tile, pack, compose) into one XIMD program.
 *
 * Usage:
 *   xcc [options] kernel.ir [more.ir ...]
 *     --emit ximd|ir|ddg  what to write (default ximd)
 *     --width N           functional units to schedule for
 *     --latency N         data-path result latency to compile for
 *     --reg-base N        first physical register for vregs
 *     --no-names          do not bind v<N> register names
 *     --merge-blocks      straighten jump-only chains first
 *     --compose STRAT     pack threads with STRAT (stacked, first-fit,
 *                         skyline, balanced-groups, exhaustive) and
 *                         compose them into one program
 *     --regs-per-thread N architectural registers per thread (24)
 *     --verify            run the static verifier as a final pass
 *     --analyze=race      run the cross-stream race engine as a final
 *                         pass (rejects races / lost signals /
 *                         unbounded busy-waits in the emitted code)
 *     --verify-between    re-verify IR and program after every pass
 *     --dump-after PASS   print pipeline state after PASS to stderr
 *                         (repeatable; PASS may be 'all')
 *     --stats-json        print per-pass timings/counters to stderr
 *     -o FILE             write output to FILE (default stdout)
 */

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "asm/asm_writer.hh"
#include "sched/ir_print.hh"
#include "sched/pipeline.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;
using namespace ximd::sched;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: xcc [options] kernel.ir [more.ir ...]\n"
        << "  --emit ximd|ir|ddg  what to write (default ximd)\n"
        << "  --width N           functional units to schedule for\n"
        << "  --latency N         data-path result latency\n"
        << "  --reg-base N        first physical register for vregs\n"
        << "  --no-names          do not bind v<N> register names\n"
        << "  --merge-blocks      straighten jump-only chains first\n"
        << "  --compose STRAT     pack + compose inputs as threads\n"
        << "                      (stacked, first-fit, skyline,\n"
        << "                      balanced-groups, exhaustive)\n"
        << "  --regs-per-thread N registers per composed thread\n"
        << "  --verify            final static-verification pass\n"
        << "  --analyze=race      final cross-stream race analysis\n"
        << "  --verify-between    re-verify after every pass\n"
        << "  --dump-after PASS   dump state after PASS (or 'all')\n"
        << "  --stats-json        per-pass stats JSON to stderr\n"
        << "  -o FILE             output file (default stdout)\n";
    std::exit(2);
}

struct Options
{
    std::vector<std::string> files;
    std::string output;
    std::string emit = "ximd";
    std::string compose; ///< Pack strategy; empty = block pipeline.
    std::set<std::string> dumpAfter;
    bool statsJson = false;
    PipelineOptions pipe;
};

unsigned
parseCount(const std::string &text)
{
    try {
        const int n = std::stoi(text);
        if (n < 0)
            usage();
        return static_cast<unsigned>(n);
    } catch (...) {
        usage();
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--emit") {
            o.emit = next();
        } else if (arg.rfind("--emit=", 0) == 0) {
            o.emit = arg.substr(7);
        } else if (arg == "--width") {
            o.pipe.width = static_cast<FuId>(parseCount(next()));
        } else if (arg.rfind("--width=", 0) == 0) {
            o.pipe.width = static_cast<FuId>(parseCount(arg.substr(8)));
        } else if (arg == "--latency") {
            o.pipe.rawLatency = parseCount(next());
        } else if (arg.rfind("--latency=", 0) == 0) {
            o.pipe.rawLatency = parseCount(arg.substr(10));
        } else if (arg == "--reg-base") {
            o.pipe.regBase = static_cast<RegId>(parseCount(next()));
        } else if (arg.rfind("--reg-base=", 0) == 0) {
            o.pipe.regBase =
                static_cast<RegId>(parseCount(arg.substr(11)));
        } else if (arg == "--no-names") {
            o.pipe.nameVregs = false;
        } else if (arg == "--merge-blocks") {
            o.pipe.mergeBlocks = true;
        } else if (arg == "--compose") {
            o.compose = next();
        } else if (arg.rfind("--compose=", 0) == 0) {
            o.compose = arg.substr(10);
        } else if (arg == "--regs-per-thread") {
            o.pipe.regsPerThread =
                static_cast<RegId>(parseCount(next()));
        } else if (arg.rfind("--regs-per-thread=", 0) == 0) {
            o.pipe.regsPerThread =
                static_cast<RegId>(parseCount(arg.substr(18)));
        } else if (arg == "--verify") {
            o.pipe.verify = true;
        } else if (arg == "--analyze") {
            if (next() != "race")
                usage();
            o.pipe.analyzeRace = true;
        } else if (arg.rfind("--analyze=", 0) == 0) {
            if (arg.substr(10) != "race")
                usage();
            o.pipe.analyzeRace = true;
        } else if (arg == "--verify-between") {
            o.pipe.verifyBetween = true;
        } else if (arg == "--dump-after") {
            o.dumpAfter.insert(next());
        } else if (arg.rfind("--dump-after=", 0) == 0) {
            o.dumpAfter.insert(arg.substr(13));
        } else if (arg == "--stats-json") {
            o.statsJson = true;
        } else if (arg == "-o") {
            o.output = next();
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else {
            o.files.push_back(arg);
        }
    }
    if (o.files.empty())
        usage();
    if (o.files.size() > 1 && o.compose.empty()) {
        std::cerr << "xcc: several inputs need --compose\n";
        usage();
    }
    if (o.emit != "ximd" && o.emit != "ir" && o.emit != "ddg")
        usage();
    if (!o.compose.empty() && o.emit != "ximd") {
        std::cerr << "xcc: --compose only supports --emit=ximd\n";
        usage();
    }
    return o;
}

CompileResult<IrProgram>
parseIrFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        CompileError e = compileError("ir-parse",
                                      "cannot open '" + path + "'");
        return e;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseIr(text.str());
}

/** Textual DDG dump: per-block node/edge lists with latencies. */
std::string
formatDdgs(const CompileContext &cx)
{
    std::ostringstream os;
    for (std::size_t b = 0; b < cx.ddgs.size(); ++b) {
        const Ddg &g = cx.ddgs[b];
        os << "ddg " << cx.ir.blocks[b].name << ": " << g.numNodes()
           << " ops, " << g.edges().size() << " edges, critical path "
           << g.criticalPathLength() << "\n";
        for (const DdgEdge &e : g.edges())
            os << "  " << e.from << " -> " << e.to << " lat "
               << e.latency << "\n";
    }
    return os.str();
}

/** Textual schedule dump: per-block cycle rows of op indices. */
std::string
formatSchedules(const CompileContext &cx)
{
    std::ostringstream os;
    for (std::size_t b = 0; b < cx.schedules.size(); ++b) {
        const BlockSchedule &s = cx.schedules[b];
        os << "schedule " << cx.ir.blocks[b].name << ": "
           << s.numRows() << " rows\n";
        for (std::size_t c = 0; c < s.cycles.size(); ++c) {
            os << "  cycle " << c << ":";
            for (int op : s.cycles[c])
                os << " " << op;
            os << "\n";
        }
    }
    return os.str();
}

std::string
formatTiles(const CompileContext &cx)
{
    std::ostringstream os;
    for (const TileSet &set : cx.tiles) {
        os << "tiles thread " << set.threadId << ":";
        for (const Tile &t : set.impls)
            os << " " << t.width << "x" << t.height;
        os << "\n";
    }
    return os.str();
}

std::string
formatPacking(const CompileContext &cx)
{
    std::ostringstream os;
    os << "packing " << cx.packing.strategy << ": height "
       << cx.packing.totalHeight << "\n";
    for (const Placement &p : cx.packing.placements)
        os << "  thread " << p.threadId << ": " << p.width << "x"
           << p.height << " at col " << p.col << " row " << p.row
           << "\n";
    return os.str();
}

/** Render whatever @p pass just produced in @p cx. */
std::string
renderAfter(const std::string &pass, const CompileContext &cx)
{
    if (pass == "validate-ir" || pass == "merge-blocks")
        return printIr(cx.ir);
    if (pass == "build-ddg")
        return formatDdgs(cx);
    if (pass == "list-schedule")
        return formatSchedules(cx);
    if (pass == "tile")
        return formatTiles(cx);
    if (pass == "pack")
        return formatPacking(cx);
    // codegen / modulo / compose / verify: the emitted program.
    if (cx.hasProgram)
        return writeAssembly(cx.program);
    return "";
}

int
runCompiler(const Options &o)
{
    Compiler compiler(o.pipe);
    std::set<std::string> dumped;
    if (!o.dumpAfter.empty()) {
        compiler.setAfterPass([&](const std::string &pass,
                                  const CompileContext &cx) {
            if (!o.dumpAfter.count(pass) && !o.dumpAfter.count("all"))
                return;
            dumped.insert(pass);
            std::cerr << "// --- after " << pass << " ---\n"
                      << renderAfter(pass, cx);
        });
    }

    // Front end: parse every input.
    std::vector<IrProgram> threads;
    for (const std::string &file : o.files) {
        auto ir = parseIrFile(file);
        if (!ir) {
            std::cerr << "xcc: " << file << ": "
                      << ir.error().format() << "\n";
            return 1;
        }
        threads.push_back(std::move(ir).value());
    }

    // Middle + back end through the pipeline.
    std::string out;
    if (!o.compose.empty()) {
        auto composed =
            compiler.compose(std::move(threads), o.compose);
        if (!composed) {
            std::cerr << "xcc: " << composed.error().format() << "\n";
        } else {
            out = writeAssembly(composed.value().program);
        }
    } else {
        auto code = compiler.compile(std::move(threads[0]));
        if (!code) {
            std::cerr << "xcc: " << code.error().format() << "\n";
        } else if (o.emit == "ir") {
            out = printIr(compiler.context().ir);
        } else if (o.emit == "ddg") {
            out = formatDdgs(compiler.context());
        } else {
            out = writeAssembly(code.value().program);
        }
    }

    const bool failed = out.empty() && o.emit == "ximd";
    for (const std::string &want : o.dumpAfter)
        if (want != "all" && !dumped.count(want))
            std::cerr << "xcc: warning: no pass named '" << want
                      << "' ran (passes: validate-ir merge-blocks "
                         "build-ddg list-schedule codegen modulo "
                         "tile pack compose verify race-check)\n";
    if (o.statsJson)
        std::cerr << compiler.statsJson();
    if (failed)
        return 1;

    if (o.output.empty()) {
        std::cout << out;
    } else {
        std::ofstream os(o.output);
        if (!os) {
            std::cerr << "xcc: cannot write '" << o.output << "'\n";
            return 1;
        }
        os << out;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    try {
        return runCompiler(o);
    } catch (const FatalError &e) {
        std::cerr << "xcc: " << e.what() << "\n";
        return 1;
    }
}
