/**
 * @file
 * Command-line front end for the simulators. One binary serves both
 * tools named in section 4.1 of the paper: invoked as `xsim` it
 * defaults to the XIMD-1 machine, invoked as `vsim` (a symlink) it
 * defaults to the VLIW machine, and `--mode=ximd|vliw` overrides
 * either.
 *
 * Usage:
 *   xsim [options] program.ximd
 *     --mode ximd|vliw sequencing discipline (default: tool name)
 *     --backend interp|threaded
 *                      execution backend (default threaded); demotes
 *                      to interp with a warning when an attached
 *                      observer or configuration needs per-cycle
 *                      fidelity
 *     --trace          print the Figure-10-style address trace
 *     --stats          print run statistics
 *     --stats-json     print run statistics as JSON
 *     --no-trace       disable all observation (bare interpreter);
 *                      incompatible with --trace/--stats/--stats-json
 *     --list           print the assembled program and exit
 *     --max-cycles N   cycle budget (default 100000000)
 *     --latency N      data-path result latency (default 1); warns
 *                      when the program's __rawlat stamp disagrees,
 *                      and refuses to run under --verify
 *     --reg NAME       print a named register's final value
 *                      (repeatable)
 *     --mem ADDR[:N]   print N memory words from ADDR (default 1)
 *     --registered-ss  ablation: register the sync-signal bus
 *     --verify         statically verify after assembly; refuse to
 *                      simulate a program with errors
 *     --race-check     watch the run with the dynamic race observer;
 *                      print every same-cycle cross-stream conflict
 *                      and exit non-zero if any occurred
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/verify.hh"
#include "asm/assembler.hh"
#include "core/latency_check.hh"
#include "core/machine.hh"
#include "core/race_observer.hh"
#include "isa/disasm.hh"
#include "support/argparse.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;

/** The name this binary was invoked under ("xsim" or "vsim"). */
std::string
toolName(const char *argv0)
{
    std::string_view name = argv0 ? argv0 : "xsim";
    const std::size_t slash = name.rfind('/');
    if (slash != std::string_view::npos)
        name.remove_prefix(slash + 1);
    return name == "vsim" ? "vsim" : "xsim";
}

std::string gTool = "xsim";

struct Options
{
    std::string file;
    Mode mode = Mode::Ximd;
    Backend backend = Backend::Threaded;
    bool backendExplicit = false;
    bool trace = false;
    bool stats = false;
    bool statsJson = false;
    bool noTrace = false;
    bool list = false;
    bool verify = false;
    bool raceCheck = false;
    bool registeredSync = false;
    unsigned latency = 1;
    Cycle maxCycles = 0;
    std::vector<std::string> regs;
    std::vector<std::pair<Addr, unsigned>> mems;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    o.mode = gTool == "vsim" ? Mode::Vliw : Mode::Ximd;
    argparse::Parser p(gTool, "[options] program.ximd");
    p.option("--mode", "ximd|vliw",
             std::string("sequencing discipline (default: ") +
                 (gTool == "vsim" ? "vliw" : "ximd") + ")",
             [&](const std::string &v) {
                 if (v == "ximd")
                     o.mode = Mode::Ximd;
                 else if (v == "vliw")
                     o.mode = Mode::Vliw;
                 else
                     return false;
                 return true;
             });
    p.option("--backend", "interp|threaded",
             "execution backend (default threaded)",
             [&](const std::string &v) {
                 if (v == "interp")
                     o.backend = Backend::Interp;
                 else if (v == "threaded")
                     o.backend = Backend::Threaded;
                 else
                     return false;
                 o.backendExplicit = true;
                 return true;
             });
    p.flag("--trace", "print the address trace",
           [&] { o.trace = true; });
    p.flag("--stats", "print run statistics",
           [&] { o.stats = true; });
    p.flag("--stats-json", "print run statistics as JSON",
           [&] { o.statsJson = true; });
    p.flag("--no-trace", "disable all observation (fastest)",
           [&] { o.noTrace = true; });
    p.flag("--list", "print the assembled program and exit",
           [&] { o.list = true; });
    p.option("--max-cycles", "N", "cycle budget",
             [&](const std::string &v) {
                 return argparse::Parser::parseNumber(v,
                                                     o.maxCycles);
             });
    p.option("--latency", "N",
             "data-path result latency (default 1)",
             [&](const std::string &v) {
                 return argparse::Parser::parseNumber(v, o.latency);
             });
    p.option("--reg", "NAME",
             "print a named register (repeatable)",
             [&](const std::string &v) {
                 o.regs.push_back(v);
                 return true;
             });
    p.option("--mem", "ADDR[:N]",
             "print N memory words from ADDR",
             [&](const std::string &spec) {
                 const auto colon = spec.find(':');
                 Addr addr = 0;
                 unsigned count = 1;
                 if (!argparse::Parser::parseNumber(
                         spec.substr(0, colon), addr))
                     return false;
                 if (colon != std::string::npos &&
                     !argparse::Parser::parseNumber(
                         spec.substr(colon + 1), count))
                     return false;
                 o.mems.emplace_back(addr, count);
                 return true;
             });
    p.flag("--registered-ss",
           "ablation: registered sync signals",
           [&] { o.registeredSync = true; });
    p.flag("--verify", "refuse to simulate on static errors",
           [&] { o.verify = true; });
    p.flag("--race-check",
           "report dynamic cross-stream conflicts",
           [&] { o.raceCheck = true; });
    p.positional([&](const std::string &f) {
        if (!o.file.empty())
            p.fail("only one program file is accepted");
        o.file = f;
    });
    p.footer("exit status: 0 ran to halt, 1 fault/verify/check "
             "failure, 2 usage error");
    p.parse(argc, argv);
    if (o.file.empty())
        p.fail("a program file is required");
    if (o.noTrace && (o.trace || o.stats || o.statsJson))
        p.fail("--no-trace disables exactly what "
               "--trace/--stats/--stats-json print");
    return o;
}

int
runMachine(Program prog, const Options &o)
{
    MachineConfig cfg = MachineConfig{}
                            .withMode(o.mode)
                            .withTrace(o.trace)
                            .withResultLatency(o.latency)
                            .withRegisteredSync(o.registeredSync)
                            .withBackend(o.backend);
    if (o.noTrace)
        cfg.withoutObservers();

    Machine machine(std::move(prog), cfg);
    std::unique_ptr<RaceObserver> raceObserver;
    if (o.raceCheck) {
        raceObserver =
            std::make_unique<RaceObserver>(machine.program());
        machine.addObserver(raceObserver.get());
    }

    // Warn once, before the run, when an explicitly requested fast
    // backend cannot keep observer hook timing and demotes to the
    // interpreter (same architectural results, per-cycle speed). The
    // default-threaded case demotes silently: the user asked for
    // nothing, so there is nothing to disappoint.
    if (o.backendExplicit && o.backend == Backend::Threaded) {
        const std::string reason = machine.core().demotionReason();
        if (!reason.empty())
            std::cerr << gTool
                      << ": warning: --backend=threaded demoted to "
                         "interp: "
                      << reason << "\n";
    }

    const RunResult result = machine.run(o.maxCycles);

    switch (result.reason) {
      case StopReason::Halted:
        std::cout << gTool << ": halted after " << result.cycles
                  << " cycles\n";
        break;
      case StopReason::MaxCycles:
        std::cout << gTool << ": cycle budget exhausted at "
                  << result.cycles << " cycles\n";
        break;
      case StopReason::Fault:
        std::cout << gTool << ": FAULT at cycle " << result.cycles
                  << ": " << result.faultMessage << "\n";
        break;
    }

    for (const std::string &name : o.regs)
        std::cout << name << " = "
                  << wordToInt(machine.readRegByName(name)) << " (0x"
                  << std::hex << machine.readRegByName(name)
                  << std::dec << ")\n";
    for (const auto &[addr, count] : o.mems)
        for (unsigned k = 0; k < count; ++k)
            std::cout << "mem[" << addr + k
                      << "] = " << machine.peekMem(addr + k) << "\n";

    if (o.stats)
        std::cout << "\n" << machine.stats().formatted();
    if (o.statsJson)
        std::cout << machine.stats().json(
            cfg.cycleTimeNs, machine.core().effectiveBackendName());
    if (o.trace)
        std::cout << "\n" << machine.trace().formatted();

    if (raceObserver) {
        for (const RaceObserver::Event &e : raceObserver->events())
            std::cout << gTool << ": race-check: " << e.toString()
                      << "\n";
        if (raceObserver->events().empty())
            std::cout << gTool
                      << ": race-check: no cross-stream conflicts\n";
        else
            return 1;
    }

    return result.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    gTool = toolName(argc > 0 ? argv[0] : nullptr);
    const Options o = parseArgs(argc, argv);

    auto assembled = assembleFileResult(o.file);
    if (!assembled.hasValue()) {
        std::cerr << gTool << ": "
                  << analysis::DiagnosticList::formatOne(
                         assembled.error())
                  << "\n";
        return 1;
    }
    Program prog = std::move(assembled.value());

    try {
        if (o.list) {
            std::cout << formatProgram(prog);
            return 0;
        }
        // Latency-1 code on a latency-3 machine is silently wrong;
        // the compiler's __rawlat stamp makes it diagnosable.
        const LatencyCheck lat = checkCompiledLatency(prog, o.latency);
        if (lat.mismatch()) {
            std::cerr << gTool << ": warning: " << lat.message()
                      << "\n";
            if (o.verify) {
                std::cerr << gTool
                          << ": refusing to simulate: latency "
                             "mismatch under --verify\n";
                return 1;
            }
        }
        if (o.verify) {
            const analysis::DiagnosticList diags =
                analysis::analyze(prog);
            for (const auto &d : diags.all())
                std::cerr << gTool << ": "
                          << analysis::DiagnosticList::formatOne(
                                 d, &prog)
                          << "\n";
            if (diags.hasErrors()) {
                std::cerr << gTool
                          << ": refusing to simulate: verification "
                             "failed ("
                          << diags.summary() << ")\n";
                return 1;
            }
        }
        return runMachine(std::move(prog), o);
    } catch (const FatalError &e) {
        std::cerr << gTool << ": " << e.what() << "\n";
        return 1;
    }
}
