/**
 * @file
 * ximd-lint — static verifier for XIMD machine-code listings.
 *
 * Assembles each input file and runs the full analysis pipeline
 * (src/analysis/): per-FU control-flow graphs, register/CC dataflow,
 * and cross-stream conflict and deadlock detection. With --race the
 * happens-before/MHP race engine also runs: lockstep-class
 * partitioning, per-class-pair product exploration, and interval
 * bounding of addresses and waits (see analysis/race.hh). No
 * simulation is performed; everything reported is derived from the
 * program text alone.
 *
 * Usage:
 *   ximd-lint [options] program.ximd [more.ximd ...]
 *     --race      also run the cross-stream race engine
 *     --json      machine-readable report on stdout
 *     --werror    treat warnings as errors (exit status)
 *     --no-warn   suppress warning-severity findings
 *     --quiet     print only the per-file summary lines
 *
 * Exit status (stable, scripted against by ci.sh):
 *   0  every file assembled and is clean
 *   1  at least one file has findings (errors, or warnings under
 *      --werror), including files that fail to assemble
 *   2  usage error, or an input file could not be read
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/race.hh"
#include "analysis/verify.hh"
#include "asm/assembler.hh"
#include "support/argparse.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;

struct Options
{
    std::vector<std::string> files;
    bool race = false;
    bool jsonOut = false;
    bool werror = false;
    bool noWarn = false;
    bool quiet = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    argparse::Parser p("ximd-lint",
                       "[options] program.ximd [more.ximd ...]");
    p.flag("--race", "also run the cross-stream race engine",
           [&] { o.race = true; });
    p.flag("--json", "machine-readable report on stdout",
           [&] { o.jsonOut = true; });
    p.flag("--werror", "treat warnings as errors",
           [&] { o.werror = true; });
    p.flag("--no-warn", "suppress warning-severity findings",
           [&] { o.noWarn = true; });
    p.flag("--quiet", "print only per-file summaries",
           [&] { o.quiet = true; });
    p.positional(
        [&](const std::string &f) { o.files.push_back(f); });
    p.footer("exit status: 0 clean, 1 findings, 2 usage or I/O "
             "error");
    p.parse(argc, argv);
    if (o.files.empty())
        p.fail("at least one program file is required");
    return o;
}

json::Value
diagToJson(const analysis::Diagnostic &d)
{
    json::Value o = json::Value::object();
    o.set("severity", d.isError() ? "error" : "warning");
    o.set("check", std::string(analysis::checkName(d.check)));
    o.set("row", static_cast<std::int64_t>(d.row));
    o.set("fu", d.fu);
    if (d.line > 0)
        o.set("line", d.line);
    o.set("message", d.message);
    if (d.otherRow >= 0) {
        o.set("otherRow", d.otherRow);
        o.set("otherFu", d.otherFu);
        if (d.otherLine > 0)
            o.set("otherLine", d.otherLine);
    }
    return o;
}

/** Per-file lint outcome for the exit status. */
enum class FileStatus { Clean, Findings, IoError };

FileStatus
lintFile(const std::string &path, const Options &o,
         json::Value &jsonFiles)
{
    // An unreadable input is an invocation problem (exit 2), not a
    // finding about the program; probe before handing to the
    // assembler so the two failure kinds stay distinguishable.
    if (!std::ifstream(path).good()) {
        std::cerr << path << ": error: cannot read file\n";
        return FileStatus::IoError;
    }

    json::Value jf = json::Value::object();
    jf.set("path", path);

    Program prog(1);
    try {
        prog = assembleFile(path);
    } catch (const FatalError &e) {
        if (o.jsonOut) {
            jf.set("assembled", false);
            jf.set("error", std::string(e.what()));
            jsonFiles.push(std::move(jf));
        } else {
            std::cout << path << ": error: " << e.what() << "\n";
        }
        return FileStatus::Findings;
    }

    analysis::AnalyzeOptions opts;
    opts.warnings = !o.noWarn;
    analysis::DiagnosticList diags = analysis::analyze(prog, opts);

    analysis::RaceReport race;
    if (o.race) {
        analysis::RaceOptions ropts;
        ropts.warnings = !o.noWarn;
        race = analysis::analyzeRaces(prog, ropts);
        diags.merge(race.diags);
    }

    if (o.jsonOut) {
        jf.set("assembled", true);
        json::Value jd = json::Value::array();
        for (const auto &d : diags.all())
            jd.push(diagToJson(d));
        jf.set("diagnostics", std::move(jd));
        jf.set("errors",
               static_cast<std::int64_t>(diags.errorCount()));
        jf.set("warnings",
               static_cast<std::int64_t>(diags.warningCount()));
        if (o.race) {
            json::Value jr = json::Value::object();
            jr.set("classes",
                   static_cast<std::int64_t>(race.classes));
            jr.set("pairs",
                   static_cast<std::int64_t>(race.pairsAnalyzed));
            jr.set("productStates",
                   static_cast<std::int64_t>(race.productStates));
            jr.set("budgetExceeded", race.budgetExceeded);
            jr.set("skippedOnBaseErrors", race.baseErrors);
            json::Value jc = json::Value::array();
            for (const analysis::SitePair &sp : race.covered) {
                json::Value js = json::Value::object();
                js.set("rowA", static_cast<std::int64_t>(sp.rowA));
                js.set("fuA", sp.fuA);
                js.set("rowB", static_cast<std::int64_t>(sp.rowB));
                js.set("fuB", sp.fuB);
                jc.push(std::move(js));
            }
            jr.set("covered", std::move(jc));
            jf.set("race", std::move(jr));
        }
        jsonFiles.push(std::move(jf));
    } else {
        if (!o.quiet)
            for (const auto &d : diags.all())
                std::cout
                    << path << ": "
                    << analysis::DiagnosticList::formatOne(d, &prog)
                    << "\n";
        const std::string summary = diags.summary();
        std::cout << path << ": "
                  << (summary.empty() ? "clean" : summary) << "\n";
    }

    const bool failed = diags.hasErrors() ||
                        (o.werror && diags.warningCount() > 0);
    return failed ? FileStatus::Findings : FileStatus::Clean;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    json::Value jsonFiles = json::Value::array();
    bool findings = false;
    bool ioError = false;
    for (const std::string &f : o.files) {
        switch (lintFile(f, o, jsonFiles)) {
          case FileStatus::Clean:
            break;
          case FileStatus::Findings:
            findings = true;
            break;
          case FileStatus::IoError:
            ioError = true;
            break;
        }
    }
    if (o.jsonOut) {
        json::Value top = json::Value::object();
        top.set("files", std::move(jsonFiles));
        std::cout << top.dump(2) << "\n";
    }
    if (ioError)
        return 2;
    return findings ? 1 : 0;
}
