/**
 * @file
 * ximd-lint — static verifier for XIMD machine-code listings.
 *
 * Assembles each input file and runs the full analysis pipeline
 * (src/analysis/): per-FU control-flow graphs, register/CC dataflow,
 * and cross-stream conflict and deadlock detection. No simulation is
 * performed; everything reported is derived from the program text
 * alone.
 *
 * Usage:
 *   ximd-lint [options] program.ximd [more.ximd ...]
 *     --werror    treat warnings as errors (exit status)
 *     --no-warn   suppress warning-severity findings
 *     --quiet     print only the per-file summary lines
 *
 * Exit status: 0 when every file is clean, 1 when any file has
 * errors (or warnings under --werror) or fails to assemble, 2 on
 * usage errors.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/verify.hh"
#include "asm/assembler.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: ximd-lint [options] program.ximd [more.ximd ...]\n"
        << "  --werror    treat warnings as errors\n"
        << "  --no-warn   suppress warning-severity findings\n"
        << "  --quiet     print only per-file summaries\n";
    std::exit(2);
}

struct Options
{
    std::vector<std::string> files;
    bool werror = false;
    bool noWarn = false;
    bool quiet = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--werror")
            o.werror = true;
        else if (arg == "--no-warn")
            o.noWarn = true;
        else if (arg == "--quiet")
            o.quiet = true;
        else if (!arg.empty() && arg[0] == '-')
            usage();
        else
            o.files.push_back(arg);
    }
    if (o.files.empty())
        usage();
    return o;
}

/** Lint one file; true when it should fail the run. */
bool
lintFile(const std::string &path, const Options &o)
{
    Program prog(1);
    try {
        prog = assembleFile(path);
    } catch (const FatalError &e) {
        std::cout << path << ": error: " << e.what() << "\n";
        return true;
    }

    analysis::AnalyzeOptions opts;
    opts.warnings = !o.noWarn;
    const analysis::DiagnosticList diags = analysis::analyze(prog, opts);

    if (!o.quiet)
        for (const auto &d : diags.all())
            std::cout << path << ": "
                      << analysis::DiagnosticList::formatOne(d, &prog)
                      << "\n";

    const std::string summary = diags.summary();
    std::cout << path << ": "
              << (summary.empty() ? "clean" : summary) << "\n";

    return diags.hasErrors() ||
           (o.werror && diags.warningCount() > 0);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    bool failed = false;
    for (const std::string &f : o.files)
        failed |= lintFile(f, o);
    return failed ? 1 : 0;
}
