/**
 * @file
 * xfarm — run many simulations in parallel and report the batch, or
 * serve batches over a socket.
 *
 * Three modes:
 *
 *  - One-shot (default): expand the built-in section 4.1 suite or a
 *    --sweep file into RunSpecs, run them on the worker pool (or,
 *    with --batch, through the SoA lockstep engine where eligible —
 *    see farm/batch_runner.hh), print/save reports, exit.
 *
 *  - Daemon (--serve SOCKET): bind an AF_UNIX socket and answer the
 *    JSON-lines protocol of farm/service.hh — submit sweeps/suites,
 *    poll status, stream results, warm-start from XIMDSNAP
 *    snapshots. SIGTERM/SIGINT drain queued batches, then exit 0.
 *
 *  - Client (--connect SOCKET): forward stdin lines to a serving
 *    xfarm and print its response lines; `xfarm --connect S <
 *    requests.jsonl` scripts a daemon end to end.
 *
 * Per-job results print in spec order regardless of --jobs, and every
 * job's statistics are a pure function of its spec — `xfarm -j1` and
 * `xfarm -j8` emit byte-identical --stats-json output, and a served
 * batch's results stream is byte-identical across thread counts.
 *
 * Exit status: 0 when every job passed (or the daemon drained
 * cleanly), 1 on job failures or I/O errors, 2 on usage errors.
 * Run `xfarm --help` for the option list.
 */

#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "farm/batch_runner.hh"
#include "farm/campaign.hh"
#include "farm/farm.hh"
#include "farm/service.hh"
#include "farm/suite.hh"
#include "farm/sweep.hh"
#include "snapshot/snapshot.hh"
#include "support/argparse.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;
using namespace ximd::farm;

struct Options
{
    std::string sweepFile;
    std::string outFile;
    std::string serveSocket;
    std::string connectSocket;
    std::optional<Backend> backend;
    unsigned jobs = 0;
    unsigned width = 0;
    bool batch = false;
    bool list = false;
    bool statsJson = false;
    bool report = false;
    bool noTiming = false;
    bool quiet = false;
    SuiteOptions suite;
    std::vector<std::string> filters;
    Cycle checkpointEvery = 0;
    std::string checkpointDir = "checkpoints";
    std::string resumeFile;
    std::string faultsFile;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    argparse::Parser p("xfarm", "[options]");
    p.option("--sweep", "FILE",
             "run a sweep file instead of the built-in suite",
             [&](const std::string &v) {
                 o.sweepFile = v;
                 return true;
             });
    p.option("--backend", "interp|threaded",
             "force one execution backend on every job",
             [&](const std::string &v) {
                 if (v == "interp")
                     o.backend = Backend::Interp;
                 else if (v == "threaded")
                     o.backend = Backend::Threaded;
                 else
                     return false;
                 return true;
             });
    p.option("--jobs", "N",
             "worker threads (default: hardware)",
             [&](const std::string &v) {
                 return argparse::Parser::parseNumber(v, o.jobs);
             },
             "-j");
    p.flag("--batch",
           "run eligible jobs through the SoA lockstep\nengine "
           "(same results, backend \"batch\")",
           [&] { o.batch = true; });
    p.option("--width", "N",
             "lanes per batch engine (default 256)",
             [&](const std::string &v) {
                 return argparse::Parser::parseNumber(v, o.width);
             });
    p.option("--filter", "SUBSTR",
             "keep jobs whose name contains SUBSTR",
             [&](const std::string &v) {
                 o.filters.push_back(v);
                 return true;
             });
    p.flag("--list", "print job names and exit",
           [&] { o.list = true; });
    p.option("--n", "N", "built-in suite input size",
             [&](const std::string &v) {
                 return argparse::Parser::parseNumber(v, o.suite.n);
             });
    p.option("--seed", "S", "built-in suite base seed",
             [&](const std::string &v) {
                 return argparse::Parser::parseNumber(v,
                                                     o.suite.seed);
             });
    p.flag("--regsync-axis",
           "add registered-sync ablation variants",
           [&] { o.suite.registeredSyncAxis = true; });
    p.flag("--stats-json",
           "print per-job stats JSON in spec order",
           [&] { o.statsJson = true; });
    p.flag("--report", "print the aggregate JSON report",
           [&] { o.report = true; });
    p.option("--out", "FILE", "write the aggregate JSON report",
             [&](const std::string &v) {
                 o.outFile = v;
                 return true;
             });
    p.flag("--no-timing",
           "omit host-timing fields from reports",
           [&] { o.noTiming = true; });
    p.flag("--quiet", "suppress per-job progress lines",
           [&] { o.quiet = true; });
    p.option("--checkpoint-every", "N",
             "snapshot each job every N cycles",
             [&](const std::string &v) {
                 return argparse::Parser::parseNumber(
                     v, o.checkpointEvery);
             });
    p.option("--checkpoint-dir", "DIR",
             "checkpoint directory (default 'checkpoints')",
             [&](const std::string &v) {
                 o.checkpointDir = v;
                 return true;
             });
    p.option("--resume", "FILE",
             "restore FILE into its job before running",
             [&](const std::string &v) {
                 o.resumeFile = v;
                 return true;
             });
    p.option("--faults", "FILE",
             "run the fault campaign described by FILE",
             [&](const std::string &v) {
                 o.faultsFile = v;
                 return true;
             });
    p.option("--serve", "SOCKET",
             "serve the JSON-lines protocol on an AF_UNIX\nsocket "
             "until SIGTERM (see farm/service.hh)",
             [&](const std::string &v) {
                 o.serveSocket = v;
                 return true;
             });
    p.option("--connect", "SOCKET",
             "forward stdin lines to a serving xfarm and\nprint "
             "its responses",
             [&](const std::string &v) {
                 o.connectSocket = v;
                 return true;
             });
    p.footer("exit status: 0 all jobs passed / daemon drained, "
             "1 failures or I/O error, 2 usage error");
    p.parse(argc, argv);
    if (!o.serveSocket.empty() && !o.connectSocket.empty())
        p.fail("--serve and --connect are mutually exclusive");
    return o;
}

bool
matchesFilters(const std::string &name,
               const std::vector<std::string> &filters)
{
    if (filters.empty())
        return true;
    for (const std::string &f : filters)
        if (name.find(f) != std::string::npos)
            return true;
    return false;
}

// ---- Daemon / client transports ------------------------------------

volatile std::sig_atomic_t gStop = 0;

void
onSignal(int)
{
    gStop = 1;
}

bool
fillUnixAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * One connection at a time: read lines, answer through
 * Service::handleLine, close on client EOF. Requests on one
 * connection are handled in arrival order, so by the time the client
 * half-closes, every response it is owed has been written — which is
 * what lets the --connect client treat write-side EOF as "flush and
 * hang up". The 200 ms polls keep SIGTERM responsive while idle.
 */
int
serveMain(const std::string &path, bool quiet)
{
    ::unlink(path.c_str());
    sockaddr_un addr;
    if (!fillUnixAddr(path, addr)) {
        std::cerr << "xfarm: socket path too long: '" << path
                  << "'\n";
        return argparse::kExitFailure;
    }
    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0 ||
        ::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listenFd, 8) < 0) {
        std::cerr << "xfarm: cannot serve on '" << path
                  << "': " << std::strerror(errno) << "\n";
        if (listenFd >= 0)
            ::close(listenFd);
        return argparse::kExitFailure;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    if (!quiet)
        std::cerr << "xfarm: serving on " << path << "\n";

    Service service;
    bool shutdownRequested = false;
    while (!gStop && !shutdownRequested) {
        pollfd lp{listenFd, POLLIN, 0};
        if (::poll(&lp, 1, 200) <= 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        const Service::LineSink sink =
            [fd](const std::string &line) {
                writeAll(fd, line + "\n");
            };
        std::string buf;
        char chunk[4096];
        while (!shutdownRequested) {
            pollfd cp{fd, POLLIN, 0};
            const int pr = ::poll(&cp, 1, 200);
            if (gStop)
                break;
            if (pr <= 0)
                continue;
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<std::size_t>(n));
            std::size_t nl;
            while ((nl = buf.find('\n')) != std::string::npos) {
                const std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (line.empty())
                    continue;
                if (service.handleLine(line, sink) ==
                    Service::Action::Shutdown) {
                    shutdownRequested = true;
                    break;
                }
            }
        }
        ::close(fd);
    }

    // Graceful exit: whether by SIGTERM or a shutdown request,
    // queued work finishes before the socket disappears.
    service.drain();
    ::close(listenFd);
    ::unlink(path.c_str());
    if (!quiet)
        std::cerr << "xfarm: drained, exiting\n";
    return argparse::kExitOk;
}

int
connectMain(const std::string &path)
{
    sockaddr_un addr;
    if (!fillUnixAddr(path, addr)) {
        std::cerr << "xfarm: socket path too long: '" << path
                  << "'\n";
        return argparse::kExitFailure;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        std::cerr << "xfarm: cannot connect to '" << path
                  << "': " << std::strerror(errno) << "\n";
        if (fd >= 0)
            ::close(fd);
        return argparse::kExitFailure;
    }
    std::signal(SIGPIPE, SIG_IGN);

    // Responses stream on their own thread so a long results stream
    // cannot deadlock against buffered requests.
    std::thread reader([fd] {
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0)
                break;
            std::cout.write(chunk, n);
            std::cout.flush();
        }
    });

    std::string line;
    bool writeOk = true;
    while (writeOk && std::getline(std::cin, line))
        writeOk = writeAll(fd, line + "\n");
    ::shutdown(fd, SHUT_WR);
    reader.join();
    ::close(fd);
    return writeOk ? argparse::kExitOk : argparse::kExitFailure;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);

    if (!o.serveSocket.empty())
        return serveMain(o.serveSocket, o.quiet);
    if (!o.connectSocket.empty())
        return connectMain(o.connectSocket);

    std::vector<RunSpec> specs;
    if (!o.sweepFile.empty()) {
        auto loaded = loadSweep(o.sweepFile);
        if (!loaded.hasValue()) {
            std::cerr << "xfarm: "
                      << analysis::DiagnosticList::formatOne(
                             loaded.error())
                      << "\n";
            return 1;
        }
        specs = std::move(loaded.value());
    } else {
        specs = builtinSuite(o.suite);
    }

    if (o.backend) {
        for (RunSpec &s : specs)
            s.config.backend = *o.backend;
    }

    if (!o.filters.empty()) {
        std::vector<RunSpec> kept;
        for (RunSpec &s : specs)
            if (matchesFilters(s.name, o.filters))
                kept.push_back(std::move(s));
        specs = std::move(kept);
    }

    if (o.list) {
        for (const RunSpec &s : specs)
            std::cout << s.name << "\n";
        return 0;
    }
    if (specs.empty()) {
        std::cerr << "xfarm: no jobs selected\n";
        return 1;
    }

    // Campaign mode: classify fault trials instead of running a
    // plain batch.
    if (!o.faultsFile.empty()) {
        auto plan = snapshot::FaultPlan::load(o.faultsFile);
        if (!plan) {
            std::cerr << "xfarm: " << plan.error() << "\n";
            return 1;
        }
        const CampaignResult camp =
            runCampaign(specs, plan.value(), o.jobs);
        if (!o.quiet) {
            for (const CampaignJob &j : camp.jobs) {
                std::cout << j.name << ": ";
                if (!j.baselineOk)
                    std::cout << "BASELINE FAILED\n";
                else
                    std::cout << j.countOf(Outcome::Unaffected)
                              << " unaffected, "
                              << j.countOf(Outcome::Degraded)
                              << " degraded, "
                              << j.countOf(Outcome::Wedged)
                              << " wedged, "
                              << j.countOf(Outcome::Faulted)
                              << " faulted\n";
            }
            std::cout << "plan: " << camp.planSummary << "\n";
        }
        if (o.report)
            std::cout << camp.json() << "\n";
        if (!o.outFile.empty()) {
            std::ofstream out(o.outFile);
            if (!out) {
                std::cerr << "xfarm: cannot write '" << o.outFile
                          << "'\n";
                return 1;
            }
            out << camp.json() << "\n";
        }
        // Trials are expected to misbehave; only a broken baseline
        // fails the campaign.
        for (const CampaignJob &j : camp.jobs)
            if (!j.baselineOk)
                return 1;
        return 0;
    }

    if (o.checkpointEvery > 0) {
        std::error_code ec;
        std::filesystem::create_directories(o.checkpointDir, ec);
        if (ec) {
            std::cerr << "xfarm: cannot create '" << o.checkpointDir
                      << "': " << ec.message() << "\n";
            return 1;
        }
        for (RunSpec &s : specs) {
            s.checkpointEvery = o.checkpointEvery;
            std::string file = s.name;
            for (char &c : file)
                if (c == '/')
                    c = '_';
            s.checkpointPath =
                o.checkpointDir + "/" + file + ".snap";
        }
    }

    if (!o.resumeFile.empty()) {
        auto info = snapshot::peekFile(o.resumeFile);
        if (!info) {
            std::cerr << "xfarm: " << info.error().formatted()
                      << "\n";
            return 1;
        }
        bool found = false;
        for (RunSpec &s : specs) {
            if (s.name == info.value().label) {
                s.resumeFrom = o.resumeFile;
                found = true;
            }
        }
        if (!found) {
            std::cerr << "xfarm: snapshot label '"
                      << info.value().label
                      << "' matches no selected job\n";
            return 1;
        }
    }

    const BatchResult batch =
        o.batch ? BatchRunner::run(specs, o.jobs, o.width)
                : Farm::run(specs, o.jobs);

    if (!o.quiet) {
        for (const JobResult &j : batch.jobs) {
            if (j.ok()) {
                std::cout << "ok   " << j.name << "  ("
                          << j.run.cycles << " cycles)\n";
            } else {
                std::cout << "FAIL " << j.name << "  "
                          << analysis::DiagnosticList::formatOne(
                                 *j.error)
                          << "\n";
            }
        }
        std::cout << batch.jobs.size() << " jobs, "
                  << batch.failures() << " failed, "
                  << batch.threads << " threads";
        if (!o.noTiming)
            std::cout << ", " << batch.wallMillis << " ms";
        std::cout << "\n";
    }

    if (o.statsJson) {
        for (const JobResult &j : batch.jobs) {
            std::cout << "=== " << j.name << " ===\n";
            if (j.ran)
                std::cout << j.statsJson;
            else
                std::cout << "(did not run)\n";
        }
    }

    if (o.report)
        std::cout << batch.json(!o.noTiming) << "\n";
    if (!o.outFile.empty()) {
        std::ofstream out(o.outFile);
        if (!out) {
            std::cerr << "xfarm: cannot write '" << o.outFile
                      << "'\n";
            return 1;
        }
        out << batch.json(!o.noTiming) << "\n";
    }

    return batch.allOk() ? 0 : 1;
}
