/**
 * @file
 * xfarm — run many simulations in parallel and report the batch.
 *
 * Usage:
 *   xfarm [options]
 *     --sweep FILE     expand FILE (sweep JSON, see farm/sweep.hh)
 *                      instead of the built-in section 4.1 suite
 *     --backend interp|threaded
 *                      force one execution backend on every selected
 *                      job, overriding sweep-file axes (default: each
 *                      job's own setting; jobs demote to interp on
 *                      their own when an observer needs per-cycle
 *                      fidelity)
 *     --jobs N         worker threads (default: hardware concurrency)
 *     --filter SUBSTR  keep jobs whose name contains SUBSTR
 *                      (repeatable; a job matching any is kept)
 *     --list           print job names and exit (after filtering)
 *     --n N            built-in suite input size (default 256)
 *     --seed S         built-in suite base seed (default 1)
 *     --regsync-axis   add registered-sync ablation variants
 *     --stats-json     print each job's stats JSON in spec order
 *     --report         print the aggregate JSON report to stdout
 *     --out FILE       write the aggregate JSON report to FILE
 *     --no-timing      omit host-timing fields from reports (output
 *                      becomes byte-identical across hosts and -j)
 *     --quiet          suppress per-job progress lines
 *     --checkpoint-every N   write a snapshot of each running job
 *                      every N cycles (see --checkpoint-dir)
 *     --checkpoint-dir DIR   where checkpoints go (default
 *                      "checkpoints"); one <job-name>.snap per job
 *     --resume FILE    restore FILE into the job it was saved from
 *                      (matched by the snapshot's label) before
 *                      running; the job continues its remaining
 *                      cycle budget
 *     --faults FILE    run a fault-injection campaign from the JSON
 *                      plan FILE instead of a plain batch; prints a
 *                      classified report (see farm/campaign.hh)
 *
 * Options may be spelled "--flag value" or "--flag=value".
 *
 * Per-job results print in spec order regardless of --jobs, and every
 * job's statistics are a pure function of its spec — `xfarm -j1` and
 * `xfarm -j8` emit byte-identical --stats-json output.
 *
 * Exit status: 0 when every job passed, 1 otherwise.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "farm/campaign.hh"
#include "farm/farm.hh"
#include "farm/suite.hh"
#include "farm/sweep.hh"
#include "snapshot/snapshot.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;
using namespace ximd::farm;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: xfarm [options]\n"
        << "  --sweep FILE     run a sweep file instead of the "
           "built-in suite\n"
        << "  --backend interp|threaded\n"
        << "                   force one execution backend on every "
           "job\n"
        << "  --jobs N         worker threads (default: hardware)\n"
        << "  --filter SUBSTR  keep jobs whose name contains SUBSTR\n"
        << "  --list           print job names and exit\n"
        << "  --n N            built-in suite input size\n"
        << "  --seed S         built-in suite base seed\n"
        << "  --regsync-axis   add registered-sync ablation variants\n"
        << "  --stats-json     print per-job stats JSON in spec "
           "order\n"
        << "  --report         print the aggregate JSON report\n"
        << "  --out FILE       write the aggregate JSON report\n"
        << "  --no-timing      omit host-timing fields from reports\n"
        << "  --quiet          suppress per-job progress lines\n"
        << "  --checkpoint-every N  snapshot each job every N cycles\n"
        << "  --checkpoint-dir DIR  checkpoint directory (default "
           "'checkpoints')\n"
        << "  --resume FILE    restore FILE into its job before "
           "running\n"
        << "  --faults FILE    run the fault campaign described by "
           "FILE\n";
    std::exit(2);
}

struct Options
{
    std::string sweepFile;
    std::string outFile;
    std::optional<Backend> backend;
    unsigned jobs = 0;
    bool list = false;
    bool statsJson = false;
    bool report = false;
    bool noTiming = false;
    bool quiet = false;
    SuiteOptions suite;
    std::vector<std::string> filters;
    Cycle checkpointEvery = 0;
    std::string checkpointDir = "checkpoints";
    std::string resumeFile;
    std::string faultsFile;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept "--flag=value" as well as "--flag value".
        std::string inline_;
        bool hasInline = false;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_ = arg.substr(eq + 1);
                arg.resize(eq);
                hasInline = true;
            }
        }
        auto next = [&]() -> std::string {
            if (hasInline)
                return inline_;
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--sweep") {
            o.sweepFile = next();
        } else if (arg == "--backend") {
            const std::string b = next();
            if (b == "interp")
                o.backend = Backend::Interp;
            else if (b == "threaded")
                o.backend = Backend::Threaded;
            else
                usage();
        } else if (arg == "--jobs" || arg == "-j") {
            o.jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            o.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 2, nullptr, 0));
        } else if (arg == "--filter") {
            o.filters.push_back(next());
        } else if (arg == "--list") {
            o.list = true;
        } else if (arg == "--n") {
            o.suite.n = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--seed") {
            o.suite.seed =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--regsync-axis") {
            o.suite.registeredSyncAxis = true;
        } else if (arg == "--stats-json") {
            o.statsJson = true;
        } else if (arg == "--report") {
            o.report = true;
        } else if (arg == "--out") {
            o.outFile = next();
        } else if (arg == "--no-timing") {
            o.noTiming = true;
        } else if (arg == "--quiet") {
            o.quiet = true;
        } else if (arg == "--checkpoint-every") {
            o.checkpointEvery =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--checkpoint-dir") {
            o.checkpointDir = next();
        } else if (arg == "--resume") {
            o.resumeFile = next();
        } else if (arg == "--faults") {
            o.faultsFile = next();
        } else {
            usage();
        }
    }
    return o;
}

bool
matchesFilters(const std::string &name,
               const std::vector<std::string> &filters)
{
    if (filters.empty())
        return true;
    for (const std::string &f : filters)
        if (name.find(f) != std::string::npos)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);

    std::vector<RunSpec> specs;
    if (!o.sweepFile.empty()) {
        auto loaded = loadSweep(o.sweepFile);
        if (!loaded.hasValue()) {
            std::cerr << "xfarm: "
                      << analysis::DiagnosticList::formatOne(
                             loaded.error())
                      << "\n";
            return 1;
        }
        specs = std::move(loaded.value());
    } else {
        specs = builtinSuite(o.suite);
    }

    if (o.backend) {
        for (RunSpec &s : specs)
            s.config.backend = *o.backend;
    }

    if (!o.filters.empty()) {
        std::vector<RunSpec> kept;
        for (RunSpec &s : specs)
            if (matchesFilters(s.name, o.filters))
                kept.push_back(std::move(s));
        specs = std::move(kept);
    }

    if (o.list) {
        for (const RunSpec &s : specs)
            std::cout << s.name << "\n";
        return 0;
    }
    if (specs.empty()) {
        std::cerr << "xfarm: no jobs selected\n";
        return 1;
    }

    // Campaign mode: classify fault trials instead of running a
    // plain batch.
    if (!o.faultsFile.empty()) {
        auto plan = snapshot::FaultPlan::load(o.faultsFile);
        if (!plan) {
            std::cerr << "xfarm: " << plan.error() << "\n";
            return 1;
        }
        const CampaignResult camp =
            runCampaign(specs, plan.value(), o.jobs);
        if (!o.quiet) {
            for (const CampaignJob &j : camp.jobs) {
                std::cout << j.name << ": ";
                if (!j.baselineOk)
                    std::cout << "BASELINE FAILED\n";
                else
                    std::cout << j.countOf(Outcome::Unaffected)
                              << " unaffected, "
                              << j.countOf(Outcome::Degraded)
                              << " degraded, "
                              << j.countOf(Outcome::Wedged)
                              << " wedged, "
                              << j.countOf(Outcome::Faulted)
                              << " faulted\n";
            }
            std::cout << "plan: " << camp.planSummary << "\n";
        }
        if (o.report)
            std::cout << camp.json() << "\n";
        if (!o.outFile.empty()) {
            std::ofstream out(o.outFile);
            if (!out) {
                std::cerr << "xfarm: cannot write '" << o.outFile
                          << "'\n";
                return 1;
            }
            out << camp.json() << "\n";
        }
        // Trials are expected to misbehave; only a broken baseline
        // fails the campaign.
        for (const CampaignJob &j : camp.jobs)
            if (!j.baselineOk)
                return 1;
        return 0;
    }

    if (o.checkpointEvery > 0) {
        std::error_code ec;
        std::filesystem::create_directories(o.checkpointDir, ec);
        if (ec) {
            std::cerr << "xfarm: cannot create '" << o.checkpointDir
                      << "': " << ec.message() << "\n";
            return 1;
        }
        for (RunSpec &s : specs) {
            s.checkpointEvery = o.checkpointEvery;
            std::string file = s.name;
            for (char &c : file)
                if (c == '/')
                    c = '_';
            s.checkpointPath =
                o.checkpointDir + "/" + file + ".snap";
        }
    }

    if (!o.resumeFile.empty()) {
        auto info = snapshot::peekFile(o.resumeFile);
        if (!info) {
            std::cerr << "xfarm: " << info.error().formatted()
                      << "\n";
            return 1;
        }
        bool found = false;
        for (RunSpec &s : specs) {
            if (s.name == info.value().label) {
                s.resumeFrom = o.resumeFile;
                found = true;
            }
        }
        if (!found) {
            std::cerr << "xfarm: snapshot label '"
                      << info.value().label
                      << "' matches no selected job\n";
            return 1;
        }
    }

    const BatchResult batch = Farm::run(specs, o.jobs);

    if (!o.quiet) {
        for (const JobResult &j : batch.jobs) {
            if (j.ok()) {
                std::cout << "ok   " << j.name << "  ("
                          << j.run.cycles << " cycles)\n";
            } else {
                std::cout << "FAIL " << j.name << "  "
                          << analysis::DiagnosticList::formatOne(
                                 *j.error)
                          << "\n";
            }
        }
        std::cout << batch.jobs.size() << " jobs, "
                  << batch.failures() << " failed, "
                  << batch.threads << " threads";
        if (!o.noTiming)
            std::cout << ", " << batch.wallMillis << " ms";
        std::cout << "\n";
    }

    if (o.statsJson) {
        for (const JobResult &j : batch.jobs) {
            std::cout << "=== " << j.name << " ===\n";
            if (j.ran)
                std::cout << j.statsJson;
            else
                std::cout << "(did not run)\n";
        }
    }

    if (o.report)
        std::cout << batch.json(!o.noTiming) << "\n";
    if (!o.outFile.empty()) {
        std::ofstream out(o.outFile);
        if (!out) {
            std::cerr << "xfarm: cannot write '" << o.outFile
                      << "'\n";
            return 1;
        }
        out << batch.json(!o.noTiming) << "\n";
    }

    return batch.allOk() ? 0 : 1;
}
