/**
 * @file
 * xfarm — run many simulations in parallel and report the batch.
 *
 * Usage:
 *   xfarm [options]
 *     --sweep FILE     expand FILE (sweep JSON, see farm/sweep.hh)
 *                      instead of the built-in section 4.1 suite
 *     --jobs N         worker threads (default: hardware concurrency)
 *     --filter SUBSTR  keep jobs whose name contains SUBSTR
 *                      (repeatable; a job matching any is kept)
 *     --list           print job names and exit (after filtering)
 *     --n N            built-in suite input size (default 256)
 *     --seed S         built-in suite base seed (default 1)
 *     --regsync-axis   add registered-sync ablation variants
 *     --stats-json     print each job's stats JSON in spec order
 *     --report         print the aggregate JSON report to stdout
 *     --out FILE       write the aggregate JSON report to FILE
 *     --no-timing      omit host-timing fields from reports (output
 *                      becomes byte-identical across hosts and -j)
 *     --quiet          suppress per-job progress lines
 *
 * Per-job results print in spec order regardless of --jobs, and every
 * job's statistics are a pure function of its spec — `xfarm -j1` and
 * `xfarm -j8` emit byte-identical --stats-json output.
 *
 * Exit status: 0 when every job passed, 1 otherwise.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "farm/farm.hh"
#include "farm/suite.hh"
#include "farm/sweep.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;
using namespace ximd::farm;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: xfarm [options]\n"
        << "  --sweep FILE     run a sweep file instead of the "
           "built-in suite\n"
        << "  --jobs N         worker threads (default: hardware)\n"
        << "  --filter SUBSTR  keep jobs whose name contains SUBSTR\n"
        << "  --list           print job names and exit\n"
        << "  --n N            built-in suite input size\n"
        << "  --seed S         built-in suite base seed\n"
        << "  --regsync-axis   add registered-sync ablation variants\n"
        << "  --stats-json     print per-job stats JSON in spec "
           "order\n"
        << "  --report         print the aggregate JSON report\n"
        << "  --out FILE       write the aggregate JSON report\n"
        << "  --no-timing      omit host-timing fields from reports\n"
        << "  --quiet          suppress per-job progress lines\n";
    std::exit(2);
}

struct Options
{
    std::string sweepFile;
    std::string outFile;
    unsigned jobs = 0;
    bool list = false;
    bool statsJson = false;
    bool report = false;
    bool noTiming = false;
    bool quiet = false;
    SuiteOptions suite;
    std::vector<std::string> filters;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--sweep") {
            o.sweepFile = next();
        } else if (arg == "--jobs" || arg == "-j") {
            o.jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            o.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 2, nullptr, 0));
        } else if (arg == "--filter") {
            o.filters.push_back(next());
        } else if (arg == "--list") {
            o.list = true;
        } else if (arg == "--n") {
            o.suite.n = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--seed") {
            o.suite.seed =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--regsync-axis") {
            o.suite.registeredSyncAxis = true;
        } else if (arg == "--stats-json") {
            o.statsJson = true;
        } else if (arg == "--report") {
            o.report = true;
        } else if (arg == "--out") {
            o.outFile = next();
        } else if (arg == "--no-timing") {
            o.noTiming = true;
        } else if (arg == "--quiet") {
            o.quiet = true;
        } else {
            usage();
        }
    }
    return o;
}

bool
matchesFilters(const std::string &name,
               const std::vector<std::string> &filters)
{
    if (filters.empty())
        return true;
    for (const std::string &f : filters)
        if (name.find(f) != std::string::npos)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);

    std::vector<RunSpec> specs;
    if (!o.sweepFile.empty()) {
        auto loaded = loadSweep(o.sweepFile);
        if (!loaded.hasValue()) {
            std::cerr << "xfarm: "
                      << analysis::DiagnosticList::formatOne(
                             loaded.error())
                      << "\n";
            return 1;
        }
        specs = std::move(loaded.value());
    } else {
        specs = builtinSuite(o.suite);
    }

    if (!o.filters.empty()) {
        std::vector<RunSpec> kept;
        for (RunSpec &s : specs)
            if (matchesFilters(s.name, o.filters))
                kept.push_back(std::move(s));
        specs = std::move(kept);
    }

    if (o.list) {
        for (const RunSpec &s : specs)
            std::cout << s.name << "\n";
        return 0;
    }
    if (specs.empty()) {
        std::cerr << "xfarm: no jobs selected\n";
        return 1;
    }

    const BatchResult batch = Farm::run(specs, o.jobs);

    if (!o.quiet) {
        for (const JobResult &j : batch.jobs) {
            if (j.ok()) {
                std::cout << "ok   " << j.name << "  ("
                          << j.run.cycles << " cycles)\n";
            } else {
                std::cout << "FAIL " << j.name << "  "
                          << analysis::DiagnosticList::formatOne(
                                 *j.error)
                          << "\n";
            }
        }
        std::cout << batch.jobs.size() << " jobs, "
                  << batch.failures() << " failed, "
                  << batch.threads << " threads";
        if (!o.noTiming)
            std::cout << ", " << batch.wallMillis << " ms";
        std::cout << "\n";
    }

    if (o.statsJson) {
        for (const JobResult &j : batch.jobs) {
            std::cout << "=== " << j.name << " ===\n";
            if (j.ran)
                std::cout << j.statsJson;
            else
                std::cout << "(did not run)\n";
        }
    }

    if (o.report)
        std::cout << batch.json(!o.noTiming) << "\n";
    if (!o.outFile.empty()) {
        std::ofstream out(o.outFile);
        if (!out) {
            std::cerr << "xfarm: cannot write '" << o.outFile
                      << "'\n";
            return 1;
        }
        out << batch.json(!o.noTiming) << "\n";
    }

    return batch.allOk() ? 0 : 1;
}
