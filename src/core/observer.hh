/**
 * @file
 * The pluggable cycle-observation interface of the execution core.
 *
 * Observation (tracing, statistics, partition tracking) used to be
 * compiled into the machines' step() functions behind config booleans.
 * It is now externalized: MachineCore drives a list of CycleObserver
 * instances at fixed points of the cycle, and a core with no observers
 * attached pays nothing per cycle for observation.
 *
 * Callback contract (see DESIGN.md section 7):
 *
 *  - onCycle(core) fires at the beginning of every cycle that will
 *    execute (after the halted-and-drained check), before fetch. The
 *    core exposes beginning-of-cycle state: cycle(), pcs(), halted
 *    flags, condCodes().
 *  - onCommit(core, events) fires at the end of the same cycle, after
 *    writes committed and PCs advanced. `events` holds one FuEvent per
 *    FU describing what that FU executed. Not called for a cycle that
 *    faulted (the fault squashes the cycle's effects).
 *  - onFastForward(core, skipped, events) replaces `skipped`
 *    consecutive (onCycle, onCommit) pairs when the core proves the
 *    machine is in a busy-wait fixpoint: every skipped cycle would
 *    have produced exactly `events` and identical beginning-of-cycle
 *    state. Observers that keep per-cycle records must expand this
 *    bulk notification themselves.
 *  - onHalt(core) fires once per run, when the machine becomes
 *    architecturally done (all FUs halted and write-backs drained) or
 *    faults.
 *
 * Mutating observers (the fault-injection engine, src/snapshot/fault.hh)
 * additionally implement the perturbation hooks:
 *
 *  - perturbs() declares the intent to mutate; the core only pays for
 *    the mutable dispatch when at least one attached observer returns
 *    true.
 *  - onPerturb(core) fires right after onCycle() with a *mutable* core
 *    reference, before fetch, so injected register / CC / memory /
 *    sync corruption is visible to the cycle about to execute exactly
 *    as if the hardware bit had flipped between cycles.
 *  - nextWake(core) names the earliest future cycle at which the
 *    observer needs control again. Busy-wait fast-forward must not
 *    jump over a pending perturbation, so tryFastForward() caps the
 *    skip at the minimum nextWake() across observers (kNeverWake when
 *    the observer has no scheduled work).
 */

#ifndef XIMD_CORE_OBSERVER_HH
#define XIMD_CORE_OBSERVER_HH

#include <vector>

#include "isa/control_op.hh"
#include "isa/opcode.hh"
#include "support/types.hh"

namespace ximd {

class MachineCore;

/** nextWake() value meaning "no scheduled perturbation". */
inline constexpr Cycle kNeverWake = ~Cycle(0);

/** What one FU did during one committed cycle. */
struct FuEvent
{
    bool executed = false;     ///< FU fetched and executed a parcel.
    bool halted = false;       ///< FU halted this cycle.
    OpClass cls = OpClass::Nop; ///< Executed data-op class.
    bool conditional = false;  ///< Control op was conditional.
    bool taken = false;        ///< Condition selected T1.
    bool busyWait = false;     ///< Conditional branch back to own PC.
    InstAddr nextPc = 0;       ///< Resolved next address (when !halted).
    ControlOp ctrl;            ///< Executed control fields.
};

/** Observation hooks driven by MachineCore. All default to no-ops. */
class CycleObserver
{
  public:
    virtual ~CycleObserver() = default;

    /** Beginning of a cycle that will execute, before fetch. */
    virtual void onCycle(const MachineCore &core) { (void)core; }

    /** End of a committed cycle; @p events has one entry per FU. */
    virtual void
    onCommit(const MachineCore &core, const std::vector<FuEvent> &events)
    {
        (void)core;
        (void)events;
    }

    /**
     * @p skipped busy-wait cycles were fast-forwarded; each would have
     * produced @p events and unchanged beginning-of-cycle state.
     */
    virtual void
    onFastForward(const MachineCore &core, Cycle skipped,
                  const std::vector<FuEvent> &events)
    {
        (void)core;
        (void)skipped;
        (void)events;
    }

    /** The machine became done (all halted + drained) or faulted. */
    virtual void onHalt(const MachineCore &core) { (void)core; }

    /// @name Perturbation hooks (fault injection).
    /// @{
    /** Declare intent to mutate the core from onPerturb(). */
    virtual bool perturbs() const { return false; }

    /** After onCycle(), before fetch, with a mutable core. */
    virtual void onPerturb(MachineCore &core) { (void)core; }

    /**
     * Earliest future cycle this observer must see executed one at a
     * time; fast-forward will not skip past it. kNeverWake: none.
     */
    virtual Cycle nextWake(const MachineCore &core) const
    {
        (void)core;
        return kNeverWake;
    }
    /// @}
};

} // namespace ximd

#endif // XIMD_CORE_OBSERVER_HH
