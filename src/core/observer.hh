/**
 * @file
 * The pluggable cycle-observation interface of the execution core.
 *
 * Observation (tracing, statistics, partition tracking) used to be
 * compiled into the machines' step() functions behind config booleans.
 * It is now externalized: MachineCore drives a list of CycleObserver
 * instances at fixed points of the cycle, and a core with no observers
 * attached pays nothing per cycle for observation.
 *
 * Callback contract (see DESIGN.md section 7):
 *
 *  - onCycle(core) fires at the beginning of every cycle that will
 *    execute (after the halted-and-drained check), before fetch. The
 *    core exposes beginning-of-cycle state: cycle(), pcs(), halted
 *    flags, condCodes().
 *  - onCommit(core, events) fires at the end of the same cycle, after
 *    writes committed and PCs advanced. `events` holds one FuEvent per
 *    FU describing what that FU executed. Not called for a cycle that
 *    faulted (the fault squashes the cycle's effects).
 *  - onFastForward(core, skipped, events) replaces `skipped`
 *    consecutive (onCycle, onCommit) pairs when the core proves the
 *    machine is in a busy-wait fixpoint: every skipped cycle would
 *    have produced exactly `events` and identical beginning-of-cycle
 *    state. Observers that keep per-cycle records must expand this
 *    bulk notification themselves.
 *  - onHalt(core) fires once per run, when the machine becomes
 *    architecturally done (all FUs halted and write-backs drained) or
 *    faults.
 *
 * Mutating observers (the fault-injection engine, src/snapshot/fault.hh)
 * additionally implement the perturbation hooks:
 *
 *  - perturbs() declares the intent to mutate; the core only pays for
 *    the mutable dispatch when at least one attached observer returns
 *    true.
 *  - onPerturb(core) fires right after onCycle() with a *mutable* core
 *    reference, before fetch, so injected register / CC / memory /
 *    sync corruption is visible to the cycle about to execute exactly
 *    as if the hardware bit had flipped between cycles.
 *  - nextWake(core) names the earliest future cycle at which the
 *    observer needs control again. Busy-wait fast-forward must not
 *    jump over a pending perturbation, so tryFastForward() caps the
 *    skip at the minimum nextWake() across observers (kNeverWake when
 *    the observer has no scheduled work).
 */

#ifndef XIMD_CORE_OBSERVER_HH
#define XIMD_CORE_OBSERVER_HH

#include <array>
#include <vector>

#include "isa/control_op.hh"
#include "isa/opcode.hh"
#include "support/types.hh"

namespace ximd {

class MachineCore;

/** nextWake() value meaning "no scheduled perturbation". */
inline constexpr Cycle kNeverWake = ~Cycle(0);

/**
 * Bulk accounting for a block of cycles executed by a fast backend
 * (core/exec_backend.hh). A block-capable observer receives one
 * onBlock() carrying the exact sums its per-cycle hooks would have
 * accumulated over the same cycles; the backend guarantees the block
 * never spans a fault (the faulting cycle's counts are excluded, as
 * onCommit() would have been skipped).
 */
struct BlockStats
{
    Cycle cycles = 0;              ///< Committed cycles in the block.
    std::uint64_t parcels = 0;     ///< Executed parcels (incl. nops).
    /** Executed parcels by OpClass (indexed by static_cast). */
    std::array<std::uint64_t, 8> classCounts{};
    std::uint64_t condBranches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t busyWaitFuCycles = 0;
    /**
     * Cycles spent with each beginning-of-cycle stream count, exactly
     * as StatsObserver::onCycle would have charged them. Index 0 is
     * unused (a block cycle always has a live FU).
     */
    std::array<Cycle, kMaxFus + 1> partitionCycles{};
    /**
     * SSET assignment after the block's last committed cycle (one id
     * per FU, -1 for halted), or null when the backend did not track
     * partitions. Lets PartitionObserver resynchronize its tracker.
     */
    const std::vector<int> *finalSsetIds = nullptr;
};

/** What one FU did during one committed cycle. */
struct FuEvent
{
    bool executed = false;     ///< FU fetched and executed a parcel.
    bool halted = false;       ///< FU halted this cycle.
    OpClass cls = OpClass::Nop; ///< Executed data-op class.
    bool conditional = false;  ///< Control op was conditional.
    bool taken = false;        ///< Condition selected T1.
    bool busyWait = false;     ///< Conditional branch back to own PC.
    InstAddr nextPc = 0;       ///< Resolved next address (when !halted).
    ControlOp ctrl;            ///< Executed control fields.
};

/** Observation hooks driven by MachineCore. All default to no-ops. */
class CycleObserver
{
  public:
    virtual ~CycleObserver() = default;

    /** Short identifier used in backend-demotion diagnostics. */
    virtual const char *observerName() const { return "observer"; }

    /**
     * Fidelity contract with fast execution backends. An observer
     * returning true promises that one onBlock() call is equivalent
     * to the per-cycle hook sequence it replaces; observers that keep
     * per-cycle records (traces, race checks) must return false, which
     * demotes a threaded core back to per-cycle interpretation.
     */
    virtual bool acceptsBlocks() const { return false; }

    /**
     * True when onBlock() needs partitionCycles / finalSsetIds filled
     * in (the backend skips SSET grouping when no observer asks).
     */
    virtual bool wantsPartitions() const { return false; }

    /** Bulk replacement for per-cycle hooks over a block of cycles. */
    virtual void onBlock(const MachineCore &core, const BlockStats &blk)
    {
        (void)core;
        (void)blk;
    }

    /** Beginning of a cycle that will execute, before fetch. */
    virtual void onCycle(const MachineCore &core) { (void)core; }

    /** End of a committed cycle; @p events has one entry per FU. */
    virtual void
    onCommit(const MachineCore &core, const std::vector<FuEvent> &events)
    {
        (void)core;
        (void)events;
    }

    /**
     * @p skipped busy-wait cycles were fast-forwarded; each would have
     * produced @p events and unchanged beginning-of-cycle state.
     */
    virtual void
    onFastForward(const MachineCore &core, Cycle skipped,
                  const std::vector<FuEvent> &events)
    {
        (void)core;
        (void)skipped;
        (void)events;
    }

    /** The machine became done (all halted + drained) or faulted. */
    virtual void onHalt(const MachineCore &core) { (void)core; }

    /// @name Perturbation hooks (fault injection).
    /// @{
    /** Declare intent to mutate the core from onPerturb(). */
    virtual bool perturbs() const { return false; }

    /** After onCycle(), before fetch, with a mutable core. */
    virtual void onPerturb(MachineCore &core) { (void)core; }

    /**
     * Earliest future cycle this observer must see executed one at a
     * time; fast-forward will not skip past it. kNeverWake: none.
     */
    virtual Cycle nextWake(const MachineCore &core) const
    {
        (void)core;
        return kNeverWake;
    }
    /// @}
};

} // namespace ximd

#endif // XIMD_CORE_OBSERVER_HH
