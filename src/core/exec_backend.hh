/**
 * @file
 * The pluggable execution-backend tier of MachineCore.
 *
 * MachineCore owns the machine state (register file, memory, condition
 * codes, write pipeline, sync bus, PCs, halt flags) and the observer
 * lists; an ExecBackend owns only *how* the five-phase cycle is driven
 * over that state:
 *
 *  - InterpBackend (core/interp_backend.hh) is the reference
 *    interpreter — the literal five-phase loop, firing every observer
 *    hook each cycle. It is the semantic oracle: every other backend
 *    is tested against it.
 *  - ThreadedBackend (core/threaded_backend.hh) dispatches
 *    token-threaded execute records flattened per FU stream
 *    (isa/decoded_program.hh FlatProgram), with superinstruction
 *    fusion for the busy-wait poll idiom. It reports observation in
 *    blocks (CycleObserver::onBlock) and must be architecturally
 *    indistinguishable from the interpreter.
 *
 * Access contract: backends are friends of MachineCore and of the
 * state components they accelerate (RegisterFile, Memory,
 * CondCodeFile). Direct member access is what a backend *is* — the
 * audited surface is this tier, not per-field accessors. A backend
 * must preserve, bit for bit, everything MachineCore::saveState()
 * serializes and everything archStateHash() covers: register / memory
 * / CC contents (including ever-written flags), read/write/load/store
 * counters, sync bus and registered-sync history, PCs, halt flags,
 * cycle number, and fault state. The differential suite
 * (tests/fuzz/test_backend_differential.cc) enforces this with
 * state-hash comparisons at randomized cut points.
 *
 * Backend selection and demotion live in MachineCore: the configured
 * backend (MachineConfig::backend) is demoted to the interpreter
 * whenever an attached observer or configuration needs per-cycle
 * fidelity — see MachineCore::demotionReason(). See DESIGN.md
 * section 12.
 */

#ifndef XIMD_CORE_EXEC_BACKEND_HH
#define XIMD_CORE_EXEC_BACKEND_HH

#include <memory>

#include "core/machine_core.hh"
#include "support/logging.hh"

namespace ximd {

/**
 * Sequence one predecoded parcel (mirrors evaluateControlOp). Shared
 * by the interpreter loop, the busy-wait fast-forward proof, and the
 * threaded backend's resynchronization path.
 */
inline NextPc
evalDecodedControl(const DecodedParcel &d, const CondCodeFile &ccs,
                   const SyncBus &ss)
{
    NextPc next;
    bool cond;
    switch (d.ckind) {
      case CondKind::Halt:
        next.halt = true;
        return next;
      case CondKind::Always:
        cond = true;
        break;
      case CondKind::CcTrue:
        cond = ccs.read(d.cindex);
        break;
      case CondKind::SyncDone:
        cond = ss.get(d.cindex) == SyncVal::Done;
        break;
      case CondKind::AllSync:
        cond = ss.allDone(d.cmask);
        break;
      case CondKind::AnySync:
        cond = ss.anyDone(d.cmask);
        break;
      default:
        panic("evalDecodedControl: bad condition kind");
    }
    next.taken = cond;
    next.pc = cond ? d.t1 : d.t2;
    return next;
}

/** Drives the five-phase cycle loop over a MachineCore's state. */
class ExecBackend
{
  public:
    explicit ExecBackend(MachineCore &core) : core_(core) {}
    virtual ~ExecBackend();

    ExecBackend(const ExecBackend &) = delete;
    ExecBackend &operator=(const ExecBackend &) = delete;

    /** "interp" / "threaded" (matches backendName()). */
    virtual const char *name() const = 0;

    /** (Re)build dispatch structures from the core's prepared program. */
    virtual void prepare() {}

    /**
     * Execute one cycle with full per-cycle observer fidelity.
     * @return false when nothing ran (all FUs halted or faulted).
     */
    virtual bool step() = 0;

    /**
     * Run until halt, fault, or the core's cycle counter reaches
     * @p limit. May batch cycles; must leave the core's serialized
     * state exactly as the interpreter would at the same cycle.
     */
    virtual void runTo(Cycle limit) = 0;

    /** The core's state was replaced wholesale (loadState). */
    virtual void onStateLoaded() {}

  protected:
    MachineCore &core_;
};

/** Instantiate the backend implementing @p kind for @p core. */
std::unique_ptr<ExecBackend> makeExecBackend(Backend kind,
                                             MachineCore &core);

} // namespace ximd

#endif // XIMD_CORE_EXEC_BACKEND_HH
