/**
 * @file
 * Outcome of a simulation run, shared by xsim and vsim.
 */

#ifndef XIMD_CORE_RUN_RESULT_HH
#define XIMD_CORE_RUN_RESULT_HH

#include <cstdint>
#include <string>

#include "support/types.hh"

namespace ximd {

/** Why a run() stopped. */
enum class StopReason : std::uint8_t {
    Halted,    ///< Every instruction stream executed a halt.
    MaxCycles, ///< Cycle budget exhausted (program likely wedged).
    Fault,     ///< Architecturally-undefined behaviour detected.
};

/** Outcome of a run() call. */
struct RunResult
{
    StopReason reason = StopReason::Halted;
    Cycle cycles = 0;
    std::string faultMessage; ///< Non-empty iff reason == Fault.

    bool ok() const { return reason == StopReason::Halted; }
};

} // namespace ximd

#endif // XIMD_CORE_RUN_RESULT_HH
