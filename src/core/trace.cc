#include "core/trace.hh"

#include <sstream>

#include "support/logging.hh"
#include "support/str.hh"

namespace ximd {

const TraceEntry &
Trace::entry(std::size_t i) const
{
    XIMD_ASSERT(i < entries_.size(), "trace entry ", i, " out of range");
    return entries_[i];
}

std::string
Trace::formatted() const
{
    std::ostringstream os;
    if (entries_.empty())
        return "(empty trace)\n";
    const std::size_t fus = entries_.front().pcs.size();

    os << padRight("Cycle", 10);
    for (std::size_t fu = 0; fu < fus; ++fu)
        os << padRight("FU" + std::to_string(fu), 5);
    os << padRight("CondCodes", 11) << "Partition\n";

    for (const TraceEntry &e : entries_) {
        os << padRight("Cycle " + std::to_string(e.cycle), 10);
        for (std::size_t fu = 0; fu < fus; ++fu) {
            std::string cell =
                e.live[fu] ? hex2(e.pcs[fu]) + ":" : "--";
            os << padRight(cell, 5);
        }
        os << padRight(e.condCodes, 11) << e.partition << "\n";
    }
    return os.str();
}

std::string
Trace::compact() const
{
    std::ostringstream os;
    for (const TraceEntry &e : entries_) {
        os << e.cycle << " |";
        for (std::size_t fu = 0; fu < e.pcs.size(); ++fu)
            os << " " << (e.live[fu] ? hex2(e.pcs[fu]) : "--");
        os << " | " << e.condCodes << " | " << e.partition << "\n";
    }
    return os.str();
}

void
Trace::saveState(StateWriter &w) const
{
    w.tag("TRCE");
    w.count(entries_.size());
    for (const TraceEntry &e : entries_) {
        w.u64(e.cycle);
        w.count(e.pcs.size());
        for (InstAddr pc : e.pcs)
            w.u32(pc);
        w.count(e.live.size());
        for (bool b : e.live)
            w.boolean(b);
        w.str(e.condCodes);
        w.str(e.partition);
    }
}

void
Trace::loadState(StateReader &r)
{
    r.checkTag("TRCE");
    // A trace grows one entry per cycle; the bound only guards
    // against a corrupt count, not legitimate long runs.
    entries_.clear();
    entries_.resize(r.count(std::size_t(1) << 32));
    for (TraceEntry &e : entries_) {
        e.cycle = r.u64();
        e.pcs.resize(r.count(kMaxFus));
        for (InstAddr &pc : e.pcs)
            pc = r.u32();
        e.live.resize(r.count(kMaxFus));
        for (std::size_t i = 0; i < e.live.size(); ++i)
            e.live[i] = r.boolean();
        e.condCodes = r.str();
        e.partition = r.str();
    }
}

} // namespace ximd
