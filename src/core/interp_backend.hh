/**
 * @file
 * The reference interpreter backend: the five-phase cycle loop,
 * exactly as MachineCore::step() executed it before the backend split,
 * firing every CycleObserver hook each cycle.
 *
 * The loop lives in static functions (stepCore / runCoreTo) so that
 * other backends can delegate single cycles to the interpreter when
 * full per-cycle fidelity is needed — the threaded backend does this
 * for active sync overrides and for its partition-resynchronization
 * cycles — without constructing a second backend instance.
 */

#ifndef XIMD_CORE_INTERP_BACKEND_HH
#define XIMD_CORE_INTERP_BACKEND_HH

#include "core/exec_backend.hh"

namespace ximd {

/** Reference interpreter; the semantic oracle for all backends. */
class InterpBackend final : public ExecBackend
{
  public:
    explicit InterpBackend(MachineCore &core) : ExecBackend(core) {}

    const char *name() const override { return "interp"; }
    bool step() override { return stepCore(core_); }
    void runTo(Cycle limit) override { runCoreTo(core_, limit); }

    /** Execute one five-phase cycle with per-cycle observer hooks. */
    static bool stepCore(MachineCore &core);

    /**
     * The interpreter run loop: step until halt/fault/@p limit,
     * attempting busy-wait fast-forward after each spinning cycle.
     */
    static void runCoreTo(MachineCore &core, Cycle limit);

  private:
    /** Execute one predecoded data op for @p fu (queues writes). */
    static void executeParcel(MachineCore &core, const DecodedParcel &d,
                              FuId fu);
};

} // namespace ximd

#endif // XIMD_CORE_INTERP_BACKEND_HH
