/**
 * @file
 * vsim — the companion VLIW simulator (paper section 4.1).
 *
 * "A companion simulator, vsim, simulates a VLIW processor with similar
 * characteristics." The data path is identical to the XIMD-1 machine
 * (same FUs, global register file, idealized memory, per-FU condition
 * codes feeding a single sequencer — Figure 4). The control path is a
 * single sequencer: one program counter; one control operation per
 * instruction.
 *
 * This class is a mode-fixing wrapper over the unified `Machine`
 * façade (core/machine.hh): it pins `config.mode = Mode::Vliw` and
 * forwards everything else. Kept for source compatibility; new code
 * should construct `Machine(prog, MachineConfig::vliw()...)`.
 *
 * A VLIW program is expressed as an ordinary Program whose control
 * fields are read from FU0's parcel (the paper's examples duplicate the
 * control fields into every parcel; vsim accepts either form but
 * rejects sync-signal conditions, which do not exist on a VLIW).
 */

#ifndef XIMD_CORE_VLIW_MACHINE_HH
#define XIMD_CORE_VLIW_MACHINE_HH

#include <memory>
#include <string>
#include <utility>

#include "core/machine.hh"

namespace ximd {

/** The VLIW simulator: XIMD datapath, single instruction stream. */
class VliwMachine
{
  public:
    /**
     * Build a machine around @p program. Throws FatalError when any
     * parcel uses a sync-signal branch condition or a non-BUSY sync
     * field — those mechanisms do not exist on a VLIW.
     */
    explicit VliwMachine(Program program, MachineConfig config = {})
        : m_(std::move(program), config.withMode(Mode::Vliw))
    {
    }

    /** Build around a shared, already-prepared program. */
    explicit VliwMachine(std::shared_ptr<const PreparedProgram> prepared,
                         MachineConfig config = {})
        : m_(std::move(prepared), config.withMode(Mode::Vliw))
    {
    }

    // The attached observers hold references into this object.
    VliwMachine(const VliwMachine &) = delete;
    VliwMachine &operator=(const VliwMachine &) = delete;

    /// @name Pre-run setup.
    /// @{
    Memory &memory() { return m_.memory(); }
    RegisterFile &registers() { return m_.registers(); }
    CondCodeFile &condCodes() { return m_.condCodes(); }
    void attachDevice(Addr lo, Addr hi, IoDevice *device)
    {
        m_.attachDevice(lo, hi, device);
    }

    /** Attach a custom observation hook (not owned). */
    void addObserver(CycleObserver *observer)
    {
        m_.addObserver(observer);
    }
    /// @}

    /// @name Execution.
    /// @{
    bool step() { return m_.step(); }
    RunResult run(Cycle maxCycles = 0) { return m_.run(maxCycles); }
    /// @}

    /// @name Observation.
    /// @{
    const Program &program() const { return m_.program(); }
    FuId numFus() const { return m_.numFus(); }
    Cycle cycle() const { return m_.cycle(); }
    InstAddr pc() const { return m_.pc(0); }
    bool halted() const { return m_.halted(0); }
    bool faulted() const { return m_.faulted(); }
    const std::string &faultMessage() const
    {
        return m_.faultMessage();
    }

    const RunStats &stats() const { return m_.stats(); }
    const Trace &trace() const { return m_.trace(); }

    Word readReg(RegId r) const { return m_.readReg(r); }
    Word readRegByName(const std::string &name) const
    {
        return m_.readRegByName(name);
    }
    Word peekMem(Addr addr) const { return m_.peekMem(addr); }

    /** The underlying unified façade. */
    Machine &machine() { return m_; }
    /// @}

  private:
    Machine m_;
};

} // namespace ximd

#endif // XIMD_CORE_VLIW_MACHINE_HH
