/**
 * @file
 * vsim — the companion VLIW simulator (paper section 4.1).
 *
 * "A companion simulator, vsim, simulates a VLIW processor with similar
 * characteristics." The data path is identical to the XIMD-1 machine
 * (same FUs, global register file, idealized memory, per-FU condition
 * codes feeding a single sequencer — Figure 4). The control path is a
 * single sequencer: one program counter; one control operation per
 * instruction.
 *
 * Like xsim, this class is a configuration of the shared MachineCore:
 * Mode::Vliw makes the single sequencer (FU0's control fields) drive
 * all lanes in lockstep, and the attached observers record the
 * single-stream trace and statistics.
 *
 * A VLIW program is expressed as an ordinary Program whose control
 * fields are read from FU0's parcel (the paper's examples duplicate the
 * control fields into every parcel; vsim accepts either form but
 * rejects sync-signal conditions, which do not exist on a VLIW).
 */

#ifndef XIMD_CORE_VLIW_MACHINE_HH
#define XIMD_CORE_VLIW_MACHINE_HH

#include <string>

#include "core/machine_config.hh"
#include "core/machine_core.hh"
#include "core/observers.hh"
#include "core/run_result.hh"
#include "core/stats.hh"
#include "core/trace.hh"
#include "isa/program.hh"

namespace ximd {

/** The VLIW simulator: XIMD datapath, single instruction stream. */
class VliwMachine
{
  public:
    /**
     * Build a machine around @p program. Throws FatalError when any
     * parcel uses a sync-signal branch condition or a non-BUSY sync
     * field — those mechanisms do not exist on a VLIW.
     */
    explicit VliwMachine(Program program, MachineConfig config = {});

    // The attached observers hold references into this object.
    VliwMachine(const VliwMachine &) = delete;
    VliwMachine &operator=(const VliwMachine &) = delete;

    /// @name Pre-run setup.
    /// @{
    Memory &memory() { return core_.memory(); }
    RegisterFile &registers() { return core_.registers(); }
    CondCodeFile &condCodes() { return core_.condCodes(); }
    void attachDevice(Addr lo, Addr hi, IoDevice *device)
    {
        core_.attachDevice(lo, hi, device);
    }

    /** Attach a custom observation hook (not owned). */
    void addObserver(CycleObserver *observer)
    {
        core_.addObserver(observer);
    }
    /// @}

    /// @name Execution.
    /// @{
    bool step() { return core_.step(); }
    RunResult run(Cycle maxCycles = 0) { return core_.run(maxCycles); }
    /// @}

    /// @name Observation.
    /// @{
    const Program &program() const { return core_.program(); }
    FuId numFus() const { return core_.numFus(); }
    Cycle cycle() const { return core_.cycle(); }
    InstAddr pc() const { return core_.pc(0); }
    bool halted() const { return core_.haltedFu(0); }
    bool faulted() const { return core_.faulted(); }
    const std::string &faultMessage() const
    {
        return core_.faultMessage();
    }

    const RunStats &stats() const { return stats_; }
    const Trace &trace() const { return trace_; }

    Word readReg(RegId r) const { return core_.readReg(r); }
    Word readRegByName(const std::string &name) const
    {
        return core_.readRegByName(name);
    }
    Word peekMem(Addr addr) const { return core_.peekMem(addr); }
    /// @}

  private:
    MachineCore core_;

    Trace trace_;
    RunStats stats_;

    StatsObserver statsObserver_;
    VliwTraceObserver traceObserver_;
};

} // namespace ximd

#endif // XIMD_CORE_VLIW_MACHINE_HH
