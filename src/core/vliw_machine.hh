/**
 * @file
 * vsim — the companion VLIW simulator (paper section 4.1).
 *
 * "A companion simulator, vsim, simulates a VLIW processor with similar
 * characteristics." The data path is identical to the XIMD-1 machine
 * (same FUs, global register file, idealized memory, per-FU condition
 * codes feeding a single sequencer — Figure 4). The control path is a
 * single sequencer: one program counter; one control operation per
 * instruction.
 *
 * A VLIW program is expressed as an ordinary Program whose control
 * fields are read from FU0's parcel (the paper's examples duplicate the
 * control fields into every parcel; vsim accepts either form but
 * rejects sync-signal conditions, which do not exist on a VLIW).
 */

#ifndef XIMD_CORE_VLIW_MACHINE_HH
#define XIMD_CORE_VLIW_MACHINE_HH

#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/run_result.hh"
#include "core/stats.hh"
#include "core/trace.hh"
#include "isa/program.hh"
#include "sim/cond_codes.hh"
#include "sim/memory.hh"
#include "sim/register_file.hh"
#include "sim/write_pipeline.hh"

namespace ximd {

/** The VLIW simulator: XIMD datapath, single instruction stream. */
class VliwMachine
{
  public:
    /**
     * Build a machine around @p program. Throws FatalError when any
     * parcel uses a sync-signal branch condition or a non-BUSY sync
     * field — those mechanisms do not exist on a VLIW.
     */
    explicit VliwMachine(Program program, MachineConfig config = {});

    /// @name Pre-run setup.
    /// @{
    Memory &memory() { return mem_; }
    RegisterFile &registers() { return regs_; }
    CondCodeFile &condCodes() { return ccs_; }
    void attachDevice(Addr lo, Addr hi, IoDevice *device);
    /// @}

    /// @name Execution.
    /// @{
    bool step();
    RunResult run(Cycle maxCycles = 0);
    /// @}

    /// @name Observation.
    /// @{
    const Program &program() const { return program_; }
    FuId numFus() const { return program_.width(); }
    Cycle cycle() const { return cycle_; }
    InstAddr pc() const { return pc_; }
    bool halted() const { return halted_; }
    bool faulted() const { return faulted_; }
    const std::string &faultMessage() const { return faultMsg_; }

    const RunStats &stats() const { return stats_; }
    const Trace &trace() const { return trace_; }

    Word readReg(RegId r) const { return regs_.peek(r); }
    Word readRegByName(const std::string &name) const;
    Word peekMem(Addr addr) const { return mem_.peek(addr); }
    /// @}

  private:
    void applyMemInit();
    void validateVliwProgram() const;
    void fault(const std::string &msg);

    Program program_;
    MachineConfig config_;

    RegisterFile regs_;
    Memory mem_;
    CondCodeFile ccs_;
    WritePipeline pipe_;

    InstAddr pc_ = 0;
    bool halted_ = false;

    Cycle cycle_ = 0;
    bool faulted_ = false;
    std::string faultMsg_;

    Trace trace_;
    RunStats stats_;
};

} // namespace ximd

#endif // XIMD_CORE_VLIW_MACHINE_HH
