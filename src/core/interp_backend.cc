#include "core/interp_backend.hh"

#include <algorithm>

#include "sim/alu.hh"
#include "support/logging.hh"

namespace ximd {

void
InterpBackend::executeParcel(MachineCore &core, const DecodedParcel &d,
                             FuId fu)
{
    const auto src = [&core](const DecodedSrc &s) {
        return s.isReg ? core.regs_.read(static_cast<RegId>(s.value))
                       : s.value;
    };

    switch (d.cls) {
      case OpClass::Nop:
        return;

      case OpClass::IntAlu: {
        Word result;
        switch (d.op) {
          case Opcode::Ineg:
            result = intToWord(-wordToInt(src(d.a)));
            break;
          case Opcode::Not:
            result = ~src(d.a);
            break;
          case Opcode::Mov:
            result = src(d.a);
            break;
          default:
            result = alu::intBinary(d.op, src(d.a), src(d.b));
            break;
        }
        core.pipe_.pushReg(core.cycle_, d.dest, result, fu);
        return;
      }

      case OpClass::IntCompare:
        core.pipe_.pushCc(core.cycle_, fu,
                          alu::intCompare(d.op, src(d.a), src(d.b)));
        return;

      case OpClass::FloatAlu: {
        Word result;
        if (d.op == Opcode::Fneg)
            result = floatToWord(-wordToFloat(src(d.a)));
        else
            result = alu::floatBinary(d.op, src(d.a), src(d.b));
        core.pipe_.pushReg(core.cycle_, d.dest, result, fu);
        return;
      }

      case OpClass::FloatCompare:
        core.pipe_.pushCc(core.cycle_, fu,
                          alu::floatCompare(d.op, src(d.a), src(d.b)));
        return;

      case OpClass::Convert: {
        const Word a = src(d.a);
        Word result;
        if (d.op == Opcode::Itof)
            result = floatToWord(static_cast<float>(wordToInt(a)));
        else
            result = intToWord(static_cast<SWord>(wordToFloat(a)));
        core.pipe_.pushReg(core.cycle_, d.dest, result, fu);
        return;
      }

      case OpClass::MemLoad: {
        const Addr addr = src(d.a) + src(d.b);
        core.pipe_.pushReg(core.cycle_, d.dest,
                           core.mem_.load(addr, core.cycle_), fu);
        return;
      }

      case OpClass::MemStore: {
        const Word value = src(d.a);
        const Addr addr = src(d.b);
        core.pipe_.pushStore(core.cycle_, addr, value, fu);
        return;
      }
    }
    panic("executeParcel: unhandled op class for ", opcodeName(d.op));
}

bool
InterpBackend::stepCore(MachineCore &core)
{
    // Even with every FU halted, in-flight write-backs must drain
    // (resultLatency > 1) before the machine is architecturally done.
    if (core.faulted_ || (core.allHalted() && core.pipe_.empty()))
        return false;

    const FuId n = core.numFus();
    core.spinHint_ = false;

    // Beginning-of-cycle observation, then scheduled perturbation
    // (fault injection) against the state the cycle is about to read.
    for (CycleObserver *o : core.observers_)
        o->onCycle(core);
    for (CycleObserver *o : core.perturbers_)
        o->onPerturb(core);

    // Fetch; in XIMD mode also drive the sync bus from the executing
    // parcels' SS fields.
    if (core.mode_ == Mode::Ximd) {
        core.sync_.beginCycle(); // halted FUs read DONE
        for (FuId fu = 0; fu < n; ++fu) {
            if (core.haltedFus_[fu]) {
                core.fetched_[fu] = nullptr;
                continue;
            }
            core.fetched_[fu] = &core.decoded_->at(core.pcs_[fu], fu);
            core.sync_.set(fu, core.fetched_[fu]->sync);
        }
        if (!core.syncOverrides_.empty())
            core.applySyncOverrides(core.sync_);
    } else {
        // The single PC selects one row for every lane; a halted VLIW
        // only drains in-flight write-backs.
        const DecodedParcel *row =
            core.haltedFus_[0] ? nullptr
                               : &core.decoded_->at(core.pcs_[0], 0);
        for (FuId fu = 0; fu < n; ++fu)
            core.fetched_[fu] = row ? row + fu : nullptr;
    }

    // Execute data operations against beginning-of-cycle state.
    try {
        for (FuId fu = 0; fu < n; ++fu) {
            if (core.fetched_[fu])
                executeParcel(core, *core.fetched_[fu], fu);
        }
    } catch (const FatalError &e) {
        core.fault(e.what());
        return false;
    }

    // Sequence: select next PCs. CC values are still the beginning-
    // of-cycle ones (commit happens below); SS values are the current
    // cycle's fields (or the previous cycle's, under the registered-
    // sync ablation). A VLIW is steered by FU0's control op alone.
    if (core.mode_ == Mode::Ximd) {
        const SyncBus *branchSync = &core.sync_;
        if (core.config_.registeredSync) {
            for (FuId fu = 0; fu < n; ++fu)
                core.regSync_.set(fu, core.syncPrev_[fu]);
            branchSync = &core.regSync_;
        }
        bool anyLive = false;
        bool allSpin = true;
        for (FuId fu = 0; fu < n; ++fu) {
            if (!core.fetched_[fu])
                continue;
            anyLive = true;
            core.next_[fu] = evalDecodedControl(*core.fetched_[fu],
                                                core.ccs_, *branchSync);
            if (!(core.fetched_[fu]->canSelfSpin && !core.next_[fu].halt &&
                  core.next_[fu].pc == core.pcs_[fu]))
                allSpin = false;
        }
        core.spinHint_ = anyLive && allSpin;
    } else {
        if (core.fetched_[0]) {
            core.next_[0] = evalDecodedControl(*core.fetched_[0],
                                               core.ccs_, core.sync_);
            core.spinHint_ = core.fetched_[0]->canSelfSpin &&
                             !core.next_[0].halt &&
                             core.next_[0].pc == core.pcs_[0];
        } else {
            core.next_[0] = NextPc{};
            core.next_[0].halt = true; // draining in-flight write-backs
        }
    }

    // Snapshot the cycle's events before PCs advance (busy-wait
    // detection compares against this cycle's PCs).
    if (!core.observers_.empty())
        core.buildEvents();

    // Commit the write-backs due this cycle.
    try {
        core.pipe_.drainInto(core.cycle_, core.regs_, core.mem_,
                             core.ccs_);
        core.regs_.commit();
        core.mem_.commit(core.cycle_);
        core.ccs_.commit();
    } catch (const FatalError &e) {
        core.fault(e.what());
        return false;
    }

    // Advance control state.
    if (core.mode_ == Mode::Ximd) {
        for (FuId fu = 0; fu < n; ++fu) {
            if (!core.fetched_[fu])
                continue;
            if (core.next_[fu].halt)
                core.haltedFus_[fu] = true;
            else
                core.pcs_[fu] = core.next_[fu].pc;
        }
        for (FuId fu = 0; fu < n; ++fu)
            core.syncPrev_[fu] = core.sync_.get(fu);
    } else {
        if (core.next_[0].halt)
            std::fill(core.haltedFus_.begin(), core.haltedFus_.end(),
                      true);
        else
            core.pcs_[0] = core.next_[0].pc;
    }

    // End-of-cycle observation.
    for (CycleObserver *o : core.observers_)
        o->onCommit(core, core.events_);

    ++core.cycle_;

    if (core.allHalted() && core.pipe_.empty())
        core.notifyDone();
    return true;
}

void
InterpBackend::runCoreTo(MachineCore &core, Cycle limit)
{
    while (core.cycle_ < limit && stepCore(core)) {
        // A successful skip may be partial (capped at an observer's
        // wake cycle), so keep stepping from wherever it landed.
        if (core.config_.fastForward && core.spinHint_)
            core.tryFastForward(limit);
    }
}

} // namespace ximd
