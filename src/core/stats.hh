/**
 * @file
 * Per-run statistics collected by both simulators.
 *
 * Mirrors what the paper's xsim was built for (section 4.1): "measuring
 * performance" and "measuring the effectiveness of the XIMD
 * architectural model" — cycle counts, operation mix, busy-wait
 * overhead, and the dynamic partition behaviour.
 */

#ifndef XIMD_CORE_STATS_HH
#define XIMD_CORE_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "isa/opcode.hh"
#include "support/state_io.hh"
#include "support/types.hh"

namespace ximd {

/**
 * Version stamped into every machine-readable JSON document the
 * simulator emits (`"schema": N` on --stats-json output, xfarm job
 * records, and campaign triage reports). Service clients key their
 * parsers on it; bump it on any key addition, removal, or rename and
 * update the key-set pin in tests/farm/test_schema.cc.
 */
inline constexpr unsigned kStatsJsonSchema = 1;

/** Counters accumulated over one simulation run. */
class RunStats
{
  public:
    explicit RunStats(FuId numFus);

    FuId numFus() const { return numFus_; }

    /// @name Accumulators (called by the machines).
    /// @{
    void countCycle() { ++cycles_; }
    void countParcel(OpClass cls);
    void countConditionalBranch(bool taken);
    void countBusyWait() { ++busyWaitCycles_; }
    void countPartition(unsigned numSsets) { ++partitionCycles_[numSsets]; }
    /// @}

    /// @name Bulk accumulators (fast-forwarded cycles).
    /// @{
    void countCycles(Cycle n) { cycles_ += n; }
    void countParcels(OpClass cls, std::uint64_t n);
    void countConditionalBranches(bool taken, std::uint64_t n);
    void countBusyWaits(std::uint64_t n) { busyWaitCycles_ += n; }
    void countPartitions(unsigned numSsets, Cycle n)
    {
        partitionCycles_[numSsets] += n;
    }
    /// @}

    /// @name Results.
    /// @{
    Cycle cycles() const { return cycles_; }

    /** Parcels executed by live FUs (includes nops). */
    std::uint64_t parcels() const { return parcels_; }

    /** Non-nop data operations executed. */
    std::uint64_t dataOps() const;

    /** Executed parcels whose data op was a nop. */
    std::uint64_t nops() const { return byClass(OpClass::Nop); }

    /** Executed data ops of class @p cls. */
    std::uint64_t byClass(OpClass cls) const;

    /** Floating-point operations (FloatAlu + FloatCompare). */
    std::uint64_t flops() const;

    std::uint64_t conditionalBranches() const { return condBranches_; }
    std::uint64_t takenBranches() const { return takenBranches_; }

    /** FU-cycles spent spinning at one address on a condition. */
    std::uint64_t busyWaitCycles() const { return busyWaitCycles_; }

    /** Cycles spent with each SSET count (1 == pure VLIW mode). */
    const std::map<unsigned, Cycle> &partitionHistogram() const
    {
        return partitionCycles_;
    }

    /** Mean number of concurrent instruction streams. */
    double meanStreams() const;

    /** Useful-op density: dataOps / (cycles * numFus). */
    double utilization() const;

    /** Millions of useful instructions per second at @p cycleNs. */
    double mips(double cycleNs) const;

    /** Millions of float operations per second at @p cycleNs. */
    double mflops(double cycleNs) const;
    /// @}

    /**
     * Fold @p other into this run's counters. Every counter is a sum;
     * the partition histogram merges key-wise; numFus becomes the max
     * of the two (merging runs of different widths is meaningful for
     * aggregate op counts, less so for utilization). Merging the stats
     * of a run split at any cycle boundary equals the stats of the
     * unsplit run, which is what makes farm results reducible.
     */
    RunStats &merge(const RunStats &other);

    /// @name Checkpointing (see DESIGN.md section 9).
    /// @{
    /** Serialize every counter. */
    void saveState(StateWriter &w) const;

    /** Overwrite all counters with saved state; FU counts must match. */
    void loadState(StateReader &r);

    /** Stable 64-bit hash of the serialized state. */
    std::uint64_t stateHash() const { return stateHashOf(*this); }
    /// @}

    /** Multi-line human-readable summary. */
    std::string formatted() const;

    /**
     * Machine-readable JSON object (integers and fixed-point doubles;
     * stable key order). @p cycleNs scales mips/mflops; pass the
     * machine's configured cycle time. A non-empty @p backend names
     * the execution backend that produced the numbers and adds
     * "backend" / "predecode" fields so the record is self-describing.
     */
    std::string json(double cycleNs,
                     const std::string &backend = "") const;

  private:
    FuId numFus_;
    Cycle cycles_ = 0;
    std::uint64_t parcels_ = 0;
    std::array<std::uint64_t, 8> classCounts_{};
    std::uint64_t condBranches_ = 0;
    std::uint64_t takenBranches_ = 0;
    std::uint64_t busyWaitCycles_ = 0;
    std::map<unsigned, Cycle> partitionCycles_;
};

} // namespace ximd

#endif // XIMD_CORE_STATS_HH
