#include "core/observers.hh"

#include "core/machine_core.hh"

namespace ximd {

void
PartitionObserver::onCommit(const MachineCore &core,
                            const std::vector<FuEvent> &events)
{
    (void)core;
    controls_.resize(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FuEvent &e = events[i];
        controls_[i].live = e.executed;
        controls_[i].halted = e.halted;
        controls_[i].op = e.ctrl;
        controls_[i].nextPc = e.nextPc;
    }
    tracker_.update(controls_);
}

void
PartitionObserver::onBlock(const MachineCore &core, const BlockStats &blk)
{
    (void)core;
    // The backend mirrored the tracker's grouping per block cycle;
    // adopt its final assignment so the tracker reads correctly after
    // the block (and any following per-cycle stretch starts in sync).
    if (blk.finalSsetIds)
        tracker_.setAssignments(*blk.finalSsetIds);
}

void
StatsObserver::onCycle(const MachineCore &core)
{
    if ((tracker_ || fixedStreams_) && !core.allHalted())
        stats_.countPartition(streams());
}

void
StatsObserver::onCommit(const MachineCore &core,
                        const std::vector<FuEvent> &events)
{
    (void)core;
    for (const FuEvent &e : events) {
        if (!e.executed)
            continue;
        stats_.countParcel(e.cls);
        if (e.conditional) {
            stats_.countConditionalBranch(e.taken);
            if (countBusyWaits_ && e.busyWait)
                stats_.countBusyWait();
        }
    }
    stats_.countCycle();
}

void
StatsObserver::onFastForward(const MachineCore &core, Cycle skipped,
                             const std::vector<FuEvent> &events)
{
    // `skipped` cycles, each identical: replay the per-cycle counts in
    // bulk. The machine is mid-spin, so it cannot be all-halted.
    if (tracker_ || fixedStreams_)
        stats_.countPartitions(streams(), skipped);
    for (const FuEvent &e : events) {
        if (!e.executed)
            continue;
        stats_.countParcels(e.cls, skipped);
        if (e.conditional) {
            stats_.countConditionalBranches(e.taken, skipped);
            if (countBusyWaits_ && e.busyWait)
                stats_.countBusyWaits(skipped);
        }
    }
    stats_.countCycles(skipped);
    (void)core;
}

void
StatsObserver::onBlock(const MachineCore &core, const BlockStats &blk)
{
    // One bulk fold of everything the per-cycle hooks would have
    // accumulated over the block's committed cycles (the backend
    // builds BlockStats to match onCycle/onCommit exactly, including
    // the beginning-of-cycle stream histogram).
    (void)core;
    if (tracker_) {
        for (unsigned s = 1; s <= kMaxFus; ++s)
            if (blk.partitionCycles[s])
                stats_.countPartitions(s, blk.partitionCycles[s]);
    } else if (fixedStreams_) {
        stats_.countPartitions(fixedStreams_, blk.cycles);
    }
    for (std::size_t c = 0; c < blk.classCounts.size(); ++c)
        if (blk.classCounts[c])
            stats_.countParcels(static_cast<OpClass>(c),
                                blk.classCounts[c]);
    if (blk.takenBranches)
        stats_.countConditionalBranches(true, blk.takenBranches);
    if (blk.condBranches > blk.takenBranches)
        stats_.countConditionalBranches(
            false, blk.condBranches - blk.takenBranches);
    if (countBusyWaits_ && blk.busyWaitFuCycles)
        stats_.countBusyWaits(blk.busyWaitFuCycles);
    stats_.countCycles(blk.cycles);
}

void
TraceObserver::onCycle(const MachineCore &core)
{
    const FuId n = core.numFus();
    TraceEntry e;
    e.cycle = core.cycle();
    e.pcs = core.pcs();
    e.live.resize(n);
    for (FuId fu = 0; fu < n; ++fu)
        e.live[fu] = !core.haltedFu(fu);
    e.condCodes = core.condCodes().formatted();
    e.partition = tracker_.formatted();
    trace_.append(std::move(e));
}

void
TraceObserver::onFastForward(const MachineCore &core, Cycle skipped,
                             const std::vector<FuEvent> &events)
{
    (void)events;
    // Each skipped cycle begins in the same state; only the cycle
    // number advances.
    const FuId n = core.numFus();
    TraceEntry e;
    e.pcs = core.pcs();
    e.live.resize(n);
    for (FuId fu = 0; fu < n; ++fu)
        e.live[fu] = !core.haltedFu(fu);
    e.condCodes = core.condCodes().formatted();
    e.partition = tracker_.formatted();
    for (Cycle i = 0; i < skipped; ++i) {
        e.cycle = core.cycle() + i;
        trace_.append(e);
    }
}

TraceEntry
VliwTraceObserver::snapshot(const MachineCore &core)
{
    if (partition_.empty()) {
        // A VLIW always executes a single instruction stream.
        partition_ = "{";
        for (FuId fu = 0; fu < core.numFus(); ++fu)
            partition_ += (fu ? "," : "") + std::to_string(fu);
        partition_ += "}";
    }
    TraceEntry e;
    e.cycle = core.cycle();
    e.pcs.assign(core.numFus(), core.pc(0));
    e.live.assign(core.numFus(), true);
    e.condCodes = core.condCodes().formatted();
    e.partition = partition_;
    return e;
}

void
VliwTraceObserver::onCycle(const MachineCore &core)
{
    trace_.append(snapshot(core));
}

void
VliwTraceObserver::onFastForward(const MachineCore &core, Cycle skipped,
                                 const std::vector<FuEvent> &events)
{
    (void)events;
    TraceEntry e = snapshot(core);
    for (Cycle i = 0; i < skipped; ++i) {
        e.cycle = core.cycle() + i;
        trace_.append(e);
    }
}

} // namespace ximd
