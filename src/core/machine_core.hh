/**
 * @file
 * The shared execution core behind xsim and vsim.
 *
 * Both machines are the same datapath — global register file,
 * idealized shared memory, per-FU condition codes, write-back
 * pipeline — driven through the same five-phase cycle:
 *
 *   1. fetch:    each sequencer fetches the parcel addressed by its
 *                PC (XIMD: one PC per FU, and the sync bus takes each
 *                live parcel's SS field; VLIW: the single PC selects
 *                one row for every lane);
 *   2. sync:     synchronization signals distribute combinationally
 *                (XIMD only; a VLIW has no SS bus);
 *   3. execute:  data ops read beginning-of-cycle registers / memory
 *                and queue their writes in the pipeline;
 *   4. sequence: control ops select next PCs from beginning-of-cycle
 *                CC values and current-cycle SS values (XIMD: every
 *                live FU; VLIW: FU0's control op steers all lanes);
 *   5. commit:   queued register / memory / CC writes become visible;
 *                write-write races on one location fault.
 *
 * MachineCore owns that loop once; Mode::Ximd / Mode::Vliw select the
 * sequencing discipline. The inner loop runs entirely on predecoded
 * parcels (isa/decoded_program.hh) — no Parcel or Operand parsing per
 * cycle — and observation is externalized behind CycleObserver hooks
 * (core/observer.hh), so a core with no observers attached is a bare
 * interpreter.
 *
 * run() can additionally fast-forward busy-wait fixpoints: when every
 * live FU provably re-executes a self-looping nop parcel under
 * unchanging condition inputs, the remaining cycle budget is consumed
 * in O(1) while observers receive an equivalent bulk notification.
 * See DESIGN.md section 7 for the soundness argument.
 */

#ifndef XIMD_CORE_MACHINE_CORE_HH
#define XIMD_CORE_MACHINE_CORE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/observer.hh"
#include "core/run_result.hh"
#include "isa/decoded_program.hh"
#include "isa/program.hh"
#include "sim/cond_codes.hh"
#include "sim/memory.hh"
#include "sim/register_file.hh"
#include "sim/sequencer.hh"
#include "sim/sync_bus.hh"
#include "sim/write_pipeline.hh"
#include "support/state_io.hh"

namespace ximd {

class ExecBackend;

/**
 * The execution engine shared by XimdMachine and VliwMachine.
 *
 * Thread-safety contract: a MachineCore is confined to one thread —
 * nothing in it is synchronized. What makes concurrent simulation
 * safe is what cores share and how: the PreparedProgram (program +
 * predecode) is immutable and accessed through const methods only, so
 * any number of cores on any threads may execute from one instance;
 * everything mutable (register file, memory, pipelines, observers,
 * per-cycle scratch) is owned per-core. Observers attach per-core and
 * are called only from the core's thread. See DESIGN.md section 8.
 */
class MachineCore
{
  public:
    /** Sequencing discipline (alias of the config-level enum). */
    using Mode = ximd::Mode;

    /**
     * Build a core around @p program (validated on entry; Mode::Vliw
     * additionally rejects sync-signal conditions and non-BUSY sync
     * fields). Initial memory / register requests are applied, and
     * the program is predecoded. `config.mode` is overridden by
     * @p mode (the wrapper machines fix the discipline).
     */
    MachineCore(Program program, MachineConfig config, Mode mode);

    /**
     * Build a core executing from a shared, already-prepared program.
     * The core keeps @p prepared alive; many cores (on many threads)
     * may share one instance. The discipline is `config.mode`.
     */
    MachineCore(std::shared_ptr<const PreparedProgram> prepared,
                MachineConfig config);

    // Observers hold references into the owning machine; the core is
    // pinned alongside them.
    MachineCore(const MachineCore &) = delete;
    MachineCore &operator=(const MachineCore &) = delete;

    ~MachineCore(); // out of line: backend_ points to an incomplete type

    /// @name Pre-run setup.
    /// @{
    Memory &memory() { return mem_; }
    RegisterFile &registers() { return regs_; }
    CondCodeFile &condCodes() { return ccs_; }
    const CondCodeFile &condCodes() const { return ccs_; }

    /** Map @p device at [lo, hi]; forwards to Memory::attachDevice. */
    void attachDevice(Addr lo, Addr hi, IoDevice *device);

    /** Attach an observation hook (not owned; called in order). */
    void addObserver(CycleObserver *observer);
    /// @}

    /// @name Execution.
    /// @{
    /**
     * Execute one cycle.
     * @return false when nothing ran (all FUs halted or faulted).
     */
    bool step();

    /** Run until halt/fault or @p maxCycles (0: config default). */
    RunResult run(Cycle maxCycles = 0);
    /// @}

    /// @name Execution backend (see core/exec_backend.hh).
    /// @{
    /** The backend the configuration asked for. */
    Backend selectedBackend() const { return config_.backend; }

    /**
     * The backend that will actually drive the next step()/run():
     * the selected one, demoted to Backend::Interp when
     * demotionReason() is nonempty.
     */
    Backend effectiveBackend() const;

    /** backendName(effectiveBackend()). */
    const char *effectiveBackendName() const;

    /**
     * Why the selected backend cannot run — empty when it can. A fast
     * backend needs block-fidelity observers (CycleObserver::
     * acceptsBlocks), no perturbation hooks, unit result latency,
     * combinational sync, and no device windows; the first violated
     * requirement is named, e.g. "observer 'trace' requires per-cycle
     * fidelity".
     */
    std::string demotionReason() const;
    /// @}

    /// @name Observation.
    /// @{
    const Program &program() const { return prepared_->program(); }

    /** The shared prepared program this core executes from. */
    const std::shared_ptr<const PreparedProgram> &prepared() const
    {
        return prepared_;
    }

    const MachineConfig &config() const { return config_; }
    Mode mode() const { return mode_; }
    FuId numFus() const { return prepared_->width(); }
    Cycle cycle() const { return cycle_; }
    InstAddr pc(FuId fu) const;
    const std::vector<InstAddr> &pcs() const { return pcs_; }
    bool haltedFu(FuId fu) const;
    bool allHalted() const;
    bool faulted() const { return faulted_; }
    const std::string &faultMessage() const { return faultMsg_; }

    /** Read a register by number. */
    Word readReg(RegId r) const { return regs_.peek(r); }

    /** Read a register by its symbolic program name; fatal if unknown. */
    Word readRegByName(const std::string &name) const;

    /** Read a memory word (RAM only). */
    Word peekMem(Addr addr) const { return mem_.peek(addr); }
    /// @}

    /// @name Fault injection (snapshot/fault.hh).
    /// @{
    /**
     * Force FU @p fu's sync signal to @p val for every cycle c with
     * c < @p untilCycle (a stuck-at SS line). The override is applied
     * after the executing parcels drive the bus, so branches and
     * barriers observe the stuck value; under registeredSync it
     * propagates into the next cycle's registered values the same way
     * a genuinely driven value would. Overrides expire on their own
     * and disable busy-wait fast-forward while active.
     */
    void forceSync(FuId fu, SyncVal val, Cycle untilCycle);

    /** True when any forceSync() override is still active. */
    bool hasSyncOverrides() const;
    /// @}

    /// @name Checkpointing (see DESIGN.md section 9).
    /// @{
    /**
     * Serialize the complete execution state: control state (cycle,
     * PCs, halt flags, fault state, registered-sync history, active
     * sync overrides) followed by every component's section. Does NOT
     * include the program or config — the snapshot layer records a
     * program digest and the config fields needed to validate a
     * restore target.
     */
    void saveState(StateWriter &w) const;

    /**
     * Restore state saved by saveState() into this core. The core
     * must have been built from an identical program and config
     * (validated structurally here — FU counts, memory size, latency —
     * and by digest in the snapshot layer). Throws FatalError on any
     * mismatch; the core may be left partially restored.
     */
    void loadState(StateReader &r);

    /** Stable 64-bit hash of the complete execution state. */
    std::uint64_t stateHash() const { return stateHashOf(*this); }

    /**
     * Hash of the architectural contents only: register values,
     * memory words, condition codes. Two runs that computed the same
     * results agree on this hash even when they took different paths
     * (used by the differential tests and fault-outcome triage).
     */
    std::uint64_t archStateHash() const;
    /// @}

  private:
    // The execution backends drive the five-phase loop directly over
    // the core's state; see the access contract in exec_backend.hh.
    friend class ExecBackend;
    friend class InterpBackend;
    friend class ThreadedBackend;

    void validateVliwProgram() const;
    void applyMemInit();
    void fault(const std::string &msg);

    /** (Re)instantiate backend_ when the effective kind changed. */
    void ensureBackend();

    /** Fill events_ from the cycle's fetch/sequence results. */
    void buildEvents();

    /** Notify observers once when the machine becomes done. */
    void notifyDone();

    /** Drop expired sync overrides; force the rest onto @p bus. */
    void applySyncOverrides(SyncBus &bus);

    /**
     * Prove the machine is in a busy-wait fixpoint and, if so, skip
     * ahead to @p limit, notifying observers in bulk.
     * @return true when the skip happened.
     */
    bool tryFastForward(Cycle limit);

    std::shared_ptr<const PreparedProgram> prepared_;
    /** Predecoded parcels of prepared_, cached for the hot loop. */
    const DecodedProgram *decoded_ = nullptr;
    MachineConfig config_;
    Mode mode_;

    RegisterFile regs_;
    Memory mem_;
    CondCodeFile ccs_;
    WritePipeline pipe_;
    SyncBus sync_;
    SyncBus regSync_; ///< Scratch bus for the registered-sync ablation.
    /** Previous-cycle SS values, used when config_.registeredSync. */
    std::vector<SyncVal> syncPrev_;

    std::vector<InstAddr> pcs_;
    std::vector<bool> haltedFus_;

    /** A stuck-at SS line: FU @p fu reads @p val while cycle < until. */
    struct SyncOverride
    {
        FuId fu;
        SyncVal val;
        Cycle until;
    };
    std::vector<SyncOverride> syncOverrides_;

    Cycle cycle_ = 0;
    bool faulted_ = false;
    std::string faultMsg_;
    bool doneNotified_ = false;

    std::vector<CycleObserver *> observers_;
    /** Subset of observers_ whose perturbs() returned true. */
    std::vector<CycleObserver *> perturbers_;

    /** Active execution backend (lazily built by ensureBackend()). */
    std::unique_ptr<ExecBackend> backend_;
    /** The kind backend_ implements (valid when backend_ != null). */
    Backend backendKind_ = Backend::Interp;

    // Per-cycle scratch, sized once (no allocation inside step()).
    std::vector<const DecodedParcel *> fetched_;
    std::vector<NextPc> next_;
    std::vector<FuEvent> events_;
    /** Last stepped cycle was a candidate busy-wait fixpoint. */
    bool spinHint_ = false;
};

} // namespace ximd

#endif // XIMD_CORE_MACHINE_CORE_HH
