#include "core/partition.hh"

#include <map>
#include <sstream>
#include <tuple>

#include "support/logging.hh"

namespace ximd {

PartitionTracker::PartitionTracker(FuId numFus)
    : numFus_(numFus), ssetIds_(numFus, 0)
{
    XIMD_ASSERT(numFus > 0 && numFus <= kMaxFus, "bad FU count ", numFus);
}

void
PartitionTracker::update(const std::vector<FuControl> &controls)
{
    XIMD_ASSERT(controls.size() == numFus_,
                "control vector size mismatch");

    // Normalized grouping key: (kind, index, mask, t1, t2). For
    // unconditional branches only the resolved next PC matters.
    using Key = std::tuple<int, unsigned, std::uint32_t, InstAddr,
                           InstAddr>;
    std::map<Key, int> groups;

    for (FuId fu = 0; fu < numFus_; ++fu) {
        const FuControl &c = controls[fu];
        if (!c.live || c.halted) {
            ssetIds_[fu] = -1;
            continue;
        }
        Key key;
        if (c.op.isConditional()) {
            key = {static_cast<int>(c.op.kind), c.op.index, c.op.mask,
                   c.op.t1, c.op.t2};
        } else {
            key = {static_cast<int>(CondKind::Always), 0, 0, c.nextPc,
                   c.nextPc};
        }
        auto [it, inserted] =
            groups.emplace(key, static_cast<int>(groups.size()));
        ssetIds_[fu] = it->second;
    }
    renumber();
}

void
PartitionTracker::setAssignments(const std::vector<int> &ids)
{
    XIMD_ASSERT(ids.size() == numFus_,
                "assignment vector size mismatch");
    ssetIds_ = ids;
}

void
PartitionTracker::renumber()
{
    // Dense ids in order of first appearance (lowest member FU first).
    std::map<int, int> assigned;
    int next = 0;
    for (FuId fu = 0; fu < numFus_; ++fu) {
        const int id = ssetIds_[fu];
        if (id < 0)
            continue;
        auto it = assigned.find(id);
        if (it == assigned.end())
            it = assigned.emplace(id, next++).first;
        ssetIds_[fu] = it->second;
    }
}

int
PartitionTracker::ssetOf(FuId fu) const
{
    XIMD_ASSERT(fu < numFus_, "FU index out of range");
    return ssetIds_[fu];
}

unsigned
PartitionTracker::numSsets() const
{
    int maxId = -1;
    for (int id : ssetIds_)
        if (id > maxId)
            maxId = id;
    return static_cast<unsigned>(maxId + 1);
}

bool
PartitionTracker::sameSset(FuId a, FuId b) const
{
    XIMD_ASSERT(a < numFus_ && b < numFus_, "FU index out of range");
    return ssetIds_[a] >= 0 && ssetIds_[a] == ssetIds_[b];
}

std::string
PartitionTracker::formatted() const
{
    std::ostringstream os;
    const unsigned n = numSsets();
    for (unsigned s = 0; s < n; ++s) {
        os << "{";
        bool first = true;
        for (FuId fu = 0; fu < numFus_; ++fu) {
            if (ssetIds_[fu] == static_cast<int>(s)) {
                if (!first)
                    os << ",";
                os << fu;
                first = false;
            }
        }
        os << "}";
    }
    return os.str();
}

void
PartitionTracker::saveState(StateWriter &w) const
{
    w.tag("PART");
    w.count(ssetIds_.size());
    for (int id : ssetIds_)
        w.u32(static_cast<std::uint32_t>(id));
}

void
PartitionTracker::loadState(StateReader &r)
{
    r.checkTag("PART");
    const std::size_t n = r.count(kMaxFus);
    if (n != ssetIds_.size())
        fatal("partition state has ", n, " FUs, this machine has ",
              ssetIds_.size());
    for (int &id : ssetIds_)
        id = static_cast<int>(r.u32());
}

} // namespace ximd
