/**
 * @file
 * The token-threaded execution backend.
 *
 * The interpreter (core/interp_backend.hh) pays per cycle for work
 * that is invariant across cycles: parcel refetch through two levels
 * of indirection, operand-kind tests, opcode-class switches, write
 * pipeline traffic that — at unit result latency — always drains the
 * same cycle it was filled, and virtual observer dispatch. This
 * backend removes all of it:
 *
 *  - The prepared program's FlatProgram (isa/decoded_program.hh) is
 *    specialized at prepare() time into per-core dispatch tokens laid
 *    out as one contiguous stream per FU. Each token carries resolved
 *    operand *pointers* — a register operand points into the register
 *    file's backing array, an immediate points at the token's own
 *    inline copy — so the execute handlers are branchless on operand
 *    kind.
 *  - Dispatch is token-threaded on ExecKind: computed goto where the
 *    compiler supports it (GCC/Clang), a dense switch otherwise.
 *    Control-only parcels (data op = nop) are fused superinstructions
 *    — Jump / HaltTok / the Poll* family for the busy-wait poll idiom
 *    — that collapse fetch, execute, and sequence into one handler.
 *  - Cycles run in *blocks*: pending writes, CC values, counters, and
 *    SSET grouping live in locals / members for the whole block and
 *    are written back to the core's architectural structures only at
 *    block boundaries (cycle limit, halt, fault, or delegation).
 *    Observers see one CycleObserver::onBlock() carrying the exact
 *    sums their per-cycle hooks would have accumulated.
 *
 * Fidelity contract: bit-for-bit equality with the interpreter on
 * everything MachineCore::saveState() serializes — including fault
 * messages, partial-commit effects of conflict faults, and every
 * read/write/load/store counter. MachineCore demotes to the
 * interpreter (MachineCore::demotionReason()) whenever that cannot be
 * guaranteed cheaply: per-cycle observers, perturbation hooks, result
 * latency > 1, registered sync, or device windows. Within a threaded
 * run, single cycles that need full fidelity — active sync overrides,
 * partition-grouping resynchronization after a state load — delegate
 * to InterpBackend::stepCore. See DESIGN.md section 12.
 */

#ifndef XIMD_CORE_THREADED_BACKEND_HH
#define XIMD_CORE_THREADED_BACKEND_HH

#include <cstdint>
#include <vector>

#include "core/exec_backend.hh"

namespace ximd {

/** Token-threaded block executor; see the file comment. */
class ThreadedBackend final : public ExecBackend
{
  public:
    explicit ThreadedBackend(MachineCore &core) : ExecBackend(core) {}

    const char *name() const override { return "threaded"; }
    void prepare() override;
    bool step() override;
    void runTo(Cycle limit) override;
    void onStateLoaded() override;

  private:
    /**
     * One dispatch token: a FlatParcel specialized to this core, with
     * operand pointers resolved. `a`/`b` point into the register
     * file's backing array for register operands and at the token's
     * own `aImm`/`bImm` for immediates, so tokens must never move
     * after prepare().
     */
    struct Token
    {
        const Word *a = nullptr;
        const Word *b = nullptr;
        Word aImm = 0;
        Word bImm = 0;
        ExecKind kind = ExecKind::Nop;
        CondKind ckind = CondKind::Always;
        std::uint8_t cindex = 0;
        std::uint8_t cls = 0;
        std::uint8_t readCount = 0;
        std::uint8_t flags = 0;
        RegId dest = 0;
        std::uint16_t keyId = 0;
        std::uint32_t ssDoneBit = 0;
        std::uint32_t cmask = 0;
        InstAddr t1 = 0;
        InstAddr t2 = 0;
    };

    /** Why a block stopped. */
    enum class BlockExit { Limit, Halted, Faulted };

    /** Same-cycle pending writes of one block cycle. */
    struct Pend
    {
        struct RegW
        {
            RegId reg;
            FuId fu;
            Word val;
        };
        struct MemW
        {
            Addr addr;
            FuId fu;
            Word val;
        };
        struct CcW
        {
            FuId fu;
            std::uint8_t val;
        };
        RegW regW[kMaxFus];
        MemW memW[kMaxFus];
        CcW ccW[kMaxFus];
        int nReg = 0;
        int nMem = 0;
        int nCc = 0;
    };

    /** Mutable block-local machine state (lives in runBlock locals). */
    struct BlockState
    {
        InstAddr pc[kMaxFus];
        std::uint8_t cc[kMaxFus];
        std::uint32_t liveMask = 0;
        std::uint32_t ccEverMask = 0;
        std::uint32_t ssBusMask = 0;  ///< sync_ values (1 = DONE).
        std::uint32_t ssPrevMask = 0; ///< syncPrev_ values (1 = DONE).
        Cycle cyc = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::string faultMsg;
    };

    /** Run one block of cycles; returns why it stopped. */
    template <bool kStats, bool kPart>
    BlockExit runBlockXimd(Cycle limit, BlockState &st, BlockStats &blk);

    template <bool kStats>
    BlockExit runBlockVliw(Cycle limit, BlockState &st, BlockStats &blk);

    /**
     * End-of-cycle commit, mirroring WritePipeline::drainInto +
     * RegisterFile/Memory/CondCodeFile::commit at unit latency: store
     * address checks first (that is where drainInto's queueStore would
     * fault), then register conflict scan + apply, then memory
     * conflict scan + apply, then CC apply. Throws FatalError with the
     * interpreter's exact messages.
     */
    void commitPend(Pend &pend, BlockState &st);

    /** Execute one data token (VLIW lanes; fused kinds are no-ops). */
    void execData(const Token &t, FuId fu, Pend &pend, BlockState &st,
                  Word *memData, std::size_t memWords);

    /** Load block-local state from / store it back to the core. */
    void loadBlockState(BlockState &st) const;
    void storeBlockState(const BlockState &st, bool touchSync);

    /** Recompute SSET grouping from the interpreter's events_. */
    void seedGroupingFromEvents();

    /** Update curSsets_/curStreams_ from one committed block cycle. */
    void updateGrouping(const Token *const *cur, std::uint32_t liveMask,
                        std::uint32_t haltMask);

    std::vector<Token> tokens_; ///< Column-major: fu * rows_ + addr.
    InstAddr rows_ = 0;

    // SSET grouping mirror of PartitionTracker, advanced per block
    // cycle; valid only while groupingValid_ (invalidated by any cycle
    // the backend did not execute itself).
    bool groupingValid_ = false;
    unsigned curStreams_ = 1;
    std::vector<int> curSsets_;
    std::vector<std::uint64_t> keyStamp_; ///< Per keyId: last epoch.
    std::vector<int> keyDense_;           ///< Per keyId: dense id.
    std::uint64_t stamp_ = 0;

    BlockStats blk_; ///< Reused across blocks (cleared per block).
};

} // namespace ximd

#endif // XIMD_CORE_THREADED_BACKEND_HH
