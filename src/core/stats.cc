#include "core/stats.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"
#include "support/str.hh"

namespace ximd {

RunStats::RunStats(FuId numFus)
    : numFus_(numFus)
{
    XIMD_ASSERT(numFus > 0 && numFus <= kMaxFus, "bad FU count ", numFus);
}

void
RunStats::countParcel(OpClass cls)
{
    ++parcels_;
    ++classCounts_[static_cast<std::size_t>(cls)];
}

void
RunStats::countConditionalBranch(bool taken)
{
    ++condBranches_;
    if (taken)
        ++takenBranches_;
}

void
RunStats::countParcels(OpClass cls, std::uint64_t n)
{
    parcels_ += n;
    classCounts_[static_cast<std::size_t>(cls)] += n;
}

void
RunStats::countConditionalBranches(bool taken, std::uint64_t n)
{
    condBranches_ += n;
    if (taken)
        takenBranches_ += n;
}

RunStats &
RunStats::merge(const RunStats &other)
{
    numFus_ = std::max(numFus_, other.numFus_);
    cycles_ += other.cycles_;
    parcels_ += other.parcels_;
    for (std::size_t i = 0; i < classCounts_.size(); ++i)
        classCounts_[i] += other.classCounts_[i];
    condBranches_ += other.condBranches_;
    takenBranches_ += other.takenBranches_;
    busyWaitCycles_ += other.busyWaitCycles_;
    for (const auto &[streams, cycles] : other.partitionCycles_)
        partitionCycles_[streams] += cycles;
    return *this;
}

std::uint64_t
RunStats::byClass(OpClass cls) const
{
    return classCounts_[static_cast<std::size_t>(cls)];
}

std::uint64_t
RunStats::dataOps() const
{
    return parcels_ - nops();
}

std::uint64_t
RunStats::flops() const
{
    return byClass(OpClass::FloatAlu) + byClass(OpClass::FloatCompare);
}

double
RunStats::meanStreams() const
{
    Cycle total = 0;
    double weighted = 0.0;
    for (const auto &[streams, cycles] : partitionCycles_) {
        total += cycles;
        weighted += static_cast<double>(streams) *
                    static_cast<double>(cycles);
    }
    return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

double
RunStats::utilization() const
{
    if (cycles_ == 0)
        return 0.0;
    return static_cast<double>(dataOps()) /
           (static_cast<double>(cycles_) * numFus_);
}

double
RunStats::mips(double cycleNs) const
{
    if (cycles_ == 0 || cycleNs <= 0.0)
        return 0.0;
    const double seconds = static_cast<double>(cycles_) * cycleNs * 1e-9;
    return static_cast<double>(dataOps()) / seconds / 1e6;
}

double
RunStats::mflops(double cycleNs) const
{
    if (cycles_ == 0 || cycleNs <= 0.0)
        return 0.0;
    const double seconds = static_cast<double>(cycles_) * cycleNs * 1e-9;
    return static_cast<double>(flops()) / seconds / 1e6;
}

std::string
RunStats::formatted() const
{
    std::ostringstream os;
    os << "cycles:             " << cycles_ << "\n"
       << "parcels executed:   " << parcels_ << "\n"
       << "data ops:           " << dataOps() << "\n"
       << "  int alu:          " << byClass(OpClass::IntAlu) << "\n"
       << "  int compare:      " << byClass(OpClass::IntCompare) << "\n"
       << "  float alu:        " << byClass(OpClass::FloatAlu) << "\n"
       << "  float compare:    " << byClass(OpClass::FloatCompare) << "\n"
       << "  convert:          " << byClass(OpClass::Convert) << "\n"
       << "  loads:            " << byClass(OpClass::MemLoad) << "\n"
       << "  stores:           " << byClass(OpClass::MemStore) << "\n"
       << "nops:               " << nops() << "\n"
       << "cond branches:      " << condBranches_
       << " (taken " << takenBranches_ << ")\n"
       << "busy-wait FU-cycles:" << busyWaitCycles_ << "\n"
       << "utilization:        " << fixed(utilization() * 100.0, 1)
       << "%\n"
       << "mean streams:       " << fixed(meanStreams(), 2) << "\n";
    if (!partitionCycles_.empty()) {
        os << "partition histogram (streams -> cycles):\n";
        for (const auto &[streams, cycles] : partitionCycles_)
            os << "  " << streams << " -> " << cycles << "\n";
    }
    return os.str();
}

std::string
RunStats::json(double cycleNs, const std::string &backend) const
{
    std::ostringstream os;
    os << "{\n"
       << "  \"schema\": " << kStatsJsonSchema << ",\n";
    if (!backend.empty()) {
        // Which execution configuration produced these numbers: the
        // effective backend, and the program representation it
        // dispatches over (the interpreter walks DecodedParcel rows;
        // the threaded and batch executors the flattened per-FU token
        // streams).
        os << "  \"backend\": \"" << backend << "\",\n"
           << "  \"predecode\": \""
           << (backend == "interp" ? "decoded" : "flat") << "\",\n";
    }
    os << "  \"cycles\": " << cycles_ << ",\n"
       << "  \"parcels\": " << parcels_ << ",\n"
       << "  \"data_ops\": " << dataOps() << ",\n"
       << "  \"int_alu\": " << byClass(OpClass::IntAlu) << ",\n"
       << "  \"int_compare\": " << byClass(OpClass::IntCompare) << ",\n"
       << "  \"float_alu\": " << byClass(OpClass::FloatAlu) << ",\n"
       << "  \"float_compare\": " << byClass(OpClass::FloatCompare)
       << ",\n"
       << "  \"convert\": " << byClass(OpClass::Convert) << ",\n"
       << "  \"loads\": " << byClass(OpClass::MemLoad) << ",\n"
       << "  \"stores\": " << byClass(OpClass::MemStore) << ",\n"
       << "  \"nops\": " << nops() << ",\n"
       << "  \"cond_branches\": " << condBranches_ << ",\n"
       << "  \"taken_branches\": " << takenBranches_ << ",\n"
       << "  \"busy_wait_fu_cycles\": " << busyWaitCycles_ << ",\n"
       << "  \"utilization\": " << fixed(utilization(), 6) << ",\n"
       << "  \"mean_streams\": " << fixed(meanStreams(), 6) << ",\n"
       << "  \"mips\": " << fixed(mips(cycleNs), 6) << ",\n"
       << "  \"mflops\": " << fixed(mflops(cycleNs), 6) << ",\n"
       << "  \"partition_histogram\": {";
    bool first = true;
    for (const auto &[streams, cycles] : partitionCycles_) {
        os << (first ? "" : ", ") << "\"" << streams << "\": " << cycles;
        first = false;
    }
    os << "}\n}\n";
    return os.str();
}

void
RunStats::saveState(StateWriter &w) const
{
    w.tag("STAT");
    w.u32(numFus_);
    w.u64(cycles_);
    w.u64(parcels_);
    for (std::uint64_t c : classCounts_)
        w.u64(c);
    w.u64(condBranches_);
    w.u64(takenBranches_);
    w.u64(busyWaitCycles_);
    w.count(partitionCycles_.size());
    for (const auto &[streams, cycles] : partitionCycles_) {
        w.u32(streams);
        w.u64(cycles);
    }
}

void
RunStats::loadState(StateReader &r)
{
    r.checkTag("STAT");
    const FuId n = r.u32();
    if (n != numFus_)
        fatal("stats state has ", n, " FUs, this machine has ",
              numFus_);
    cycles_ = r.u64();
    parcels_ = r.u64();
    for (std::uint64_t &c : classCounts_)
        c = r.u64();
    condBranches_ = r.u64();
    takenBranches_ = r.u64();
    busyWaitCycles_ = r.u64();
    partitionCycles_.clear();
    const std::size_t buckets = r.count(kMaxFus + 1);
    for (std::size_t i = 0; i < buckets; ++i) {
        const unsigned streams = r.u32();
        partitionCycles_[streams] = r.u64();
    }
}

} // namespace ximd
