#include "core/machine.hh"

namespace ximd {

const char *
modeName(Mode mode)
{
    return mode == Mode::Ximd ? "ximd" : "vliw";
}

const char *
backendName(Backend backend)
{
    return backend == Backend::Interp ? "interp" : "threaded";
}

Machine::Machine(Program program, MachineConfig config)
    : Machine(PreparedProgram::make(std::move(program)), config)
{
}

Machine::Machine(std::shared_ptr<const PreparedProgram> prepared,
                 MachineConfig config)
    : core_(std::move(prepared), config),
      partition_(core_.numFus()),
      stats_(core_.numFus()),
      partitionObserver_(partition_),
      statsObserver_(
          stats_,
          // XIMD stream counts come from the partition tracker; a
          // VLIW is one instruction stream by definition, and
          // busy-wait accounting is an XIMD concept.
          config.mode == Mode::Ximd && config.trackPartitions
              ? &partition_
              : nullptr,
          config.mode == Mode::Vliw && config.trackPartitions ? 1 : 0,
          /*countBusyWaits=*/config.mode == Mode::Ximd),
      traceObserver_(trace_, partition_),
      vliwTraceObserver_(trace_)
{
    attachConfiguredObservers();
}

void
Machine::attachConfiguredObservers()
{
    // Observer order matters only for the partition stream counts:
    // stats and trace read the tracker's beginning-of-cycle state, and
    // the tracker updates at end of cycle, so any registration order
    // observes the same values. Attach only what the config asks for —
    // an unobserved core pays nothing per cycle.
    const MachineConfig &cfg = core_.config();
    if (core_.mode() == Mode::Ximd) {
        if (cfg.trackPartitions)
            core_.addObserver(&partitionObserver_);
        if (cfg.collectStats)
            core_.addObserver(&statsObserver_);
        if (cfg.recordTrace)
            core_.addObserver(&traceObserver_);
    } else {
        if (cfg.collectStats)
            core_.addObserver(&statsObserver_);
        if (cfg.recordTrace)
            core_.addObserver(&vliwTraceObserver_);
    }
}

void
Machine::saveObserverState(StateWriter &w) const
{
    w.tag("OBSV");
    stats_.saveState(w);
    trace_.saveState(w);
    partition_.saveState(w);
}

void
Machine::loadObserverState(StateReader &r)
{
    r.checkTag("OBSV");
    stats_.loadState(r);
    trace_.loadState(r);
    partition_.loadState(r);
}

} // namespace ximd
