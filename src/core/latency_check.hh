/**
 * @file
 * The compiled-latency contract between compiler and machine.
 *
 * Code scheduled for CodegenOptions::rawLatency = L is only correct on
 * a machine with MachineConfig::resultLatency = L: at lower machine
 * latency it merely wastes drain rows, but at higher machine latency
 * reads observe stale registers and the program is silently wrong.
 * Historically nothing connected the two knobs.
 *
 * The compiler now stamps every Program it emits with the reserved
 * symbol kRawLatencySymbol ("__rawlat") carrying the latency it
 * scheduled for; checkCompiledLatency() compares that stamp against
 * the machine latency a run is about to use. Hand-written assembly has
 * no stamp and is never flagged (stamped == false).
 *
 * Symbols with a "__" prefix are reserved for toolchain metadata like
 * this one; the assembly writer round-trips them as ordinary `.const`
 * lines.
 */

#ifndef XIMD_CORE_LATENCY_CHECK_HH
#define XIMD_CORE_LATENCY_CHECK_HH

#include <string>

#include "isa/program.hh"

namespace ximd {

/** Reserved symbol naming the result latency a program was compiled
 *  for. Stamped by emitScheduled / pipelineLoop / composeThreads. */
inline constexpr const char *kRawLatencySymbol = "__rawlat";

/** Outcome of comparing a program's latency stamp to the machine's. */
struct LatencyCheck
{
    bool stamped = false;     ///< Program carries a __rawlat symbol.
    unsigned compiledFor = 0; ///< The stamp (valid when stamped).
    unsigned machine = 0;     ///< The machine's resultLatency.

    /** True when the code was compiled for a different latency. */
    bool
    mismatch() const
    {
        return stamped && compiledFor != machine;
    }

    /** Human-readable account of a mismatch (empty when none). */
    std::string message() const;
};

/**
 * Compare @p prog's latency stamp against a machine about to run it
 * with MachineConfig::resultLatency = @p resultLatency.
 */
LatencyCheck checkCompiledLatency(const Program &prog,
                                  unsigned resultLatency);

} // namespace ximd

#endif // XIMD_CORE_LATENCY_CHECK_HH
