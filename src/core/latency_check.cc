#include "core/latency_check.hh"

#include "support/logging.hh"

namespace ximd {

std::string
LatencyCheck::message() const
{
    if (!mismatch())
        return "";
    return cat("program compiled for result latency ", compiledFor,
               " but the machine runs at latency ", machine,
               (compiledFor < machine
                    ? " (reads would observe stale registers)"
                    : " (correct, but drain rows are wasted)"));
}

LatencyCheck
checkCompiledLatency(const Program &prog, unsigned resultLatency)
{
    LatencyCheck c;
    c.machine = resultLatency;
    if (const auto stamp = prog.symbol(kRawLatencySymbol)) {
        c.stamped = true;
        c.compiledFor = static_cast<unsigned>(*stamp);
    }
    return c;
}

} // namespace ximd
