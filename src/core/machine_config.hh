/**
 * @file
 * Configuration shared by the XIMD (xsim) and VLIW (vsim) machines.
 */

#ifndef XIMD_CORE_MACHINE_CONFIG_HH
#define XIMD_CORE_MACHINE_CONFIG_HH

#include <cstddef>

#include "sim/register_file.hh"
#include "support/types.hh"

namespace ximd {

/** Machine parameters. The FU count comes from the program's width. */
struct MachineConfig
{
    /** Words of idealized shared memory. */
    std::size_t memWords = 1u << 20;

    /** Handling of architecturally-undefined same-cycle write races. */
    ConflictPolicy conflictPolicy = ConflictPolicy::Fault;

    /** Record a Figure-10-style address trace while running. */
    bool recordTrace = false;

    /** Track the SSET partition each cycle (cheap; on by default). */
    bool trackPartitions = true;

    /**
     * Accumulate RunStats while running. Off, together with
     * trackPartitions and recordTrace off, the core runs with no
     * observers attached — the bare-interpreter configuration.
     */
    bool collectStats = true;

    /**
     * Allow run() to fast-forward through busy-wait fixpoints: when
     * every live FU provably re-executes the same self-looping nop
     * parcel with unchanging condition inputs (and no write-backs or
     * devices are in flight), skip to the cycle limit in O(1).
     * Observers are informed of the skipped cycles, so statistics and
     * traces stay bit-identical to stepping.
     */
    bool fastForward = true;

    /**
     * Ablation switch: evaluate sync-signal branch conditions against
     * the *previous* cycle's SS values (registered distribution)
     * instead of the paper's combinational same-cycle distribution
     * (Figure 8). Costs one extra cycle per barrier join.
     */
    bool registeredSync = false;

    /**
     * Data-path write-back latency in cycles. 1 is the research
     * model (results visible the next cycle); 3 models the hardware
     * prototype's "3-stage Data Path Pipeline (Operand Fetch -
     * Execute - Write Back)" of section 4.3. The control path stays
     * non-pipelined, as in the prototype. Code must be compiled for
     * the chosen latency (CodegenOptions::rawLatency).
     */
    unsigned resultLatency = 1;

    /** Default cycle budget for run(); guards runaway programs. */
    Cycle defaultMaxCycles = 100'000'000;

    /**
     * Prototype cycle time used to convert cycle counts into MIPS /
     * MFLOPS. Section 4.3: "An initial performance analysis predicts a
     * cycle time of 85ns."
     */
    double cycleTimeNs = 85.0;
};

} // namespace ximd

#endif // XIMD_CORE_MACHINE_CONFIG_HH
