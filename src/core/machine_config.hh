/**
 * @file
 * Configuration shared by the XIMD (xsim) and VLIW (vsim) machines.
 *
 * A MachineConfig is plain data — copying one is cheap and never
 * shares state, which is what makes a RunSpec (farm/run_spec.hh)
 * self-contained: every job carries its own config by value, so
 * concurrent runs cannot observe each other through configuration.
 *
 * Two construction styles are supported:
 *
 *  - aggregate: `MachineConfig cfg; cfg.recordTrace = true;` (legacy);
 *  - builder:   `MachineConfig::ximd().withTrace().withSeed(7)` — the
 *    preferred surface for examples and the farm, because it names the
 *    sequencing discipline up front and chains the observer switches.
 *
 * The builder style pairs with the unified `Machine` façade
 * (core/machine.hh): `Machine m(prog, MachineConfig::vliw());`
 * replaces direct XimdMachine/VliwMachine construction.
 */

#ifndef XIMD_CORE_MACHINE_CONFIG_HH
#define XIMD_CORE_MACHINE_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "sim/register_file.hh"
#include "support/types.hh"

namespace ximd {

/** Sequencing discipline of a machine built around MachineCore. */
enum class Mode : std::uint8_t {
    Ximd, ///< One sequencer per FU + combinational sync bus.
    Vliw, ///< One sequencer (FU0's control fields) for all lanes.
};

/** "ximd" / "vliw". */
const char *modeName(Mode mode);

/**
 * Execution backend driving the five-phase cycle loop (see
 * core/exec_backend.hh and DESIGN.md section 12).
 */
enum class Backend : std::uint8_t {
    Interp,   ///< Reference interpreter; the semantic oracle.
    Threaded, ///< Token-threaded dispatch over flattened streams.
};

/** "interp" / "threaded". */
const char *backendName(Backend backend);

/** Machine parameters. The FU count comes from the program's width. */
struct MachineConfig
{
    /** Sequencing discipline (used by Machine and the farm). */
    Mode mode = Mode::Ximd;

    /**
     * Execution backend. The threaded backend is the default; it is
     * observationally equivalent to the interpreter and the core
     * auto-demotes to Backend::Interp whenever an attached observer
     * (trace, race check, fault injection) or configuration (result
     * latency > 1, registered sync, device windows) needs per-cycle
     * fidelity. MachineCore::demotionReason() explains a demotion.
     */
    Backend backend = Backend::Threaded;

    /** Words of idealized shared memory. */
    std::size_t memWords = 1u << 20;

    /** Handling of architecturally-undefined same-cycle write races. */
    ConflictPolicy conflictPolicy = ConflictPolicy::Fault;

    /** Record a Figure-10-style address trace while running. */
    bool recordTrace = false;

    /** Track the SSET partition each cycle (cheap; on by default). */
    bool trackPartitions = true;

    /**
     * Accumulate RunStats while running. Off, together with
     * trackPartitions and recordTrace off, the core runs with no
     * observers attached — the bare-interpreter configuration.
     */
    bool collectStats = true;

    /**
     * Allow run() to fast-forward through busy-wait fixpoints: when
     * every live FU provably re-executes the same self-looping nop
     * parcel with unchanging condition inputs (and no write-backs or
     * devices are in flight), skip to the cycle limit in O(1).
     * Observers are informed of the skipped cycles, so statistics and
     * traces stay bit-identical to stepping.
     */
    bool fastForward = true;

    /**
     * Ablation switch: evaluate sync-signal branch conditions against
     * the *previous* cycle's SS values (registered distribution)
     * instead of the paper's combinational same-cycle distribution
     * (Figure 8). Costs one extra cycle per barrier join.
     */
    bool registeredSync = false;

    /**
     * Data-path write-back latency in cycles. 1 is the research
     * model (results visible the next cycle); 3 models the hardware
     * prototype's "3-stage Data Path Pipeline (Operand Fetch -
     * Execute - Write Back)" of section 4.3. The control path stays
     * non-pipelined, as in the prototype. Code must be compiled for
     * the chosen latency (CodegenOptions::rawLatency).
     */
    unsigned resultLatency = 1;

    /** Default cycle budget for run(); guards runaway programs. */
    Cycle defaultMaxCycles = 100'000'000;

    /**
     * Prototype cycle time used to convert cycle counts into MIPS /
     * MFLOPS. Section 4.3: "An initial performance analysis predicts a
     * cycle time of 85ns."
     */
    double cycleTimeNs = 85.0;

    /**
     * Per-run PRNG seed. The machine itself draws no random numbers —
     * determinism is the point of the simulator — but run fixtures
     * (workload input generation, scripted I/O arrival times) derive
     * their Rng streams from this value, so a batch job's outcome is a
     * pure function of its RunSpec regardless of which thread executes
     * it or how many run beside it.
     */
    std::uint64_t seed = 0;

    /// @name Builder surface.
    /// @{
    /** Start a config for the XIMD sequencing discipline. */
    static MachineConfig ximd()
    {
        MachineConfig c;
        c.mode = Mode::Ximd;
        return c;
    }

    /** Start a config for the VLIW sequencing discipline. */
    static MachineConfig vliw()
    {
        MachineConfig c;
        c.mode = Mode::Vliw;
        return c;
    }

    MachineConfig &withMode(Mode m) { mode = m; return *this; }
    MachineConfig &withBackend(Backend b) { backend = b; return *this; }
    MachineConfig &withStats(bool on = true) { collectStats = on; return *this; }
    MachineConfig &withTrace(bool on = true) { recordTrace = on; return *this; }
    MachineConfig &withPartitions(bool on = true) { trackPartitions = on; return *this; }
    MachineConfig &withFastForward(bool on = true) { fastForward = on; return *this; }
    MachineConfig &withRegisteredSync(bool on = true) { registeredSync = on; return *this; }
    MachineConfig &withResultLatency(unsigned cycles) { resultLatency = cycles; return *this; }
    MachineConfig &withMemWords(std::size_t words) { memWords = words; return *this; }
    MachineConfig &withMaxCycles(Cycle n) { defaultMaxCycles = n; return *this; }
    MachineConfig &withConflictPolicy(ConflictPolicy p) { conflictPolicy = p; return *this; }
    MachineConfig &withCycleTime(double ns) { cycleTimeNs = ns; return *this; }
    MachineConfig &withSeed(std::uint64_t s) { seed = s; return *this; }

    /** Disable every observer: the bare-interpreter configuration. */
    MachineConfig &withoutObservers()
    {
        collectStats = false;
        trackPartitions = false;
        recordTrace = false;
        return *this;
    }
    /// @}
};

} // namespace ximd

#endif // XIMD_CORE_MACHINE_CONFIG_HH
