#include "core/threaded_backend.hh"

#include <map>
#include <tuple>

#include "core/interp_backend.hh"
#include "sim/alu.hh"
#include "support/logging.hh"

// Token-threaded dispatch: computed goto on GCC/Clang, a dense switch
// elsewhere. The macros keep one copy of the handler bodies valid for
// both forms; every handler ends in an explicit jump (XIMD_NEXT to
// finish the FU, XIMD_SEQ to fall into the shared sequencing path), so
// neither form can fall through.
#if defined(__GNUC__) && !defined(XIMD_NO_COMPUTED_GOTO)
#define XIMD_THREADED_GOTO 1
#else
#define XIMD_THREADED_GOTO 0
#endif

#if XIMD_THREADED_GOTO
#define XIMD_OP(name) op_##name:
#else
#define XIMD_OP(name) case ExecKind::name:
#endif
#define XIMD_NEXT goto fu_done
#define XIMD_SEQ goto do_seq

// The data-op execute bodies, shared between the XIMD hot loop's
// inline handlers and execData() (the VLIW lane executor). Names in
// scope at expansion: `t` (token), `fu`, `pend`, `st`, `memData`,
// `memWords`, and the member `core_`. Semantics mirror
// InterpBackend::executeParcel exactly, including fault points: ALU
// helpers raise divide-by-zero, and an out-of-range load faults before
// the load counter moves (stores defer their check to commitPend).
#define XIMD_DATA_OPS(X)                                                  \
    X(Iadd, PUSH_REG(*t.a + *t.b))                                        \
    X(Isub, PUSH_REG(*t.a - *t.b))                                        \
    X(Imult, PUSH_REG(alu::intBinary(Opcode::Imult, *t.a, *t.b)))         \
    X(Idiv, PUSH_REG(alu::intBinary(Opcode::Idiv, *t.a, *t.b)))           \
    X(Imod, PUSH_REG(alu::intBinary(Opcode::Imod, *t.a, *t.b)))           \
    X(Ineg, PUSH_REG(intToWord(-wordToInt(*t.a))))                        \
    X(And, PUSH_REG(*t.a & *t.b))                                         \
    X(Or, PUSH_REG(*t.a | *t.b))                                          \
    X(Xor, PUSH_REG(*t.a ^ *t.b))                                         \
    X(Not, PUSH_REG(~*t.a))                                               \
    X(Shl, PUSH_REG(*t.a << (*t.b & 31u)))                                \
    X(Shr, PUSH_REG(*t.a >> (*t.b & 31u)))                                \
    X(Sar, PUSH_REG(intToWord(wordToInt(*t.a) >> (*t.b & 31u))))          \
    X(Mov, PUSH_REG(*t.a))                                                \
    X(Eq, PUSH_CC(alu::intCompare(Opcode::Eq, *t.a, *t.b)))               \
    X(Ne, PUSH_CC(alu::intCompare(Opcode::Ne, *t.a, *t.b)))               \
    X(Lt, PUSH_CC(alu::intCompare(Opcode::Lt, *t.a, *t.b)))               \
    X(Le, PUSH_CC(alu::intCompare(Opcode::Le, *t.a, *t.b)))               \
    X(Gt, PUSH_CC(alu::intCompare(Opcode::Gt, *t.a, *t.b)))               \
    X(Ge, PUSH_CC(alu::intCompare(Opcode::Ge, *t.a, *t.b)))               \
    X(Fadd, PUSH_REG(alu::floatBinary(Opcode::Fadd, *t.a, *t.b)))         \
    X(Fsub, PUSH_REG(alu::floatBinary(Opcode::Fsub, *t.a, *t.b)))         \
    X(Fmult, PUSH_REG(alu::floatBinary(Opcode::Fmult, *t.a, *t.b)))      \
    X(Fdiv, PUSH_REG(alu::floatBinary(Opcode::Fdiv, *t.a, *t.b)))         \
    X(Fneg, PUSH_REG(floatToWord(-wordToFloat(*t.a))))                    \
    X(Feq, PUSH_CC(alu::floatCompare(Opcode::Feq, *t.a, *t.b)))           \
    X(Fne, PUSH_CC(alu::floatCompare(Opcode::Fne, *t.a, *t.b)))           \
    X(Flt, PUSH_CC(alu::floatCompare(Opcode::Flt, *t.a, *t.b)))           \
    X(Fle, PUSH_CC(alu::floatCompare(Opcode::Fle, *t.a, *t.b)))           \
    X(Fgt, PUSH_CC(alu::floatCompare(Opcode::Fgt, *t.a, *t.b)))           \
    X(Fge, PUSH_CC(alu::floatCompare(Opcode::Fge, *t.a, *t.b)))           \
    X(Itof,                                                               \
      PUSH_REG(floatToWord(static_cast<float>(wordToInt(*t.a)))))         \
    X(Ftoi,                                                               \
      PUSH_REG(intToWord(static_cast<SWord>(wordToFloat(*t.a)))))         \
    X(Load, do {                                                          \
        const Addr addr = *t.a + *t.b;                                    \
        if (addr >= memWords)                                             \
            core_.mem_.checkAddr(addr); /* throws interp's message */     \
        ++st.loads;                                                       \
        PUSH_REG(memData[addr]);                                          \
    } while (0))                                                          \
    X(Store, PUSH_MEM(*t.b, *t.a))

#define PUSH_REG(v)                                                       \
    (pend.regW[pend.nReg].reg = t.dest, pend.regW[pend.nReg].fu = fu,     \
     pend.regW[pend.nReg].val = (v), ++pend.nReg)
#define PUSH_CC(v)                                                        \
    (pend.ccW[pend.nCc].fu = fu,                                          \
     pend.ccW[pend.nCc].val = static_cast<std::uint8_t>(v), ++pend.nCc)
#define PUSH_MEM(a_, v_)                                                  \
    (pend.memW[pend.nMem].addr = (a_), pend.memW[pend.nMem].fu = fu,      \
     pend.memW[pend.nMem].val = (v_), ++pend.nMem)

namespace ximd {

namespace {

inline FuId
lowestSetFu(std::uint32_t m)
{
#if defined(__GNUC__)
    return static_cast<FuId>(__builtin_ctz(m));
#else
    FuId fu = 0;
    while (!(m & 1u)) {
        m >>= 1;
        ++fu;
    }
    return fu;
#endif
}

} // namespace

void
ThreadedBackend::prepare()
{
    const FlatProgram &flat = core_.prepared_->flat();
    const FuId n = core_.numFus();
    rows_ = flat.size();
    tokens_.assign(static_cast<std::size_t>(n) * rows_, Token{});
    Word *const regs = core_.regs_.regs_.data();

    for (FuId fu = 0; fu < n; ++fu) {
        for (InstAddr addr = 0; addr < rows_; ++addr) {
            const FlatParcel &f = flat.at(addr, fu);
            Token &t = tokens_[static_cast<std::size_t>(fu) * rows_ +
                               addr];
            t.kind = f.kind;
            t.ckind = f.ckind;
            t.cindex = f.cindex;
            t.cls = f.cls;
            t.readCount = f.readCount;
            t.flags = f.flags;
            t.dest = f.dest;
            t.keyId = f.keyId;
            t.ssDoneBit = f.ssDoneBit;
            t.cmask = f.cmask;
            t.t1 = f.t1;
            t.t2 = f.t2;
            t.aImm = f.aVal;
            t.bImm = f.bVal;
            // Register operands are bounded at Operand construction,
            // so a register pointer is always in range; immediates
            // point at the token's own inline copy. Tokens never move
            // after this loop (the vector is fully sized above).
            t.a = (f.flags & FlatParcel::kAReg) ? regs + f.aVal : &t.aImm;
            t.b = (f.flags & FlatParcel::kBReg) ? regs + f.bVal : &t.bImm;
        }
    }

    curSsets_.assign(n, 0);
    keyStamp_.assign(flat.numKeys(), 0);
    keyDense_.assign(flat.numKeys(), 0);
    stamp_ = 0;
    curStreams_ = 1;
    groupingValid_ = false;
}

bool
ThreadedBackend::step()
{
    // Single-step callers observe per-cycle state; delegate to the
    // interpreter (same architectural result, full hook fidelity).
    groupingValid_ = false;
    return InterpBackend::stepCore(core_);
}

void
ThreadedBackend::onStateLoaded()
{
    groupingValid_ = false;
}

void
ThreadedBackend::loadBlockState(BlockState &st) const
{
    const FuId n = core_.numFus();
    st.liveMask = 0;
    st.ccEverMask = 0;
    st.ssBusMask = 0;
    st.ssPrevMask = 0;
    for (FuId fu = 0; fu < n; ++fu) {
        const std::uint32_t bit = 1u << fu;
        st.pc[fu] = core_.pcs_[fu];
        if (!core_.haltedFus_[fu])
            st.liveMask |= bit;
        st.cc[fu] = core_.ccs_.cur_[fu] ? 1 : 0;
        if (core_.ccs_.everWritten_[fu])
            st.ccEverMask |= bit;
        if (core_.sync_.get(fu) == SyncVal::Done)
            st.ssBusMask |= bit;
        if (core_.syncPrev_[fu] == SyncVal::Done)
            st.ssPrevMask |= bit;
    }
    st.cyc = core_.cycle_;
}

void
ThreadedBackend::storeBlockState(const BlockState &st, bool touchSync)
{
    const FuId n = core_.numFus();
    core_.cycle_ = st.cyc;
    for (FuId fu = 0; fu < n; ++fu) {
        const std::uint32_t bit = 1u << fu;
        core_.pcs_[fu] = st.pc[fu];
        core_.haltedFus_[fu] = !(st.liveMask & bit);
        core_.ccs_.cur_[fu] = st.cc[fu] != 0;
        core_.ccs_.everWritten_[fu] = (st.ccEverMask & bit) != 0;
    }
    core_.regs_.reads_ += st.reads;
    core_.regs_.writes_ += st.writes;
    core_.mem_.loads_ += st.loads;
    core_.mem_.stores_ += st.stores;
    if (touchSync) {
        // Leave the bus exactly as the last fetch drove it, and the
        // registered history as the last *committed* cycle drove it
        // (a faulting cycle drives the bus but never advances).
        core_.sync_.beginCycle();
        for (FuId fu = 0; fu < n; ++fu) {
            if (!(st.ssBusMask & (1u << fu)))
                core_.sync_.set(fu, SyncVal::Busy);
            core_.syncPrev_[fu] = (st.ssPrevMask & (1u << fu))
                                      ? SyncVal::Done
                                      : SyncVal::Busy;
        }
    }
    core_.spinHint_ = false;
}

void
ThreadedBackend::seedGroupingFromEvents()
{
    // Reproduce PartitionTracker::update() from the interpreter cycle
    // that just committed: live, un-halted FUs group by control-op
    // key; ids are dense in order of first FU appearance.
    const FuId n = core_.numFus();
    using Key =
        std::tuple<int, unsigned, std::uint32_t, InstAddr, InstAddr>;
    std::map<Key, int> groups;
    int next = 0;
    for (FuId fu = 0; fu < n; ++fu) {
        const FuEvent &e = core_.events_[fu];
        if (!e.executed || e.halted) {
            curSsets_[fu] = -1;
            continue;
        }
        const Key key =
            e.ctrl.isConditional()
                ? Key{static_cast<int>(e.ctrl.kind), e.ctrl.index,
                      e.ctrl.mask, e.ctrl.t1, e.ctrl.t2}
                : Key{static_cast<int>(CondKind::Always), 0u, 0u,
                      e.nextPc, e.nextPc};
        auto it = groups.find(key);
        if (it == groups.end())
            it = groups.emplace(key, next++).first;
        curSsets_[fu] = it->second;
    }
    curStreams_ = static_cast<unsigned>(next);
    groupingValid_ = true;
}

void
ThreadedBackend::updateGrouping(const Token *const *cur,
                                std::uint32_t liveMask,
                                std::uint32_t haltMask)
{
    // Same grouping as seedGroupingFromEvents(), but over interned
    // keys: an epoch stamp per keyId replaces the tuple map.
    const FuId n = core_.numFus();
    ++stamp_;
    int next = 0;
    for (FuId fu = 0; fu < n; ++fu) {
        const std::uint32_t bit = 1u << fu;
        if (!(liveMask & bit) || (haltMask & bit)) {
            curSsets_[fu] = -1;
            continue;
        }
        const std::uint16_t k = cur[fu]->keyId;
        if (keyStamp_[k] != stamp_) {
            keyStamp_[k] = stamp_;
            keyDense_[k] = next++;
        }
        curSsets_[fu] = keyDense_[k];
    }
    curStreams_ = static_cast<unsigned>(next);
}

void
ThreadedBackend::commitPend(Pend &pend, BlockState &st)
{
    // Mirrors WritePipeline::drainInto + the component commits at unit
    // latency. drainInto queues register writes first (their index
    // check cannot fire: operand construction bounds register ids),
    // then CC writes, then stores — so a store's address check is the
    // first commit-time fault and nothing has applied when it throws.
    const std::size_t memWords = core_.mem_.words_.size();
    for (int i = 0; i < pend.nMem; ++i) {
        if (pend.memW[i].addr >= memWords)
            core_.mem_.checkAddr(pend.memW[i].addr); // throws
    }

    const ConflictPolicy policy = core_.config_.conflictPolicy;

    // Registers: sort by (reg, fu), scan for cross-FU conflicts before
    // anything applies, then apply lowest-FU-first with same-register
    // shadowing (matches RegisterFile::commit).
    if (pend.nReg) {
        Word *const regs = core_.regs_.regs_.data();
        for (int i = 1; i < pend.nReg; ++i) {
            const Pend::RegW w = pend.regW[i];
            int j = i - 1;
            while (j >= 0 && (pend.regW[j].reg > w.reg ||
                              (pend.regW[j].reg == w.reg &&
                               pend.regW[j].fu > w.fu))) {
                pend.regW[j + 1] = pend.regW[j];
                --j;
            }
            pend.regW[j + 1] = w;
        }
        if (policy == ConflictPolicy::Fault) {
            for (int i = 1; i < pend.nReg; ++i) {
                const Pend::RegW &prev = pend.regW[i - 1];
                const Pend::RegW &cur = pend.regW[i];
                if (prev.reg == cur.reg && prev.fu != cur.fu)
                    fatal("register write conflict: FU", prev.fu,
                          " and FU", cur.fu, " both write r", cur.reg,
                          " this cycle");
            }
        }
        RegId lastReg = 0;
        bool haveLast = false;
        for (int i = 0; i < pend.nReg; ++i) {
            const Pend::RegW &w = pend.regW[i];
            if (haveLast && w.reg == lastReg)
                continue;
            regs[w.reg] = w.val;
            ++st.writes;
            lastReg = w.reg;
            haveLast = true;
        }
    }

    // Memory: same pattern; a conflict faults *after* the register
    // commit applied, exactly as Memory::commit follows
    // RegisterFile::commit in the interpreter.
    if (pend.nMem) {
        Word *const memData = core_.mem_.words_.data();
        for (int i = 1; i < pend.nMem; ++i) {
            const Pend::MemW w = pend.memW[i];
            int j = i - 1;
            while (j >= 0 && (pend.memW[j].addr > w.addr ||
                              (pend.memW[j].addr == w.addr &&
                               pend.memW[j].fu > w.fu))) {
                pend.memW[j + 1] = pend.memW[j];
                --j;
            }
            pend.memW[j + 1] = w;
        }
        if (policy == ConflictPolicy::Fault) {
            for (int i = 1; i < pend.nMem; ++i) {
                const Pend::MemW &prev = pend.memW[i - 1];
                const Pend::MemW &cur = pend.memW[i];
                if (prev.addr == cur.addr && prev.fu != cur.fu)
                    fatal("memory write conflict: FU", prev.fu,
                          " and FU", cur.fu, " both store to address ",
                          cur.addr, " this cycle");
            }
        }
        Addr lastAddr = 0;
        bool haveLast = false;
        for (int i = 0; i < pend.nMem; ++i) {
            const Pend::MemW &w = pend.memW[i];
            if (haveLast && w.addr == lastAddr)
                continue;
            memData[w.addr] = w.val;
            ++st.stores;
            lastAddr = w.addr;
            haveLast = true;
        }
    }

    // Condition codes last (CondCodeFile::commit; never faults).
    for (int i = 0; i < pend.nCc; ++i) {
        st.cc[pend.ccW[i].fu] = pend.ccW[i].val;
        st.ccEverMask |= 1u << pend.ccW[i].fu;
    }
}

void
ThreadedBackend::execData(const Token &t, FuId fu, Pend &pend,
                          BlockState &st, Word *memData,
                          std::size_t memWords)
{
    switch (t.kind) {
#define X(name, body)                                                     \
      case ExecKind::name: {                                              \
        body;                                                             \
        break;                                                            \
      }
        XIMD_DATA_OPS(X)
#undef X
      default:
        break; // fused control-only tokens have no data-path effect
    }
}

template <bool kStats, bool kPart>
ThreadedBackend::BlockExit
ThreadedBackend::runBlockXimd(Cycle limit, BlockState &st,
                              BlockStats &blk)
{
    MachineCore &core = core_;
    const std::uint32_t fullMask = fuMaskAll(core.numFus());
    Word *const memData = core.mem_.words_.data();
    const std::size_t memWords = core.mem_.words_.size();
    const Token *const toks = tokens_.data();
    const InstAddr rows = rows_;
    const bool fastForward = core.config_.fastForward;

    const Token *cur[kMaxFus];
    InstAddr nxPc[kMaxFus];
    Pend pend;

    for (;;) {
        if (st.cyc >= limit)
            return BlockExit::Limit;
        if (st.liveMask == 0)
            return BlockExit::Halted;

        // Beginning-of-cycle partition charge (StatsObserver::onCycle
        // fires before fetch, so a faulting cycle is still charged).
        if constexpr (kStats && kPart)
            blk.partitionCycles[curStreams_] += 1;

        // Fetch: gather live tokens and drive the combinational sync
        // bus (halted FUs read DONE).
        std::uint32_t ssDone = ~st.liveMask & fullMask;
        for (std::uint32_t m = st.liveMask; m; m &= m - 1) {
            const FuId fu = lowestSetFu(m);
            const Token &t =
                toks[static_cast<std::size_t>(fu) * rows + st.pc[fu]];
            cur[fu] = &t;
            ssDone |= t.ssDoneBit;
        }
        st.ssBusMask = ssDone;

        // Execute + sequence each live FU in FU order, then commit.
        std::uint32_t haltMask = 0;
        std::uint32_t takenMask = 0;
        pend.nReg = pend.nMem = pend.nCc = 0;
        try {
            for (std::uint32_t m = st.liveMask; m; m &= m - 1) {
                const FuId fu = lowestSetFu(m);
                const std::uint32_t bit = 1u << fu;
                const Token &t = *cur[fu];
                st.reads += t.readCount;

#if XIMD_THREADED_GOTO
                static const void *const kDispatch[] = {
                    &&op_Nop, &&op_Jump, &&op_HaltTok, &&op_PollCc,
                    &&op_PollSs, &&op_PollAll, &&op_PollAny, &&op_Iadd,
                    &&op_Isub, &&op_Imult, &&op_Idiv, &&op_Imod,
                    &&op_Ineg, &&op_And, &&op_Or, &&op_Xor, &&op_Not,
                    &&op_Shl, &&op_Shr, &&op_Sar, &&op_Mov, &&op_Eq,
                    &&op_Ne, &&op_Lt, &&op_Le, &&op_Gt, &&op_Ge,
                    &&op_Fadd, &&op_Fsub, &&op_Fmult, &&op_Fdiv,
                    &&op_Fneg, &&op_Feq, &&op_Fne, &&op_Flt, &&op_Fle,
                    &&op_Fgt, &&op_Fge, &&op_Itof, &&op_Ftoi, &&op_Load,
                    &&op_Store,
                };
                static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                                  kNumExecKinds,
                              "dispatch table must cover every ExecKind");
                goto *kDispatch[static_cast<unsigned>(t.kind)];
#else
                switch (t.kind) {
#endif

                // Fused superinstructions: control-only parcels whose
                // fetch/execute/sequence collapse into one handler.
                XIMD_OP(Jump)
                    nxPc[fu] = t.t1;
                    XIMD_NEXT;
                XIMD_OP(HaltTok)
                    haltMask |= bit;
                    XIMD_NEXT;
                XIMD_OP(PollCc) {
                    const bool taken = st.cc[t.cindex] != 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    XIMD_NEXT;
                }
                XIMD_OP(PollSs) {
                    const bool taken = (ssDone >> t.cindex) & 1u;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    XIMD_NEXT;
                }
                XIMD_OP(PollAll) {
                    const bool taken = (t.cmask & ~ssDone) == 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    XIMD_NEXT;
                }
                XIMD_OP(PollAny) {
                    const bool taken = (t.cmask & ssDone) != 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    XIMD_NEXT;
                }
                XIMD_OP(Nop)
                    XIMD_SEQ; // unfused control-only token (reserved)

#define X(name, body)                                                     \
                XIMD_OP(name) {                                           \
                    body;                                                 \
                    XIMD_SEQ;                                             \
                }
                XIMD_DATA_OPS(X)
#undef X

#if !XIMD_THREADED_GOTO
                }
#endif

            do_seq:
                // Shared sequencing for data tokens (mirrors
                // evalDecodedControl against the block-local CC mirror
                // and this cycle's SS values).
                switch (t.ckind) {
                  case CondKind::Always:
                    nxPc[fu] = t.t1;
                    break;
                  case CondKind::Halt:
                    haltMask |= bit;
                    break;
                  case CondKind::CcTrue: {
                    const bool taken = st.cc[t.cindex] != 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    break;
                  }
                  case CondKind::SyncDone: {
                    const bool taken = (ssDone >> t.cindex) & 1u;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    break;
                  }
                  case CondKind::AllSync: {
                    const bool taken = (t.cmask & ~ssDone) == 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    break;
                  }
                  case CondKind::AnySync: {
                    const bool taken = (t.cmask & ssDone) != 0;
                    if (taken)
                        takenMask |= bit;
                    nxPc[fu] = taken ? t.t1 : t.t2;
                    break;
                  }
                }
            fu_done:;
            }

            commitPend(pend, st);
        } catch (const FatalError &e) {
            st.faultMsg = e.what();
            return BlockExit::Faulted;
        }

        // Fold the committed cycle's stats, advance control state, and
        // detect a busy-wait fixpoint (every live FU re-selected its
        // own self-spinning nop parcel).
        bool allSpin = fastForward && haltMask == 0;
        for (std::uint32_t m = st.liveMask; m; m &= m - 1) {
            const FuId fu = lowestSetFu(m);
            const std::uint32_t bit = 1u << fu;
            const Token &t = *cur[fu];
            if constexpr (kStats) {
                blk.parcels += 1;
                blk.classCounts[t.cls] += 1;
                if (t.flags & FlatParcel::kConditional) {
                    blk.condBranches += 1;
                    if (takenMask & bit)
                        blk.takenBranches += 1;
                    if (!(haltMask & bit) && nxPc[fu] == st.pc[fu])
                        blk.busyWaitFuCycles += 1;
                }
            }
            if (!(haltMask & bit)) {
                if (!(t.flags & FlatParcel::kCanSelfSpin) ||
                    nxPc[fu] != st.pc[fu])
                    allSpin = false;
                st.pc[fu] = nxPc[fu];
            }
        }
        if constexpr (kStats)
            blk.cycles += 1;
        if constexpr (kPart)
            updateGrouping(cur, st.liveMask, haltMask);
        st.liveMask &= ~haltMask;
        st.ssPrevMask = ssDone;
        st.cyc += 1;

        if (allSpin) {
            // Fixpoint: no writes were pending (self-spinning parcels
            // are nops), so every remaining cycle repeats this one.
            // Cap the skip at an observer's wake cycle, as
            // tryFastForward does.
            Cycle cap = limit;
            core.cycle_ = st.cyc;
            for (const CycleObserver *o : core.observers_) {
                const Cycle wake = o->nextWake(core);
                if (wake < cap)
                    cap = wake;
            }
            if (cap > st.cyc) {
                const Cycle skip = cap - st.cyc;
                if constexpr (kStats) {
                    blk.cycles += skip;
                    if constexpr (kPart)
                        blk.partitionCycles[curStreams_] += skip;
                    for (std::uint32_t m = st.liveMask; m; m &= m - 1) {
                        const FuId fu = lowestSetFu(m);
                        const std::uint32_t bit = 1u << fu;
                        const Token &t = *cur[fu];
                        blk.parcels += skip;
                        blk.classCounts[t.cls] += skip;
                        if (t.flags & FlatParcel::kConditional) {
                            blk.condBranches += skip;
                            if (takenMask & bit)
                                blk.takenBranches += skip;
                            blk.busyWaitFuCycles += skip;
                        }
                    }
                }
                st.cyc = cap;
            }
        }
    }
}

template <bool kStats>
ThreadedBackend::BlockExit
ThreadedBackend::runBlockVliw(Cycle limit, BlockState &st,
                              BlockStats &blk)
{
    MachineCore &core = core_;
    const FuId n = core.numFus();
    Word *const memData = core.mem_.words_.data();
    const std::size_t memWords = core.mem_.words_.size();
    const Token *const toks = tokens_.data();
    const InstAddr rows = rows_;
    const bool fastForward = core.config_.fastForward;
    Pend pend;

    for (;;) {
        if (st.cyc >= limit)
            return BlockExit::Limit;
        if (st.liveMask == 0)
            return BlockExit::Halted;

        const InstAddr pc0 = st.pc[0];
        const Token &ctrl = toks[pc0]; // FU0's stream starts at 0

        // Sequence via FU0 alone. VLIW validation rejects sync
        // conditions, so only Always / CcTrue / Halt occur.
        bool halt = false;
        bool conditional = false;
        bool taken = false;
        InstAddr nx = pc0;
        switch (ctrl.ckind) {
          case CondKind::Always:
            nx = ctrl.t1;
            break;
          case CondKind::Halt:
            halt = true;
            break;
          case CondKind::CcTrue:
            conditional = true;
            taken = st.cc[ctrl.cindex] != 0;
            nx = taken ? ctrl.t1 : ctrl.t2;
            break;
          default:
            panic("runBlockVliw: sync condition on a VLIW machine");
        }

        // Execute every lane of the row, then commit.
        pend.nReg = pend.nMem = pend.nCc = 0;
        try {
            for (FuId fu = 0; fu < n; ++fu) {
                const Token &t =
                    toks[static_cast<std::size_t>(fu) * rows + pc0];
                st.reads += t.readCount;
                execData(t, fu, pend, st, memData, memWords);
            }
            commitPend(pend, st);
        } catch (const FatalError &e) {
            st.faultMsg = e.what();
            return BlockExit::Faulted;
        }

        if constexpr (kStats) {
            blk.cycles += 1;
            for (FuId fu = 0; fu < n; ++fu) {
                const Token &t =
                    toks[static_cast<std::size_t>(fu) * rows + pc0];
                blk.parcels += 1;
                blk.classCounts[t.cls] += 1;
            }
            if (conditional) {
                blk.condBranches += 1;
                if (taken)
                    blk.takenBranches += 1;
                if (!halt && nx == pc0)
                    blk.busyWaitFuCycles += 1;
            }
        }

        if (halt)
            st.liveMask = 0;
        else
            st.pc[0] = nx;
        st.cyc += 1;

        // Busy-wait fixpoint: an all-nop row spinning on itself.
        if (fastForward && !halt && nx == pc0 &&
            (ctrl.flags & FlatParcel::kRowAllNop)) {
            Cycle cap = limit;
            core.cycle_ = st.cyc;
            for (const CycleObserver *o : core.observers_) {
                const Cycle wake = o->nextWake(core);
                if (wake < cap)
                    cap = wake;
            }
            if (cap > st.cyc) {
                const Cycle skip = cap - st.cyc;
                if constexpr (kStats) {
                    blk.cycles += skip;
                    blk.parcels += static_cast<std::uint64_t>(n) * skip;
                    blk.classCounts[static_cast<std::uint8_t>(
                        OpClass::Nop)] +=
                        static_cast<std::uint64_t>(n) * skip;
                    if (conditional) {
                        blk.condBranches += skip;
                        if (taken)
                            blk.takenBranches += skip;
                        blk.busyWaitFuCycles += skip;
                    }
                }
                st.cyc = cap;
            }
        }
    }
}

void
ThreadedBackend::runTo(Cycle limit)
{
    MachineCore &c = core_;
    while (!c.faulted_ && c.cycle_ < limit && !c.allHalted()) {
        // Unit result latency keeps the write pipeline empty at every
        // cycle boundary; anything else demotes before we get here.
        XIMD_ASSERT(c.pipe_.empty(),
                    "threaded backend entered with writes in flight");

        if (c.hasSyncOverrides()) {
            // Stuck-at SS overrides interleave with the fetch/sync
            // phases; run those cycles through the interpreter.
            groupingValid_ = false;
            if (!InterpBackend::stepCore(c))
                return;
            if (c.config_.fastForward && c.spinHint_)
                c.tryFastForward(limit);
            continue;
        }

        const bool needStats = !c.observers_.empty();
        bool needPart = false;
        for (const CycleObserver *o : c.observers_)
            needPart = needPart || o->wantsPartitions();

        if (needPart && (c.mode_ == Mode::Vliw || !groupingValid_)) {
            // One interpreted cycle resynchronizes the SSET grouping
            // from real events (XIMD); VLIW partition observation is
            // not a Machine configuration and stays per-cycle.
            if (!InterpBackend::stepCore(c))
                return;
            if (c.mode_ == Mode::Ximd)
                seedGroupingFromEvents();
            continue;
        }

        BlockState st;
        loadBlockState(st);
        const Cycle startCycle = st.cyc;
        blk_ = BlockStats{};

        BlockExit exit;
        if (c.mode_ == Mode::Ximd) {
            if (needStats && needPart)
                exit = runBlockXimd<true, true>(limit, st, blk_);
            else if (needStats)
                exit = runBlockXimd<true, false>(limit, st, blk_);
            else
                exit = runBlockXimd<false, false>(limit, st, blk_);
        } else {
            if (needStats)
                exit = runBlockVliw<true>(limit, st, blk_);
            else
                exit = runBlockVliw<false>(limit, st, blk_);
        }

        // A block that faulted on its first cycle committed nothing
        // but still fetched (driving the sync bus, charging the
        // partition histogram) — "attempted" captures that.
        const bool attempted =
            st.cyc != startCycle || exit == BlockExit::Faulted;
        storeBlockState(st, c.mode_ == Mode::Ximd && attempted);

        if (needStats && attempted) {
            blk_.finalSsetIds = needPart ? &curSsets_ : nullptr;
            for (CycleObserver *o : c.observers_)
                o->onBlock(c, blk_);
        }

        if (exit == BlockExit::Faulted) {
            c.fault(st.faultMsg);
            return;
        }
        if (exit == BlockExit::Halted) {
            c.notifyDone();
            return;
        }
        // BlockExit::Limit: the loop condition terminates.
    }
}

} // namespace ximd
