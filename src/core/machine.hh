/**
 * @file
 * The unified simulator façade: one class, both disciplines.
 *
 * `Machine` is the public entry point for running a program: it owns a
 * MachineCore plus the stock observation objects (RunStats, Trace,
 * PartitionTracker) and wires the observers the MachineConfig asks
 * for. The sequencing discipline comes from `config.mode`, so the
 * same call site drives either machine:
 *
 *     Machine x(prog, MachineConfig::ximd().withTrace());
 *     Machine v(prog, MachineConfig::vliw().withStats());
 *
 * For batch work, construct from a shared PreparedProgram — any
 * number of Machines, on any threads, may execute from one prepared
 * instance (see farm/farm.hh):
 *
 *     auto shared = PreparedProgram::make(std::move(prog));
 *     Machine a(shared, cfgA);   // thread 1
 *     Machine b(shared, cfgB);   // thread 2
 *
 * Thread-safety contract: a Machine is confined to one thread; the
 * shared PreparedProgram is immutable; nothing else is shared. See
 * DESIGN.md section 8.
 *
 * The historical XimdMachine / VliwMachine classes remain as thin
 * mode-fixing wrappers over this façade and are kept for source
 * compatibility; new code (examples, benches, the farm) should use
 * Machine + MachineConfig builders.
 */

#ifndef XIMD_CORE_MACHINE_HH
#define XIMD_CORE_MACHINE_HH

#include <memory>
#include <string>

#include "core/arch_view.hh"
#include "core/machine_config.hh"
#include "core/machine_core.hh"
#include "core/observers.hh"
#include "core/partition.hh"
#include "core/run_result.hh"
#include "core/stats.hh"
#include "core/trace.hh"
#include "isa/program.hh"

namespace ximd {

/** A fully-wired simulator: core + configured observers. */
class Machine : public ArchView
{
  public:
    /** Build around @p program (validated and predecoded here). */
    explicit Machine(Program program, MachineConfig config = {});

    /** Build around a shared, already-prepared program. */
    explicit Machine(std::shared_ptr<const PreparedProgram> prepared,
                     MachineConfig config = {});

    // The attached observers hold references into this object.
    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /// @name Pre-run setup.
    /// @{
    Memory &memory() { return core_.memory(); }
    RegisterFile &registers() { return core_.registers(); }
    CondCodeFile &condCodes() { return core_.condCodes(); }

    /** Map @p device at [lo, hi]; forwards to Memory::attachDevice. */
    void attachDevice(Addr lo, Addr hi, IoDevice *device)
    {
        core_.attachDevice(lo, hi, device);
    }

    /** Attach a custom observation hook (not owned). */
    void addObserver(CycleObserver *observer)
    {
        core_.addObserver(observer);
    }
    /// @}

    /// @name Execution.
    /// @{
    /**
     * Execute one cycle.
     * @return false when nothing ran (all FUs halted or faulted).
     */
    bool step() { return core_.step(); }

    /** Run until halt/fault or @p maxCycles (0: config default). */
    RunResult run(Cycle maxCycles = 0) { return core_.run(maxCycles); }
    /// @}

    /// @name Observation.
    /// @{
    const Program &program() const override
    {
        return core_.program();
    }
    const MachineConfig &config() const { return core_.config(); }
    Mode mode() const { return core_.mode(); }
    FuId numFus() const { return core_.numFus(); }
    Cycle cycle() const { return core_.cycle(); }
    InstAddr pc(FuId fu = 0) const { return core_.pc(fu); }
    bool halted(FuId fu) const { return core_.haltedFu(fu); }
    bool allHalted() const { return core_.allHalted(); }
    bool faulted() const { return core_.faulted(); }
    const std::string &faultMessage() const
    {
        return core_.faultMessage();
    }

    const RunStats &stats() const { return stats_; }
    const Trace &trace() const { return trace_; }
    const PartitionTracker &partitions() const { return partition_; }

    /** Read a register by number. */
    Word readReg(RegId r) const { return core_.readReg(r); }

    /** Read a register by its symbolic program name; fatal if unknown. */
    Word readRegByName(const std::string &name) const override
    {
        return core_.readRegByName(name);
    }

    /** Read a memory word (RAM only). */
    Word peekMem(Addr addr) const override
    {
        return core_.peekMem(addr);
    }

    /** The underlying execution core (advanced uses). */
    MachineCore &core() { return core_; }
    const MachineCore &core() const { return core_; }
    /// @}

    /// @name Checkpointing (see DESIGN.md section 9).
    ///
    /// snapshot::save() / snapshot::restore() (snapshot/snapshot.hh)
    /// are the public entry points; they wrap these in the versioned
    /// container format with program-digest validation.
    /// @{
    /** Stable 64-bit hash of the complete execution state. */
    std::uint64_t stateHash() const { return core_.stateHash(); }

    /** Hash of architectural contents only (regs, memory, CCs). */
    std::uint64_t archStateHash() const
    {
        return core_.archStateHash();
    }

    /** Serialize the stock observers' state (stats, trace, partition). */
    void saveObserverState(StateWriter &w) const;

    /**
     * Overwrite the stock observers' state with saved state. Restores
     * never merge: whatever this machine's observers accumulated
     * before the restore is discarded wholesale, so statistics and
     * traces continue exactly as the checkpointed run would have.
     */
    void loadObserverState(StateReader &r);
    /// @}

  private:
    void attachConfiguredObservers();

    MachineCore core_;

    PartitionTracker partition_;
    Trace trace_;
    RunStats stats_;

    PartitionObserver partitionObserver_;
    StatsObserver statsObserver_;
    TraceObserver traceObserver_;         ///< XIMD-mode trace.
    VliwTraceObserver vliwTraceObserver_; ///< VLIW-mode trace.
};

} // namespace ximd

#endif // XIMD_CORE_MACHINE_HH
