#include "core/machine_core.hh"

#include <algorithm>

#include "core/exec_backend.hh"
#include "support/logging.hh"

namespace ximd {

MachineCore::MachineCore(Program program, MachineConfig config,
                         Mode mode)
    : MachineCore(PreparedProgram::make(std::move(program)),
                  config.withMode(mode))
{
}

MachineCore::MachineCore(std::shared_ptr<const PreparedProgram> prepared,
                         MachineConfig config)
    : prepared_(std::move(prepared)),
      decoded_(&prepared_->decoded()),
      config_(config),
      mode_(config.mode),
      regs_(kNumRegisters, config.conflictPolicy),
      mem_(config.memWords, config.conflictPolicy),
      ccs_(prepared_->width()),
      pipe_(config.resultLatency),
      sync_(prepared_->width()),
      regSync_(prepared_->width()),
      syncPrev_(prepared_->width(), SyncVal::Busy),
      pcs_(prepared_->width(), 0),
      haltedFus_(prepared_->width(), false),
      fetched_(prepared_->width(), nullptr),
      next_(prepared_->width()),
      events_(prepared_->width())
{
    if (mode_ == Mode::Vliw)
        validateVliwProgram();
    applyMemInit();
}

MachineCore::~MachineCore() = default;

void
MachineCore::validateVliwProgram() const
{
    for (InstAddr a = 0; a < program().size(); ++a) {
        for (FuId fu = 0; fu < program().width(); ++fu) {
            const Parcel &p = program().row(a)[fu];
            switch (p.ctrl.kind) {
              case CondKind::SyncDone:
              case CondKind::AllSync:
              case CondKind::AnySync:
                fatal("row ", a, " FU", fu, ": sync-signal branch "
                      "conditions do not exist on a VLIW machine");
              default:
                break;
            }
            if (p.sync != SyncVal::Busy)
                fatal("row ", a, " FU", fu, ": sync fields do not "
                      "exist on a VLIW machine");
        }
    }
}

void
MachineCore::applyMemInit()
{
    for (const auto &[addr, value] : program().memInit())
        mem_.poke(addr, value);
    for (const auto &[reg, value] : program().regInit())
        regs_.poke(reg, value);
}

void
MachineCore::attachDevice(Addr lo, Addr hi, IoDevice *device)
{
    mem_.attachDevice(lo, hi, device);
}

void
MachineCore::addObserver(CycleObserver *observer)
{
    XIMD_ASSERT(observer, "null observer");
    observers_.push_back(observer);
    if (observer->perturbs())
        perturbers_.push_back(observer);
}

void
MachineCore::forceSync(FuId fu, SyncVal val, Cycle untilCycle)
{
    XIMD_ASSERT(fu < numFus(), "FU index out of range");
    syncOverrides_.push_back({fu, val, untilCycle});
}

bool
MachineCore::hasSyncOverrides() const
{
    for (const SyncOverride &o : syncOverrides_)
        if (cycle_ < o.until)
            return true;
    return false;
}

void
MachineCore::applySyncOverrides(SyncBus &bus)
{
    syncOverrides_.erase(
        std::remove_if(syncOverrides_.begin(), syncOverrides_.end(),
                       [this](const SyncOverride &o) {
                           return cycle_ >= o.until;
                       }),
        syncOverrides_.end());
    for (const SyncOverride &o : syncOverrides_)
        bus.set(o.fu, o.val);
}

InstAddr
MachineCore::pc(FuId fu) const
{
    XIMD_ASSERT(fu < numFus(), "FU index out of range");
    return pcs_[fu];
}

bool
MachineCore::haltedFu(FuId fu) const
{
    XIMD_ASSERT(fu < numFus(), "FU index out of range");
    return haltedFus_[fu];
}

bool
MachineCore::allHalted() const
{
    for (bool h : haltedFus_)
        if (!h)
            return false;
    return true;
}

void
MachineCore::fault(const std::string &msg)
{
    faulted_ = true;
    faultMsg_ = msg;
    regs_.squash();
    mem_.squash();
    ccs_.squash();
    pipe_.squash();
    spinHint_ = false;
    notifyDone();
}

void
MachineCore::notifyDone()
{
    if (doneNotified_)
        return;
    doneNotified_ = true;
    for (CycleObserver *o : observers_)
        o->onHalt(*this);
}

void
MachineCore::buildEvents()
{
    const FuId n = numFus();
    for (FuId fu = 0; fu < n; ++fu) {
        FuEvent &e = events_[fu];
        e = FuEvent{};
        const DecodedParcel *d = fetched_[fu];
        if (!d)
            continue;
        const NextPc &nx = mode_ == Mode::Vliw ? next_[0] : next_[fu];
        e.executed = true;
        e.cls = d->cls;
        e.halted = nx.halt;
        e.nextPc = nx.pc;
        if (mode_ == Mode::Ximd || fu == 0) {
            e.conditional = d->conditional;
            e.taken = nx.taken;
            e.busyWait =
                d->conditional && !nx.halt && nx.pc == pcs_[fu];
        }
        e.ctrl = d->controlOp();
    }
}

Backend
MachineCore::effectiveBackend() const
{
    return demotionReason().empty() ? config_.backend : Backend::Interp;
}

const char *
MachineCore::effectiveBackendName() const
{
    return backendName(effectiveBackend());
}

std::string
MachineCore::demotionReason() const
{
    if (config_.backend == Backend::Interp)
        return {};
    if (!perturbers_.empty())
        return std::string("observer '") +
               perturbers_.front()->observerName() +
               "' schedules perturbations";
    for (const CycleObserver *o : observers_) {
        if (!o->acceptsBlocks())
            return std::string("observer '") + o->observerName() +
                   "' requires per-cycle fidelity";
    }
    if (config_.resultLatency != 1)
        return "result latency > 1 keeps the write pipeline in flight";
    if (config_.registeredSync)
        return "registered sync distribution needs per-cycle stepping";
    if (mem_.hasDevices())
        return "memory-mapped devices need per-cycle access ordering";
    return {};
}

void
MachineCore::ensureBackend()
{
    // Recomputed on every step()/run() entry: observers and devices
    // may attach between runs, and each attachment can change the
    // demotion verdict. Backend instances are stateless across runs
    // (the threaded backend resynchronizes from core state), so
    // swapping kinds at a cycle boundary is always safe.
    const Backend kind = effectiveBackend();
    if (backend_ && backendKind_ == kind)
        return;
    backend_ = makeExecBackend(kind, *this);
    backendKind_ = kind;
    backend_->prepare();
}

bool
MachineCore::step()
{
    ensureBackend();
    return backend_->step();
}

bool
MachineCore::tryFastForward(Cycle limit)
{
    // A skip is sound only when the machine state provably maps to
    // itself each remaining cycle (DESIGN.md section 7): no pending
    // write-backs, no devices (device reads are cycle-dependent), and
    // every live FU re-selects its own address around a nop.
    if (limit <= cycle_ || faulted_ || allHalted())
        return false;
    if (!pipe_.empty() || mem_.hasDevices() || hasSyncOverrides())
        return false;

    // An observer with scheduled work (a pending fault injection) caps
    // how far the skip may reach: cycles up to its wake cycle repeat
    // the fixpoint, the wake cycle itself must execute one at a time.
    Cycle cap = limit;
    for (const CycleObserver *o : observers_) {
        const Cycle wake = o->nextWake(*this);
        if (wake < cap)
            cap = wake;
    }
    if (cap <= cycle_)
        return false;
    limit = cap;

    const FuId n = numFus();

    if (mode_ == Mode::Ximd) {
        // Emit the SS values the next cycle would drive.
        sync_.beginCycle();
        for (FuId fu = 0; fu < n; ++fu) {
            if (!haltedFus_[fu])
                sync_.set(fu, decoded_->at(pcs_[fu], fu).sync);
        }
        if (config_.registeredSync) {
            // Branch decisions read last cycle's SS values; those must
            // also be what this cycle re-emits, or SS state changes.
            for (FuId fu = 0; fu < n; ++fu)
                if (sync_.get(fu) != syncPrev_[fu])
                    return false;
        }
        for (FuId fu = 0; fu < n; ++fu) {
            if (haltedFus_[fu]) {
                fetched_[fu] = nullptr;
                continue;
            }
            const DecodedParcel &d = decoded_->at(pcs_[fu], fu);
            if (d.cls != OpClass::Nop)
                return false;
            fetched_[fu] = &d;
            next_[fu] = evalDecodedControl(d, ccs_, sync_);
            if (next_[fu].halt || next_[fu].pc != pcs_[fu])
                return false;
        }
    } else {
        const DecodedParcel *row = &decoded_->at(pcs_[0], 0);
        for (FuId fu = 0; fu < n; ++fu) {
            if (row[fu].cls != OpClass::Nop)
                return false;
            fetched_[fu] = row + fu;
        }
        next_[0] = evalDecodedControl(row[0], ccs_, sync_);
        if (next_[0].halt || next_[0].pc != pcs_[0])
            return false;
    }

    // Fixpoint proven: every remaining cycle repeats these events with
    // unchanged beginning-of-cycle state.
    const Cycle skipped = limit - cycle_;
    if (!observers_.empty()) {
        buildEvents();
        for (CycleObserver *o : observers_)
            o->onFastForward(*this, skipped, events_);
    }
    cycle_ = limit;
    if (mode_ == Mode::Ximd) {
        for (FuId fu = 0; fu < n; ++fu)
            syncPrev_[fu] = sync_.get(fu);
    }
    return true;
}

RunResult
MachineCore::run(Cycle maxCycles)
{
    const Cycle budget =
        maxCycles ? maxCycles : config_.defaultMaxCycles;
    const Cycle limit = cycle_ + budget;

    ensureBackend();
    backend_->runTo(limit);

    RunResult result;
    result.cycles = cycle_;
    if (faulted_) {
        result.reason = StopReason::Fault;
        result.faultMessage = faultMsg_;
    } else if (allHalted()) {
        result.reason = StopReason::Halted;
    } else {
        result.reason = StopReason::MaxCycles;
    }
    return result;
}

Word
MachineCore::readRegByName(const std::string &name) const
{
    auto r = program().regByName(name);
    if (!r)
        fatal("program defines no register named '", name, "'");
    return regs_.peek(*r);
}

void
MachineCore::saveState(StateWriter &w) const
{
    w.tag("MCOR");
    w.u8(static_cast<std::uint8_t>(mode_));
    w.u64(cycle_);
    w.boolean(faulted_);
    w.str(faultMsg_);
    w.boolean(doneNotified_);

    w.count(pcs_.size());
    for (InstAddr pc : pcs_)
        w.u32(pc);
    w.count(haltedFus_.size());
    for (bool h : haltedFus_)
        w.boolean(h);
    w.count(syncPrev_.size());
    for (SyncVal v : syncPrev_)
        w.u8(static_cast<std::uint8_t>(v));
    w.count(syncOverrides_.size());
    for (const SyncOverride &o : syncOverrides_) {
        w.u32(o.fu);
        w.u8(static_cast<std::uint8_t>(o.val));
        w.u64(o.until);
    }

    regs_.saveState(w);
    mem_.saveState(w);
    ccs_.saveState(w);
    pipe_.saveState(w);
    sync_.saveState(w);
}

void
MachineCore::loadState(StateReader &r)
{
    r.checkTag("MCOR");
    const auto mode = static_cast<Mode>(r.u8());
    if (mode != mode_)
        fatal("core state was saved in ",
              mode == Mode::Ximd ? "ximd" : "vliw",
              " mode, this machine runs ",
              mode_ == Mode::Ximd ? "ximd" : "vliw");
    cycle_ = r.u64();
    faulted_ = r.boolean();
    faultMsg_ = r.str();
    doneNotified_ = r.boolean();

    const FuId n = numFus();
    if (r.count(kMaxFus) != n)
        fatal("core state FU count does not match this machine");
    for (InstAddr &pc : pcs_)
        pc = r.u32();
    if (r.count(kMaxFus) != n)
        fatal("core state halt-flag count does not match this machine");
    for (FuId fu = 0; fu < n; ++fu)
        haltedFus_[fu] = r.boolean();
    if (r.count(kMaxFus) != n)
        fatal("core state sync-history count does not match this "
              "machine");
    for (SyncVal &v : syncPrev_)
        v = static_cast<SyncVal>(r.u8());
    syncOverrides_.resize(r.count(1u << 16));
    for (SyncOverride &o : syncOverrides_) {
        o.fu = r.u32();
        o.val = static_cast<SyncVal>(r.u8());
        o.until = r.u64();
    }

    regs_.loadState(r);
    mem_.loadState(r);
    ccs_.loadState(r);
    pipe_.loadState(r);
    sync_.loadState(r);

    // Per-cycle scratch is recomputed by the next step(); the spin
    // hint must not survive a restore (it refers to the pre-restore
    // cycle's fetch).
    spinHint_ = false;
    if (backend_)
        backend_->onStateLoaded();
}

std::uint64_t
MachineCore::archStateHash() const
{
    Hash64 h;
    regs_.hashContents(h);
    mem_.hashContents(h);
    ccs_.hashContents(h);
    return h.digest();
}

} // namespace ximd
