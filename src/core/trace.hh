/**
 * @file
 * Address-trace recording in the format of the paper's Figure 10.
 *
 * Each entry captures the beginning-of-cycle machine state: the PC of
 * every live FU, the condition-code registers "as they exist at the
 * beginning of each cycle", and the current partition in set notation.
 */

#ifndef XIMD_CORE_TRACE_HH
#define XIMD_CORE_TRACE_HH

#include <string>
#include <vector>

#include "support/state_io.hh"
#include "support/types.hh"

namespace ximd {

/** One cycle's beginning-of-cycle snapshot. */
struct TraceEntry
{
    Cycle cycle = 0;
    std::vector<InstAddr> pcs;  ///< Per FU; meaningful iff live[fu].
    std::vector<bool> live;     ///< FU executed a parcel this cycle.
    std::string condCodes;      ///< e.g. "TTFX".
    std::string partition;      ///< e.g. "{0,1}{2}{3}".
};

/** A recorded address trace. */
class Trace
{
  public:
    void append(TraceEntry entry) { entries_.push_back(std::move(entry)); }
    void clear() { entries_.clear(); }

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    const TraceEntry &entry(std::size_t i) const;
    const std::vector<TraceEntry> &entries() const { return entries_; }

    /**
     * Render as the paper's Figure 10 table:
     *
     *   Cycle     FU0  FU1  FU2  FU3  CondCodes  Partition
     *   Cycle 0   00:  00:  00:  00:  XXXX       {0,1,2,3}
     */
    std::string formatted() const;

    /**
     * Compact one-line-per-cycle form used by golden-trace tests:
     * "0 | 00 00 00 00 | XXXX | {0,1,2,3}". Halted FUs print "--".
     */
    std::string compact() const;

    /// @name Checkpointing (see DESIGN.md section 9).
    /// @{
    /** Serialize every recorded entry. */
    void saveState(StateWriter &w) const;

    /** Replace the recorded entries with saved state. */
    void loadState(StateReader &r);

    /** Stable 64-bit hash of the serialized state. */
    std::uint64_t stateHash() const { return stateHashOf(*this); }
    /// @}

  private:
    std::vector<TraceEntry> entries_;
};

} // namespace ximd

#endif // XIMD_CORE_TRACE_HH
