#include "core/vliw_machine.hh"

#include "sim/datapath.hh"
#include "sim/sequencer.hh"
#include "sim/sync_bus.hh"
#include "support/logging.hh"

namespace ximd {

namespace {

/** ExecContext binding one VLIW lane to the machine's shared state;
 *  writes route through the write-back pipeline. */
class LaneContext : public ExecContext
{
  public:
    LaneContext(RegisterFile &regs, Memory &mem, WritePipeline &pipe,
                FuId fu, Cycle now)
        : regs_(regs), mem_(mem), pipe_(pipe), fu_(fu), now_(now)
    {
    }

    Word
    readOperand(const Operand &op) override
    {
        if (op.isImm())
            return op.immValue();
        if (op.isReg())
            return regs_.read(op.regId());
        panic("readOperand on absent operand");
    }

    Word loadMem(Addr addr) override { return mem_.load(addr, now_); }

    void
    storeMem(Addr addr, Word value) override
    {
        pipe_.pushStore(now_, addr, value, fu_);
    }

    void
    writeReg(RegId reg, Word value) override
    {
        pipe_.pushReg(now_, reg, value, fu_);
    }

    void
    writeCc(bool value) override
    {
        pipe_.pushCc(now_, fu_, value);
    }

  private:
    RegisterFile &regs_;
    Memory &mem_;
    WritePipeline &pipe_;
    FuId fu_;
    Cycle now_;
};

} // namespace

VliwMachine::VliwMachine(Program program, MachineConfig config)
    : program_(std::move(program)),
      config_(config),
      regs_(kNumRegisters, config.conflictPolicy),
      mem_(config.memWords, config.conflictPolicy),
      ccs_(program_.width()),
      pipe_(config.resultLatency),
      stats_(program_.width())
{
    if (program_.empty())
        fatal("cannot simulate an empty program");
    program_.validate();
    validateVliwProgram();
    applyMemInit();
}

void
VliwMachine::validateVliwProgram() const
{
    for (InstAddr a = 0; a < program_.size(); ++a) {
        for (FuId fu = 0; fu < program_.width(); ++fu) {
            const Parcel &p = program_.row(a)[fu];
            switch (p.ctrl.kind) {
              case CondKind::SyncDone:
              case CondKind::AllSync:
              case CondKind::AnySync:
                fatal("row ", a, " FU", fu, ": sync-signal branch "
                      "conditions do not exist on a VLIW machine");
              default:
                break;
            }
            if (p.sync != SyncVal::Busy)
                fatal("row ", a, " FU", fu, ": sync fields do not "
                      "exist on a VLIW machine");
        }
    }
}

void
VliwMachine::applyMemInit()
{
    for (const auto &[addr, value] : program_.memInit())
        mem_.poke(addr, value);
    for (const auto &[reg, value] : program_.regInit())
        regs_.poke(reg, value);
}

void
VliwMachine::attachDevice(Addr lo, Addr hi, IoDevice *device)
{
    mem_.attachDevice(lo, hi, device);
}

void
VliwMachine::fault(const std::string &msg)
{
    faulted_ = true;
    faultMsg_ = msg;
    regs_.squash();
    mem_.squash();
    ccs_.squash();
    pipe_.squash();
}

bool
VliwMachine::step()
{
    if (faulted_ || (halted_ && pipe_.empty()))
        return false;

    const FuId n = numFus();

    if (config_.recordTrace) {
        TraceEntry e;
        e.cycle = cycle_;
        e.pcs.assign(n, pc_);
        e.live.assign(n, true);
        e.condCodes = ccs_.formatted();
        // A VLIW always executes a single instruction stream.
        std::string part = "{";
        for (FuId fu = 0; fu < n; ++fu)
            part += (fu ? "," : "") + std::to_string(fu);
        part += "}";
        e.partition = part;
        trace_.append(std::move(e));
    }
    if (config_.trackPartitions && !halted_)
        stats_.countPartition(1);

    NextPc next;
    if (!halted_) {
        const InstRow &row = program_.row(pc_);

        // Execute all data operations against beginning-of-cycle
        // state.
        try {
            for (FuId fu = 0; fu < n; ++fu) {
                LaneContext ctx(regs_, mem_, pipe_, fu, cycle_);
                executeDataOp(row[fu].data, ctx);
                stats_.countParcel(opInfo(row[fu].data.op).cls);
            }
        } catch (const FatalError &e) {
            fault(e.what());
            return false;
        }

        // Sequence: the single control operation comes from FU0's
        // parcel. Sync conditions were rejected at construction, so
        // the sync bus argument is never consulted; pass a dummy.
        static const SyncBus dummy_sync(1);
        next = evaluateControlOp(row[0].ctrl, ccs_, dummy_sync);
        if (row[0].ctrl.isConditional())
            stats_.countConditionalBranch(next.taken);
    } else {
        next.halt = true; // draining in-flight write-backs
    }

    try {
        pipe_.drainInto(cycle_, regs_, mem_, ccs_);
        regs_.commit();
        mem_.commit(cycle_);
        ccs_.commit();
    } catch (const FatalError &e) {
        fault(e.what());
        return false;
    }

    if (next.halt)
        halted_ = true;
    else
        pc_ = next.pc;

    ++cycle_;
    stats_.countCycle();
    return true;
}

RunResult
VliwMachine::run(Cycle maxCycles)
{
    const Cycle budget =
        maxCycles ? maxCycles : config_.defaultMaxCycles;
    const Cycle limit = cycle_ + budget;

    while (cycle_ < limit && step()) {
    }

    RunResult result;
    result.cycles = cycle_;
    if (faulted_) {
        result.reason = StopReason::Fault;
        result.faultMessage = faultMsg_;
    } else if (halted_) {
        result.reason = StopReason::Halted;
    } else {
        result.reason = StopReason::MaxCycles;
    }
    return result;
}

Word
VliwMachine::readRegByName(const std::string &name) const
{
    auto r = program_.regByName(name);
    if (!r)
        fatal("program defines no register named '", name, "'");
    return regs_.peek(*r);
}

} // namespace ximd
