#include "core/vliw_machine.hh"

namespace ximd {

VliwMachine::VliwMachine(Program program, MachineConfig config)
    : core_(std::move(program), config, MachineCore::Mode::Vliw),
      stats_(core_.numFus()),
      statsObserver_(stats_, nullptr,
                     // A VLIW is one instruction stream by definition;
                     // busy-wait accounting is an XIMD concept.
                     config.trackPartitions ? 1 : 0,
                     /*countBusyWaits=*/false),
      traceObserver_(trace_)
{
    if (config.collectStats)
        core_.addObserver(&statsObserver_);
    if (config.recordTrace)
        core_.addObserver(&traceObserver_);
}

} // namespace ximd
