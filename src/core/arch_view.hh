/**
 * @file
 * Read-only view of final architectural state, independent of the
 * executor that produced it.
 *
 * Post-run result checks (farm/suite.cc's reference-model
 * comparisons, RunSpec::check in general) need exactly three things:
 * the program's symbol tables, named registers, and memory words.
 * Giving them this interface instead of `const Machine &` lets the
 * same check run against a scalar Machine and against one lane of the
 * batch engine's structure-of-arrays state — which is what makes
 * checked jobs batch-eligible at all (a check consumes the *final*
 * state; it never needs per-cycle fidelity, unlike a device-attaching
 * JobFixture).
 *
 * Accessors fault (FatalError) on bad names or addresses, matching
 * MachineCore's behavior, so a buggy check fails its job with the
 * same message either way.
 */

#ifndef XIMD_CORE_ARCH_VIEW_HH
#define XIMD_CORE_ARCH_VIEW_HH

#include <string>

#include "isa/program.hh"
#include "support/types.hh"

namespace ximd {

class ArchView
{
  public:
    virtual ~ArchView() = default;

    /** The immutable program this state was produced by. */
    virtual const Program &program() const = 0;

    /** Read register @p name (faults when the program names none). */
    virtual Word readRegByName(const std::string &name) const = 0;

    /** Read a memory word (faults when out of range). */
    virtual Word peekMem(Addr addr) const = 0;
};

} // namespace ximd

#endif // XIMD_CORE_ARCH_VIEW_HH
