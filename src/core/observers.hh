/**
 * @file
 * The stock observers: partition tracking, statistics, tracing.
 *
 * These reproduce, through the CycleObserver interface, exactly the
 * observation the machines' step() functions used to perform inline.
 * The wrappers (XimdMachine / VliwMachine) own the observed objects
 * (PartitionTracker, RunStats, Trace) and attach these adapters only
 * when the corresponding MachineConfig switch is on, so a bare core
 * carries no observation cost.
 */

#ifndef XIMD_CORE_OBSERVERS_HH
#define XIMD_CORE_OBSERVERS_HH

#include <string>

#include "core/observer.hh"
#include "core/partition.hh"
#include "core/stats.hh"
#include "core/trace.hh"

namespace ximd {

/** Folds each committed cycle's control behaviour into a tracker. */
class PartitionObserver : public CycleObserver
{
  public:
    explicit PartitionObserver(PartitionTracker &tracker)
        : tracker_(tracker)
    {
    }

    const char *observerName() const override { return "partition"; }
    bool acceptsBlocks() const override { return true; }
    bool wantsPartitions() const override { return true; }

    void onCommit(const MachineCore &core,
                  const std::vector<FuEvent> &events) override;
    void onBlock(const MachineCore &core,
                 const BlockStats &blk) override;

    // onFastForward: nothing to do — a busy-wait fixpoint repeats the
    // control behaviour of the cycle that was stepped just before the
    // skip, so the tracker has already converged.

  private:
    PartitionTracker &tracker_;
    std::vector<PartitionTracker::FuControl> controls_;
};

/** Accumulates RunStats; understands bulk fast-forward accounting. */
class StatsObserver : public CycleObserver
{
  public:
    /**
     * @param stats         accumulator to fill.
     * @param tracker       partition source for the per-cycle stream
     *                      histogram; may be null.
     * @param fixedStreams  when @p tracker is null and this is > 0,
     *                      count this constant stream count instead
     *                      (the VLIW machine's single stream). 0
     *                      disables partition counting.
     * @param countBusyWaits whether self-loop conditional branches
     *                      accrue busy-wait FU-cycles (XIMD only).
     */
    StatsObserver(RunStats &stats, const PartitionTracker *tracker,
                  unsigned fixedStreams, bool countBusyWaits)
        : stats_(stats), tracker_(tracker), fixedStreams_(fixedStreams),
          countBusyWaits_(countBusyWaits)
    {
    }

    const char *observerName() const override { return "stats"; }
    bool acceptsBlocks() const override { return true; }
    bool wantsPartitions() const override { return tracker_ != nullptr; }

    void onCycle(const MachineCore &core) override;
    void onCommit(const MachineCore &core,
                  const std::vector<FuEvent> &events) override;
    void onFastForward(const MachineCore &core, Cycle skipped,
                       const std::vector<FuEvent> &events) override;
    void onBlock(const MachineCore &core,
                 const BlockStats &blk) override;

  private:
    unsigned streams() const
    {
        return tracker_ ? tracker_->numSsets() : fixedStreams_;
    }

    RunStats &stats_;
    const PartitionTracker *tracker_;
    unsigned fixedStreams_;
    bool countBusyWaits_;
};

/** Records the Figure-10 address trace of an XIMD core. */
class TraceObserver : public CycleObserver
{
  public:
    TraceObserver(Trace &trace, const PartitionTracker &tracker)
        : trace_(trace), tracker_(tracker)
    {
    }

    // Keeps per-cycle records: acceptsBlocks() stays false, demoting a
    // threaded core back to per-cycle interpretation.
    const char *observerName() const override { return "trace"; }

    void onCycle(const MachineCore &core) override;
    void onFastForward(const MachineCore &core, Cycle skipped,
                       const std::vector<FuEvent> &events) override;

  private:
    Trace &trace_;
    const PartitionTracker &tracker_;
};

/** Records the trace of a VLIW core: one PC, every lane always live. */
class VliwTraceObserver : public CycleObserver
{
  public:
    explicit VliwTraceObserver(Trace &trace) : trace_(trace) {}

    const char *observerName() const override { return "vliw-trace"; }

    void onCycle(const MachineCore &core) override;
    void onFastForward(const MachineCore &core, Cycle skipped,
                       const std::vector<FuEvent> &events) override;

  private:
    TraceEntry snapshot(const MachineCore &core);

    Trace &trace_;
    std::string partition_; ///< "{0,1,...,n-1}", built on first use.
};

} // namespace ximd

#endif // XIMD_CORE_OBSERVERS_HH
