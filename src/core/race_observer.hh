/**
 * @file
 * Dynamic cross-stream conflict detection (runtime side of the race
 * engine).
 *
 * The static analysis (analysis/race.hh) predicts which shared-state
 * accesses can collide; this observer watches a real execution and
 * records every *same-cycle* conflicting access pair it sees — two
 * FUs touching the same register, memory word, or condition code in
 * one cycle with at least one side writing.
 *
 * Two deliberate exclusions keep the signal meaningful:
 *  - read/read pairs (never a conflict);
 *  - write/read pairs between FUs executing the *same row with the
 *    same control op* — the lockstep read-old idiom (the reader sees
 *    the beginning-of-cycle value by construction; scheduler-emitted
 *    code does this on almost every row).
 *
 * Same-cycle W/W on one location is a machine fault for registers
 * (write-port conflict) but is still recorded here first: the event
 * list survives the fault and names both sites.
 *
 * The cross-validation contract (tests/fuzz/test_race_corpus.cc):
 * on an *unperturbed* run, every event this observer records must
 * match a diagnostic or a covered() pair of the static RaceReport.
 * Fault injection (e.g. a stuck SS line) can steer execution outside
 * the unperturbed state space, producing events the static report
 * does not know — which is exactly how the fault tests prove the
 * observer actually fires.
 */

#ifndef XIMD_CORE_RACE_OBSERVER_HH
#define XIMD_CORE_RACE_OBSERVER_HH

#include <cstdint>
#include <set>
#include <tuple>
#include <string>
#include <vector>

#include "core/observer.hh"
#include "isa/program.hh"

namespace ximd {

/** Watches an execution for same-cycle conflicting accesses. */
class RaceObserver : public CycleObserver
{
  public:
    enum class LocKind : std::uint8_t { Reg, Mem, Cc };

    /** One observed same-cycle conflicting access pair. */
    struct Event
    {
        Cycle cycle = 0;
        LocKind kind = LocKind::Reg;
        std::uint32_t loc = 0; ///< Register, address, or cc index.
        InstAddr rowA = 0;
        FuId fuA = 0;
        bool writeA = false;
        InstAddr rowB = 0;
        FuId fuB = 0;
        bool writeB = false;

        /** "cycle 12: M[100] write fu0@row4 / read fu1@row4". */
        std::string toString() const;
    };

    /** @p prog must be the program the observed core executes. */
    explicit RaceObserver(const Program &prog);

    // Needs every cycle's pre-fetch state: acceptsBlocks() stays
    // false, demoting a threaded core back to the interpreter.
    const char *observerName() const override { return "race-check"; }

    void onCycle(const MachineCore &core) override;

    const std::vector<Event> &events() const { return events_; }

  private:
    /** Static per-(row, fu) access shape, precomputed from @p prog. */
    struct Shape
    {
        std::vector<RegId> regReads;
        bool writesReg = false;
        RegId regDest = 0;
        bool loads = false;  ///< Address = val(a) + val(b).
        bool stores = false; ///< Address = val(b).
        bool writesCc = false;
        bool readsCc = false;
        std::uint8_t ccRead = 0;
    };

    struct Touch
    {
        FuId fu;
        InstAddr row;
        bool write;
    };

    const Shape &shapeAt(InstAddr row, FuId fu) const;
    void recordPairs(Cycle cycle, const MachineCore &core,
                     LocKind kind, std::uint32_t loc,
                     const std::vector<Touch> &touches);

    const Program &prog_;
    std::vector<Shape> shapes_; ///< row-major [row * width + fu]
    std::vector<Event> events_;
    /** Site-tuple dedup: one event per distinct pair of sites. */
    std::set<std::tuple<std::uint8_t, std::uint32_t, InstAddr, FuId,
                        InstAddr, FuId>>
        seen_;
};

} // namespace ximd

#endif // XIMD_CORE_RACE_OBSERVER_HH
