/**
 * @file
 * SSET / partition tracking.
 *
 * Section 2.4 of the paper: "SSET: A Synchronous Set of Functional
 * Units ... describes a set of one or more XIMD functional units which
 * are currently executing a single program thread. ... Formally, two
 * functional units are in the same SSET at time t, if given the program
 * and the control state of one FU, the control state of the other FU
 * can be uniquely determined. Partition: An XIMD processor can be
 * operating as one or more SSETs."
 *
 * Operational refinement implemented here (validated cycle-for-cycle
 * against the paper's Figure 10 trace): after each cycle, FUs are
 * grouped by the control behaviour they executed —
 *
 *   key(FU) = (Always, nextPC)                  for unconditional
 *   key(FU) = (kind, index/mask, T1, T2)        for conditional
 *
 * Every XIMD-1 condition source (any CCk, any SSk, ALL, ANY) is a
 * globally shared signal, so equal conditional keys imply equal next
 * PCs — deterministic linkage. Distinct conditional keys mean the
 * relative state became data dependent, so the FUs fork into different
 * SSETs even when their next PCs coincide (Figure 10, cycle 9:
 * partition {0,1}{2}{3} with all four FUs at address 03:).
 *
 * Halted FUs leave the partition; the set notation and stream counts
 * cover live FUs only.
 */

#ifndef XIMD_CORE_PARTITION_HH
#define XIMD_CORE_PARTITION_HH

#include <string>
#include <vector>

#include "isa/control_op.hh"
#include "support/state_io.hh"
#include "support/types.hh"

namespace ximd {

/** Tracks the machine's SSET partition across cycles. */
class PartitionTracker
{
  public:
    explicit PartitionTracker(FuId numFus);

    /** Control behaviour one FU executed this cycle. */
    struct FuControl
    {
        bool live = false;        ///< FU executed a parcel this cycle.
        bool halted = false;      ///< FU halted this cycle.
        ControlOp op;             ///< Executed control fields.
        InstAddr nextPc = 0;      ///< Resolved next address.
    };

    /** Fold one cycle's executed control behaviour into the partition. */
    void update(const std::vector<FuControl> &controls);

    /**
     * Overwrite the per-FU assignment wholesale with ids computed
     * elsewhere (a block backend's SSET grouping; see
     * CycleObserver::onBlock). Ids must already be dense in order of
     * first FU appearance, -1 for halted FUs.
     */
    void setAssignments(const std::vector<int> &ids);

    /** SSET id of @p fu (-1 when halted). Ids are dense from 0. */
    int ssetOf(FuId fu) const;

    /** Number of SSETs (instruction streams) among live FUs. */
    unsigned numSsets() const;

    /** True when @p a and @p b are live and in the same SSET. */
    bool sameSset(FuId a, FuId b) const;

    /** Paper set notation, e.g. "{0,1}{2}{3,6,7}{4,5}". */
    std::string formatted() const;

    /// @name Checkpointing (see DESIGN.md section 9).
    /// @{
    /** Serialize the per-FU SSET assignment. */
    void saveState(StateWriter &w) const;

    /** Restore saved SSET assignment; FU counts must match. */
    void loadState(StateReader &r);

    /** Stable 64-bit hash of the serialized state. */
    std::uint64_t stateHash() const { return stateHashOf(*this); }
    /// @}

  private:
    void renumber();

    FuId numFus_;
    std::vector<int> ssetIds_; ///< per FU; -1 == halted.
};

} // namespace ximd

#endif // XIMD_CORE_PARTITION_HH
