#include "core/race_observer.hh"

#include <map>
#include <sstream>

#include "core/machine_core.hh"
#include "support/logging.hh"

namespace ximd {

std::string
RaceObserver::Event::toString() const
{
    std::ostringstream os;
    os << "cycle " << cycle << ": ";
    switch (kind) {
      case LocKind::Reg:
        os << "r" << loc;
        break;
      case LocKind::Mem:
        os << "M[" << loc << "]";
        break;
      case LocKind::Cc:
        os << "cc" << loc;
        break;
    }
    os << " " << (writeA ? "write" : "read") << " fu"
       << static_cast<int>(fuA) << "@row" << rowA << " / "
       << (writeB ? "write" : "read") << " fu"
       << static_cast<int>(fuB) << "@row" << rowB;
    return os.str();
}

RaceObserver::RaceObserver(const Program &prog) : prog_(prog)
{
    shapes_.resize(static_cast<std::size_t>(prog.size()) *
                   prog.width());
    for (InstAddr r = 0; r < prog.size(); ++r) {
        for (FuId fu = 0; fu < prog.width(); ++fu) {
            Shape &s = shapes_[static_cast<std::size_t>(r) *
                                   prog.width() +
                               fu];
            const Parcel &p = prog.parcel(r, fu);
            const DataOp &d = p.data;
            for (const Operand *op : {&d.a, &d.b})
                if (op->isReg())
                    s.regReads.push_back(op->regId());
            if (d.hasDest()) {
                s.writesReg = true;
                s.regDest = d.dest;
            }
            const OpClass cls = opInfo(d.op).cls;
            s.loads = cls == OpClass::MemLoad;
            s.stores = cls == OpClass::MemStore;
            s.writesCc = setsCondCode(d.op);
            if (p.ctrl.kind == CondKind::CcTrue) {
                s.readsCc = true;
                s.ccRead = p.ctrl.index;
            }
        }
    }
}

const RaceObserver::Shape &
RaceObserver::shapeAt(InstAddr row, FuId fu) const
{
    return shapes_[static_cast<std::size_t>(row) * prog_.width() +
                   fu];
}

void
RaceObserver::recordPairs(Cycle cycle, const MachineCore &core,
                          LocKind kind, std::uint32_t loc,
                          const std::vector<Touch> &touches)
{
    for (std::size_t i = 0; i < touches.size(); ++i) {
        for (std::size_t j = i + 1; j < touches.size(); ++j) {
            const Touch &a = touches[i];
            const Touch &b = touches[j];
            if (a.fu == b.fu)
                continue;
            if (!a.write && !b.write)
                continue;
            // Lockstep read-old: a write and a read from the same
            // row under the same control op are the deterministic
            // VLIW-style idiom, not a conflict.
            if (a.write != b.write && a.row == b.row &&
                prog_.parcel(a.row, a.fu).ctrl ==
                    prog_.parcel(b.row, b.fu).ctrl)
                continue;
            // Keep the pair in (fu-ascending) canonical order.
            const Touch &x = a.fu < b.fu ? a : b;
            const Touch &y = a.fu < b.fu ? b : a;
            if (!seen_
                     .insert({static_cast<std::uint8_t>(kind), loc,
                              x.row, x.fu, y.row, y.fu})
                     .second)
                continue;
            Event e;
            e.cycle = cycle;
            e.kind = kind;
            e.loc = loc;
            e.rowA = x.row;
            e.fuA = x.fu;
            e.writeA = x.write;
            e.rowB = y.row;
            e.fuB = y.fu;
            e.writeB = y.write;
            events_.push_back(e);
        }
    }
    (void)core;
}

void
RaceObserver::onCycle(const MachineCore &core)
{
    // Beginning-of-cycle state: pcs name the rows about to execute,
    // registers hold the values every operand (including address
    // expressions) will read this cycle.
    const Cycle cyc = core.cycle();
    std::map<std::pair<std::uint8_t, std::uint32_t>,
             std::vector<Touch>>
        byLoc;
    auto touch = [&](LocKind kind, std::uint32_t loc, FuId fu,
                     InstAddr row, bool write) {
        byLoc[{static_cast<std::uint8_t>(kind), loc}].push_back(
            {fu, row, write});
    };
    auto val = [&](const Operand &op) -> Word {
        if (op.isImm())
            return op.immValue();
        if (op.isReg())
            return core.readReg(op.regId());
        return 0;
    };
    // A VLIW core advances only the shared sequencer (pc 0).
    const bool vliw = core.mode() == Mode::Vliw;
    for (FuId fu = 0; fu < core.numFus(); ++fu) {
        if (core.haltedFu(fu))
            continue;
        const InstAddr row = core.pc(vliw ? 0 : fu);
        if (row >= prog_.size())
            continue;
        const Shape &s = shapeAt(row, fu);
        for (RegId r : s.regReads)
            touch(LocKind::Reg, r, fu, row, false);
        if (s.writesReg)
            touch(LocKind::Reg, s.regDest, fu, row, true);
        const DataOp &d = prog_.parcel(row, fu).data;
        if (s.loads)
            touch(LocKind::Mem, val(d.a) + val(d.b), fu, row,
                  false);
        if (s.stores)
            touch(LocKind::Mem, val(d.b), fu, row, true);
        if (s.writesCc)
            touch(LocKind::Cc, fu, fu, row, true);
        if (s.readsCc)
            touch(LocKind::Cc, s.ccRead, fu, row, false);
    }
    for (const auto &[key, touches] : byLoc)
        if (touches.size() > 1)
            recordPairs(cyc, core,
                        static_cast<LocKind>(key.first), key.second,
                        touches);
}

} // namespace ximd
