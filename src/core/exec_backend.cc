#include "core/exec_backend.hh"

#include "core/interp_backend.hh"
#include "core/threaded_backend.hh"
#include "support/logging.hh"

namespace ximd {

ExecBackend::~ExecBackend() = default;

std::unique_ptr<ExecBackend>
makeExecBackend(Backend kind, MachineCore &core)
{
    switch (kind) {
      case Backend::Interp:
        return std::make_unique<InterpBackend>(core);
      case Backend::Threaded:
        return std::make_unique<ThreadedBackend>(core);
    }
    panic("makeExecBackend: unknown backend kind");
}

} // namespace ximd
