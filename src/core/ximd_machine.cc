#include "core/ximd_machine.hh"

#include "sim/datapath.hh"
#include "sim/sequencer.hh"
#include "support/logging.hh"

namespace ximd {

namespace {

/** ExecContext binding one FU to the machine's shared state. All
 *  writes route through the write-back pipeline (latency 1 == the
 *  research model's end-of-cycle commit). */
class FuContext : public ExecContext
{
  public:
    FuContext(RegisterFile &regs, Memory &mem, WritePipeline &pipe,
              FuId fu, Cycle now)
        : regs_(regs), mem_(mem), pipe_(pipe), fu_(fu), now_(now)
    {
    }

    Word
    readOperand(const Operand &op) override
    {
        if (op.isImm())
            return op.immValue();
        if (op.isReg())
            return regs_.read(op.regId());
        panic("readOperand on absent operand");
    }

    Word loadMem(Addr addr) override { return mem_.load(addr, now_); }

    void
    storeMem(Addr addr, Word value) override
    {
        pipe_.pushStore(now_, addr, value, fu_);
    }

    void
    writeReg(RegId reg, Word value) override
    {
        pipe_.pushReg(now_, reg, value, fu_);
    }

    void
    writeCc(bool value) override
    {
        pipe_.pushCc(now_, fu_, value);
    }

  private:
    RegisterFile &regs_;
    Memory &mem_;
    WritePipeline &pipe_;
    FuId fu_;
    Cycle now_;
};

} // namespace

XimdMachine::XimdMachine(Program program, MachineConfig config)
    : program_(std::move(program)),
      config_(config),
      regs_(kNumRegisters, config.conflictPolicy),
      mem_(config.memWords, config.conflictPolicy),
      ccs_(program_.width()),
      pipe_(config.resultLatency),
      sync_(program_.width()),
      syncPrev_(program_.width(), SyncVal::Busy),
      pcs_(program_.width(), 0),
      haltedFus_(program_.width(), false),
      partition_(program_.width()),
      stats_(program_.width())
{
    if (program_.empty())
        fatal("cannot simulate an empty program");
    program_.validate();
    applyMemInit();
}

void
XimdMachine::applyMemInit()
{
    for (const auto &[addr, value] : program_.memInit())
        mem_.poke(addr, value);
    for (const auto &[reg, value] : program_.regInit())
        regs_.poke(reg, value);
}

void
XimdMachine::attachDevice(Addr lo, Addr hi, IoDevice *device)
{
    mem_.attachDevice(lo, hi, device);
}

InstAddr
XimdMachine::pc(FuId fu) const
{
    XIMD_ASSERT(fu < numFus(), "FU index out of range");
    return pcs_[fu];
}

bool
XimdMachine::halted(FuId fu) const
{
    XIMD_ASSERT(fu < numFus(), "FU index out of range");
    return haltedFus_[fu];
}

bool
XimdMachine::allHalted() const
{
    for (bool h : haltedFus_)
        if (!h)
            return false;
    return true;
}

void
XimdMachine::fault(const std::string &msg)
{
    faulted_ = true;
    faultMsg_ = msg;
    regs_.squash();
    mem_.squash();
    ccs_.squash();
    pipe_.squash();
}

bool
XimdMachine::step()
{
    // Even with every FU halted, in-flight write-backs must drain
    // (resultLatency > 1) before the machine is architecturally done.
    if (faulted_ || (allHalted() && pipe_.empty()))
        return false;

    const FuId n = numFus();

    // Beginning-of-cycle observation: trace + partition statistics.
    if (config_.recordTrace) {
        TraceEntry e;
        e.cycle = cycle_;
        e.pcs = pcs_;
        e.live.resize(n);
        for (FuId fu = 0; fu < n; ++fu)
            e.live[fu] = !haltedFus_[fu];
        e.condCodes = ccs_.formatted();
        e.partition = partition_.formatted();
        trace_.append(std::move(e));
    }
    if (config_.trackPartitions && !allHalted())
        stats_.countPartition(partition_.numSsets());

    // Fetch + drive sync bus from the executing parcels' SS fields.
    std::vector<const Parcel *> parcels(n, nullptr);
    sync_.beginCycle(); // halted FUs read DONE
    for (FuId fu = 0; fu < n; ++fu) {
        if (haltedFus_[fu])
            continue;
        parcels[fu] = &program_.parcel(pcs_[fu], fu);
        sync_.set(fu, parcels[fu]->sync);
    }

    // Execute data operations against beginning-of-cycle state.
    try {
        for (FuId fu = 0; fu < n; ++fu) {
            if (!parcels[fu])
                continue;
            FuContext ctx(regs_, mem_, pipe_, fu, cycle_);
            executeDataOp(parcels[fu]->data, ctx);
            stats_.countParcel(opInfo(parcels[fu]->data.op).cls);
        }
    } catch (const FatalError &e) {
        fault(e.what());
        return false;
    }

    // Sequence: select each live FU's next PC. CC values are still the
    // beginning-of-cycle ones (commit happens below); SS values are the
    // current cycle's fields (or the previous cycle's, under the
    // registered-sync ablation).
    SyncBus registered(n);
    if (config_.registeredSync) {
        for (FuId fu = 0; fu < n; ++fu)
            registered.set(fu, syncPrev_[fu]);
    }
    const SyncBus &branch_sync = config_.registeredSync ? registered
                                                        : sync_;

    std::vector<PartitionTracker::FuControl> controls(n);
    std::vector<NextPc> next(n);
    for (FuId fu = 0; fu < n; ++fu) {
        if (!parcels[fu])
            continue;
        const ControlOp &cop = parcels[fu]->ctrl;
        next[fu] = evaluateControlOp(cop, ccs_, branch_sync);
        controls[fu].live = true;
        controls[fu].halted = next[fu].halt;
        controls[fu].op = cop;
        controls[fu].nextPc = next[fu].pc;
        if (cop.isConditional()) {
            stats_.countConditionalBranch(next[fu].taken);
            if (!next[fu].halt && next[fu].pc == pcs_[fu])
                stats_.countBusyWait();
        }
    }

    // Commit the write-backs due this cycle.
    try {
        pipe_.drainInto(cycle_, regs_, mem_, ccs_);
        regs_.commit();
        mem_.commit(cycle_);
        ccs_.commit();
    } catch (const FatalError &e) {
        fault(e.what());
        return false;
    }

    // Advance control state.
    for (FuId fu = 0; fu < n; ++fu) {
        if (!parcels[fu])
            continue;
        if (next[fu].halt)
            haltedFus_[fu] = true;
        else
            pcs_[fu] = next[fu].pc;
    }
    if (config_.trackPartitions)
        partition_.update(controls);

    for (FuId fu = 0; fu < n; ++fu)
        syncPrev_[fu] = sync_.get(fu);

    ++cycle_;
    stats_.countCycle();
    return true;
}

RunResult
XimdMachine::run(Cycle maxCycles)
{
    const Cycle budget =
        maxCycles ? maxCycles : config_.defaultMaxCycles;
    const Cycle limit = cycle_ + budget;

    while (cycle_ < limit && step()) {
    }

    RunResult result;
    result.cycles = cycle_;
    if (faulted_) {
        result.reason = StopReason::Fault;
        result.faultMessage = faultMsg_;
    } else if (allHalted()) {
        result.reason = StopReason::Halted;
    } else {
        result.reason = StopReason::MaxCycles;
    }
    return result;
}

Word
XimdMachine::readRegByName(const std::string &name) const
{
    auto r = program_.regByName(name);
    if (!r)
        fatal("program defines no register named '", name, "'");
    return regs_.peek(*r);
}

} // namespace ximd
