#include "core/ximd_machine.hh"

namespace ximd {

XimdMachine::XimdMachine(Program program, MachineConfig config)
    : core_(std::move(program), config, MachineCore::Mode::Ximd),
      partition_(core_.numFus()),
      stats_(core_.numFus()),
      partitionObserver_(partition_),
      statsObserver_(stats_,
                     config.trackPartitions ? &partition_ : nullptr,
                     0, /*countBusyWaits=*/true),
      traceObserver_(trace_, partition_)
{
    // Observer order matters only for the partition stream counts:
    // stats and trace read the tracker's beginning-of-cycle state, and
    // the tracker updates at end of cycle, so any registration order
    // observes the same values. Attach only what the config asks for —
    // an unobserved core pays nothing per cycle.
    if (config.trackPartitions)
        core_.addObserver(&partitionObserver_);
    if (config.collectStats)
        core_.addObserver(&statsObserver_);
    if (config.recordTrace)
        core_.addObserver(&traceObserver_);
}

} // namespace ximd
