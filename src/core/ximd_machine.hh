/**
 * @file
 * xsim — the cycle-accurate XIMD-1 machine (paper section 4.1).
 *
 * Structure follows Figure 2 of the paper: a global register file and
 * idealized shared memory serve N homogeneous universal FUs, each with
 * its own program counter and sequencer. Condition codes are registered
 * and globally visible; synchronization signals are instruction fields
 * distributed combinationally.
 *
 * This class is a mode-fixing wrapper over the unified `Machine`
 * façade (core/machine.hh): it pins `config.mode = Mode::Ximd` and
 * forwards everything else. It is kept for source compatibility with
 * the original split-machine API; new code should construct
 * `Machine(prog, MachineConfig::ximd()...)` directly — the builder
 * surface composes with the batch engine (farm/) and the shared
 * PreparedProgram path.
 *
 * A program fault (divide by zero, write race, address out of range)
 * stops the machine with StopReason::Fault and the message preserved.
 */

#ifndef XIMD_CORE_XIMD_MACHINE_HH
#define XIMD_CORE_XIMD_MACHINE_HH

#include <memory>
#include <string>
#include <utility>

#include "core/machine.hh"

namespace ximd {

/** The XIMD-1 simulator: an XIMD-configured Machine. */
class XimdMachine
{
  public:
    /**
     * Build a machine around @p program (validated on entry). The FU
     * count is the program's width. Initial-memory requests recorded
     * in the program are applied.
     */
    explicit XimdMachine(Program program, MachineConfig config = {})
        : m_(std::move(program), config.withMode(Mode::Ximd))
    {
    }

    /** Build around a shared, already-prepared program. */
    explicit XimdMachine(std::shared_ptr<const PreparedProgram> prepared,
                         MachineConfig config = {})
        : m_(std::move(prepared), config.withMode(Mode::Ximd))
    {
    }

    // The attached observers hold references into this object.
    XimdMachine(const XimdMachine &) = delete;
    XimdMachine &operator=(const XimdMachine &) = delete;

    /// @name Pre-run setup.
    /// @{
    Memory &memory() { return m_.memory(); }
    RegisterFile &registers() { return m_.registers(); }
    CondCodeFile &condCodes() { return m_.condCodes(); }

    /** Map @p device at [lo, hi]; forwards to Memory::attachDevice. */
    void attachDevice(Addr lo, Addr hi, IoDevice *device)
    {
        m_.attachDevice(lo, hi, device);
    }

    /** Attach a custom observation hook (not owned). */
    void addObserver(CycleObserver *observer)
    {
        m_.addObserver(observer);
    }
    /// @}

    /// @name Execution.
    /// @{
    /**
     * Execute one cycle.
     * @return false when nothing ran (all FUs halted or faulted).
     */
    bool step() { return m_.step(); }

    /** Run until halt/fault or @p maxCycles (0: config default). */
    RunResult run(Cycle maxCycles = 0) { return m_.run(maxCycles); }
    /// @}

    /// @name Observation.
    /// @{
    const Program &program() const { return m_.program(); }
    FuId numFus() const { return m_.numFus(); }
    Cycle cycle() const { return m_.cycle(); }
    InstAddr pc(FuId fu) const { return m_.pc(fu); }
    bool halted(FuId fu) const { return m_.halted(fu); }
    bool allHalted() const { return m_.allHalted(); }
    bool faulted() const { return m_.faulted(); }
    const std::string &faultMessage() const
    {
        return m_.faultMessage();
    }

    const RunStats &stats() const { return m_.stats(); }
    const Trace &trace() const { return m_.trace(); }
    const PartitionTracker &partitions() const
    {
        return m_.partitions();
    }

    /** Read a register by number. */
    Word readReg(RegId r) const { return m_.readReg(r); }

    /** Read a register by its symbolic program name; fatal if unknown. */
    Word readRegByName(const std::string &name) const
    {
        return m_.readRegByName(name);
    }

    /** Read a memory word (RAM only). */
    Word peekMem(Addr addr) const { return m_.peekMem(addr); }

    /** The underlying unified façade. */
    Machine &machine() { return m_; }
    /// @}

  private:
    Machine m_;
};

} // namespace ximd

#endif // XIMD_CORE_XIMD_MACHINE_HH
