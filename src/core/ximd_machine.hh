/**
 * @file
 * xsim — the cycle-accurate XIMD-1 machine (paper section 4.1).
 *
 * Structure follows Figure 2 of the paper: a global register file and
 * idealized shared memory serve N homogeneous universal FUs, each with
 * its own program counter and sequencer. Condition codes are registered
 * and globally visible; synchronization signals are instruction fields
 * distributed combinationally.
 *
 * The cycle loop itself lives in MachineCore (core/machine_core.hh),
 * shared with the VLIW machine; this class is the XIMD configuration
 * of that core: Mode::Ximd sequencing plus the standard observers —
 * PartitionTracker, RunStats, and the Figure-10 trace — attached
 * according to MachineConfig. With tracing, partition tracking, and
 * statistics all disabled the core runs bare, with no observation
 * work per cycle.
 *
 * A program fault (divide by zero, write race, address out of range)
 * stops the machine with StopReason::Fault and the message preserved.
 */

#ifndef XIMD_CORE_XIMD_MACHINE_HH
#define XIMD_CORE_XIMD_MACHINE_HH

#include <string>

#include "core/machine_config.hh"
#include "core/machine_core.hh"
#include "core/observers.hh"
#include "core/partition.hh"
#include "core/run_result.hh"
#include "core/stats.hh"
#include "core/trace.hh"
#include "isa/program.hh"

namespace ximd {

/** The XIMD-1 simulator: an XIMD-configured MachineCore. */
class XimdMachine
{
  public:
    /**
     * Build a machine around @p program (validated on entry). The FU
     * count is the program's width. Initial-memory requests recorded
     * in the program are applied.
     */
    explicit XimdMachine(Program program, MachineConfig config = {});

    // The attached observers hold references into this object.
    XimdMachine(const XimdMachine &) = delete;
    XimdMachine &operator=(const XimdMachine &) = delete;

    /// @name Pre-run setup.
    /// @{
    Memory &memory() { return core_.memory(); }
    RegisterFile &registers() { return core_.registers(); }
    CondCodeFile &condCodes() { return core_.condCodes(); }

    /** Map @p device at [lo, hi]; forwards to Memory::attachDevice. */
    void attachDevice(Addr lo, Addr hi, IoDevice *device)
    {
        core_.attachDevice(lo, hi, device);
    }

    /** Attach a custom observation hook (not owned). */
    void addObserver(CycleObserver *observer)
    {
        core_.addObserver(observer);
    }
    /// @}

    /// @name Execution.
    /// @{
    /**
     * Execute one cycle.
     * @return false when nothing ran (all FUs halted or faulted).
     */
    bool step() { return core_.step(); }

    /** Run until halt/fault or @p maxCycles (0: config default). */
    RunResult run(Cycle maxCycles = 0) { return core_.run(maxCycles); }
    /// @}

    /// @name Observation.
    /// @{
    const Program &program() const { return core_.program(); }
    FuId numFus() const { return core_.numFus(); }
    Cycle cycle() const { return core_.cycle(); }
    InstAddr pc(FuId fu) const { return core_.pc(fu); }
    bool halted(FuId fu) const { return core_.haltedFu(fu); }
    bool allHalted() const { return core_.allHalted(); }
    bool faulted() const { return core_.faulted(); }
    const std::string &faultMessage() const
    {
        return core_.faultMessage();
    }

    const RunStats &stats() const { return stats_; }
    const Trace &trace() const { return trace_; }
    const PartitionTracker &partitions() const { return partition_; }

    /** Read a register by number. */
    Word readReg(RegId r) const { return core_.readReg(r); }

    /** Read a register by its symbolic program name; fatal if unknown. */
    Word readRegByName(const std::string &name) const
    {
        return core_.readRegByName(name);
    }

    /** Read a memory word (RAM only). */
    Word peekMem(Addr addr) const { return core_.peekMem(addr); }
    /// @}

  private:
    MachineCore core_;

    PartitionTracker partition_;
    Trace trace_;
    RunStats stats_;

    PartitionObserver partitionObserver_;
    StatsObserver statsObserver_;
    TraceObserver traceObserver_;
};

} // namespace ximd

#endif // XIMD_CORE_XIMD_MACHINE_HH
