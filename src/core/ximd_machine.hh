/**
 * @file
 * xsim — the cycle-accurate XIMD-1 machine (paper section 4.1).
 *
 * Structure follows Figure 2 of the paper: a global register file and
 * idealized shared memory serve N homogeneous universal FUs, each with
 * its own program counter and sequencer. Condition codes are registered
 * and globally visible; synchronization signals are instruction fields
 * distributed combinationally.
 *
 * Cycle semantics (pinned down in DESIGN.md and verified against the
 * paper's Figure 10 trace):
 *
 *   1. fetch: every live FU fetches the parcel addressed by its PC;
 *   2. the sync bus takes each live parcel's SS field (halted: DONE);
 *   3. execute: data ops read beginning-of-cycle registers/memory and
 *      queue their writes;
 *   4. sequence: control ops select the next PC from beginning-of-cycle
 *      CC values and current-cycle SS values;
 *   5. commit: queued register / memory / CC writes become visible;
 *      write-write races on one register or address fault;
 *   6. partition tracking, trace recording, statistics.
 *
 * A program fault (divide by zero, write race, address out of range)
 * stops the machine with StopReason::Fault and the message preserved.
 */

#ifndef XIMD_CORE_XIMD_MACHINE_HH
#define XIMD_CORE_XIMD_MACHINE_HH

#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/partition.hh"
#include "core/run_result.hh"
#include "core/stats.hh"
#include "core/trace.hh"
#include "isa/program.hh"
#include "sim/cond_codes.hh"
#include "sim/memory.hh"
#include "sim/register_file.hh"
#include "sim/sync_bus.hh"
#include "sim/write_pipeline.hh"

namespace ximd {

/** The XIMD-1 simulator. */
class XimdMachine
{
  public:
    /**
     * Build a machine around @p program (validated on entry). The FU
     * count is the program's width. Initial-memory requests recorded
     * in the program are applied.
     */
    explicit XimdMachine(Program program, MachineConfig config = {});

    /// @name Pre-run setup.
    /// @{
    Memory &memory() { return mem_; }
    RegisterFile &registers() { return regs_; }
    CondCodeFile &condCodes() { return ccs_; }

    /** Map @p device at [lo, hi]; forwards to Memory::attachDevice. */
    void attachDevice(Addr lo, Addr hi, IoDevice *device);
    /// @}

    /// @name Execution.
    /// @{
    /**
     * Execute one cycle.
     * @return false when nothing ran (all FUs halted or faulted).
     */
    bool step();

    /** Run until halt/fault or @p maxCycles (0: config default). */
    RunResult run(Cycle maxCycles = 0);
    /// @}

    /// @name Observation.
    /// @{
    const Program &program() const { return program_; }
    FuId numFus() const { return program_.width(); }
    Cycle cycle() const { return cycle_; }
    InstAddr pc(FuId fu) const;
    bool halted(FuId fu) const;
    bool allHalted() const;
    bool faulted() const { return faulted_; }
    const std::string &faultMessage() const { return faultMsg_; }

    const RunStats &stats() const { return stats_; }
    const Trace &trace() const { return trace_; }
    const PartitionTracker &partitions() const { return partition_; }

    /** Read a register by number. */
    Word readReg(RegId r) const { return regs_.peek(r); }

    /** Read a register by its symbolic program name; fatal if unknown. */
    Word readRegByName(const std::string &name) const;

    /** Read a memory word (RAM only). */
    Word peekMem(Addr addr) const { return mem_.peek(addr); }
    /// @}

  private:
    void applyMemInit();
    void fault(const std::string &msg);

    Program program_;
    MachineConfig config_;

    RegisterFile regs_;
    Memory mem_;
    CondCodeFile ccs_;
    WritePipeline pipe_;
    SyncBus sync_;
    /** Previous-cycle SS values, used when config_.registeredSync. */
    std::vector<SyncVal> syncPrev_;

    std::vector<InstAddr> pcs_;
    std::vector<bool> haltedFus_;

    Cycle cycle_ = 0;
    bool faulted_ = false;
    std::string faultMsg_;

    PartitionTracker partition_;
    Trace trace_;
    RunStats stats_;
};

} // namespace ximd

#endif // XIMD_CORE_XIMD_MACHINE_HH
