/**
 * @file
 * The paper's program listings, transcribed verbatim.
 *
 * Example 1  — TPROC: scalar code scheduled by a Percolation-Scheduling
 *              compiler, executed VLIW-style (section 3.1).
 * Example 2  — MINMAX: fork/join with implicit barrier (equal-length
 *              paths), section 3.2; its sample execution is the
 *              Figure 10 address trace.
 * Example 3  — BITCOUNT1: explicit barrier synchronization with
 *              SS signals (section 3.3, Figure 11).
 *
 * The listings keep the paper's 4-FU layout, instruction placement and
 * instruction-memory addresses (MINMAX includes the paper's two unused
 * addresses 06/07 so the Figure 10 trace reproduces address-for-
 * address).
 */

#ifndef XIMD_WORKLOADS_KERNELS_HH
#define XIMD_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace ximd::workloads {

/**
 * Example 1: the TPROC schedule on 4 FUs.
 *
 * Inputs are registers "a", "b", "c", "d" (set via Program::addRegInit
 * or poke); the result lands in register "f".
 */
Program tprocPaper(SWord a, SWord b, SWord c, SWord d);

/**
 * Example 2: MINMAX over the Figure 10 sample data IZ = (5,3,4,7).
 *
 * Results land in registers "min" and "max".
 *
 * @param terminate  when true, the final address holds a halt row so
 *                   run() finishes; when false it holds the paper's
 *                   implicit "Continue." (a self-loop), which makes the
 *                   Figure 10 trace reproduce exactly — run for 14
 *                   cycles and stop.
 */
Program minmaxPaper(bool terminate = true);

/** MINMAX (Example 2 structure) over arbitrary data; n = data size. */
Program minmaxPaperData(const std::vector<SWord> &data,
                        bool terminate = true);

/**
 * Example 3: BITCOUNT1 with explicit barrier synchronization.
 *
 * Counts ones in D[1..n] four elements at a time (one inner loop per
 * FU), then joins at an ALL-sync barrier and stores running sums into
 * B[]. Semantics are as printed in the paper: the accumulator b resets
 * after each group of four, so B[k+j] holds the sum over the group
 * containing k (see referenceBitcount1Paper()). The paper's unshown
 * "clean up code" is a halt row; pick n with n > 8 and n % 4 == 0 so
 * the main loop covers every element.
 *
 * Program symbols: "D0" (= &D[0]) and "B0" (= &B[0]).
 */
Program bitcount1Paper(const std::vector<Word> &data);

/**
 * Livermore Loop 12 (first-difference), straightforward schedule:
 * X(k) = Y(k+1) - Y(k), k = 1..n. Executes VLIW-style on @p width FUs
 * (non-pipelined: one iteration in flight). Y is float data; symbols
 * "X0" and "Y0" give the array bases; result X(k) at X0+k.
 */
Program loop12Naive(const std::vector<float> &y, FuId width = 4);

} // namespace ximd::workloads

#endif // XIMD_WORKLOADS_KERNELS_HH
