#include "workloads/minmax.hh"

#include <sstream>

#include "asm/assembler.hh"
#include "support/logging.hh"
#include "workloads/kernels.hh"

namespace ximd::workloads {

namespace {

void
emitData(std::ostringstream &os, Addr addr,
         const std::vector<SWord> &vals)
{
    os << ".word " << addr;
    for (SWord v : vals)
        os << " " << v;
    os << "\n";
}

} // namespace

Program
minmaxXimd(const std::vector<SWord> &data)
{
    return minmaxPaperData(data, /*terminate=*/true);
}

Program
minmaxVliw(const std::vector<SWord> &data)
{
    if (data.empty())
        fatal("minmax requires at least one element");

    constexpr Addr z = 64;
    std::ostringstream os;
    os << ".fus 4\n"
          ".reg tz\n.reg tz2\n.reg k\n.reg n\n.reg tn\n"
          ".reg min\n.reg max\n"
          ".const z " << z << "\n"
          ".init n " << data.size() << "\n";
    emitData(os, z, data);

    // One branch per cycle. Loop-invariant layout:
    //   at L02 entry: tz = current element, cc0 = (tz < min),
    //   cc1 = (tz > max), both against the values min/max had before
    //   this element. Next element is loaded into tz2 and compared
    //   inside the iteration, then moved into tz at L06/L07.
    // The update branches (cc0, cc1) serialize: 5 cycles per element.
    os <<
        "L00: -> L01 ; load #z,#0,tz || -> L01 ; iadd #1,#0,k "
        "|| -> L01 ; lt n,#2 || -> L01 ; iadd n,#0,tn\n"

        "L01: if cc2 L09 L02 ; lt tz,#maxint "
        "|| if cc2 L09 L02 ; gt tz,#minint "
        "|| if cc2 L09 L02 ; nop "
        "|| if cc2 L09 L02 ; isub tn,#1,tn\n"

        "L02: if cc0 L03 L04 ; load #z,k,tz2 "
        "|| if cc0 L03 L04 ; iadd #1,k,k "
        "|| if cc0 L03 L04 ; eq k,tn "
        "|| if cc0 L03 L04 ; nop\n"

        "L03: -> L05 ; nop || -> L05 ; nop || -> L05 ; iadd tz,#0,min "
        "|| -> L05 ; nop\n"
        "L04: -> L05 ; nop || -> L05 ; nop || -> L05 ; nop "
        "|| -> L05 ; nop\n"

        "L05: if cc1 L06 L07 ; nop || if cc1 L06 L07 ; nop "
        "|| if cc1 L06 L07 ; nop || if cc1 L06 L07 ; nop\n"

        "L06: -> L08 ; lt tz2,min || -> L08 ; mov tz2,tz "
        "|| -> L08 ; iadd tz,#0,max || -> L08 ; nop\n"
        "L07: -> L08 ; lt tz2,min || -> L08 ; mov tz2,tz "
        "|| -> L08 ; nop || -> L08 ; nop\n"

        "L08: if cc2 L09 L02 ; nop || if cc2 L09 L02 ; gt tz,max "
        "|| if cc2 L09 L02 ; nop || if cc2 L09 L02 ; nop\n"

        // Epilogue: the final element's updates (reached either from
        // the loop exit or directly when n < 2).
        "L09: if cc0 L10 L11 ; nop || if cc0 L10 L11 ; nop "
        "|| if cc0 L10 L11 ; nop || if cc0 L10 L11 ; nop\n"
        "L10: -> L11 ; nop || -> L11 ; nop || -> L11 ; iadd tz,#0,min "
        "|| -> L11 ; nop\n"
        "L11: if cc1 L12 LEND ; nop || if cc1 L12 LEND ; nop "
        "|| if cc1 L12 LEND ; nop || if cc1 L12 LEND ; nop\n"
        "L12: -> LEND ; nop || -> LEND ; nop "
        "|| -> LEND ; iadd tz,#0,max || -> LEND ; nop\n"
        "LEND: halt || halt || halt || halt\n";

    return assembleString(os.str());
}

unsigned
searchDivisor(unsigned s)
{
    static constexpr unsigned divisors[kMaxSearches] = {2, 3, 5, 7,
                                                        11, 13};
    XIMD_ASSERT(s < kMaxSearches, "search index out of range");
    return divisors[s];
}

namespace {

/** Shared header of both multi-search generators. */
std::string
multiSearchHeader(unsigned searches, const std::vector<SWord> &data,
                  FuId width, Addr z)
{
    std::ostringstream os;
    os << ".fus " << width << "\n"
          ".reg tz\n.reg k\n.reg n\n.reg tn\n";
    for (unsigned s = 0; s < searches; ++s)
        os << ".reg m" << s << "\n.reg c" << s << "\n";
    os << ".const z " << z << "\n"
          ".init n " << data.size() << "\n";
    emitData(os, z, data);
    return os.str();
}

void
validateMultiSearchArgs(unsigned searches,
                        const std::vector<SWord> &data)
{
    if (searches < 1 || searches > kMaxSearches)
        fatal("multi-search supports 1..", kMaxSearches,
              " searches; got ", searches);
    if (data.empty())
        fatal("multi-search requires at least one element");
    for (SWord v : data)
        if (v < 0)
            fatal("multi-search data must be non-negative");
}

} // namespace

Program
multiSearchXimd(unsigned searches, const std::vector<SWord> &data)
{
    validateMultiSearchArgs(searches, data);
    const FuId width = searches + 2;
    const FuId ctlFu = searches + 1; // loop-control FU; cc index too
    constexpr Addr z = 64;

    std::ostringstream os;
    os << multiSearchHeader(searches, data, width, z);

    // Helper emitting one row: every FU gets `ctrl`, FU fu gets the
    // listed data op, others nop.
    auto row = [&](const std::string &label, const std::string &ctrl,
                   const std::vector<std::string> &dataOps) {
        std::ostringstream r;
        r << label << ": ";
        for (FuId fu = 0; fu < width; ++fu) {
            if (fu)
                r << " || ";
            r << ctrl << " ; "
              << (fu < dataOps.size() && !dataOps[fu].empty()
                      ? dataOps[fu]
                      : "nop");
        }
        r << "\n";
        return r.str();
    };

    std::vector<std::string> init0(width), init1(width), r0(width),
        r1(width), r2(width), r4a(width);
    for (unsigned s = 0; s < searches; ++s) {
        const std::string ss = std::to_string(s);
        init0[s + 1] = "iadd #0,#0,c" + ss;
        r1[s + 1] = "imod tz,#" + std::to_string(searchDivisor(s)) +
                    ",m" + ss;
        r2[s + 1] = "eq m" + ss + ",#0";
        r4a[s + 1] = "iadd c" + ss + ",#1,c" + ss;
    }
    init0[ctlFu] = "iadd #0,#0,k";
    init1[ctlFu] = "isub n,#1,tn";
    r0[0] = "load #z,k,tz";
    r0[ctlFu] = "eq k,tn";
    r1[ctlFu] = "iadd k,#1,k";

    os << row("LI0", "-> LI1", init0);
    os << row("LI1", "-> R0", init1);
    os << row("R0", "-> R1", r0);
    os << row("R1", "-> R2", r1);
    os << row("R2", "-> R3", r2);

    // R3: the fork — each searcher branches on its own condition code;
    // driver FUs go straight to the skip row. This is the cycle where
    // the partition becomes {driver FUs}{s1}{s2}... .
    {
        std::ostringstream r;
        r << "R3: ";
        for (FuId fu = 0; fu < width; ++fu) {
            if (fu)
                r << " || ";
            if (fu >= 1 && fu <= searches)
                r << "if cc" << fu << " R4A R4B ; nop";
            else
                r << "-> R4B ; nop";
        }
        r << "\n";
        os << r.str();
    }
    os << row("R4A", "-> R5", r4a);
    os << row("R4B", "-> R5", {});
    os << row("R5",
              "if cc" + std::to_string(ctlFu) + " REND R0", {});
    os << row("REND", "halt", {});

    return assembleString(os.str());
}

Program
multiSearchVliw(unsigned searches, const std::vector<SWord> &data)
{
    validateMultiSearchArgs(searches, data);
    const FuId width = searches + 2;
    const FuId ctlFu = searches + 1;
    constexpr Addr z = 64;

    std::ostringstream os;
    os << multiSearchHeader(searches, data, width, z);

    auto row = [&](const std::string &label, const std::string &ctrl,
                   const std::vector<std::string> &dataOps) {
        std::ostringstream r;
        r << label << ": ";
        for (FuId fu = 0; fu < width; ++fu) {
            if (fu)
                r << " || ";
            r << ctrl << " ; "
              << (fu < dataOps.size() && !dataOps[fu].empty()
                      ? dataOps[fu]
                      : "nop");
        }
        r << "\n";
        return r.str();
    };

    std::vector<std::string> init0(width), init1(width), r0(width),
        r1(width), r2(width);
    for (unsigned s = 0; s < searches; ++s) {
        const std::string ss = std::to_string(s);
        init0[s + 1] = "iadd #0,#0,c" + ss;
        r1[s + 1] = "imod tz,#" + std::to_string(searchDivisor(s)) +
                    ",m" + ss;
        r2[s + 1] = "eq m" + ss + ",#0";
    }
    init0[ctlFu] = "iadd #0,#0,k";
    init1[ctlFu] = "isub n,#1,tn";
    r0[0] = "load #z,k,tz";
    r0[ctlFu] = "eq k,tn";
    r1[ctlFu] = "iadd k,#1,k";

    os << row("LI0", "-> LI1", init0);
    os << row("LI1", "-> R0", init1);
    os << row("R0", "-> R1", r0);
    os << row("R1", "-> R2", r1);
    os << row("R2", "-> B0", r2);

    // One branch per cycle: each search takes a branch row plus an
    // update/skip row.
    for (unsigned s = 0; s < searches; ++s) {
        const std::string ss = std::to_string(s);
        const std::string nxt =
            s + 1 < searches ? "B" + std::to_string(s + 1) : "LATCH";
        os << row("B" + ss,
                  "if cc" + std::to_string(s + 1) + " U" + ss + " K" +
                      ss,
                  {});
        std::vector<std::string> upd(width);
        upd[s + 1] = "iadd c" + ss + ",#1,c" + ss;
        os << row("U" + ss, "-> " + nxt, upd);
        os << row("K" + ss, "-> " + nxt, {});
    }
    os << row("LATCH", "if cc" + std::to_string(ctlFu) + " REND R0",
              {});
    os << row("REND", "halt", {});

    return assembleString(os.str());
}

std::vector<Word>
referenceMultiSearch(unsigned searches, const std::vector<SWord> &data)
{
    validateMultiSearchArgs(searches, data);
    std::vector<Word> counts(searches, 0);
    for (SWord v : data)
        for (unsigned s = 0; s < searches; ++s)
            if (v % static_cast<SWord>(searchDivisor(s)) == 0)
                ++counts[s];
    return counts;
}

} // namespace ximd::workloads
