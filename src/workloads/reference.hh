/**
 * @file
 * Plain-C++ reference models for every workload. Tests and benches
 * validate simulator results against these.
 */

#ifndef XIMD_WORKLOADS_REFERENCE_HH
#define XIMD_WORKLOADS_REFERENCE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "support/types.hh"

namespace ximd::workloads {

/** TPROC (Example 1) result for the given inputs. */
SWord referenceTproc(SWord a, SWord b, SWord c, SWord d);

/** (min, max) of @p data; requires non-empty input. */
std::pair<SWord, SWord> referenceMinmax(const std::vector<SWord> &data);

/** Number of one bits in @p w. */
unsigned referencePopcount(Word w);

/**
 * BITCOUNT1 (Example 3) B[] contents, as-printed semantics:
 * B[0] = 0; for each group of four elements starting at k (1-based),
 * B[k+j] = sum of popcounts of D[k..k+j] within the group (the
 * accumulator resets between groups). data = D[1..n]; returns B[0..n].
 */
std::vector<Word> referenceBitcount1Paper(const std::vector<Word> &data);

/**
 * True cumulative bitcount: B[0] = 0, B[i] = popcount(D[1]) + ... +
 * popcount(D[i]). Used by the parameterized generators.
 */
std::vector<Word> referenceBitcountCumulative(
    const std::vector<Word> &data);

/** Livermore Loop 12: X(k) = Y(k+1) - Y(k), k = 1..n (n = y.size()-1).
 *  y holds Y(1..m) (y[0] == Y(1)); returns X(1..m-1). */
std::vector<float> referenceLoop12(const std::vector<float> &y);

} // namespace ximd::workloads

#endif // XIMD_WORKLOADS_REFERENCE_HH
