#include "workloads/bitcount.hh"

#include <sstream>

#include "asm/assembler.hh"
#include "support/logging.hh"

namespace ximd::workloads {

namespace {

constexpr Addr kD0 = 256;

Addr
bBase(std::size_t n)
{
    return static_cast<Addr>(kD0 + n + 16);
}

std::string
dataHeader(const std::vector<Word> &data)
{
    const std::size_t n = data.size();
    std::ostringstream os;
    os << ".const D0 " << kD0 << "\n"
          ".const B0 " << bBase(n) << "\n"
          ".init n " << n << "\n"
          ".word " << kD0 + 1;
    for (Word v : data)
        os << " " << static_cast<SWord>(v);
    os << "\n";
    return os.str();
}

} // namespace

Program
bitcountXimd(const std::vector<Word> &data)
{
    const std::size_t n = data.size();
    if (n < 4 || n % 4 != 0)
        fatal("bitcountXimd requires n % 4 == 0 and n >= 4; got ", n);
    const Addr b0 = bBase(n);

    std::ostringstream os;
    os << ".fus 4\n"
          ".reg k\n.reg n\n.reg a\n.reg b\n.reg t\n"
          ".reg b0\n.reg b1\n.reg b2\n.reg b3\n"
          ".reg d0\n.reg d1\n.reg d2\n.reg d3\n"
          ".reg t0\n.reg t1\n.reg t2\n.reg t3\n"
          ".const D1 " << kD0 + 1 << "\n"
          ".const D2 " << kD0 + 2 << "\n"
          ".const D3 " << kD0 + 3 << "\n"
          ".const B1 " << b0 + 1 << "\n"
          ".const B2 " << b0 + 2 << "\n"
          ".const B3 " << b0 + 3 << "\n"
       << dataHeader(data);

    os <<
        // Example 3's structure, generalized: cumulative accumulator
        // (no reset at the loop latch) and n % 4 == 0 coverage.
        "L00: -> L01 ; lt n,#4 ; done || -> L01 ; iadd #1,#0,k ; done "
        "|| -> L01 ; iadd #0,#0,b ; done || -> L01 ; store #0,#B0 ; done\n"

        "L01: if cc0 LEND L02 ; nop ; done "
        "|| if cc0 LEND L02 ; nop ; done "
        "|| if cc0 LEND L02 ; nop ; done "
        "|| if cc0 LEND L02 ; nop ; done\n"

        "L02: -> L03 ; iadd #0,#0,b0 || -> L03 ; iadd #0,#0,b1 "
        "|| -> L03 ; iadd #0,#0,b2 || -> L03 ; iadd #0,#0,b3\n"

        "L03: -> L04 ; load #D0,k,d0 || -> L04 ; load #D1,k,d1 "
        "|| -> L04 ; load #D2,k,d2 || -> L04 ; load #D3,k,d3\n"

        "L04: -> L05 ; eq d0,#0 || -> L05 ; eq d1,#0 "
        "|| -> L05 ; eq d2,#0 || -> L05 ; eq d3,#0\n"

        "L05: if cc0 L10 L06 ; and d0,#1,t0 "
        "|| if cc1 L10 L06 ; and d1,#1,t1 "
        "|| if cc2 L10 L06 ; and d2,#1,t2 "
        "|| if cc3 L10 L06 ; and d3,#1,t3\n"

        "L06: -> L07 ; eq #0,t0 || -> L07 ; eq #0,t1 "
        "|| -> L07 ; eq #0,t2 || -> L07 ; eq #0,t3\n"

        "L07: if cc0 L04 L08 ; shr d0,#1,d0 "
        "|| if cc1 L04 L08 ; shr d1,#1,d1 "
        "|| if cc2 L04 L08 ; shr d2,#1,d2 "
        "|| if cc3 L04 L08 ; shr d3,#1,d3\n"

        "L08: -> L04 ; iadd b0,#1,b0 || -> L04 ; iadd b1,#1,b1 "
        "|| -> L04 ; iadd b2,#1,b2 || -> L04 ; iadd b3,#1,b3\n"

        "L10: if all L11 L10 ; nop ; done "
        "|| if all L11 L10 ; nop ; done "
        "|| if all L11 L10 ; nop ; done "
        "|| if all L11 L10 ; nop ; done\n"

        "L11: -> L12 ; iadd b,b0,b ; done || -> L12 ; nop ; done "
        "|| -> L12 ; iadd k,#B0,a ; done || -> L12 ; nop ; done\n"

        "L12: -> L13 ; iadd b,b1,b ; done || -> L13 ; store b,a ; done "
        "|| -> L13 ; iadd k,#B1,a ; done || -> L13 ; nop ; done\n"

        "L13: -> L14 ; iadd b,b2,b ; done || -> L14 ; store b,a ; done "
        "|| -> L14 ; iadd k,#B2,a ; done || -> L14 ; isub n,k,t ; done\n"

        "L14: -> L15 ; iadd b,b3,b ; done || -> L15 ; store b,a ; done "
        "|| -> L15 ; iadd k,#B3,a ; done || -> L15 ; lt t,#4 ; done\n"

        "L15: if cc3 LEND L02 ; iadd k,#4,k ; done "
        "|| if cc3 LEND L02 ; store b,a ; done "
        "|| if cc3 LEND L02 ; nop ; done "
        "|| if cc3 LEND L02 ; nop ; done\n"

        "LEND: halt || halt || halt || halt\n";

    return assembleString(os.str());
}

Program
bitcountVliwSerial(const std::vector<Word> &data)
{
    const std::size_t n = data.size();
    if (n < 1)
        fatal("bitcountVliwSerial requires n >= 1");

    std::ostringstream os;
    os << ".fus 4\n"
          ".reg k\n.reg n\n.reg a\n.reg b\n.reg d\n.reg t\n"
       << dataHeader(data);

    os <<
        // Startup: k = 1, b = 0, B[0] = 0.
        "L00: -> OUTER ; iadd #1,#0,k || -> OUTER ; iadd #0,#0,b "
        "|| -> OUTER ; store #0,#B0 || -> OUTER ; nop\n"

        // Per element: load, then the paper's inner loop, serially.
        "OUTER: -> I4 ; load #D0,k,d || -> I4 ; nop "
        "|| -> I4 ; nop || -> I4 ; nop\n"

        "I4: -> I5 ; eq d,#0 || -> I5 ; nop || -> I5 ; nop "
        "|| -> I5 ; nop\n"

        "I5: if cc0 EDONE I6 ; and d,#1,t || if cc0 EDONE I6 ; nop "
        "|| if cc0 EDONE I6 ; nop || if cc0 EDONE I6 ; nop\n"

        "I6: -> I7 ; eq #0,t || -> I7 ; nop || -> I7 ; nop "
        "|| -> I7 ; nop\n"

        "I7: if cc0 I4 I8 ; shr d,#1,d || if cc0 I4 I8 ; nop "
        "|| if cc0 I4 I8 ; nop || if cc0 I4 I8 ; nop\n"

        "I8: -> I4 ; iadd b,#1,b || -> I4 ; nop || -> I4 ; nop "
        "|| -> I4 ; nop\n"

        // Element epilogue: address, exit test, k increment.
        "EDONE: -> ST ; nop || -> ST ; iadd k,#B0,a "
        "|| -> ST ; eq k,n || -> ST ; iadd #1,k,k\n"

        "ST: if cc2 LEND OUTER ; store b,a "
        "|| if cc2 LEND OUTER ; nop "
        "|| if cc2 LEND OUTER ; nop "
        "|| if cc2 LEND OUTER ; nop\n"

        "LEND: halt || halt || halt || halt\n";

    return assembleString(os.str());
}

Program
bitcountVliwLockstep(const std::vector<Word> &data)
{
    const std::size_t n = data.size();
    if (n < 4 || n % 4 != 0)
        fatal("bitcountVliwLockstep requires n % 4 == 0 and n >= 4; "
              "got ", n);
    const Addr b0 = bBase(n);

    std::ostringstream os;
    os << ".fus 4\n"
          ".reg k\n.reg n\n.reg a\n.reg b\n.reg t\n"
          ".reg b0\n.reg b1\n.reg b2\n.reg b3\n"
          ".reg d0\n.reg d1\n.reg d2\n.reg d3\n"
          ".reg t0\n.reg t1\n.reg t2\n.reg t3\n"
          ".reg u01\n.reg u23\n.reg u\n"
          ".const D1 " << kD0 + 1 << "\n"
          ".const D2 " << kD0 + 2 << "\n"
          ".const D3 " << kD0 + 3 << "\n"
          ".const B1 " << b0 + 1 << "\n"
          ".const B2 " << b0 + 2 << "\n"
          ".const B3 " << b0 + 3 << "\n"
       << dataHeader(data);

    os <<
        "L00: -> L02 ; iadd #1,#0,k || -> L02 ; iadd #0,#0,b "
        "|| -> L02 ; store #0,#B0 || -> L02 ; nop\n"

        "L02: -> L03 ; iadd #0,#0,b0 || -> L03 ; iadd #0,#0,b1 "
        "|| -> L03 ; iadd #0,#0,b2 || -> L03 ; iadd #0,#0,b3\n"

        "L03: -> I0 ; load #D0,k,d0 || -> I0 ; load #D1,k,d1 "
        "|| -> I0 ; load #D2,k,d2 || -> I0 ; load #D3,k,d3\n"

        // Lockstep inner iteration: branchless bit consume + an
        // OR-reduction to detect that every element is exhausted.
        "I0: -> I1 ; and d0,#1,t0 || -> I1 ; and d1,#1,t1 "
        "|| -> I1 ; and d2,#1,t2 || -> I1 ; and d3,#1,t3\n"

        "I1: -> I2 ; iadd b0,t0,b0 || -> I2 ; iadd b1,t1,b1 "
        "|| -> I2 ; iadd b2,t2,b2 || -> I2 ; iadd b3,t3,b3\n"

        "I2: -> I3 ; shr d0,#1,d0 || -> I3 ; shr d1,#1,d1 "
        "|| -> I3 ; shr d2,#1,d2 || -> I3 ; shr d3,#1,d3\n"

        "I3: -> I4 ; or d0,d1,u01 || -> I4 ; or d2,d3,u23 "
        "|| -> I4 ; nop || -> I4 ; nop\n"

        "I4: -> I5 ; or u01,u23,u || -> I5 ; nop || -> I5 ; nop "
        "|| -> I5 ; nop\n"

        "I5: -> I6 ; eq u,#0 || -> I6 ; nop || -> I6 ; nop "
        "|| -> I6 ; nop\n"

        "I6: if cc0 L11 I0 ; nop || if cc0 L11 I0 ; nop "
        "|| if cc0 L11 I0 ; nop || if cc0 L11 I0 ; nop\n"

        // Store-out, software-pipelined exactly like the XIMD version.
        "L11: -> L12 ; iadd b,b0,b || -> L12 ; nop "
        "|| -> L12 ; iadd k,#B0,a || -> L12 ; nop\n"

        "L12: -> L13 ; iadd b,b1,b || -> L13 ; store b,a "
        "|| -> L13 ; iadd k,#B1,a || -> L13 ; nop\n"

        "L13: -> L14 ; iadd b,b2,b || -> L14 ; store b,a "
        "|| -> L14 ; iadd k,#B2,a || -> L14 ; isub n,k,t\n"

        "L14: -> L15 ; iadd b,b3,b || -> L15 ; store b,a "
        "|| -> L15 ; iadd k,#B3,a || -> L15 ; lt t,#4\n"

        "L15: if cc3 LEND L02 ; iadd k,#4,k "
        "|| if cc3 LEND L02 ; store b,a "
        "|| if cc3 LEND L02 ; nop "
        "|| if cc3 LEND L02 ; nop\n"

        "LEND: halt || halt || halt || halt\n";

    return assembleString(os.str());
}

} // namespace ximd::workloads
