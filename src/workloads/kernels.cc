#include "workloads/kernels.hh"

#include <sstream>

#include "asm/assembler.hh"
#include "support/logging.hh"

namespace ximd::workloads {

namespace {

/** Append one ".word ADDR v v v ..." line. */
template <typename T>
void
emitWords(std::ostringstream &os, Addr addr, const std::vector<T> &vals)
{
    os << ".word " << addr;
    for (const T &v : vals)
        os << " " << v;
    os << "\n";
}

} // namespace

Program
tprocPaper(SWord a, SWord b, SWord c, SWord d)
{
    std::ostringstream os;
    os << ".fus 4\n"
          ".reg a\n.reg b\n.reg c\n.reg d\n.reg e\n.reg f\n.reg g\n"
          ".init a " << a << "\n"
          ".init b " << b << "\n"
          ".init c " << c << "\n"
          ".init d " << d << "\n"
       // Example 1's schedule, verbatim. VLIW-style: identical control
       // fields in every parcel.
       << "L00: -> L01 ; iadd a,b,e  || -> L01 ; imult c,a,f "
          "|| -> L01 ; iadd c,b,g  || -> L01 ; nop\n"
          "L01: -> L02 ; iadd f,e,f  || -> L02 ; isub a,g,g  "
          "|| -> L02 ; iadd e,c,a  || -> L02 ; isub d,e,e\n"
          "L02: -> L03 ; iadd a,d,a  || -> L03 ; iadd f,g,g  "
          "|| -> L03 ; nop         || -> L03 ; nop\n"
          "L03: -> L04 ; iadd a,e,a  || -> L04 ; nop         "
          "|| -> L04 ; nop         || -> L04 ; nop\n"
          "L04: -> L05 ; iadd a,g,f  || -> L05 ; nop         "
          "|| -> L05 ; nop         || -> L05 ; nop\n"
          "L05: halt || halt || halt || halt\n";
    return assembleString(os.str());
}

Program
minmaxPaperData(const std::vector<SWord> &data, bool terminate)
{
    if (data.empty())
        fatal("minmax requires at least one element");

    constexpr Addr z = 64; // IZ(1) lives at z + 0, IZ(k) at z + k - 1.
    std::ostringstream os;
    os << ".fus 4\n"
          ".reg tz\n.reg k\n.reg n\n.reg tn\n.reg min\n.reg max\n"
          ".const z " << z << "\n"
          ".init n " << data.size() << "\n";
    emitWords(os, z, data);

    // Example 2, verbatim, including the two unused addresses 06/07 so
    // the instruction-memory addresses match the paper (and Figure 10).
    os << "L00: -> L01 ; load #z,#0,tz      "
          "|| -> L01 ; iadd #1,#0,k      "
          "|| -> L01 ; lt n,#2           "
          "|| -> L01 ; iadd n,#0,tn\n"

          "L01: if cc2 L08 L02 ; lt tz,#maxint "
          "|| if cc2 L08 L02 ; gt tz,#minint "
          "|| if cc2 L08 L02 ; nop "
          "|| if cc2 L08 L02 ; isub tn,#1,tn\n"

          "L02: -> L03 ; nop || -> L03 ; nop "
          "|| if cc0 L04 L03 ; eq k,tn "
          "|| if cc1 L04 L03 ; nop\n"

          "L03: -> L05 ; load #z,k,tz || -> L05 ; iadd #1,k,k "
          "|| -> L05 ; nop || -> L05 ; nop\n"

          "L04: -> L05 ; nop || -> L05 ; nop "
          "|| -> L05 ; iadd tz,#0,min "
          "|| -> L05 ; iadd tz,#0,max\n"

          "L05: if cc2 L08 L02 ; lt tz,min "
          "|| if cc2 L08 L02 ; gt tz,max "
          "|| if cc2 L08 L02 ; nop "
          "|| if cc2 L08 L02 ; nop\n"

          // Addresses 06/07 are unused in the paper's listing.
          "L06: halt || halt || halt || halt\n"
          "L07: halt || halt || halt || halt\n"

          "L08: -> L0a ; nop || -> L0a ; nop "
          "|| if cc0 L09 L0a ; nop "
          "|| if cc1 L09 L0a ; nop\n"

          "L09: -> L0a ; nop || -> L0a ; nop "
          "|| -> L0a ; iadd tz,#0,min "
          "|| -> L0a ; iadd tz,#0,max\n";

    if (terminate)
        os << "L0a: halt || halt || halt || halt\n";
    else
        // The paper's "Continue." — later code would follow; keep all
        // FUs at 0a: as the Figure 10 trace shows for cycle 13.
        os << "L0a: -> L0a ; nop || -> L0a ; nop || -> L0a ; nop "
              "|| -> L0a ; nop\n";

    return assembleString(os.str());
}

Program
minmaxPaper(bool terminate)
{
    return minmaxPaperData({5, 3, 4, 7}, terminate);
}

Program
bitcount1Paper(const std::vector<Word> &data)
{
    const std::size_t n = data.size();
    if (n <= 8 || n % 4 != 0)
        fatal("bitcount1Paper: the paper's main loop (no cleanup code) "
              "requires n > 8 and n % 4 == 0; got n = ", n);

    const Addr d0 = 256;                        // D[0]; D[k] at d0+k
    const Addr b0 = static_cast<Addr>(d0 + n + 16); // B[0]; B[k] at b0+k

    std::ostringstream os;
    os << ".fus 4\n"
          ".reg k\n.reg n\n.reg a\n.reg b\n.reg t\n"
          ".reg b0\n.reg b1\n.reg b2\n.reg b3\n"
          ".reg d0\n.reg d1\n.reg d2\n.reg d3\n"
          ".reg t0\n.reg t1\n.reg t2\n.reg t3\n"
          ".const D0 " << d0 << "\n"
          ".const D1 " << d0 + 1 << "\n"
          ".const D2 " << d0 + 2 << "\n"
          ".const D3 " << d0 + 3 << "\n"
          ".const B0 " << b0 << "\n"
          ".const B1 " << b0 + 1 << "\n"
          ".const B2 " << b0 + 2 << "\n"
          ".const B3 " << b0 + 3 << "\n"
          ".init n " << n << "\n";
    emitWords(os, d0 + 1, data); // D[1..n]

    os <<
        // Startup (paper addresses 00:, 01:).
        "L00: -> L01 ; le n,#8 ; done || -> L01 ; iadd #1,#0,k ; done "
        "|| -> L01 ; iadd #0,#0,b ; done || -> L01 ; store #0,#B0 ; done\n"

        "L01: if cc0 LCLEAN L02 ; nop ; done "
        "|| if cc0 LCLEAN L02 ; nop ; done "
        "|| if cc0 LCLEAN L02 ; nop ; done "
        "|| if cc0 LCLEAN L02 ; nop ; done\n"

        // Outer-loop prologue (02:, 03:) and the four parallel inner
        // bit-count loops (04: - 08:), one per FU.
        "L02: -> L03 ; iadd #0,#0,b0 || -> L03 ; iadd #0,#0,b1 "
        "|| -> L03 ; iadd #0,#0,b2 || -> L03 ; iadd #0,#0,b3\n"

        "L03: -> L04 ; load #D0,k,d0 || -> L04 ; load #D1,k,d1 "
        "|| -> L04 ; load #D2,k,d2 || -> L04 ; load #D3,k,d3\n"

        "L04: -> L05 ; eq d0,#0 || -> L05 ; eq d1,#0 "
        "|| -> L05 ; eq d2,#0 || -> L05 ; eq d3,#0\n"

        "L05: if cc0 L10 L06 ; and d0,#1,t0 "
        "|| if cc1 L10 L06 ; and d1,#1,t1 "
        "|| if cc2 L10 L06 ; and d2,#1,t2 "
        "|| if cc3 L10 L06 ; and d3,#1,t3\n"

        "L06: -> L07 ; eq #0,t0 || -> L07 ; eq #0,t1 "
        "|| -> L07 ; eq #0,t2 || -> L07 ; eq #0,t3\n"

        "L07: if cc0 L04 L08 ; shr d0,#1,d0 "
        "|| if cc1 L04 L08 ; shr d1,#1,d1 "
        "|| if cc2 L04 L08 ; shr d2,#1,d2 "
        "|| if cc3 L04 L08 ; shr d3,#1,d3\n"

        "L08: -> L04 ; iadd b0,#1,b0 || -> L04 ; iadd b1,#1,b1 "
        "|| -> L04 ; iadd b2,#1,b2 || -> L04 ; iadd b3,#1,b3\n"

        // The 4-way barrier (paper address 10:).
        "L10: if all L11 L10 ; nop ; done "
        "|| if all L11 L10 ; nop ; done "
        "|| if all L11 L10 ; nop ; done "
        "|| if all L11 L10 ; nop ; done\n"

        // Software-pipelined accumulation and store-out (11: - 15:).
        "L11: -> L12 ; iadd b,b0,b ; done || -> L12 ; nop ; done "
        "|| -> L12 ; iadd k,#B0,a ; done || -> L12 ; nop ; done\n"

        "L12: -> L13 ; iadd b,b1,b ; done || -> L13 ; store b,a ; done "
        "|| -> L13 ; iadd k,#B1,a ; done || -> L13 ; nop ; done\n"

        "L13: -> L14 ; iadd b,b2,b ; done || -> L14 ; store b,a ; done "
        "|| -> L14 ; iadd k,#B2,a ; done || -> L14 ; isub n,k,t ; done\n"

        "L14: -> L15 ; iadd b,b3,b ; done || -> L15 ; store b,a ; done "
        "|| -> L15 ; iadd k,#B3,a ; done || -> L15 ; lt t,#4 ; done\n"

        "L15: if cc3 LCLEAN L02 ; iadd k,#4,k ; done "
        "|| if cc3 LCLEAN L02 ; store b,a ; done "
        "|| if cc3 LCLEAN L02 ; iadd #0,#0,b ; done "
        "|| if cc3 LCLEAN L02 ; nop ; done\n"

        // "Clean Up Code for less than 8 iterations remaining" is not
        // shown in the paper; we require n to avoid it and halt here.
        "LCLEAN: halt || halt || halt || halt\n";

    return assembleString(os.str());
}

Program
loop12Naive(const std::vector<float> &y, FuId width)
{
    if (y.size() < 2)
        fatal("loop12 needs at least two Y values");
    if (width < 4 || width > kMaxFus)
        fatal("loop12Naive needs 4..", kMaxFus, " FUs");

    const std::size_t n = y.size() - 1; // X(1..n)
    const Addr y0 = 64;                 // Y(k) at y0 + k
    const Addr x0 = static_cast<Addr>(y0 + y.size() + 16); // X(k) at x0+k

    std::ostringstream os;
    os.precision(9);
    os << ".fus " << width << "\n"
          ".reg k\n.reg n\n.reg y0\n.reg y1\n.reg x\n.reg ax\n"
          ".const Y0 " << y0 << "\n"
          ".const Y1 " << y0 + 1 << "\n"
          ".const X0 " << x0 << "\n"
          ".init k 1\n"
          ".init n " << n << "\n";
    os << ".float " << y0 + 1;
    for (float f : y)
        os << " " << f;
    os << "\n";

    // Build rows with explicit cells; unused FUs carry the same control
    // op and a nop so the program stays a single instruction stream.
    auto row = [&](const std::string &ctrl,
                   std::vector<std::string> dataOps) {
        std::ostringstream r;
        for (FuId fu = 0; fu < width; ++fu) {
            if (fu)
                r << " || ";
            r << ctrl << " ; "
              << (fu < dataOps.size() ? dataOps[fu] : "nop");
        }
        r << "\n";
        return r.str();
    };

    os << "LOOP: "
       << row("-> L2", {"load #Y0,k,y0", "load #Y1,k,y1", "eq k,n",
                        "iadd k,#X0,ax"});
    os << "L2: "
       << row("-> L3", {"fsub y1,y0,x", "iadd k,#1,k"});
    os << "L3: "
       << row("if cc2 LEND LOOP", {"store x,ax"});
    os << "LEND: " << row("halt", {});

    return assembleString(os.str());
}

} // namespace ximd::workloads
