/**
 * @file
 * Deterministic compiler-IR workloads for the Figure 13 tiling study.
 *
 * These are the threads the tiling/packing/composition pipeline
 * compiles: small reduction loops and mixed reduction+ILP shapes, all
 * drawn from a seeded Rng so every consumer (examples, benches, the
 * pipeline-equivalence golden) sees byte-identical inputs. The
 * pipelined-loop builders mirror the paper's Loop 12 and a simple
 * vector scale for the modulo scheduler.
 */

#ifndef XIMD_WORKLOADS_IR_THREADS_HH
#define XIMD_WORKLOADS_IR_THREADS_HH

#include <vector>

#include "sched/ir.hh"
#include "sched/modulo.hh"
#include "support/random.hh"

namespace ximd::workloads {

/**
 * A small reduction thread: out = sum of scaled inputs.
 * Reads n words at 1024 + 64t + 1.., writes the sum to 2048 + t.
 */
sched::IrProgram reductionThread(int t, unsigned n, SWord mult,
                                 Rng &rng);

/**
 * Mixed-shape thread: a reduction loop plus some straight-line ILP
 * (the bench_fig13 shape). Same memory layout as reductionThread.
 */
sched::IrProgram mixedThread(int t, Rng &rng);

/**
 * The compile_and_pack thread mix: @p count reduction threads with
 * sizes and multipliers drawn from Rng(@p seed).
 */
std::vector<sched::IrProgram> reductionThreadSet(int count,
                                                 std::uint64_t seed);

/** Loop 12 as a PipelineLoop: X(k) = Y(k+1) - Y(k). Depth 3. */
sched::PipelineLoop loop12Pipeline(Word n, Addr y0, Addr x0);

/** Vector scale: Z(k) = 3 * A(k). Depth 2. */
sched::PipelineLoop scalePipeline(Word n, Addr a0, Addr z0);

} // namespace ximd::workloads

#endif // XIMD_WORKLOADS_IR_THREADS_HH
