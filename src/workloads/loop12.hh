/**
 * @file
 * Software-pipelined Livermore Loop 12 (section 3.1).
 *
 * "Software Pipelining can be used effectively to schedule multiple
 * iterations of this loop in parallel."  loop12Pipelined() is a
 * modulo-scheduled kernel with initiation interval II = 1 on 8 FUs:
 * every cycle starts one iteration (two loads + address computation),
 * finishes the previous one's subtract, and stores the one before
 * that. Register sets A/B alternate between odd/even iterations
 * (modulo variable expansion). Total cost is n + 2 cycles + halt,
 * against 3n + 2 for the naive schedule (kernels.hh loop12Naive).
 *
 * The program runs identically on the XIMD and VLIW machines (it is a
 * single instruction stream); Y is padded with two scratch words so
 * the drained pipeline's speculative loads stay in range.
 */

#ifndef XIMD_WORKLOADS_LOOP12_HH
#define XIMD_WORKLOADS_LOOP12_HH

#include <vector>

#include "isa/program.hh"

namespace ximd::workloads {

/**
 * II=1 software-pipelined Loop 12 on 8 FUs. y = Y(1..m); computes
 * X(k) = Y(k+1) - Y(k) for k = 1..m-1. Requires m >= 5 (n >= 4).
 * Symbols "Y0"/"X0" are the array bases (element k at base + k).
 */
Program loop12Pipelined(const std::vector<float> &y);

} // namespace ximd::workloads

#endif // XIMD_WORKLOADS_LOOP12_HH
