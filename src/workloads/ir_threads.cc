#include "workloads/ir_threads.hh"

namespace ximd::workloads {

using sched::IrBuilder;
using sched::IrProgram;
using sched::IrValue;
using sched::PipelineLoop;
using sched::PipeOp;
using sched::PipeVal;
using sched::VregId;

IrProgram
reductionThread(int t, unsigned n, SWord mult, Rng &rng)
{
    const Addr in = 1024 + static_cast<Addr>(t) * 64;
    const Addr out = 2048 + static_cast<Addr>(t);

    IrBuilder b;
    const VregId i = b.newVreg();
    const VregId sum = b.newVreg();
    b.setInit(i, 0);
    b.setInit(sum, 0);
    for (unsigned k = 1; k <= n; ++k)
        b.setMemInit(in + k, static_cast<Word>(rng.range(0, 99)));
    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
    const IrValue v = b.emitLoad(IrValue::immRaw(in), IrValue::reg(i));
    const IrValue s = b.emit(Opcode::Imult, v, IrValue::immInt(mult));
    b.emitTo(sum, Opcode::Iadd, IrValue::reg(sum), s);
    const int cmp =
        b.emitCompare(Opcode::Eq, IrValue::reg(i),
                      IrValue::immInt(static_cast<SWord>(n)));
    b.branch(cmp, "end", "loop");
    b.startBlock("end");
    b.emitStore(IrValue::reg(sum), IrValue::immRaw(out));
    b.halt();
    return b.finish();
}

IrProgram
mixedThread(int t, Rng &rng)
{
    const unsigned n = static_cast<unsigned>(rng.range(3, 20));
    const SWord mult = static_cast<SWord>(rng.range(1, 9));
    const unsigned ilp = static_cast<unsigned>(rng.range(2, 10));
    const Addr in = 1024 + static_cast<Addr>(t) * 64;
    const Addr out = 2048 + static_cast<Addr>(t);

    IrBuilder b;
    const VregId i = b.newVreg();
    const VregId sum = b.newVreg();
    b.setInit(i, 0);
    b.setInit(sum, 0);
    for (unsigned k = 1; k <= n; ++k)
        b.setMemInit(in + k, static_cast<Word>(rng.range(0, 999)));

    b.startBlock("head");
    std::vector<IrValue> vals;
    for (unsigned j = 0; j < ilp; ++j)
        vals.push_back(b.emit(
            Opcode::Iadd,
            IrValue::immInt(static_cast<SWord>(rng.range(0, 50))),
            IrValue::immInt(static_cast<SWord>(rng.range(0, 50)))));
    IrValue acc = vals[0];
    for (unsigned j = 1; j < ilp; ++j)
        acc = b.emit(Opcode::Xor, acc, vals[j]);
    b.jump("loop");

    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
    const IrValue v = b.emitLoad(IrValue::immRaw(in), IrValue::reg(i));
    const IrValue s = b.emit(Opcode::Imult, v, IrValue::immInt(mult));
    b.emitTo(sum, Opcode::Iadd, IrValue::reg(sum), s);
    const int cmp =
        b.emitCompare(Opcode::Eq, IrValue::reg(i),
                      IrValue::immInt(static_cast<SWord>(n)));
    b.branch(cmp, "end", "loop");

    b.startBlock("end");
    const IrValue mix = b.emit(Opcode::Iadd, IrValue::reg(sum), acc);
    b.emitStore(mix, IrValue::immRaw(out));
    b.halt();
    return b.finish();
}

std::vector<IrProgram>
reductionThreadSet(int count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<IrProgram> threads;
    threads.reserve(static_cast<std::size_t>(count));
    for (int t = 0; t < count; ++t)
        threads.push_back(reductionThread(
            t, static_cast<unsigned>(rng.range(4, 16)),
            static_cast<SWord>(rng.range(1, 7)), rng));
    return threads;
}

PipelineLoop
loop12Pipeline(Word n, Addr y0, Addr x0)
{
    PipelineLoop loop;
    loop.numLocals = 4; // y0, y1, x, ax
    loop.tripCount = n;
    PipeOp ld0{Opcode::Load, PipeVal::immRaw(y0), PipeVal::induction(),
               0};
    PipeOp ld1{Opcode::Load, PipeVal::immRaw(y0 + 1),
               PipeVal::induction(), 1};
    PipeOp ax{Opcode::Iadd, PipeVal::induction(), PipeVal::immRaw(x0),
              3};
    PipeOp sub{Opcode::Fsub, PipeVal::localVal(1), PipeVal::localVal(0),
               2};
    PipeOp st{Opcode::Store, PipeVal::localVal(2), PipeVal::localVal(3),
              -1};
    loop.body = {ld0, ld1, ax, sub, st};
    return loop;
}

PipelineLoop
scalePipeline(Word n, Addr a0, Addr z0)
{
    PipelineLoop loop;
    loop.numLocals = 3; // a, z, az
    loop.tripCount = n;
    loop.body = {
        {Opcode::Load, PipeVal::immRaw(a0), PipeVal::induction(), 0},
        {Opcode::Iadd, PipeVal::induction(), PipeVal::immRaw(z0), 2},
        {Opcode::Imult, PipeVal::localVal(0), PipeVal::immInt(3), 1},
        {Opcode::Store, PipeVal::localVal(1), PipeVal::localVal(2), -1},
    };
    return loop;
}

} // namespace ximd::workloads
