/**
 * @file
 * Seeded random lockstep programs for differential testing.
 *
 * randomLockstepProgram() generates straight-line + forward-branch
 * programs in which every FU carries the *same* control operation on
 * every row. Under that restriction an XIMD machine (one instruction
 * stream per FU, but all streams identical) and a VLIW machine (one
 * shared stream) execute the same trajectory, so their final
 * architectural state — registers, memory, condition codes — must
 * match bit for bit. The differential fuzz suite exploits this:
 * generate, run both modes, compare Machine::archStateHash().
 *
 * Construction rules (these make the programs ximd-lint clean and
 * fault-free by construction):
 *  - row 0 is a compare on FU 0, so cc0 dominates every later branch;
 *  - branches are forward-only ("if cc0 L<target> L<next>" with
 *    target > row), so every program terminates;
 *  - each FU owns a disjoint register quartet and a disjoint memory
 *    window; loads/stores use immediate addresses inside the window;
 *  - arithmetic is restricted to wrap-safe ops (no division).
 *
 * Everything is a pure function of RandProgOptions, so a failing seed
 * reproduces exactly.
 */

#ifndef XIMD_WORKLOADS_RANDPROG_HH
#define XIMD_WORKLOADS_RANDPROG_HH

#include <string>

#include "isa/program.hh"
#include "sched/ir.hh"

namespace ximd::workloads {

/** Shape of a random lockstep program. */
struct RandProgOptions
{
    std::uint64_t seed = 1;
    FuId width = 4;            ///< FUs (1..8).
    unsigned rows = 40;        ///< Instruction rows before the halt.
    unsigned branchPercent = 25; ///< Chance a row branches (0..100).
    Addr memBase = 128;        ///< First FU's memory window.
    unsigned memWordsPerFu = 8; ///< Window size per FU.
};

/** Assembly text of the program (for corpus dumps / debugging). */
std::string randomLockstepSource(const RandProgOptions &opts);

/** Assembled program; asserts the generator's invariants. */
Program randomLockstepProgram(const RandProgOptions &opts);

/**
 * Shape of a random counted loop in compiler IR (the exact-scheduler
 * corpus, sched/exact.hh).
 */
struct RandLoopOptions
{
    std::uint64_t seed = 1;
    unsigned bodyOps = 8;    ///< Random body ops (besides
                             ///< induction/compare, 0..~24).
    unsigned tripCount = 6;  ///< Loop iterations (>= 1).
    Addr inBase = 1100;      ///< Input array base (trip words).
    Addr outBase = 2100;     ///< Output array base.
};

/**
 * Seeded random counted loop: a loop block whose induction variable
 * v0 counts 1..tripCount, a wrap-safe random body (loads from
 * inBase+v0, integer/bitwise arithmetic over the live values, an
 * occasional store to outBase+v0, an accumulator in v1), exactly one
 * compare feeding the back branch, and an end block that stores the
 * accumulator to outBase and halts. Valid and verifier-clean by
 * construction; a pure function of the options, so a failing seed
 * reproduces exactly. One compare per block keeps per-FU condition
 * codes comparable across scheduler tiers (see sched/exact.hh).
 * Reference semantics: sched::interpretIr.
 */
sched::IrProgram randomLoopIr(const RandLoopOptions &opts);

} // namespace ximd::workloads

#endif // XIMD_WORKLOADS_RANDPROG_HH
