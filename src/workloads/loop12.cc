#include "workloads/loop12.hh"

#include <sstream>

#include "asm/assembler.hh"
#include "support/logging.hh"

namespace ximd::workloads {

Program
loop12Pipelined(const std::vector<float> &y)
{
    if (y.size() < 5)
        fatal("loop12Pipelined requires at least 5 Y values (n >= 4); "
              "use loop12Naive for shorter vectors");

    const std::size_t n = y.size() - 1; // iterations / X elements
    const Addr y0 = 64;                 // Y(k) at y0 + k
    const Addr x0 = static_cast<Addr>(y0 + y.size() + 16);
    const std::size_t kend1 = n + 1;    // compare value for the latch

    std::ostringstream os;
    os.precision(9);
    os << ".fus 8\n"
          ".reg k\n"
          ".reg y0a\n.reg y1a\n.reg xa\n.reg axa\n"
          ".reg y0b\n.reg y1b\n.reg xb\n.reg axb\n"
          ".const Y0 " << y0 << "\n"
          ".const Y1 " << y0 + 1 << "\n"
          ".const X0 " << x0 << "\n"
          ".const KEND1 " << kend1 << "\n"
          ".init k 1\n";
    os << ".float " << y0 + 1;
    for (float f : y)
        os << " " << f;
    // Two scratch words cover the drained pipeline's trailing loads.
    os << " 0 0\n";

    // Stage plan (iteration i): S0 loads + address at cycle i-1,
    // S1 subtract at cycle i, S2 store at cycle i+1. Odd iterations
    // use register set A, even ones set B. At cycle t the loop counter
    // k reads t+1.
    os <<
        // P0 (cycle 0): S0 of iteration 1 (set A).
        "P0: -> P1 ; load #Y0,k,y0a || -> P1 ; load #Y1,k,y1a "
        "|| -> P1 ; iadd k,#X0,axa || -> P1 ; nop "
        "|| -> P1 ; nop || -> P1 ; iadd k,#1,k "
        "|| -> P1 ; eq k,#KEND1 || -> P1 ; nop\n"

        // P1 (cycle 1): S0 of iteration 2 (set B) + S1 of iteration 1.
        "P1: -> K0 ; load #Y0,k,y0b || -> K0 ; load #Y1,k,y1b "
        "|| -> K0 ; iadd k,#X0,axb || -> K0 ; fsub y1a,y0a,xa "
        "|| -> K0 ; nop || -> K0 ; iadd k,#1,k "
        "|| -> K0 ; eq k,#KEND1 || -> K0 ; nop\n"

        // K0 (odd-iteration row): S0 odd (A), S1 even (B), S2 odd (A).
        "K0: if cc6 LEND K1 ; load #Y0,k,y0a "
        "|| if cc6 LEND K1 ; load #Y1,k,y1a "
        "|| if cc6 LEND K1 ; iadd k,#X0,axa "
        "|| if cc6 LEND K1 ; fsub y1b,y0b,xb "
        "|| if cc6 LEND K1 ; store xa,axa "
        "|| if cc6 LEND K1 ; iadd k,#1,k "
        "|| if cc6 LEND K1 ; eq k,#KEND1 "
        "|| if cc6 LEND K1 ; nop\n"

        // K1 (even-iteration row): mirror image of K0.
        "K1: if cc6 LEND K0 ; load #Y0,k,y0b "
        "|| if cc6 LEND K0 ; load #Y1,k,y1b "
        "|| if cc6 LEND K0 ; iadd k,#X0,axb "
        "|| if cc6 LEND K0 ; fsub y1a,y0a,xa "
        "|| if cc6 LEND K0 ; store xb,axb "
        "|| if cc6 LEND K0 ; iadd k,#1,k "
        "|| if cc6 LEND K0 ; eq k,#KEND1 "
        "|| if cc6 LEND K0 ; nop\n"

        "LEND: halt || halt || halt || halt "
        "|| halt || halt || halt || halt\n";

    return assembleString(os.str());
}

} // namespace ximd::workloads
