/**
 * @file
 * Parameterized MINMAX and generalized parallel-search workloads.
 *
 * Section 3.2's point: "Each iteration of this loop contains two
 * critical conditional branches which can be performed in parallel. A
 * VLIW processor can generally only perform one control operation at a
 * time. XIMD can perform both control operations in parallel."
 *
 * minmaxXimd() is the paper's Example 2 structure over arbitrary data
 * (3 cycles per element); minmaxVliw() is the best equal-work VLIW
 * schedule we found, with the two data-dependent updates serialized
 * (5 cycles per element).
 *
 * multiSearch*() generalizes the pattern to S simultaneous data-
 * dependent counters (count of elements divisible by the s-th prime):
 * the XIMD iteration stays 6 cycles for any S, while the VLIW
 * iteration needs 2S+4 cycles — the crossover series for bench EX2.
 */

#ifndef XIMD_WORKLOADS_MINMAX_HH
#define XIMD_WORKLOADS_MINMAX_HH

#include <vector>

#include "isa/program.hh"

namespace ximd::workloads {

/** XIMD MINMAX over @p data (terminating Example-2 structure).
 *  Results in registers "min" / "max". Requires data.size() >= 1. */
Program minmaxXimd(const std::vector<SWord> &data);

/** VLIW MINMAX over @p data; same registers; one branch per cycle. */
Program minmaxVliw(const std::vector<SWord> &data);

/** Highest supported number of concurrent searches. */
inline constexpr unsigned kMaxSearches = 6;

/** Divisors used by search s = 0..5. */
unsigned searchDivisor(unsigned s);

/**
 * XIMD multi-search: count elements divisible by searchDivisor(s) for
 * s = 0..searches-1. Uses searches+2 FUs. Counter registers are named
 * "c0".."c5". @p data must be non-negative. Requires 1 <= searches <=
 * kMaxSearches and data.size() >= 1.
 */
Program multiSearchXimd(unsigned searches,
                        const std::vector<SWord> &data);

/** VLIW multi-search: same computation, branches serialized. */
Program multiSearchVliw(unsigned searches,
                        const std::vector<SWord> &data);

/** Reference counts for the multi-search workload. */
std::vector<Word> referenceMultiSearch(unsigned searches,
                                       const std::vector<SWord> &data);

} // namespace ximd::workloads

#endif // XIMD_WORKLOADS_MINMAX_HH
