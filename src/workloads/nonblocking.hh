/**
 * @file
 * The Figure 12 workload: two concurrent processes with multiple
 * non-blocking synchronizations (section 3.4).
 *
 * Process 1 (SSET {0,1,2,3}) reads values a, b, c — in order — from
 * input port INA, publishing each one's availability by holding its
 * FU's sync signal at DONE (a on SS0, b on SS1, c on SS2). Process 2
 * (SSET {4,5,6,7}) mirrors this with x, y, z from INB (SS4..SS6).
 * FU3 writes x, y, z to output port OUTA as they become available;
 * FU7 writes a, b, c to OUTB. A standard all-FU barrier ends the
 * program, "to allow later code to redefine the meaning of these
 * signals".
 *
 * Three synchronization styles are provided so the Figure 12 claim —
 * non-blocking SS bits beat both lock-step barriers and memory flags —
 * can be measured:
 *
 *  - nonblockingXimd():    the paper's scheme (1-cycle SS tests).
 *  - lockstepBarrier():    a full barrier after every value pair.
 *  - memoryFlagXimd():     same dataflow, but availability signalled
 *                          through memory flags polled with a
 *                          3-cycle load/compare/branch loop.
 *
 * Port window addresses are exported as program symbols "INA", "OUTA",
 * "INB", "OUTB" (attach a ScriptedInputPort / OutputPort at each).
 * Input values must be non-zero (zero means "not ready").
 */

#ifndef XIMD_WORKLOADS_NONBLOCKING_HH
#define XIMD_WORKLOADS_NONBLOCKING_HH

#include "isa/program.hh"

namespace ximd::workloads {

/** Number of values each process transfers (a,b,c / x,y,z). */
inline constexpr unsigned kNonblockingValues = 3;

/** The paper's non-blocking SS-bit synchronization (8 FUs). */
Program nonblockingXimd();

/** Baseline: full-machine barrier after every value pair. */
Program lockstepBarrier();

/** Baseline: availability signalled through polled memory flags. */
Program memoryFlagXimd();

} // namespace ximd::workloads

#endif // XIMD_WORKLOADS_NONBLOCKING_HH
