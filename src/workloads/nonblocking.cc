#include "workloads/nonblocking.hh"

#include <string>

#include "support/logging.hh"

namespace ximd::workloads {

namespace {

constexpr FuId kWidth = 8;

// Memory map (word addresses).
constexpr Addr kInA = 16;
constexpr Addr kOutA = 17;
constexpr Addr kInB = 18;
constexpr Addr kOutB = 19;
constexpr Addr kFlags = 24; // a,b,c,x,y,z flags (memory-flag variant)

// Shared value registers and per-FU scratch registers.
constexpr RegId kValueReg[6] = {10, 11, 12, 13, 14, 15}; // a b c x y z
constexpr RegId kScratchBase = 20;                       // t0..t7

const char *const kValueName[6] = {"ra", "rb", "rc", "rx", "ry", "rz"};

/** Column-oriented builder over a pre-sized grid of halt parcels. */
class Grid
{
  public:
    Grid(InstAddr rows)
        : prog_(kWidth)
    {
        Parcel filler(ControlOp::halt(), DataOp::nop());
        for (InstAddr a = 0; a < rows; ++a)
            prog_.addUniformRow(filler);
    }

    void
    set(InstAddr addr, FuId fu, ControlOp ctrl,
        DataOp data = DataOp::nop(), SyncVal sync = SyncVal::Busy)
    {
        prog_.parcel(addr, fu) = Parcel(ctrl, data, sync);
    }

    Program
    finish()
    {
        prog_.setSymbol("INA", kInA);
        prog_.setSymbol("OUTA", kOutA);
        prog_.setSymbol("INB", kInB);
        prog_.setSymbol("OUTB", kOutB);
        prog_.setSymbol("FLAGS", kFlags);
        for (unsigned v = 0; v < 6; ++v)
            prog_.nameRegister(kValueName[v], kValueReg[v]);
        prog_.validate();
        return std::move(prog_);
    }

  private:
    Program prog_;
};

/** Three-row polling loop: consume one non-zero word from @p port into
 *  @p dst, using the FU's own condition code. Rows base..base+2;
 *  continues at base+3. */
void
emitPortPoll(Grid &g, FuId fu, InstAddr base, Addr port, RegId dst)
{
    g.set(base, fu, ControlOp::jump(base + 1),
          DataOp::makeLoad(Operand::imm(port), Operand::immInt(0), dst));
    g.set(base + 1, fu, ControlOp::jump(base + 2),
          DataOp::makeCompare(Opcode::Eq, Operand::reg(dst),
                              Operand::immInt(0)));
    g.set(base + 2, fu, ControlOp::onCc(fu, base, base + 3),
          DataOp::nop());
}

/** One-row wait: spin at @p addr until SS[src] == DONE, then fall to
 *  addr+1. */
void
emitSyncWait(Grid &g, FuId fu, InstAddr addr, FuId src)
{
    g.set(addr, fu, ControlOp::onSync(src, addr + 1, addr),
          DataOp::nop());
}

/** Park: spin at @p addr holding DONE until every FU signals DONE,
 *  then branch to @p fin. */
void
emitPark(Grid &g, FuId fu, InstAddr addr, InstAddr fin)
{
    g.set(addr, fu, ControlOp::onAllSync(fin, addr), DataOp::nop(),
          SyncVal::Done);
}

/** Three-row memory-flag wait: poll M(flag) until non-zero. */
void
emitFlagPoll(Grid &g, FuId fu, InstAddr base, Addr flag)
{
    const RegId scratch = static_cast<RegId>(kScratchBase + fu);
    g.set(base, fu, ControlOp::jump(base + 1),
          DataOp::makeLoad(Operand::imm(flag), Operand::immInt(0),
                           scratch));
    g.set(base + 1, fu, ControlOp::jump(base + 2),
          DataOp::makeCompare(Opcode::Eq, Operand::reg(scratch),
                              Operand::immInt(0)));
    g.set(base + 2, fu, ControlOp::onCc(fu, base, base + 3),
          DataOp::nop());
}

DataOp
storeOp(RegId value, Addr addr)
{
    return DataOp::makeStore(Operand::reg(value), Operand::imm(addr));
}

} // namespace

Program
nonblockingXimd()
{
    // Column layouts (rows 0..6; FIN at 7):
    //   producers (FU0, FU4):        poll(0-2), park(3)
    //   chained producers (1,2,5,6): wait(0), poll(1-3), park(4)
    //   writers (FU3, FU7):          wait/store x3 (0-5), park(6)
    const InstAddr fin = 7;
    Grid g(fin + 1);

    // First producers: a on FU0 from INA, x on FU4 from INB.
    emitPortPoll(g, 0, 0, kInA, kValueReg[0]);
    emitPark(g, 0, 3, fin);
    emitPortPoll(g, 4, 0, kInB, kValueReg[3]);
    emitPark(g, 4, 3, fin);

    // Chained producers: b after a, c after b; y after x, z after y.
    const struct
    {
        FuId fu;
        FuId after;
        Addr port;
        unsigned value;
    } chains[] = {
        {1, 0, kInA, 1}, {2, 1, kInA, 2}, // b, c
        {5, 4, kInB, 4}, {6, 5, kInB, 5}, // y, z
    };
    for (const auto &c : chains) {
        emitSyncWait(g, c.fu, 0, c.after);
        emitPortPoll(g, c.fu, 1, c.port, kValueReg[c.value]);
        emitPark(g, c.fu, 4, fin);
    }

    // Writers: FU3 emits x,y,z to OUTA; FU7 emits a,b,c to OUTB.
    const struct
    {
        FuId fu;
        Addr port;
        unsigned firstValue; // index into kValueReg
        FuId firstSignal;    // SS publishing that value
    } writers[] = {
        {3, kOutA, 3, 4}, // x,y,z published on SS4,SS5,SS6
        {7, kOutB, 0, 0}, // a,b,c published on SS0,SS1,SS2
    };
    for (const auto &w : writers) {
        for (unsigned i = 0; i < kNonblockingValues; ++i) {
            const InstAddr waitRow = 2 * i;
            emitSyncWait(g, w.fu, waitRow, w.firstSignal + i);
            g.set(waitRow + 1, w.fu, ControlOp::jump(waitRow + 2),
                  storeOp(kValueReg[w.firstValue + i], w.port));
        }
        emitPark(g, w.fu, 6, fin);
    }

    return g.finish();
}

Program
lockstepBarrier()
{
    // Three stages of 5 rows each (poll 3, barrier, write), then FIN.
    constexpr InstAddr stageRows = 5;
    const InstAddr fin = kNonblockingValues * stageRows;
    Grid g(fin + 1);

    for (unsigned s = 0; s < kNonblockingValues; ++s) {
        const InstAddr base = s * stageRows;
        const InstAddr barrier = base + 3;
        const InstAddr write = base + 4;
        const InstAddr next = write + 1; // next stage base, or FIN

        for (FuId fu = 0; fu < kWidth; ++fu) {
            if (fu == s) {
                emitPortPoll(g, fu, base, kInA, kValueReg[s]);
            } else if (fu == 4 + s) {
                emitPortPoll(g, fu, base, kInB, kValueReg[3 + s]);
            } else {
                g.set(base, fu, ControlOp::jump(barrier));
            }
            g.set(barrier, fu, ControlOp::onAllSync(write, barrier),
                  DataOp::nop(), SyncVal::Done);
            DataOp wr = DataOp::nop();
            if (fu == 3)
                wr = storeOp(kValueReg[3 + s], kOutA);
            else if (fu == 7)
                wr = storeOp(kValueReg[s], kOutB);
            g.set(write, fu,
                  next == fin ? ControlOp::halt()
                              : ControlOp::jump(next),
                  wr);
        }
    }
    return g.finish();
}

Program
memoryFlagXimd()
{
    // Same dataflow as nonblockingXimd(), but availability travels
    // through memory flags. Producers add a flag store; consumers poll
    // flags with a 3-row loop. Final join stays an ALL-sync barrier so
    // only the per-value handoff mechanism differs.
    //
    // Column layouts:
    //   FU0/FU4:         poll(0-2), flag store(3), park(4)
    //   FU1/2/5/6:       flag wait(0-2), poll(3-5), flag store(6),
    //                    park(7)
    //   FU3/FU7:         3 x [flag wait(3 rows) + store(1 row)] =
    //                    rows 0-11, park(12)
    const InstAddr fin = 13;
    Grid g(fin + 1);

    auto flagAddr = [](unsigned value) {
        return static_cast<Addr>(kFlags + value);
    };
    auto storeFlag = [&](unsigned value) {
        return DataOp::makeStore(Operand::immInt(1),
                                 Operand::imm(flagAddr(value)));
    };

    // First producers.
    const struct
    {
        FuId fu;
        Addr port;
        unsigned value;
    } firsts[] = {{0, kInA, 0}, {4, kInB, 3}};
    for (const auto &f : firsts) {
        emitPortPoll(g, f.fu, 0, f.port, kValueReg[f.value]);
        g.set(3, f.fu, ControlOp::jump(4), storeFlag(f.value));
        emitPark(g, f.fu, 4, fin);
    }

    // Chained producers wait on the predecessor's flag.
    const struct
    {
        FuId fu;
        unsigned afterValue;
        Addr port;
        unsigned value;
    } chains[] = {
        {1, 0, kInA, 1}, {2, 1, kInA, 2},
        {5, 3, kInB, 4}, {6, 4, kInB, 5},
    };
    for (const auto &c : chains) {
        emitFlagPoll(g, c.fu, 0, flagAddr(c.afterValue));
        emitPortPoll(g, c.fu, 3, c.port, kValueReg[c.value]);
        g.set(6, c.fu, ControlOp::jump(7), storeFlag(c.value));
        emitPark(g, c.fu, 7, fin);
    }

    // Writers poll each value's flag, then store it out.
    const struct
    {
        FuId fu;
        Addr port;
        unsigned firstValue;
    } writers[] = {{3, kOutA, 3}, {7, kOutB, 0}};
    for (const auto &w : writers) {
        for (unsigned i = 0; i < kNonblockingValues; ++i) {
            const InstAddr base = 4 * i;
            emitFlagPoll(g, w.fu, base, flagAddr(w.firstValue + i));
            g.set(base + 3, w.fu, ControlOp::jump(base + 4),
                  storeOp(kValueReg[w.firstValue + i], w.port));
        }
        emitPark(g, w.fu, 12, fin);
    }

    return g.finish();
}

} // namespace ximd::workloads
