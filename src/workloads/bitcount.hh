/**
 * @file
 * Parameterized BITCOUNT workloads (section 3.3 / Example 3).
 *
 * The XIMD version runs four data-dependent inner loops concurrently
 * (one per FU) and joins at an explicit ALL-sync barrier; per group of
 * four elements it costs roughly the *longest* element's loop. Two
 * VLIW baselines are provided:
 *
 *  - serial: the natural single-stream code, one element at a time;
 *    costs roughly the *sum* of the loops.
 *  - lockstep: four elements advanced bit-by-bit branchlessly
 *    (b += d & 1), iterating until OR(d0..d3) == 0; costs the longest
 *    element's bit-length, but each lockstep iteration needs an extra
 *    OR-reduction and so is slower than an XIMD iteration.
 *
 * All variants compute the true cumulative sums B[i] = popcount(D[1])
 * + ... + popcount(D[i]) with B[0] = 0 (the paper's printed listing
 * resets the accumulator between groups; bitcount1Paper() keeps that
 * behaviour, these generators fix it). Program symbols "D0" and "B0"
 * give the array bases; D[k] is at D0+k and B[k] at B0+k.
 */

#ifndef XIMD_WORKLOADS_BITCOUNT_HH
#define XIMD_WORKLOADS_BITCOUNT_HH

#include <vector>

#include "isa/program.hh"

namespace ximd::workloads {

/** XIMD barrier-synchronized bitcount. Requires n % 4 == 0, n >= 4. */
Program bitcountXimd(const std::vector<Word> &data);

/** VLIW single-stream, one element at a time. Any n >= 1. */
Program bitcountVliwSerial(const std::vector<Word> &data);

/** VLIW lockstep over groups of four. Requires n % 4 == 0, n >= 4. */
Program bitcountVliwLockstep(const std::vector<Word> &data);

} // namespace ximd::workloads

#endif // XIMD_WORKLOADS_BITCOUNT_HH
