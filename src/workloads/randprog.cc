#include "workloads/randprog.hh"

#include <sstream>
#include <vector>

#include "asm/assembler.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace ximd::workloads {

namespace {

constexpr unsigned kRegsPerFu = 4;

std::string
regName(FuId fu, unsigned r)
{
    return "f" + std::to_string(fu) + "r" + std::to_string(r);
}

/** A source operand: one of the FU's own registers or an immediate. */
std::string
source(Rng &rng, FuId fu)
{
    if (rng.range(0, 2) == 0)
        return "#" + std::to_string(rng.range(0, 15));
    return regName(fu, static_cast<unsigned>(
                           rng.range(0, kRegsPerFu - 1)));
}

/** One wrap-safe data op for @p fu (no division, bounded shifts). */
std::string
dataOp(Rng &rng, const RandProgOptions &o, FuId fu)
{
    const Addr lo = o.memBase + fu * o.memWordsPerFu;
    const std::string dest = regName(
        fu, static_cast<unsigned>(rng.range(0, kRegsPerFu - 1)));
    switch (rng.range(0, 9)) {
      case 0:
        return "load #" +
               std::to_string(lo + static_cast<Addr>(rng.range(
                                       0, o.memWordsPerFu - 1))) +
               ",#0," + dest;
      case 1:
        return "store " + source(rng, fu) + ",#" +
               std::to_string(lo + static_cast<Addr>(rng.range(
                                       0, o.memWordsPerFu - 1)));
      case 2:
        return "shl " + source(rng, fu) + ",#" +
               std::to_string(rng.range(1, 3)) + "," + dest;
      case 3:
        return "nop";
      default: {
        static const char *alu[] = {"iadd", "isub", "and", "or",
                                    "xor"};
        return std::string(alu[rng.range(0, 4)]) + " " +
               source(rng, fu) + "," + source(rng, fu) + "," + dest;
      }
    }
}

/** FU 0's compare flavor (writes cc0). */
std::string
compareOp(Rng &rng)
{
    static const char *cmp[] = {"lt", "gt", "eq", "ne", "le", "ge"};
    return std::string(cmp[rng.range(0, 5)]) + " " +
           regName(0, static_cast<unsigned>(
                          rng.range(0, kRegsPerFu - 1))) +
           "," + source(rng, 0);
}

} // namespace

std::string
randomLockstepSource(const RandProgOptions &o)
{
    if (o.width < 1 || o.width > 8)
        fatal("randprog: width must be 1..8, got ", o.width);
    if (o.rows < 2)
        fatal("randprog: need at least 2 rows, got ", o.rows);
    if (o.memWordsPerFu < 1)
        fatal("randprog: empty memory windows");

    Rng rng(o.seed);
    std::ostringstream os;
    os << ".fus " << o.width << "\n";
    for (FuId f = 0; f < o.width; ++f)
        for (unsigned r = 0; r < kRegsPerFu; ++r)
            os << ".reg " << regName(f, r) << "\n.init "
               << regName(f, r) << " " << rng.range(-100, 100)
               << "\n";
    for (FuId f = 0; f < o.width; ++f) {
        os << ".word " << o.memBase + f * o.memWordsPerFu;
        for (unsigned w = 0; w < o.memWordsPerFu; ++w)
            os << " " << rng.range(-100, 100);
        os << "\n";
    }

    // Row 0 is always a compare so cc0 dominates every branch row.
    // Ops are drawn per FU even on branch rows, keeping the data and
    // control streams independent draws of the same generator state.
    for (unsigned row = 0; row < o.rows; ++row) {
        const bool canBranch = row > 0 && row + 2 <= o.rows;
        const bool branch =
            canBranch &&
            rng.range(0, 99) < static_cast<std::int64_t>(
                                   o.branchPercent);
        std::string control;
        if (branch) {
            const unsigned target = static_cast<unsigned>(
                rng.range(row + 1, o.rows));
            control = "if cc0 L" + std::to_string(target) + " L" +
                      std::to_string(row + 1);
        } else {
            control = "-> L" + std::to_string(row + 1);
        }
        os << "L" << row << ":";
        for (FuId f = 0; f < o.width; ++f) {
            std::string op;
            if (f == 0 && (row == 0 || rng.range(0, 4) == 0))
                op = compareOp(rng);
            else
                op = dataOp(rng, o, f);
            os << (f ? " || " : " ") << control << " ; " << op;
        }
        os << "\n";
    }
    os << "L" << o.rows << ":";
    for (FuId f = 0; f < o.width; ++f)
        os << (f ? " || " : " ") << "halt";
    os << "\n";
    return os.str();
}

Program
randomLockstepProgram(const RandProgOptions &o)
{
    return assembleString(randomLockstepSource(o));
}

sched::IrProgram
randomLoopIr(const RandLoopOptions &o)
{
    XIMD_ASSERT(o.tripCount >= 1, "randomLoopIr: tripCount >= 1");
    using sched::IrValue;
    using sched::VregId;
    Rng rng(o.seed ^ 0xC0DE'5EED'1991'0403ULL);
    sched::IrBuilder b;

    const VregId vInd = b.newVreg(); // v0: induction counter
    const VregId vAcc = b.newVreg(); // v1: accumulator
    b.setInit(vInd, 0);
    b.setInit(vAcc, static_cast<Word>(rng.range(0, 999)));
    for (unsigned k = 1; k <= o.tripCount; ++k)
        b.setMemInit(o.inBase + k,
                     static_cast<Word>(rng.range(0, 100000)));

    b.startBlock("loop");
    b.emitTo(vInd, Opcode::Iadd, IrValue::reg(vInd),
             IrValue::immInt(1));

    // Wrap-safe integer/bitwise body over the live values. Word
    // arithmetic wraps identically in the machine and in
    // interpretIr, so nothing here can fault or diverge.
    static const Opcode kArith[] = {Opcode::Iadd, Opcode::Isub,
                                    Opcode::Imult, Opcode::Xor,
                                    Opcode::And,   Opcode::Or};
    std::vector<VregId> live = {vInd, vAcc};
    const auto liveSrc = [&] {
        return IrValue::reg(live[static_cast<std::size_t>(rng.range(
            0, static_cast<int>(live.size()) - 1))]);
    };
    bool stored = false;
    for (unsigned i = 0; i < o.bodyOps; ++i) {
        switch (rng.range(0, 5)) {
          case 0: { // load from the input window
            const IrValue v = b.emitLoad(
                IrValue::immInt(static_cast<SWord>(o.inBase)),
                IrValue::reg(vInd));
            live.push_back(v.vreg);
            break;
          }
          case 1: // fold a value into the accumulator (RAW chain)
            b.emitTo(vAcc,
                     kArith[static_cast<std::size_t>(rng.range(0, 2))],
                     IrValue::reg(vAcc), liveSrc());
            break;
          case 2: { // store to this iteration's output slot
            if (stored)
                break; // one store/iteration: no in-loop WAW on memory
            const IrValue addr = b.emit(
                Opcode::Iadd, IrValue::reg(vInd),
                IrValue::immInt(static_cast<SWord>(o.outBase)));
            b.emitStore(liveSrc(), addr);
            live.push_back(addr.vreg);
            stored = true;
            break;
          }
          default: { // fresh temp from two live/immediate sources
            const IrValue rhs =
                rng.chance(0.3)
                    ? IrValue::immInt(
                          static_cast<SWord>(rng.range(1, 63)))
                    : liveSrc();
            const IrValue v = b.emit(
                kArith[static_cast<std::size_t>(rng.range(0, 5))],
                liveSrc(), rhs);
            live.push_back(v.vreg);
            break;
          }
        }
    }

    const int cmp = b.emitCompare(
        Opcode::Eq, IrValue::reg(vInd),
        IrValue::immInt(static_cast<SWord>(o.tripCount)));
    b.branch(cmp, "end", "loop");

    b.startBlock("end");
    b.emitStore(IrValue::reg(vAcc),
                IrValue::immInt(static_cast<SWord>(o.outBase)));
    b.halt();
    return b.finish();
}

} // namespace ximd::workloads
