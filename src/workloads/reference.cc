#include "workloads/reference.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ximd::workloads {

SWord
referenceTproc(SWord a, SWord b, SWord c, SWord d)
{
    // Wraparound arithmetic matches the datapath.
    auto add = [](SWord x, SWord y) {
        return intToWord(x) + intToWord(y);
    };
    const SWord e0 = wordToInt(add(a, b));
    const SWord f0 = wordToInt(intToWord(e0) +
                               intToWord(static_cast<SWord>(
                                   static_cast<std::int64_t>(c) *
                                   static_cast<std::int64_t>(a))));
    const SWord g0 = wordToInt(intToWord(a) - add(b, c));
    const SWord e1 = wordToInt(intToWord(d) - intToWord(e0));
    SWord r = wordToInt(add(a, b));
    r = wordToInt(add(r, c));
    r = wordToInt(add(r, d));
    r = wordToInt(add(r, e1));
    r = wordToInt(add(r, wordToInt(add(f0, g0))));
    return r;
}

std::pair<SWord, SWord>
referenceMinmax(const std::vector<SWord> &data)
{
    XIMD_ASSERT(!data.empty(), "minmax of empty data");
    const auto [lo, hi] = std::minmax_element(data.begin(), data.end());
    return {*lo, *hi};
}

unsigned
referencePopcount(Word w)
{
    unsigned n = 0;
    while (w) {
        n += w & 1u;
        w >>= 1;
    }
    return n;
}

std::vector<Word>
referenceBitcount1Paper(const std::vector<Word> &data)
{
    const std::size_t n = data.size();
    std::vector<Word> b(n + 1, 0);
    for (std::size_t k = 0; k < n; k += 4) {
        Word acc = 0;
        for (std::size_t j = 0; j < 4 && k + j < n; ++j) {
            acc += referencePopcount(data[k + j]);
            b[k + j + 1] = acc;
        }
    }
    return b;
}

std::vector<Word>
referenceBitcountCumulative(const std::vector<Word> &data)
{
    std::vector<Word> b(data.size() + 1, 0);
    for (std::size_t i = 0; i < data.size(); ++i)
        b[i + 1] = b[i] + referencePopcount(data[i]);
    return b;
}

std::vector<float>
referenceLoop12(const std::vector<float> &y)
{
    XIMD_ASSERT(y.size() >= 2, "loop12 needs at least two Y values");
    std::vector<float> x(y.size() - 1);
    for (std::size_t k = 0; k + 1 < y.size(); ++k)
        x[k] = y[k + 1] - y[k];
    return x;
}

} // namespace ximd::workloads
