/**
 * @file
 * Text form of the compiler IR: printer and parser, round-trip exact.
 *
 * The format is line oriented (`//` starts a comment):
 *
 *   .vregs N                   virtual-register count
 *   .vinit vN VALUE            initial vreg value (raw word)
 *   .minit ADDR VALUE          initial memory word
 *   block NAME:                start a basic block
 *     vN = MNEMONIC SRC[, SRC] op with a destination
 *     MNEMONIC SRC, SRC        compare (no destination)
 *     store SRC, SRC           store VALUE, ADDR
 *     jump NAME                terminators close the block
 *     branch K NAME1 NAME2     K = op index of the compare; NAME1
 *                              taken, NAME2 fallthrough
 *     halt
 *
 * SRC is vN or #VALUE; VALUE is an unsigned raw word (bit-exact, so
 * float immediates survive). printIr(parseIr(text)) reproduces text
 * up to whitespace; parseIr(printIr(p)) reproduces p exactly.
 *
 * This is the xcc driver's input format and the payload of the pass
 * pipeline's --dump-after=<pass> IR dumps, which makes those dumps
 * usable as golden files AND as compiler inputs.
 */

#ifndef XIMD_SCHED_IR_PRINT_HH
#define XIMD_SCHED_IR_PRINT_HH

#include <string>
#include <string_view>

#include "sched/ir.hh"

namespace ximd::sched {

/** Render @p prog in the text form above. */
std::string printIr(const IrProgram &prog);

/**
 * Parse the text form. Errors (pass "ir-parse") carry the 1-based
 * source line. The parsed program is validated before it is returned.
 */
CompileResult<IrProgram> parseIr(std::string_view source);

} // namespace ximd::sched

#endif // XIMD_SCHED_IR_PRINT_HH
