/**
 * @file
 * Software pipelining by modulo scheduling (initiation interval 1).
 *
 * Section 3.1 of the paper: "Software Pipelining can be used
 * effectively to schedule multiple iterations of this loop in
 * parallel" (Livermore Loop 12). This module turns a restricted
 * counted-loop description into a pipelined XIMD/VLIW program that
 * starts a new iteration every cycle:
 *
 *   - levels (pipeline stages) are the ASAP depths over the
 *     iteration-local dataflow; all operations have 1-cycle latency;
 *   - iteration-local values get E = max(1, D-1) register copies
 *     (modulo variable expansion), where D is the pipeline depth;
 *   - the kernel is E rows long; every row increments the induction
 *     variable, tests the exit condition, and carries one op per
 *     (body op, stage) pair that lands on that row;
 *   - stores are sunk to the last stage so the loop can over-issue
 *     D-1 speculative iterations past the trip count without writing
 *     memory (pad input arrays by D-1 elements).
 *
 * Restrictions (checked, FatalError otherwise):
 *   - body ops + 2 (induction increment, exit compare) must fit in
 *     the machine width, so II = 1 is resource-feasible;
 *   - each iteration-local value is defined at most once;
 *   - the induction variable may only be read at stage 0;
 *   - no loop-carried dependence except the induction variable
 *     (caller guarantees memory independence across iterations);
 *   - tripCount >= 1.
 *
 * II > 1 (resource-constrained) modulo scheduling is future work; the
 * naive list-scheduled loop (codegen.hh) covers that case.
 */

#ifndef XIMD_SCHED_MODULO_HH
#define XIMD_SCHED_MODULO_HH

#include <vector>

#include "isa/program.hh"
#include "sched/diag.hh"

namespace ximd::sched {

/** A source value inside the pipelined loop body. */
struct PipeVal
{
    enum class Kind : std::uint8_t { None, Induction, Local, Imm };

    Kind kind = Kind::None;
    int local = -1;
    Word imm = 0;

    static PipeVal none() { return {}; }

    static PipeVal
    induction()
    {
        PipeVal v;
        v.kind = Kind::Induction;
        return v;
    }

    static PipeVal
    localVal(int l)
    {
        PipeVal v;
        v.kind = Kind::Local;
        v.local = l;
        return v;
    }

    static PipeVal
    immRaw(Word w)
    {
        PipeVal v;
        v.kind = Kind::Imm;
        v.imm = w;
        return v;
    }

    static PipeVal immInt(SWord s) { return immRaw(intToWord(s)); }
};

/** One loop-body operation. */
struct PipeOp
{
    Opcode op = Opcode::Nop;
    PipeVal a;
    PipeVal b;
    int destLocal = -1; ///< -1 for stores.
};

/** A counted loop: body executed for induction k = 1..tripCount. */
struct PipelineLoop
{
    std::vector<PipeOp> body;
    int numLocals = 0;
    Word tripCount = 0;

    /** Physical register for the induction variable. */
    RegId inductionReg = 0;

    /** First physical register for the expanded local copies. */
    RegId localBase = 8;
};

/** Pipeline metadata, exposed for tests and benches. */
struct PipelineInfo
{
    unsigned depth = 0;      ///< D: number of stages.
    unsigned expansion = 0;  ///< E: register copies per local.
    unsigned prologueRows = 0;
    unsigned kernelRows = 0;
    Cycle expectedCycles = 0; ///< tripCount + D - 1 cycles + halt.
};

/**
 * Generate the pipelined program (single instruction stream, runs on
 * both xsim and vsim). @p info, when non-null, receives the pipeline
 * shape. Every restriction violation (infeasible II, def-before-use,
 * induction read past stage 0, ...) comes back as a CompileError
 * (pass "modulo", op = body index).
 */
CompileResult<Program>
pipelineLoopChecked(const PipelineLoop &loop, FuId width,
                    PipelineInfo *info = nullptr);

} // namespace ximd::sched

#endif // XIMD_SCHED_MODULO_HH
