/**
 * @file
 * Structured compile-time errors for the sched layer.
 *
 * The compiler stages historically threw FatalError with a formatted
 * message. That suits one interactive run, but the pass pipeline
 * (pipeline.hh) and the xcc driver need failures as data: which pass,
 * which block, which op — so a driver can render one uniform report
 * and a batch caller can fail one job instead of the process.
 *
 * Every stage therefore exposes a *Checked entry point returning
 * CompileResult<T>. Callers that want the historical throwing
 * behavior compose valueOrFatal(...) explicitly — it formats the
 * error and calls fatal(), preserving the FatalError contract.
 */

#ifndef XIMD_SCHED_DIAG_HH
#define XIMD_SCHED_DIAG_HH

#include <string>

#include "support/result.hh"

namespace ximd::sched {

/** One structured compile failure. */
struct CompileError
{
    std::string pass;  ///< Stage that rejected the input ("codegen").
    std::string block; ///< Basic block, empty when not block-scoped.
    int op = -1;       ///< Op index inside the block, -1 when n/a.
    int line = -1;     ///< 1-based source line (IR text), -1 when n/a.
    std::string message;

    /** "sched:<pass>: [line <l>:] [block '<b>'] [op <n>:] <msg>". */
    std::string format() const;
};

/** Build an error located at a pass (and optionally block/op). */
CompileError compileError(std::string pass, std::string message,
                          std::string block = "", int op = -1);

/** Unit success type for passes that only mutate the context. */
struct Ok
{
};

template <typename T> using CompileResult = Result<T, CompileError>;

/**
 * Unwrap a CompileResult or throw FatalError with the formatted
 * error — the bridge the legacy throwing wrappers use.
 */
template <typename T>
T
valueOrFatal(CompileResult<T> r)
{
    if (!r)
        fatal(r.error().format());
    return std::move(r).value();
}

} // namespace ximd::sched

#endif // XIMD_SCHED_DIAG_HH
