/**
 * @file
 * Thread composition: turn a packed set of compiled threads into one
 * runnable XIMD program.
 *
 * This realizes the run-time side of Figure 13: tiles placed at
 * different columns execute concurrently as separate SSETs; tiles
 * stacked in the same columns execute sequentially on those FUs. The
 * generated layout is:
 *
 *   row 0                    dispatch: each FU jumps to the entry of
 *                            the first tile in its column
 *   rows 1 .. K              per-thread start barriers (masked
 *                            ALL-sync over the thread's columns, so a
 *                            thread starts only when every FU it
 *                            needs has finished its predecessor tile)
 *   rows K+1 .. K+H          the packed tile bodies, at their packed
 *                            (row, column) positions — overlapping
 *                            tiles share instruction rows, which is
 *                            the whole point of the packing
 *   row K+H+1                final whole-machine barrier
 *   row K+H+2                halt
 *
 * Threads must be independent (no data flow between them; disjoint
 * memory and disjoint registers — enforced by per-thread register
 * bases). Inter-thread dependencies would add precedence constraints
 * to the packer, which the paper leaves open as well.
 */

#ifndef XIMD_SCHED_COMPOSE_HH
#define XIMD_SCHED_COMPOSE_HH

#include <vector>

#include "isa/program.hh"
#include "sched/packer.hh"
#include "sched/regalloc.hh"

namespace ximd::sched {

/** Where each thread landed in the composed program. */
struct ComposedThread
{
    int threadId = -1;
    FuId col = 0;
    FuId width = 1;
    InstAddr barrierRow = 0; ///< The thread's start barrier.
    InstAddr bodyStart = 0;  ///< First body row.
    unsigned bodyRows = 0;
    RegId regBase = 0;
};

/** Composition output. */
struct Composed
{
    Program program;
    std::vector<ComposedThread> threads;
    InstAddr finalBarrier = 0;

    Composed() : program(1) {}
};

/** Per-thread storage policy for composition: thread t gets the
 *  register window [t*regsPerThread, (t+1)*regsPerThread) and, with
 *  spilling on, the slot region spillBase + t*spillSlotsPerThread. */
struct ComposeOptions
{
    RegId regsPerThread = 24;
    bool spill = false;
    Addr spillBase = kDefaultSpillBase;
    unsigned spillSlotsPerThread = kDefaultSpillSlots;

    /** The allocation contract thread @p t compiles under. */
    RegAllocOptions
    threadAlloc(std::size_t t) const
    {
        RegAllocOptions a;
        a.window.base = static_cast<RegId>(t * regsPerThread);
        a.window.count = regsPerThread;
        a.spill = spill;
        a.spillBase = spillBase +
                      static_cast<Addr>(t) * spillSlotsPerThread;
        a.spillSlots = spillSlotsPerThread;
        return a;
    }
};

/**
 * Compose @p threads according to @p packing (pass "compose"):
 * non-laminar packings, register-window overflow etc. come back as
 * CompileError.
 *
 * @param threads       one IrProgram per thread (ids = indices).
 * @param packing       a validated packing of those threads.
 * @param machineWidth  FU count of the target machine.
 * @param opts          per-thread register windows / spill regions.
 */
CompileResult<Composed>
composeThreadsChecked(const std::vector<IrProgram> &threads,
                      const PackResult &packing, FuId machineWidth,
                      const ComposeOptions &opts = {});

} // namespace ximd::sched

#endif // XIMD_SCHED_COMPOSE_HH
