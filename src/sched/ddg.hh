/**
 * @file
 * Data-dependence graph over one basic block.
 *
 * Edge latencies reflect the XIMD-1 cycle discipline (reads observe
 * beginning-of-cycle state, writes commit L-1 cycles after issue,
 * where L is the datapath's result latency — 1 for the research
 * model, 3 for the pipelined prototype of section 4.3):
 *
 *   RAW (reg):  latency L  — the value is visible L cycles later.
 *   WAR (reg):  latency 0  — the writer may share (or precede the
 *               visibility of) the reader's cycle.
 *   WAW (reg):  latency 1  — write-backs retire in issue order as
 *               long as issues are one cycle apart.
 *   memory:     store-to-load latency L; store-store 1; load-store 0
 *               (conservative, no alias analysis); load-load
 *               reorders freely.
 */

#ifndef XIMD_SCHED_DDG_HH
#define XIMD_SCHED_DDG_HH

#include <vector>

#include "sched/ir.hh"

namespace ximd::sched {

/** One dependence edge: from -> to with a minimum cycle distance. */
struct DdgEdge
{
    int from;
    int to;
    int latency; ///< schedule[to] >= schedule[from] + latency
};

/** Dependence graph for the ops of one IrBlock. */
class Ddg
{
  public:
    /** Build the graph for @p block at result latency @p rawLatency. */
    explicit Ddg(const IrBlock &block, unsigned rawLatency = 1);

    int numNodes() const { return numNodes_; }

    const std::vector<DdgEdge> &edges() const { return edges_; }

    /** Predecessor edge list of node @p n. */
    const std::vector<DdgEdge> &preds(int n) const;

    /** Successor edge list of node @p n. */
    const std::vector<DdgEdge> &succs(int n) const;

    /**
     * Critical-path height of each node: the longest latency path
     * from the node to any sink. Used as the list-scheduling priority.
     */
    const std::vector<int> &heights() const { return heights_; }

    /** Longest path length through the whole block. */
    int criticalPathLength() const;

  private:
    void addEdge(int from, int to, int latency);
    void computeHeights();

    int numNodes_;
    std::vector<DdgEdge> edges_;
    std::vector<std::vector<DdgEdge>> preds_;
    std::vector<std::vector<DdgEdge>> succs_;
    std::vector<int> heights_;
};

} // namespace ximd::sched

#endif // XIMD_SCHED_DDG_HH
