/**
 * @file
 * Code generator: scheduled IR -> executable XIMD Program.
 *
 * The output is VLIW-style code (identical control fields in every
 * parcel, no sync signals), so it runs identically on xsim and vsim —
 * exactly what the paper's retargetable VLIW compiler produced for
 * each thread (section 4.2).
 *
 * Register assignment is the regalloc pass's job (regalloc.hh):
 * codegen consumes allocated IR, where every vreg id is already a
 * window-relative physical index, and simply adds the window base.
 * The same RegWindow contract serves the modulo pipeliner's fixed
 * layout and per-thread composition.
 */

#ifndef XIMD_SCHED_CODEGEN_HH
#define XIMD_SCHED_CODEGEN_HH

#include <map>
#include <string>
#include <vector>

#include "core/latency_check.hh" // kRawLatencySymbol, the stamp we emit
#include "isa/program.hh"
#include "sched/ir.hh"
#include "sched/list_scheduler.hh"
#include "sched/regalloc.hh"

namespace ximd::sched {

/** Code-generation parameters. */
struct CodegenOptions
{
    FuId width = kDefaultFus;   ///< Functional units to schedule for.
    RegAllocOptions alloc = {}; ///< Register window + spill policy.
    bool nameVregs = true;    ///< Bind "v<N>" register names.

    /**
     * Data-path result latency to compile for; must match the target
     * machine's MachineConfig::resultLatency (1 = research model,
     * 3 = the section 4.3 pipelined prototype).
     */
    unsigned rawLatency = 1;
};

/** Code-generation output. */
struct CodegenResult
{
    Program program;
    std::map<std::string, InstAddr> blockAddr; ///< Block start rows.

    CodegenResult() : program(1) {}
};

/**
 * Compile @p prog for options @p opts: validate, allocate registers
 * (direct or spilling, per opts.alloc), schedule each block, emit.
 * Failures come back as CompileError ("regalloc", "list-schedule",
 * "codegen", ...).
 */
CompileResult<CodegenResult>
generateCodeChecked(const IrProgram &prog,
                    const CodegenOptions &opts = {});

/**
 * Emission half of codegen: lay out and emit @p prog from
 * already-computed block schedules (one per block, in block order).
 * The pass pipeline uses this so scheduling and emission are separate
 * observable passes; generateCodeChecked() composes the two.
 */
CompileResult<CodegenResult>
emitScheduled(const IrProgram &prog,
              const std::vector<BlockSchedule> &schedules,
              const CodegenOptions &opts = {});

} // namespace ximd::sched

#endif // XIMD_SCHED_CODEGEN_HH
