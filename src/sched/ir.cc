#include "sched/ir.hh"

#include <map>

#include "sim/datapath.hh"
#include "support/logging.hh"

namespace ximd::sched {

const IrBlock *
IrProgram::findBlock(const std::string &name) const
{
    for (const IrBlock &b : blocks)
        if (b.name == name)
            return &b;
    return nullptr;
}

CompileResult<Ok>
IrProgram::validateChecked() const
{
    auto err = [](std::string msg, std::string block = "",
                  int op = -1) {
        return CompileResult<Ok>(
            compileError("ir", std::move(msg), std::move(block), op));
    };

    if (blocks.empty())
        return err("IR program has no blocks");

    std::map<std::string, int> byName;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const IrBlock &b = blocks[i];
        if (b.name.empty())
            return err(cat("IR block ", i, " has no name"));
        if (!byName.emplace(b.name, static_cast<int>(i)).second)
            return err(cat("duplicate IR block name '", b.name, "'"));
    }

    for (const IrBlock &b : blocks) {
        for (std::size_t oi = 0; oi < b.ops.size(); ++oi) {
            const IrOp &op = b.ops[oi];
            const int at = static_cast<int>(oi);
            const OpInfo &info = opInfo(op.op);
            if (info.numSrcs >= 1 && op.a.isNone())
                return err(cat("'", info.name, "' missing source a"),
                           b.name, at);
            if (info.numSrcs >= 2 && op.b.isNone())
                return err(cat("'", info.name, "' missing source b"),
                           b.name, at);
            for (const IrValue *v : {&op.a, &op.b})
                if (v->isVreg() &&
                    (v->vreg < 0 || v->vreg >= numVregs))
                    return err(cat("vreg ", v->vreg, " out of range"),
                               b.name, at);
            if (info.hasDest && (op.dest < 0 || op.dest >= numVregs))
                return err(cat("'", info.name,
                               "' bad destination vreg ", op.dest),
                           b.name, at);
            if (!info.hasDest && op.dest != kNoVreg)
                return err(cat("'", info.name,
                               "' cannot have a destination"),
                           b.name, at);
        }
        const Terminator &t = b.term;
        switch (t.kind) {
          case Terminator::Kind::Halt:
            break;
          case Terminator::Kind::Jump:
            if (!byName.count(t.taken))
                return err(cat("jump to unknown block '", t.taken,
                               "'"),
                           b.name);
            break;
          case Terminator::Kind::CondBranch:
            if (!byName.count(t.taken) || !byName.count(t.fallthrough))
                return err(cat("branch to unknown block '",
                               byName.count(t.taken) ? t.fallthrough
                                                     : t.taken,
                               "'"),
                           b.name);
            if (t.compareIdx < 0 ||
                t.compareIdx >= static_cast<int>(b.ops.size()) ||
                !b.ops[t.compareIdx].isCompare())
                return err(
                    "branch condition is not a compare in this block",
                    b.name, t.compareIdx);
            break;
        }
    }

    for (const auto &[v, value] : vregInit) {
        (void)value;
        if (v < 0 || v >= numVregs)
            return err(cat("vreg initializer out of range: ", v));
    }
    return Ok{};
}

VregId
IrBuilder::newVreg()
{
    return prog_.numVregs++;
}

void
IrBuilder::startBlock(const std::string &name)
{
    if (open_)
        fatal("IR block '", prog_.blocks.back().name,
              "' not terminated before starting '", name, "'");
    IrBlock b;
    b.name = name;
    prog_.blocks.push_back(std::move(b));
    open_ = true;
}

IrBlock &
IrBuilder::cur()
{
    if (!open_)
        fatal("no open IR block");
    return prog_.blocks.back();
}

IrValue
IrBuilder::emit(Opcode op, IrValue a, IrValue b)
{
    const VregId dest = newVreg();
    emitTo(dest, op, a, b);
    return IrValue::reg(dest);
}

void
IrBuilder::emitTo(VregId dest, Opcode op, IrValue a, IrValue b)
{
    if (!opInfo(op).hasDest)
        fatal("emitTo: '", opInfo(op).name, "' has no destination");
    IrOp o;
    o.op = op;
    o.a = a;
    o.b = b;
    o.dest = dest;
    o.line = line_;
    cur().ops.push_back(o);
}

int
IrBuilder::emitCompare(Opcode op, IrValue a, IrValue b)
{
    if (!setsCondCode(op))
        fatal("emitCompare: '", opInfo(op).name, "' is not a compare");
    IrOp o;
    o.op = op;
    o.a = a;
    o.b = b;
    o.line = line_;
    cur().ops.push_back(o);
    return static_cast<int>(cur().ops.size()) - 1;
}

void
IrBuilder::emitStore(IrValue value, IrValue addr)
{
    IrOp o;
    o.op = Opcode::Store;
    o.a = value;
    o.b = addr;
    o.line = line_;
    cur().ops.push_back(o);
}

IrValue
IrBuilder::emitLoad(IrValue a, IrValue b)
{
    IrOp o;
    o.op = Opcode::Load;
    o.a = a;
    o.b = b;
    o.dest = newVreg();
    o.line = line_;
    cur().ops.push_back(o);
    return IrValue::reg(o.dest);
}

void
IrBuilder::jump(const std::string &target)
{
    Terminator t;
    t.kind = Terminator::Kind::Jump;
    t.taken = target;
    cur().term = t;
    open_ = false;
}

void
IrBuilder::branch(int compareIdx, const std::string &taken,
                  const std::string &fallthrough)
{
    Terminator t;
    t.kind = Terminator::Kind::CondBranch;
    t.compareIdx = compareIdx;
    t.taken = taken;
    t.fallthrough = fallthrough;
    cur().term = t;
    open_ = false;
}

void
IrBuilder::halt()
{
    Terminator t;
    t.kind = Terminator::Kind::Halt;
    cur().term = t;
    open_ = false;
}

void
IrBuilder::setInit(VregId v, Word value)
{
    prog_.vregInit.emplace_back(v, value);
}

void
IrBuilder::setMemInit(Addr addr, Word value)
{
    prog_.memInit.emplace_back(addr, value);
}

IrProgram
IrBuilder::finish()
{
    if (open_)
        fatal("IR block '", prog_.blocks.back().name,
              "' not terminated");
    valueOrFatal(prog_.validateChecked());
    return std::move(prog_);
}

IrProgram
mergeStraightLineBlocks(IrProgram prog)
{
    valueOrFatal(prog.validateChecked());

    bool changed = true;
    while (changed) {
        changed = false;

        // Predecessor counts by block name.
        std::map<std::string, int> predCount;
        for (const IrBlock &b : prog.blocks) {
            switch (b.term.kind) {
              case Terminator::Kind::Jump:
                ++predCount[b.term.taken];
                break;
              case Terminator::Kind::CondBranch:
                ++predCount[b.term.taken];
                ++predCount[b.term.fallthrough];
                break;
              case Terminator::Kind::Halt:
                break;
            }
        }

        for (std::size_t i = 0; i < prog.blocks.size() && !changed;
             ++i) {
            IrBlock &a = prog.blocks[i];
            if (a.term.kind != Terminator::Kind::Jump)
                continue;
            const std::string target = a.term.taken;
            if (target == a.name)
                continue; // self-loop
            if (target == prog.blocks.front().name)
                continue; // entry must stay a block head
            if (predCount[target] != 1)
                continue;

            // Find and splice the target block.
            for (std::size_t j = 0; j < prog.blocks.size(); ++j) {
                if (prog.blocks[j].name != target)
                    continue;
                IrBlock b = std::move(prog.blocks[j]);
                prog.blocks.erase(
                    prog.blocks.begin() +
                    static_cast<std::ptrdiff_t>(j));
                // `a` may have been invalidated by the erase.
                IrBlock &a2 =
                    prog.blocks[j < i ? i - 1 : i];
                const int offset =
                    static_cast<int>(a2.ops.size());
                a2.ops.insert(a2.ops.end(), b.ops.begin(),
                              b.ops.end());
                a2.term = b.term;
                if (a2.term.kind == Terminator::Kind::CondBranch)
                    a2.term.compareIdx += offset;
                changed = true;
                break;
            }
        }
    }
    valueOrFatal(prog.validateChecked());
    return prog;
}

namespace {

/** Evaluator for one IR op; defers arithmetic to the FU datapath so
 *  the interpreter and the simulators agree bit-for-bit. */
class IrEval : public ExecContext
{
  public:
    IrEval(std::vector<Word> &vregs, std::vector<Word> &mem)
        : vregs_(vregs), mem_(mem)
    {
    }

    Word
    value(const IrValue &v) const
    {
        if (v.isImm())
            return v.imm;
        XIMD_ASSERT(v.isVreg(), "reading absent IR value");
        return vregs_[static_cast<std::size_t>(v.vreg)];
    }

    /** Execute @p op; returns the compare outcome for compares. */
    bool
    exec(const IrOp &op)
    {
        // Lower the IR op to a DataOp with pre-resolved immediate
        // sources and run it through the shared datapath.
        DataOp d;
        d.op = op.op;
        const OpInfo &info = opInfo(op.op);
        if (info.numSrcs >= 1)
            d.a = Operand::imm(value(op.a));
        if (info.numSrcs >= 2)
            d.b = Operand::imm(value(op.b));
        d.dest = 0;
        dest_ = op.dest;
        cc_ = false;
        executeDataOp(d, *this);
        return cc_;
    }

    // ExecContext: effects land straight in the IR state.
    Word
    readOperand(const Operand &o) override
    {
        return o.immValue();
    }

    Word
    loadMem(Addr addr) override
    {
        checkAddr(addr);
        return mem_[addr];
    }

    void
    storeMem(Addr addr, Word v) override
    {
        checkAddr(addr);
        mem_[addr] = v;
    }

    void
    writeReg(RegId, Word v) override
    {
        XIMD_ASSERT(dest_ >= 0, "IR op writes without a dest vreg");
        vregs_[static_cast<std::size_t>(dest_)] = v;
    }

    void writeCc(bool v) override { cc_ = v; }

  private:
    void
    checkAddr(Addr addr) const
    {
        if (addr >= mem_.size())
            fatal("IR interpreter: memory address ", addr,
                  " out of range");
    }

    std::vector<Word> &vregs_;
    std::vector<Word> &mem_;
    VregId dest_ = kNoVreg;
    bool cc_ = false;
};

} // namespace

std::vector<Word>
interpretIr(const IrProgram &prog, std::vector<Word> &memory,
            std::uint64_t maxSteps)
{
    valueOrFatal(prog.validateChecked());
    std::vector<Word> vregs(
        static_cast<std::size_t>(prog.numVregs), 0);
    for (const auto &[v, val] : prog.vregInit)
        vregs[static_cast<std::size_t>(v)] = val;
    for (const auto &[a, val] : prog.memInit) {
        if (a >= memory.size())
            fatal("IR memory initializer out of range: ", a);
        memory[a] = val;
    }

    std::map<std::string, const IrBlock *> byName;
    for (const IrBlock &b : prog.blocks)
        byName[b.name] = &b;

    IrEval eval(vregs, memory);
    const IrBlock *block = &prog.blocks.front();
    std::uint64_t steps = 0;
    while (true) {
        bool lastCompare = false;
        std::vector<bool> compareResults(block->ops.size(), false);
        for (std::size_t i = 0; i < block->ops.size(); ++i) {
            if (++steps > maxSteps)
                fatal("IR interpreter: step budget exhausted");
            const bool cc = eval.exec(block->ops[i]);
            compareResults[i] = cc;
            lastCompare = cc;
        }
        (void)lastCompare;
        const Terminator &t = block->term;
        if (t.kind == Terminator::Kind::Halt)
            break;
        const std::string &next =
            t.kind == Terminator::Kind::Jump
                ? t.taken
                : (compareResults[static_cast<std::size_t>(
                       t.compareIdx)]
                       ? t.taken
                       : t.fallthrough);
        block = byName.at(next);
    }
    return vregs;
}

} // namespace ximd::sched
