/**
 * @file
 * Compiler intermediate representation.
 *
 * The paper's compilation strategy (section 4.2) feeds program threads
 * through "a retargetable VLIW compiler ... compiled several times
 * with varying resource constraints". This IR is that compiler's
 * input: a small CFG of basic blocks over virtual registers, with
 * compare results consumed by block terminators.
 *
 * Virtual registers are mutable (no SSA restriction) so loop counters
 * can be expressed naturally; the dependence graph (ddg.hh) inserts
 * the required RAW/WAR/WAW edges.
 */

#ifndef XIMD_SCHED_IR_HH
#define XIMD_SCHED_IR_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/opcode.hh"
#include "sched/diag.hh"
#include "support/types.hh"

namespace ximd::sched {

/** A virtual register id. */
using VregId = int;
inline constexpr VregId kNoVreg = -1;

/** A source value: virtual register or immediate. */
struct IrValue
{
    enum class Kind : std::uint8_t { None, Vreg, Imm };

    Kind kind = Kind::None;
    VregId vreg = kNoVreg;
    Word imm = 0;

    static IrValue none() { return {}; }

    static IrValue
    reg(VregId v)
    {
        IrValue x;
        x.kind = Kind::Vreg;
        x.vreg = v;
        return x;
    }

    static IrValue
    immInt(SWord v)
    {
        IrValue x;
        x.kind = Kind::Imm;
        x.imm = intToWord(v);
        return x;
    }

    static IrValue
    immRaw(Word v)
    {
        IrValue x;
        x.kind = Kind::Imm;
        x.imm = v;
        return x;
    }

    static IrValue
    immFloat(float v)
    {
        IrValue x;
        x.kind = Kind::Imm;
        x.imm = floatToWord(v);
        return x;
    }

    bool isVreg() const { return kind == Kind::Vreg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/** One IR operation. Shapes follow the ISA (data_op.hh). */
struct IrOp
{
    Opcode op = Opcode::Nop;
    IrValue a;
    IrValue b;
    VregId dest = kNoVreg; ///< kNoVreg for compares/stores.
    int line = -1; ///< 1-based source line (IR text or C), -1 = n/a.

    bool isCompare() const { return setsCondCode(op); }
    bool isLoad() const { return op == Opcode::Load; }
    bool isStore() const { return op == Opcode::Store; }
};

/** Block terminator. */
struct Terminator
{
    enum class Kind : std::uint8_t { Jump, CondBranch, Halt };

    Kind kind = Kind::Halt;
    /** Index (into the block's ops) of the compare feeding the branch;
     *  CondBranch only. */
    int compareIdx = -1;
    std::string taken;       ///< CondBranch: target when TRUE; Jump: target.
    std::string fallthrough; ///< CondBranch: target when FALSE.
};

/** One basic block. */
struct IrBlock
{
    std::string name;
    std::vector<IrOp> ops;
    Terminator term;
};

/** A compiled unit: blocks in layout order, entry first. */
struct IrProgram
{
    std::vector<IrBlock> blocks;
    int numVregs = 0;
    /** Initial values for vregs (inputs), applied before execution. */
    std::vector<std::pair<VregId, Word>> vregInit;
    /** Initial memory contents. */
    std::vector<std::pair<Addr, Word>> memInit;

    const IrBlock *findBlock(const std::string &name) const;

    /** Structural checks as data (pass "ir", with block/op location). */
    CompileResult<Ok> validateChecked() const;
};

/** Convenience builder. */
class IrBuilder
{
  public:
    /** Allocate a fresh virtual register. */
    VregId newVreg();

    /** Begin a block; ops/terminator calls apply to it. */
    void startBlock(const std::string &name);

    /** Append `op a, b -> dest` (dest freshly allocated). */
    IrValue emit(Opcode op, IrValue a, IrValue b = IrValue::none());

    /** Append `op a, b -> dest` into an existing vreg. */
    void emitTo(VregId dest, Opcode op, IrValue a,
                IrValue b = IrValue::none());

    /** Append a compare; returns its op index for branch(). */
    int emitCompare(Opcode op, IrValue a, IrValue b);

    /** Append `store value -> M(addr)`. */
    void emitStore(IrValue value, IrValue addr);

    /** Append `load M(a+b) -> dest` (fresh dest). */
    IrValue emitLoad(IrValue a, IrValue b);

    /** Terminate the current block. */
    void jump(const std::string &target);
    void branch(int compareIdx, const std::string &taken,
                const std::string &fallthrough);
    void halt();

    /** Request vreg = value before execution. */
    void setInit(VregId v, Word value);

    /** Request memory[addr] = value before execution. */
    void setMemInit(Addr addr, Word value);

    /** Source line stamped on subsequently emitted ops (-1 = none). */
    void setLine(int line) { line_ = line; }

    /** Finish: validates and returns the program. */
    IrProgram finish();

  private:
    IrBlock &cur();

    IrProgram prog_;
    bool open_ = false;
    int line_ = -1;
};

/**
 * Straighten the CFG: whenever block A ends in an unconditional jump
 * to block B and B has no other predecessors (and is not the entry),
 * append B's ops to A and take B's terminator. Runs to a fixpoint.
 *
 * This is the block-granularity core of the region-enlarging
 * transformations the paper's compiler relies on (Trace Scheduling,
 * Percolation Scheduling, section 1.2): the list scheduler only
 * exploits parallelism within a block, so merging straight-line
 * chains directly tightens schedules and tiles.
 */
IrProgram mergeStraightLineBlocks(IrProgram prog);

/**
 * Reference interpreter: runs the IR directly (sequentially, one op at
 * a time) against a plain memory image. Used as the oracle for
 * codegen, pipelining and composition tests.
 *
 * @param prog      the program (validated).
 * @param memory    memory image, modified in place.
 * @param maxSteps  op-execution budget; FatalError when exhausted.
 * @return          final vreg values.
 */
std::vector<Word> interpretIr(const IrProgram &prog,
                              std::vector<Word> &memory,
                              std::uint64_t maxSteps = 10'000'000);

} // namespace ximd::sched

#endif // XIMD_SCHED_IR_HH
