#include "sched/diag.hh"

#include <sstream>

namespace ximd::sched {

std::string
CompileError::format() const
{
    std::ostringstream os;
    os << "sched:" << (pass.empty() ? "?" : pass) << ": ";
    if (line >= 0)
        os << "line " << line << ": ";
    if (!block.empty())
        os << "block '" << block << "': ";
    if (op >= 0)
        os << "op " << op << ": ";
    os << message;
    return os.str();
}

CompileError
compileError(std::string pass, std::string message, std::string block,
             int op)
{
    CompileError e;
    e.pass = std::move(pass);
    e.block = std::move(block);
    e.op = op;
    e.message = std::move(message);
    return e;
}

} // namespace ximd::sched
