#include "sched/regalloc.hh"

#include <algorithm>
#include <map>
#include <set>

#include "support/logging.hh"

namespace ximd::sched {

namespace {

/** Per-block layout-order position range. */
struct BlockSpan
{
    int first = 0; ///< Position of the first op (or the block itself).
    int last = 0;  ///< Position of the last op (== first when empty).
};

std::vector<BlockSpan>
layoutPositions(const IrProgram &prog)
{
    std::vector<BlockSpan> spans;
    spans.reserve(prog.blocks.size());
    int pos = 0;
    for (const IrBlock &b : prog.blocks) {
        BlockSpan s;
        s.first = pos;
        // Empty blocks still occupy one position so live-through
        // ranges cover them.
        const int width =
            std::max<int>(1, static_cast<int>(b.ops.size()));
        s.last = pos + width - 1;
        pos += width;
        spans.push_back(s);
    }
    return spans;
}

bool
opHasDest(const IrOp &op)
{
    return opInfo(op.op).hasDest;
}

} // namespace

Liveness
computeLiveness(const IrProgram &prog)
{
    const std::size_t numBlocks = prog.blocks.size();
    const auto numVregs = static_cast<std::size_t>(prog.numVregs);

    std::map<std::string, std::size_t> byName;
    for (std::size_t i = 0; i < numBlocks; ++i)
        byName[prog.blocks[i].name] = i;

    // Successors, upward-exposed uses, and defs per block.
    std::vector<std::vector<std::size_t>> succ(numBlocks);
    std::vector<std::vector<char>> ue(numBlocks),
        def(numBlocks);
    for (std::size_t i = 0; i < numBlocks; ++i) {
        const IrBlock &b = prog.blocks[i];
        ue[i].assign(numVregs, 0);
        def[i].assign(numVregs, 0);
        for (const IrOp &op : b.ops) {
            for (const IrValue *v : {&op.a, &op.b})
                if (v->isVreg() &&
                    !def[i][static_cast<std::size_t>(v->vreg)])
                    ue[i][static_cast<std::size_t>(v->vreg)] = 1;
            if (opHasDest(op))
                def[i][static_cast<std::size_t>(op.dest)] = 1;
        }
        switch (b.term.kind) {
          case Terminator::Kind::Jump:
            succ[i].push_back(byName.at(b.term.taken));
            break;
          case Terminator::Kind::CondBranch:
            succ[i].push_back(byName.at(b.term.taken));
            succ[i].push_back(byName.at(b.term.fallthrough));
            break;
          case Terminator::Kind::Halt:
            break;
        }
    }

    // liveIn/liveOut to a fixpoint (backward dataflow).
    std::vector<std::vector<char>> liveIn(numBlocks),
        liveOut(numBlocks);
    for (std::size_t i = 0; i < numBlocks; ++i) {
        liveIn[i].assign(numVregs, 0);
        liveOut[i].assign(numVregs, 0);
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = numBlocks; i-- > 0;) {
            for (std::size_t s : succ[i])
                for (std::size_t v = 0; v < numVregs; ++v)
                    if (liveIn[s][v] && !liveOut[i][v]) {
                        liveOut[i][v] = 1;
                        changed = true;
                    }
            for (std::size_t v = 0; v < numVregs; ++v) {
                const char in =
                    ue[i][v] || (liveOut[i][v] && !def[i][v]);
                if (in && !liveIn[i][v]) {
                    liveIn[i][v] = 1;
                    changed = true;
                }
            }
        }
    }

    // Intervals: extend at every touch point and block boundary.
    Liveness lv;
    lv.intervals.resize(numVregs);
    for (std::size_t v = 0; v < numVregs; ++v)
        lv.intervals[v].vreg = static_cast<VregId>(v);
    auto extend = [&](VregId v, int pos) {
        LiveInterval &iv =
            lv.intervals[static_cast<std::size_t>(v)];
        if (!iv.live()) {
            iv.start = iv.end = pos;
        } else {
            iv.start = std::min(iv.start, pos);
            iv.end = std::max(iv.end, pos);
        }
    };
    const std::vector<BlockSpan> spans = layoutPositions(prog);
    for (std::size_t i = 0; i < numBlocks; ++i) {
        const IrBlock &b = prog.blocks[i];
        std::vector<char> live = liveOut[i];
        for (std::size_t v = 0; v < numVregs; ++v)
            if (live[v])
                extend(static_cast<VregId>(v), spans[i].last);
        for (std::size_t oi = b.ops.size(); oi-- > 0;) {
            const IrOp &op = b.ops[oi];
            const int pos = spans[i].first + static_cast<int>(oi);
            if (opHasDest(op)) {
                extend(op.dest, pos);
                live[static_cast<std::size_t>(op.dest)] = 0;
            }
            for (const IrValue *v : {&op.a, &op.b})
                if (v->isVreg()) {
                    extend(v->vreg, pos);
                    live[static_cast<std::size_t>(v->vreg)] = 1;
                }
        }
        for (std::size_t v = 0; v < numVregs; ++v)
            if (live[v])
                extend(static_cast<VregId>(v), spans[i].first);
    }

    // Peak pressure: sweep interval events over the position line.
    const int totalPos =
        numBlocks == 0 ? 0 : spans.back().last + 1;
    std::vector<int> delta(
        static_cast<std::size_t>(totalPos) + 1, 0);
    for (const LiveInterval &iv : lv.intervals) {
        if (!iv.live())
            continue;
        ++delta[static_cast<std::size_t>(iv.start)];
        --delta[static_cast<std::size_t>(iv.end) + 1];
    }
    int pressure = 0, peakPos = -1;
    unsigned peak = 0;
    for (int p = 0; p < totalPos; ++p) {
        pressure += delta[static_cast<std::size_t>(p)];
        if (static_cast<unsigned>(pressure) > peak) {
            peak = static_cast<unsigned>(pressure);
            peakPos = p;
        }
    }
    lv.peak.pressure = peak;
    if (peakPos >= 0) {
        for (std::size_t i = 0; i < numBlocks; ++i) {
            if (peakPos < spans[i].first || peakPos > spans[i].last)
                continue;
            const IrBlock &b = prog.blocks[i];
            lv.peak.block = b.name;
            if (!b.ops.empty()) {
                const int oi = peakPos - spans[i].first;
                lv.peak.op = oi;
                lv.peak.line =
                    b.ops[static_cast<std::size_t>(oi)].line;
            }
            break;
        }
    }
    return lv;
}

CompileResult<Ok>
checkWindow(const std::string &pass, const RegWindow &window,
            unsigned regsNeeded)
{
    if (regsNeeded <= window.capacity())
        return Ok{};
    return compileError(
        pass, cat("needs ", regsNeeded, " registers; window [",
                  window.base, "..", window.base + window.count,
                  ") holds ", window.capacity()));
}

namespace {

/** Locate the pressure point in a CompileError (satellite of every
 *  exhaustion diagnostic: block, op and source line of the peak). */
CompileError
exhaustionError(const RegAllocOptions &opts, const Liveness &lv,
                std::string what)
{
    CompileError e = compileError(
        "regalloc",
        cat("register window [", opts.window.base, "..",
            opts.window.base + opts.window.count, ") exhausted: ",
            std::move(what), "; peak live pressure ",
            lv.peak.pressure,
            lv.peak.block.empty()
                ? std::string()
                : cat(" in block '", lv.peak.block, "'"),
            lv.peak.op >= 0 ? cat(" at op ", lv.peak.op)
                            : std::string(),
            opts.spill
                ? std::string()
                : std::string("; recompile with --spill or widen "
                              "the window")),
        lv.peak.block, lv.peak.op);
    e.line = lv.peak.line;
    return e;
}

/** Rewrite every use/def of the vregs in @p slots into reloads from
 *  and stores to their spill slots. Fresh temps are appended to
 *  @p prog (and flagged unspillable); block compare indices are
 *  remapped over the inserted ops. */
void
rewriteSpills(IrProgram &prog, const std::map<VregId, Addr> &slots,
              std::vector<char> &unspillable, Allocation &alloc)
{
    auto newTemp = [&] {
        const VregId t = prog.numVregs++;
        unspillable.push_back(1);
        return t;
    };

    for (IrBlock &b : prog.blocks) {
        std::vector<IrOp> out;
        out.reserve(b.ops.size());
        std::vector<int> idxMap(b.ops.size(), -1);
        for (std::size_t i = 0; i < b.ops.size(); ++i) {
            IrOp op = b.ops[i];
            auto reload = [&](IrValue &v) -> VregId {
                const Addr addr = slots.at(v.vreg);
                const VregId t = newTemp();
                IrOp ld;
                ld.op = Opcode::Load;
                ld.a = IrValue::immRaw(addr);
                ld.b = IrValue::immRaw(0);
                ld.dest = t;
                ld.line = op.line;
                out.push_back(ld);
                ++alloc.spillReloads;
                v = IrValue::reg(t);
                return t;
            };
            if (op.a.isVreg() && slots.count(op.a.vreg)) {
                const VregId was = op.a.vreg;
                const VregId t = reload(op.a);
                // One reload feeds both sources of `op vS, vS`.
                if (op.b.isVreg() && op.b.vreg == was)
                    op.b = IrValue::reg(t);
            }
            if (op.b.isVreg() && slots.count(op.b.vreg))
                reload(op.b);
            idxMap[i] = static_cast<int>(out.size());
            const bool spillDest =
                opHasDest(op) && slots.count(op.dest) != 0;
            Addr destAddr = 0;
            VregId destTemp = kNoVreg;
            if (spillDest) {
                destAddr = slots.at(op.dest);
                destTemp = newTemp();
                op.dest = destTemp;
            }
            const int opLine = op.line;
            out.push_back(op);
            if (spillDest) {
                IrOp st;
                st.op = Opcode::Store;
                st.a = IrValue::reg(destTemp);
                st.b = IrValue::immRaw(destAddr);
                st.line = opLine;
                out.push_back(st);
                ++alloc.spillStores;
            }
        }
        if (b.term.kind == Terminator::Kind::CondBranch)
            b.term.compareIdx =
                idxMap[static_cast<std::size_t>(b.term.compareIdx)];
        b.ops = std::move(out);
    }

    // Initial values of spilled vregs become memory initializers of
    // their slots.
    std::vector<std::pair<VregId, Word>> keep;
    for (const auto &[v, value] : prog.vregInit) {
        const auto it = slots.find(v);
        if (it != slots.end())
            prog.memInit.emplace_back(it->second, value);
        else
            keep.emplace_back(v, value);
    }
    prog.vregInit = std::move(keep);
}

/** One linear scan. On success fills @p regIdxOf (window-relative
 *  index per live vreg) and returns true; otherwise appends the
 *  chosen victims to @p spillSet (empty set + false = stuck). */
bool
linearScan(const Liveness &lv, unsigned capacity,
           const std::vector<char> &unspillable,
           std::vector<int> &regIdxOf, std::vector<VregId> &spillSet,
           unsigned &regsUsed)
{
    struct Active
    {
        int end = 0;
        VregId vreg = kNoVreg;
        unsigned reg = 0;
    };

    std::vector<const LiveInterval *> order;
    for (const LiveInterval &iv : lv.intervals)
        if (iv.live())
            order.push_back(&iv);
    std::sort(order.begin(), order.end(),
              [](const LiveInterval *a, const LiveInterval *b) {
                  return a->start != b->start ? a->start < b->start
                                              : a->vreg < b->vreg;
              });

    std::set<unsigned> free;
    for (unsigned r = 0; r < capacity; ++r)
        free.insert(r);
    std::vector<Active> active;
    regIdxOf.assign(lv.intervals.size(), -1);
    regsUsed = 0;

    auto spillable = [&](VregId v) {
        return !unspillable[static_cast<std::size_t>(v)];
    };

    for (const LiveInterval *cur : order) {
        // Expire intervals that ended strictly before this start.
        for (std::size_t i = active.size(); i-- > 0;) {
            if (active[i].end < cur->start) {
                free.insert(active[i].reg);
                active.erase(active.begin() +
                             static_cast<std::ptrdiff_t>(i));
            }
        }
        if (!free.empty()) {
            const unsigned r = *free.begin();
            free.erase(free.begin());
            regIdxOf[static_cast<std::size_t>(cur->vreg)] =
                static_cast<int>(r);
            regsUsed = std::max(regsUsed, r + 1);
            active.push_back({cur->end, cur->vreg, r});
            continue;
        }
        // Window full: spill the spillable interval that ends
        // furthest away (ties: larger vreg id — deterministic).
        Active *victim = nullptr;
        for (Active &a : active)
            if (spillable(a.vreg) &&
                (!victim || a.end > victim->end ||
                 (a.end == victim->end && a.vreg > victim->vreg)))
                victim = &a;
        if (victim && spillable(cur->vreg) &&
            (cur->end > victim->end ||
             (cur->end == victim->end && cur->vreg > victim->vreg)))
            victim = nullptr; // The current interval is the victim.
        if (victim) {
            spillSet.push_back(victim->vreg);
            regIdxOf[static_cast<std::size_t>(victim->vreg)] = -1;
            const unsigned r = victim->reg;
            active.erase(active.begin() + (victim - active.data()));
            regIdxOf[static_cast<std::size_t>(cur->vreg)] =
                static_cast<int>(r);
            regsUsed = std::max(regsUsed, r + 1);
            active.push_back({cur->end, cur->vreg, r});
        } else if (spillable(cur->vreg)) {
            spillSet.push_back(cur->vreg);
        } else {
            return false; // Only unspillable temps compete.
        }
    }
    return true;
}

/** Collapse vreg ids onto their assigned window-relative indices so
 *  the DDG sees physical reuse as WAR/WAW edges. */
void
collapseToIndices(IrProgram &prog, const Liveness &lv,
                  const std::vector<int> &regIdxOf, unsigned regsUsed,
                  Allocation &alloc)
{
    auto remap = [&](IrValue &v) {
        if (v.isVreg())
            v = IrValue::reg(
                regIdxOf[static_cast<std::size_t>(v.vreg)]);
    };
    for (IrBlock &b : prog.blocks)
        for (IrOp &op : b.ops) {
            remap(op.a);
            remap(op.b);
            if (opHasDest(op))
                op.dest =
                    regIdxOf[static_cast<std::size_t>(op.dest)];
        }
    std::vector<std::pair<VregId, Word>> inits;
    for (const auto &[v, value] : prog.vregInit) {
        const auto vi = static_cast<std::size_t>(v);
        // An initializer is observable only when its vreg is live at
        // position 0 (entry); dead initializers cannot ride along —
        // after collapsing, their register now belongs to whichever
        // interval occupies it first.
        if (regIdxOf[vi] >= 0 && lv.intervals[vi].start == 0)
            inits.emplace_back(regIdxOf[vi], value);
        else
            ++alloc.deadInitsDropped;
    }
    prog.vregInit = std::move(inits);
    prog.numVregs = static_cast<int>(regsUsed);
}

} // namespace

CompileResult<Allocation>
allocateRegisters(IrProgram &prog, const RegAllocOptions &opts)
{
    if (auto v = prog.validateChecked(); !v) {
        CompileError e = v.error();
        e.pass = "regalloc";
        return e;
    }

    const unsigned capacity = opts.window.capacity();
    const auto originalVregs =
        static_cast<std::size_t>(prog.numVregs);
    Allocation alloc;
    alloc.homes.assign(originalVregs, VregHome{});

    if (!opts.spill) {
        // Direct strategy: the identity map vreg -> base + vreg.
        if (static_cast<unsigned>(prog.numVregs) > capacity) {
            const Liveness lv = computeLiveness(prog);
            return exhaustionError(
                opts, lv, cat(prog.numVregs, " vregs"));
        }
        const Liveness lv = computeLiveness(prog);
        for (std::size_t v = 0; v < originalVregs; ++v) {
            alloc.homes[v].kind = VregHome::Kind::Reg;
            alloc.homes[v].reg = static_cast<RegId>(
                opts.window.base + v);
        }
        alloc.regsUsed = static_cast<unsigned>(prog.numVregs);
        alloc.maxPressure = lv.peak.pressure;
        alloc.rounds = 1;
        return alloc;
    }

    // Linear scan with iterative spilling: scan, rewrite the chosen
    // victims into Load/Store through their slots, rescan — each
    // round retires at least one original vreg, so this terminates.
    std::vector<char> unspillable(originalVregs, 0);
    std::vector<int> regIdxOf;
    Liveness lv;
    for (;;) {
        ++alloc.rounds;
        lv = computeLiveness(prog);
        std::vector<VregId> spillSet;
        unsigned regsUsed = 0;
        const bool scanned = linearScan(lv, capacity, unspillable,
                                        regIdxOf, spillSet,
                                        regsUsed);
        if (!scanned)
            return exhaustionError(
                opts, lv,
                cat("cannot stage spill reloads through ", capacity,
                    " registers (need at least 4)"));
        if (spillSet.empty()) {
            alloc.regsUsed = regsUsed;
            alloc.maxPressure = lv.peak.pressure;
            break;
        }
        std::map<VregId, Addr> slots;
        for (VregId v : spillSet) {
            if (alloc.slotsUsed >= opts.spillSlots)
                return compileError(
                    "regalloc",
                    cat("spill region exhausted: ", opts.spillSlots,
                        " slots at base ", opts.spillBase,
                        " (raise --spill-slots)"));
            const Addr addr = opts.spillBase + alloc.slotsUsed++;
            slots[v] = addr;
            // Victims are always original vregs; temps never spill.
            alloc.homes[static_cast<std::size_t>(v)].kind =
                VregHome::Kind::Slot;
            alloc.homes[static_cast<std::size_t>(v)].addr = addr;
            ++alloc.spilledVregs;
        }
        rewriteSpills(prog, slots, unspillable, alloc);
    }

    for (std::size_t v = 0; v < originalVregs; ++v) {
        if (alloc.homes[v].kind == VregHome::Kind::Slot)
            continue;
        if (regIdxOf[v] >= 0) {
            alloc.homes[v].kind = VregHome::Kind::Reg;
            alloc.homes[v].reg = static_cast<RegId>(
                opts.window.base +
                static_cast<unsigned>(regIdxOf[v]));
        }
    }
    collapseToIndices(prog, lv, regIdxOf, alloc.regsUsed, alloc);
    return alloc;
}

} // namespace ximd::sched
