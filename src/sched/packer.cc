#include "sched/packer.hh"

#include <algorithm>
#include <numeric>

#include "support/logging.hh"

namespace ximd::sched {

namespace {

/** Skyline: next free row per column. */
class Skyline
{
  public:
    explicit Skyline(FuId width) : tops_(width, 0) {}

    FuId width() const { return static_cast<FuId>(tops_.size()); }

    /** Landing row for a tile of @p w columns at column @p col. */
    unsigned
    landingRow(FuId col, FuId w) const
    {
        unsigned row = 0;
        for (FuId c = col; c < col + w; ++c)
            row = std::max(row, tops_[c]);
        return row;
    }

    /** Wasted FU-rows below the tile if placed at (col, row). */
    unsigned
    waste(FuId col, FuId w, unsigned row) const
    {
        unsigned wasted = 0;
        for (FuId c = col; c < col + w; ++c)
            wasted += row - tops_[c];
        return wasted;
    }

    void
    place(FuId col, FuId w, unsigned row, unsigned h)
    {
        for (FuId c = col; c < col + w; ++c)
            tops_[c] = row + h;
    }

    unsigned
    height() const
    {
        return *std::max_element(tops_.begin(), tops_.end());
    }

  private:
    std::vector<unsigned> tops_;
};

const Tile &
minAreaFitting(const TileSet &set, FuId machineWidth)
{
    const Tile *best = nullptr;
    for (const Tile &t : set.impls) {
        if (t.width > machineWidth)
            continue;
        if (!best || t.area() < best->area())
            best = &t;
    }
    if (!best)
        fatal("thread ", set.threadId, " has no tile fitting width ",
              machineWidth);
    return *best;
}

Placement
toPlacement(const Tile &t, FuId col, unsigned row)
{
    Placement p;
    p.threadId = t.threadId;
    p.width = t.width;
    p.height = t.height;
    p.col = col;
    p.row = row;
    return p;
}

/** Greedy bottom-left insertion of @p tile into @p sky. */
Placement
bottomLeft(Skyline &sky, const Tile &tile)
{
    unsigned bestRow = ~0u;
    FuId bestCol = 0;
    for (FuId col = 0; col + tile.width <= sky.width(); ++col) {
        const unsigned row = sky.landingRow(col, tile.width);
        if (row < bestRow) {
            bestRow = row;
            bestCol = col;
        }
    }
    sky.place(bestCol, tile.width, bestRow, tile.height);
    return toPlacement(tile, bestCol, bestRow);
}

void
sortPlacementsByThread(PackResult &r)
{
    std::sort(r.placements.begin(), r.placements.end(),
              [](const Placement &a, const Placement &b) {
                  return a.threadId < b.threadId;
              });
}

} // namespace

PackResult
packStacked(const std::vector<TileSet> &sets, FuId machineWidth)
{
    PackResult result;
    result.strategy = "stacked-full-width";
    unsigned row = 0;
    for (const TileSet &set : sets) {
        if (machineWidth > set.heightAtWidth.size())
            fatal("packStacked: tiles not generated at width ",
                  machineWidth);
        Placement p;
        p.threadId = set.threadId;
        p.width = machineWidth;
        p.height = set.heightAt(machineWidth);
        p.col = 0;
        p.row = row;
        result.placements.push_back(p);
        row += p.height;
    }
    result.totalHeight = row;
    return result;
}

PackResult
packFirstFit(const std::vector<TileSet> &sets, FuId machineWidth)
{
    PackResult result;
    result.strategy = "first-fit-decreasing";

    std::vector<const Tile *> chosen;
    for (const TileSet &set : sets)
        chosen.push_back(&minAreaFitting(set, machineWidth));
    std::stable_sort(chosen.begin(), chosen.end(),
                     [](const Tile *a, const Tile *b) {
                         return a->height > b->height;
                     });

    Skyline sky(machineWidth);
    for (const Tile *t : chosen) {
        // First fit: leftmost column whose landing row equals the
        // minimum over all columns.
        unsigned bestRow = ~0u;
        for (FuId col = 0; col + t->width <= machineWidth; ++col)
            bestRow = std::min(bestRow, sky.landingRow(col, t->width));
        for (FuId col = 0; col + t->width <= machineWidth; ++col) {
            if (sky.landingRow(col, t->width) == bestRow) {
                sky.place(col, t->width, bestRow, t->height);
                result.placements.push_back(
                    toPlacement(*t, col, bestRow));
                break;
            }
        }
    }
    result.totalHeight = sky.height();
    sortPlacementsByThread(result);
    return result;
}

PackResult
packSkyline(const std::vector<TileSet> &sets, FuId machineWidth)
{
    PackResult result;
    result.strategy = "skyline-best-fit";

    // Process threads by decreasing minimum area (big rocks first).
    std::vector<const TileSet *> order;
    for (const TileSet &s : sets)
        order.push_back(&s);
    std::stable_sort(order.begin(), order.end(),
                     [&](const TileSet *a, const TileSet *b) {
                         return minAreaFitting(*a, machineWidth).area() >
                                minAreaFitting(*b, machineWidth).area();
                     });

    Skyline sky(machineWidth);
    for (const TileSet *set : order) {
        const Tile *bestTile = nullptr;
        FuId bestCol = 0;
        unsigned bestRow = 0;
        // Score: lowest resulting top edge, then least waste, then
        // smallest area.
        std::uint64_t bestScore = ~0ull;
        for (const Tile &t : set->impls) {
            if (t.width > machineWidth)
                continue;
            for (FuId col = 0; col + t.width <= machineWidth; ++col) {
                const unsigned row = sky.landingRow(col, t.width);
                const unsigned top = row + t.height;
                const unsigned waste = sky.waste(col, t.width, row);
                const std::uint64_t score =
                    (static_cast<std::uint64_t>(top) << 40) |
                    (static_cast<std::uint64_t>(waste) << 16) |
                    t.area();
                if (score < bestScore) {
                    bestScore = score;
                    bestTile = &t;
                    bestCol = col;
                    bestRow = row;
                }
            }
        }
        XIMD_ASSERT(bestTile, "no feasible tile for thread ",
                    set->threadId);
        sky.place(bestCol, bestTile->width, bestRow,
                  bestTile->height);
        result.placements.push_back(
            toPlacement(*bestTile, bestCol, bestRow));
    }
    result.totalHeight = sky.height();
    sortPlacementsByThread(result);
    return result;
}

PackResult
packExhaustive(const std::vector<TileSet> &sets, FuId machineWidth)
{
    // Combination count guard.
    std::uint64_t combos = 1;
    for (const TileSet &s : sets)
        combos *= s.impls.size();
    std::uint64_t perms = 1;
    for (std::size_t i = 2; i <= sets.size(); ++i)
        perms *= i;
    if (combos * perms > 2'000'000)
        fatal("packExhaustive: instance too large (",
              combos * perms, " combinations)");

    std::vector<std::size_t> implIdx(sets.size(), 0);
    std::vector<std::size_t> order(sets.size());
    std::iota(order.begin(), order.end(), 0);

    PackResult best;
    best.strategy = "exhaustive-bottom-left";
    best.totalHeight = ~0u;

    while (true) {
        // Try every thread order for this tile choice.
        std::vector<std::size_t> perm = order;
        std::sort(perm.begin(), perm.end());
        do {
            Skyline sky(machineWidth);
            PackResult cur;
            bool feasible = true;
            for (std::size_t idx : perm) {
                const Tile &t = sets[idx].impls[implIdx[idx]];
                if (t.width > machineWidth) {
                    feasible = false;
                    break;
                }
                cur.placements.push_back(bottomLeft(sky, t));
            }
            if (feasible) {
                cur.totalHeight = sky.height();
                if (cur.totalHeight < best.totalHeight) {
                    cur.strategy = best.strategy;
                    sortPlacementsByThread(cur);
                    best = cur;
                }
            }
        } while (std::next_permutation(perm.begin(), perm.end()));

        // Advance the tile-choice odometer.
        std::size_t i = 0;
        for (; i < sets.size(); ++i) {
            if (++implIdx[i] < sets[i].impls.size())
                break;
            implIdx[i] = 0;
        }
        if (i == sets.size())
            break;
    }
    if (best.totalHeight == ~0u)
        fatal("packExhaustive: no feasible packing");
    return best;
}

PackResult
packBalancedGroups(const std::vector<TileSet> &sets, FuId machineWidth)
{
    PackResult best;
    best.strategy = "balanced-groups";
    best.totalHeight = ~0u;

    for (FuId g = 1; g <= machineWidth; ++g) {
        if (machineWidth % g != 0)
            continue;
        const FuId gw = machineWidth / g; // group width
        if (gw > sets.front().heightAtWidth.size())
            continue; // tiles were not generated this wide

        // Every thread compiled at exactly the group width, so all
        // placements in a group share one column range.
        std::vector<unsigned> chosenHeight;
        for (const TileSet &set : sets)
            chosenHeight.push_back(set.heightAt(gw));

        // Longest-processing-time assignment onto g groups.
        std::vector<std::size_t> order(sets.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return chosenHeight[a] > chosenHeight[b];
                         });
        std::vector<unsigned> groupHeight(g, 0);
        PackResult cur;
        cur.strategy = best.strategy;
        for (std::size_t idx : order) {
            const auto grp = static_cast<std::size_t>(
                std::min_element(groupHeight.begin(),
                                 groupHeight.end()) -
                groupHeight.begin());
            Placement p;
            p.threadId = sets[idx].threadId;
            p.width = gw;
            p.height = chosenHeight[idx];
            p.col = static_cast<FuId>(grp) * gw;
            p.row = groupHeight[grp];
            cur.placements.push_back(p);
            groupHeight[grp] += chosenHeight[idx];
        }
        cur.totalHeight = *std::max_element(groupHeight.begin(),
                                            groupHeight.end());
        if (cur.totalHeight < best.totalHeight) {
            sortPlacementsByThread(cur);
            best = cur;
        }
    }
    if (best.totalHeight == ~0u)
        fatal("packBalancedGroups: no feasible grouping");
    return best;
}

CompileResult<unsigned>
validatePackingChecked(const PackResult &result,
                       const std::vector<TileSet> &sets,
                       FuId machineWidth)
{
    auto err = [](std::string msg) {
        return CompileResult<unsigned>(
            compileError("pack", std::move(msg)));
    };

    if (result.placements.size() != sets.size())
        return err(cat("packing places ", result.placements.size(),
                       " tiles for ", sets.size(), " threads"));

    std::vector<bool> seen(sets.size(), false);
    unsigned height = 0;
    for (const Placement &p : result.placements) {
        if (p.threadId < 0 ||
            p.threadId >= static_cast<int>(sets.size()))
            return err(cat("placement names unknown thread ",
                           p.threadId));
        if (seen[static_cast<std::size_t>(p.threadId)])
            return err(cat("thread ", p.threadId,
                           " placed twice"));
        seen[static_cast<std::size_t>(p.threadId)] = true;
        if (p.col + p.width > machineWidth)
            return err(cat("thread ", p.threadId,
                           " exceeds machine width"));
        // The placement must correspond to a compilable shape of the
        // thread: a saved Pareto tile or any exact-width compile.
        const TileSet &set = sets[static_cast<std::size_t>(p.threadId)];
        bool known = false;
        for (const Tile &t : set.impls)
            known |= t.width == p.width && t.height == p.height;
        if (!known && p.width <= set.heightAtWidth.size())
            known = set.heightAt(p.width) == p.height;
        if (!known)
            return err(cat("thread ", p.threadId,
                           " placed with an unknown tile shape"));
        height = std::max(height, p.row + p.height);
    }
    // Pairwise overlap.
    for (std::size_t i = 0; i < result.placements.size(); ++i) {
        for (std::size_t j = i + 1; j < result.placements.size();
             ++j) {
            const Placement &a = result.placements[i];
            const Placement &b = result.placements[j];
            const bool colOverlap =
                a.col < b.col + b.width && b.col < a.col + a.width;
            const bool rowOverlap =
                a.row < b.row + b.height && b.row < a.row + a.height;
            if (colOverlap && rowOverlap)
                return err(cat("threads ", a.threadId, " and ",
                               b.threadId, " overlap"));
        }
    }
    if (height != result.totalHeight)
        return err(cat("recorded packing height ", result.totalHeight,
                       " differs from actual ", height));
    return height;
}

} // namespace ximd::sched
