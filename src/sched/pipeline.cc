#include "sched/pipeline.hh"

#include <chrono>
#include <sstream>

#include "analysis/race.hh"
#include "analysis/verify.hh"
#include "support/logging.hh"

namespace ximd::sched {

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::milli>(dt).count();
}

std::size_t
totalOps(const IrProgram &ir)
{
    std::size_t n = 0;
    for (const IrBlock &b : ir.blocks)
        n += b.ops.size();
    return n;
}

class ValidateIrPass : public Pass
{
  public:
    std::string name() const override { return "validate-ir"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        if (auto v = cx.ir.validateChecked(); !v) {
            CompileError e = v.error();
            e.pass = name();
            return e;
        }
        stat.counters["blocks"] =
            static_cast<double>(cx.ir.blocks.size());
        stat.counters["ops"] = static_cast<double>(totalOps(cx.ir));
        stat.counters["vregs"] = cx.ir.numVregs;
        return Ok{};
    }
};

class MergeBlocksPass : public Pass
{
  public:
    std::string name() const override { return "merge-blocks"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        const auto before = cx.ir.blocks.size();
        cx.ir = mergeStraightLineBlocks(std::move(cx.ir));
        stat.counters["blocks_before"] = static_cast<double>(before);
        stat.counters["blocks_after"] =
            static_cast<double>(cx.ir.blocks.size());
        return Ok{};
    }
};

class RegAllocPass : public Pass
{
  public:
    std::string name() const override { return "regalloc"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        auto a = allocateRegisters(cx.ir, cx.opts.alloc);
        if (!a)
            return a.error();
        cx.alloc = std::move(a).value();
        stat.counters["regs_used"] = cx.alloc.regsUsed;
        stat.counters["max_pressure"] = cx.alloc.maxPressure;
        stat.counters["spilled_vregs"] = cx.alloc.spilledVregs;
        stat.counters["spill_stores"] = cx.alloc.spillStores;
        stat.counters["spill_reloads"] = cx.alloc.spillReloads;
        stat.counters["slots_used"] = cx.alloc.slotsUsed;
        stat.counters["rounds"] = cx.alloc.rounds;
        return Ok{};
    }
};

class BuildDdgPass : public Pass
{
  public:
    std::string name() const override { return "build-ddg"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        cx.ddgs.clear();
        std::size_t edges = 0;
        int critical = 0;
        for (const IrBlock &b : cx.ir.blocks) {
            cx.ddgs.emplace_back(b, cx.opts.rawLatency);
            edges += cx.ddgs.back().edges().size();
            critical = std::max(
                critical, cx.ddgs.back().criticalPathLength());
        }
        stat.counters["edges"] = static_cast<double>(edges);
        stat.counters["critical_path"] = critical;
        return Ok{};
    }
};

class ListSchedulePass : public Pass
{
  public:
    std::string name() const override { return "list-schedule"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        cx.schedules.clear();
        std::size_t rows = 0;
        for (const IrBlock &b : cx.ir.blocks) {
            auto s = scheduleBlockChecked(b, cx.opts.width,
                                          cx.opts.rawLatency);
            if (!s)
                return s.error();
            rows += s.value().numRows();
            cx.schedules.push_back(std::move(s).value());
        }
        stat.counters["ops_scheduled"] =
            static_cast<double>(totalOps(cx.ir));
        stat.counters["rows"] = static_cast<double>(rows);
        return Ok{};
    }
};

/** Does any (reachable, same-or-later) terminator jump back here? */
bool
isLoopHeader(const IrProgram &ir, std::size_t bi)
{
    const std::string &name = ir.blocks[bi].name;
    for (std::size_t j = bi; j < ir.blocks.size(); ++j) {
        const Terminator &t = ir.blocks[j].term;
        switch (t.kind) {
          case Terminator::Kind::Jump:
            if (t.taken == name)
                return true;
            break;
          case Terminator::Kind::CondBranch:
            if (t.taken == name || t.fallthrough == name)
                return true;
            break;
          case Terminator::Kind::Halt:
            break;
        }
    }
    return false;
}

class ExactSchedulePass : public Pass
{
  public:
    std::string name() const override { return "exact-schedule"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        cx.schedules.clear();
        cx.loopStats.clear();
        std::size_t rows = 0;
        unsigned exactWins = 0, timeouts = 0, proven = 0, gap = 0;
        for (std::size_t bi = 0; bi < cx.ir.blocks.size(); ++bi) {
            const IrBlock &b = cx.ir.blocks[bi];
            ExactLoopStat ls;
            auto s = exactScheduleBlockChecked(
                b, cx.opts.width, cx.opts.rawLatency, cx.opts.exact,
                &ls);
            if (!s)
                return s.error();
            rows += s.value().numRows();
            cx.schedules.push_back(std::move(s).value());
            ls.loop = isLoopHeader(cx.ir, bi);
            exactWins += ls.tier == "exact" ? 1 : 0;
            timeouts += ls.timedOut ? 1 : 0;
            proven += ls.proven ? 1 : 0;
            gap += ls.optimalityGap();
            cx.loopStats.push_back(std::move(ls));
        }
        stat.counters["ops_scheduled"] =
            static_cast<double>(totalOps(cx.ir));
        stat.counters["rows"] = static_cast<double>(rows);
        stat.counters["exact_wins"] = exactWins;
        stat.counters["exact_timeouts"] = timeouts;
        stat.counters["proven_minimal"] = proven;
        stat.counters["optimality_gap"] = gap;
        return Ok{};
    }
};

class CodegenPass : public Pass
{
  public:
    std::string name() const override { return "codegen"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        auto code =
            emitScheduled(cx.ir, cx.schedules, cx.opts.codegen());
        if (!code)
            return code.error();
        cx.code = std::move(code).value();
        cx.program = cx.code.program;
        cx.hasProgram = true;
        stat.counters["rows"] =
            static_cast<double>(cx.program.size());
        stat.counters["raw_latency"] = cx.opts.rawLatency;
        return Ok{};
    }
};

class ModuloPass : public Pass
{
  public:
    std::string name() const override { return "modulo"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        auto prog = pipelineLoopChecked(cx.loop, cx.opts.width,
                                        &cx.pipeInfo);
        if (!prog)
            return prog.error();
        cx.program = std::move(prog).value();
        cx.hasProgram = true;
        stat.counters["ii"] = 1;
        stat.counters["depth"] = cx.pipeInfo.depth;
        stat.counters["expansion"] = cx.pipeInfo.expansion;
        stat.counters["kernel_rows"] = cx.pipeInfo.kernelRows;
        stat.counters["prologue_rows"] = cx.pipeInfo.prologueRows;
        // II = 1 cannot be beaten: the loop path is optimal by
        // construction, so it reports a zero-gap loop entry too.
        stat.counters["achieved_ii"] = 1;
        stat.counters["minimal_ii"] = 1;
        stat.counters["optimality_gap"] = 0;
        ExactLoopStat ls;
        ls.block = "kernel";
        ls.loop = true;
        ls.ops = static_cast<unsigned>(cx.loop.body.size());
        ls.resMii = ls.recMii = ls.mii = 1;
        ls.heuristicIi = ls.achievedIi = ls.minimalIi = 1;
        ls.proven = true;
        ls.tier = "modulo";
        cx.loopStats.push_back(std::move(ls));
        return Ok{};
    }
};

class TilePass : public Pass
{
  public:
    std::string name() const override { return "tile"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        for (const IrProgram &t : cx.threads)
            if (auto v = t.validateChecked(); !v)
                return v.error();
        cx.tiles = generateTiles(cx.threads, cx.opts.width);
        std::size_t impls = 0;
        for (const TileSet &s : cx.tiles)
            impls += s.impls.size();
        stat.counters["threads"] =
            static_cast<double>(cx.threads.size());
        stat.counters["tiles"] = static_cast<double>(impls);
        return Ok{};
    }
};

class PackPass : public Pass
{
  public:
    explicit PackPass(std::string strategy)
        : strategy_(std::move(strategy))
    {
    }

    std::string name() const override { return "pack"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        PackFn fn = packStrategyByName(strategy_);
        if (!fn)
            return compileError(
                "pack", cat("unknown pack strategy '", strategy_,
                            "' (stacked, first-fit, skyline, "
                            "balanced-groups, exhaustive)"));
        cx.packing = fn(cx.tiles, cx.opts.width);
        if (auto v = validatePackingChecked(cx.packing, cx.tiles,
                                            cx.opts.width);
            !v)
            return v.error();
        stat.counters["rows_packed"] = cx.packing.totalHeight;
        stat.counters["utilization_pct"] =
            cx.packing.utilization(cx.opts.width) * 100.0;
        return Ok{};
    }

  private:
    std::string strategy_;
};

class ComposePass : public Pass
{
  public:
    explicit ComposePass(ComposeOptions opts) : opts_(opts) {}

    std::string name() const override { return "compose"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        auto comp = composeThreadsChecked(cx.threads, cx.packing,
                                          cx.opts.width, opts_);
        if (!comp)
            return comp.error();
        cx.composed = std::move(comp).value();
        cx.program = cx.composed.program;
        cx.hasProgram = true;
        stat.counters["rows"] =
            static_cast<double>(cx.program.size());
        stat.counters["threads"] =
            static_cast<double>(cx.composed.threads.size());
        return Ok{};
    }

  private:
    ComposeOptions opts_;
};

class VerifyPass : public Pass
{
  public:
    std::string name() const override { return "verify"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        if (!cx.hasProgram)
            return compileError("verify", "no program to verify");
        const auto diags = analysis::analyze(cx.program);
        stat.counters["errors"] =
            static_cast<double>(diags.errorCount());
        stat.counters["warnings"] =
            static_cast<double>(diags.warningCount());
        if (diags.hasErrors())
            return compileError(
                "verify", cat("emitted program fails static "
                              "verification:\n",
                              diags.formatted(&cx.program)));
        return Ok{};
    }
};

class RaceCheckPass : public Pass
{
  public:
    std::string name() const override { return "race-check"; }

    CompileResult<Ok>
    run(CompileContext &cx, PassStat &stat) override
    {
        if (!cx.hasProgram)
            return compileError("race-check",
                                "no program to analyze");
        const analysis::RaceReport report =
            analysis::analyzeRaces(cx.program);
        stat.counters["classes"] =
            static_cast<double>(report.classes);
        stat.counters["pairs"] =
            static_cast<double>(report.pairsAnalyzed);
        stat.counters["product_states"] =
            static_cast<double>(report.productStates);
        stat.counters["races"] =
            static_cast<double>(report.diags.errorCount());
        stat.counters["covered"] =
            static_cast<double>(report.covered.size());
        if (report.diags.hasErrors())
            return compileError(
                "race-check",
                cat("emitted program fails cross-stream race "
                    "analysis:\n",
                    report.diags.formatted(&cx.program)));
        return Ok{};
    }
};

/** verifyBetween support: check the context invariants hold. */
CompileResult<Ok>
checkInvariants(const std::string &pass, CompileContext &cx)
{
    if (!cx.ir.blocks.empty())
        if (auto v = cx.ir.validateChecked(); !v) {
            CompileError e = v.error();
            e.message = cat("after pass '", pass,
                            "': IR invariant broken: ", e.message);
            return e;
        }
    if (cx.hasProgram) {
        try {
            cx.program.validate();
            analysis::verify(cx.program);
        } catch (const FatalError &e) {
            return compileError(
                "verify", cat("after pass '", pass, "': ", e.what()));
        }
        if (cx.opts.analyzeRace) {
            const analysis::RaceReport report =
                analysis::analyzeRaces(cx.program);
            if (report.diags.hasErrors())
                return compileError(
                    "race-check",
                    cat("after pass '", pass,
                        "': cross-stream race analysis failed:\n",
                        report.diags.formatted(&cx.program)));
        }
    }
    return Ok{};
}

} // namespace

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    for (const auto &p : passes_)
        names.push_back(p->name());
    return names;
}

CompileResult<Ok>
PassManager::run(CompileContext &cx)
{
    for (const auto &pass : passes_) {
        PassStat stat;
        stat.pass = pass->name();
        const auto t0 = std::chrono::steady_clock::now();
        auto r = pass->run(cx, stat);
        stat.wallMs = msSince(t0);
        cx.stats.push_back(std::move(stat));
        if (!r)
            return r.error();
        if (hook_)
            hook_(pass->name(), cx);
        if (cx.opts.verifyBetween)
            if (auto v = checkInvariants(pass->name(), cx); !v)
                return v.error();
    }
    return Ok{};
}

std::unique_ptr<Pass>
makeValidateIrPass()
{
    return std::make_unique<ValidateIrPass>();
}

std::unique_ptr<Pass>
makeMergeBlocksPass()
{
    return std::make_unique<MergeBlocksPass>();
}

std::unique_ptr<Pass>
makeRegAllocPass()
{
    return std::make_unique<RegAllocPass>();
}

std::unique_ptr<Pass>
makeBuildDdgPass()
{
    return std::make_unique<BuildDdgPass>();
}

std::unique_ptr<Pass>
makeListSchedulePass()
{
    return std::make_unique<ListSchedulePass>();
}

std::unique_ptr<Pass>
makeExactSchedulePass()
{
    return std::make_unique<ExactSchedulePass>();
}

std::unique_ptr<Pass>
makeCodegenPass()
{
    return std::make_unique<CodegenPass>();
}

std::unique_ptr<Pass>
makeModuloPass()
{
    return std::make_unique<ModuloPass>();
}

std::unique_ptr<Pass>
makeTilePass()
{
    return std::make_unique<TilePass>();
}

std::unique_ptr<Pass>
makePackPass(std::string strategy)
{
    return std::make_unique<PackPass>(std::move(strategy));
}

std::unique_ptr<Pass>
makeComposePass(ComposeOptions opts)
{
    return std::make_unique<ComposePass>(opts);
}

std::unique_ptr<Pass>
makeVerifyPass()
{
    return std::make_unique<VerifyPass>();
}

std::unique_ptr<Pass>
makeRaceCheckPass()
{
    return std::make_unique<RaceCheckPass>();
}

std::string
statsJson(const std::vector<PassStat> &stats,
          const std::vector<ExactLoopStat> &loops)
{
    std::ostringstream os;
    os << "{\n  \"schema\": 2,\n  \"passes\": [\n";
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const PassStat &s = stats[i];
        os << "    {\"pass\": \"" << s.pass << "\", \"wall_ms\": "
           << s.wallMs << ", \"counters\": {";
        bool first = true;
        for (const auto &[k, v] : s.counters) {
            if (!first)
                os << ", ";
            os << "\"" << k << "\": " << v;
            first = false;
        }
        os << "}}" << (i + 1 < stats.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (!loops.empty()) {
        // One object per line so CLI tests and the ci gap-report can
        // grep/sed loop records without a JSON parser.
        unsigned timeouts = 0;
        os << ",\n  \"loops\": [\n";
        for (std::size_t i = 0; i < loops.size(); ++i) {
            const ExactLoopStat &l = loops[i];
            timeouts += l.timedOut ? 1 : 0;
            os << "    {\"block\": \"" << l.block << "\", "
               << "\"loop\": " << (l.loop ? "true" : "false") << ", "
               << "\"tier\": \"" << l.tier << "\", "
               << "\"ops\": " << l.ops << ", "
               << "\"res_mii\": " << l.resMii << ", "
               << "\"rec_mii\": " << l.recMii << ", "
               << "\"mii\": " << l.mii << ", "
               << "\"heuristic_ii\": " << l.heuristicIi << ", "
               << "\"achieved_ii\": " << l.achievedIi << ", "
               << "\"minimal_ii\": " << l.minimalIi << ", "
               << "\"optimality_gap\": " << l.optimalityGap() << ", "
               << "\"proven\": " << (l.proven ? "true" : "false")
               << ", "
               << "\"timeout\": " << (l.timedOut ? "true" : "false")
               << ", "
               << "\"nodes\": " << l.nodes << ", "
               << "\"solve_ms\": " << l.solveMs << "}"
               << (i + 1 < loops.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"exact_timeouts\": " << timeouts;
    }
    os << "\n}\n";
    return os.str();
}

std::string
statsJson(const std::vector<PassStat> &stats)
{
    return statsJson(stats, {});
}

PackFn
packStrategyByName(const std::string &name)
{
    if (name == "stacked")
        return packStacked;
    if (name == "first-fit")
        return packFirstFit;
    if (name == "skyline")
        return packSkyline;
    if (name == "balanced-groups")
        return packBalancedGroups;
    if (name == "exhaustive")
        return packExhaustive;
    return nullptr;
}

CompileResult<Ok>
Compiler::runPipeline(PassManager &pm)
{
    pm.setAfterPass(hook_);
    return pm.run(cx_);
}

CompileResult<CodegenResult>
Compiler::compile(IrProgram ir)
{
    cx_ = CompileContext{};
    cx_.opts = opts_;
    cx_.ir = std::move(ir);

    PassManager pm;
    pm.add(makeValidateIrPass());
    if (opts_.mergeBlocks)
        pm.add(makeMergeBlocksPass());
    pm.add(makeRegAllocPass());
    pm.add(makeBuildDdgPass());
    if (opts_.schedule == ScheduleTier::Exact)
        pm.add(makeExactSchedulePass());
    else
        pm.add(makeListSchedulePass());
    pm.add(makeCodegenPass());
    if (opts_.verify)
        pm.add(makeVerifyPass());
    if (opts_.analyzeRace)
        pm.add(makeRaceCheckPass());
    if (auto r = runPipeline(pm); !r)
        return r.error();
    return cx_.code;
}

CompileResult<Program>
Compiler::compileLoop(PipelineLoop loop)
{
    cx_ = CompileContext{};
    cx_.opts = opts_;
    cx_.loop = std::move(loop);

    PassManager pm;
    pm.add(makeModuloPass());
    if (opts_.verify)
        pm.add(makeVerifyPass());
    if (opts_.analyzeRace)
        pm.add(makeRaceCheckPass());
    if (auto r = runPipeline(pm); !r)
        return r.error();
    return cx_.program;
}

CompileResult<Composed>
Compiler::compose(std::vector<IrProgram> threads,
                  const std::string &strategy)
{
    cx_ = CompileContext{};
    cx_.opts = opts_;
    cx_.threads = std::move(threads);

    PassManager pm;
    pm.add(makeTilePass());
    pm.add(makePackPass(strategy));
    pm.add(makeComposePass(opts_.compose()));
    if (opts_.verify)
        pm.add(makeVerifyPass());
    if (opts_.analyzeRace)
        pm.add(makeRaceCheckPass());
    if (auto r = runPipeline(pm); !r)
        return r.error();
    return cx_.composed;
}

} // namespace ximd::sched
