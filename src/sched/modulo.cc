#include "sched/modulo.hh"

#include <algorithm>

#include "analysis/verify.hh"
#include "sched/codegen.hh"
#include "sched/regalloc.hh"
#include "support/logging.hh"

namespace ximd::sched {

namespace {

/** Lower one PipeVal for an instance executing with register set s. */
Operand
lowerVal(const PipeVal &v, const PipelineLoop &loop, unsigned set)
{
    switch (v.kind) {
      case PipeVal::Kind::None:
        return Operand::none();
      case PipeVal::Kind::Imm:
        return Operand::imm(v.imm);
      case PipeVal::Kind::Induction:
        return Operand::reg(loop.inductionReg);
      case PipeVal::Kind::Local:
        return Operand::reg(static_cast<RegId>(
            loop.localBase +
            set * static_cast<unsigned>(loop.numLocals) +
            static_cast<unsigned>(v.local)));
    }
    panic("lowerVal: bad kind");
}

DataOp
lowerOp(const PipeOp &op, const PipelineLoop &loop, unsigned set)
{
    DataOp d;
    d.op = op.op;
    const OpInfo &info = opInfo(op.op);
    if (info.numSrcs >= 1)
        d.a = lowerVal(op.a, loop, set);
    if (info.numSrcs >= 2)
        d.b = lowerVal(op.b, loop, set);
    if (info.hasDest) {
        XIMD_ASSERT(op.destLocal >= 0 &&
                        op.destLocal < loop.numLocals,
                    "dest local validated before lowering");
        d.dest = static_cast<RegId>(
            loop.localBase +
            set * static_cast<unsigned>(loop.numLocals) +
            static_cast<unsigned>(op.destLocal));
    }
    d.validate();
    return d;
}

} // namespace

CompileResult<Program>
pipelineLoopChecked(const PipelineLoop &loop, FuId width,
                    PipelineInfo *info)
{
    auto err = [](std::string msg, int op = -1) {
        return CompileResult<Program>(
            compileError("modulo", std::move(msg), "", op));
    };

    const auto n_ops = loop.body.size();
    if (n_ops == 0)
        return err("empty body");
    if (n_ops + 2 > width)
        return err(cat(n_ops, " body ops + induction + exit test "
                       "exceed width ", width, " (II = 1 infeasible; "
                       "use the list-scheduled loop instead)"));
    if (loop.tripCount < 1)
        return err("tripCount must be >= 1");

    // ASAP levels over the iteration-local dataflow; def before use,
    // single definition per local.
    std::vector<int> defLevel(
        static_cast<std::size_t>(loop.numLocals), -1);
    std::vector<bool> defined(
        static_cast<std::size_t>(loop.numLocals), false);
    std::vector<int> level(n_ops, 0);
    std::vector<bool> readsInduction(n_ops, false);

    for (std::size_t i = 0; i < n_ops; ++i) {
        const PipeOp &op = loop.body[i];
        int lvl = 0;
        for (const PipeVal *v : {&op.a, &op.b}) {
            if (v->kind == PipeVal::Kind::Induction)
                readsInduction[i] = true;
            if (v->kind != PipeVal::Kind::Local)
                continue;
            if (v->local < 0 || v->local >= loop.numLocals ||
                !defined[static_cast<std::size_t>(v->local)])
                return err(cat("reads local ", v->local,
                               " before its definition"),
                           static_cast<int>(i));
            lvl = std::max(
                lvl, defLevel[static_cast<std::size_t>(v->local)] + 1);
        }
        level[i] = lvl;
        if (opInfo(op.op).hasDest && op.destLocal < 0)
            return err("missing destination local",
                       static_cast<int>(i));
        if (op.destLocal >= 0) {
            if (op.destLocal >= loop.numLocals)
                return err(cat("bad dest local ", op.destLocal),
                           static_cast<int>(i));
            if (defined[static_cast<std::size_t>(op.destLocal)])
                return err(cat("local ", op.destLocal,
                               " defined twice (locals are "
                               "single-assignment)"),
                           static_cast<int>(i));
            defined[static_cast<std::size_t>(op.destLocal)] = true;
            defLevel[static_cast<std::size_t>(op.destLocal)] = lvl;
        }
        if (readsInduction[i] && lvl != 0)
            return err(cat("reads the induction variable at stage ",
                           lvl, "; only stage 0 sees the correct "
                           "value"),
                       static_cast<int>(i));
    }

    int maxLevel = 0;
    for (std::size_t i = 0; i < n_ops; ++i)
        maxLevel = std::max(maxLevel, level[i]);
    const unsigned depth = static_cast<unsigned>(maxLevel) + 1;

    // Sink stores to the final stage so over-issued iterations never
    // reach memory.
    for (std::size_t i = 0; i < n_ops; ++i)
        if (loop.body[i].op == Opcode::Store)
            level[i] = maxLevel;

    const unsigned E = std::max(1u, depth - 1);
    const unsigned P = depth == 1 ? 0 : E; // prologue rows

    if (loop.tripCount + depth < 3)
        return err("tripCount too small for the exit test (need "
                   "tripCount + depth >= 3)");

    // Register layout checks, through the shared window contract:
    // the pipeliner's fixed expansion layout must fit the register
    // file just like any allocated unit fits its window.
    const unsigned regsNeeded =
        loop.localBase + E * static_cast<unsigned>(loop.numLocals);
    if (auto w = checkWindow("modulo", RegWindow{}, regsNeeded); !w)
        return w.error();
    if (loop.inductionReg >= loop.localBase &&
        loop.inductionReg < regsNeeded)
        return err("induction register collides with the local sets");

    const Word kend = loop.tripCount + depth - 2;
    const FuId incSlot = static_cast<FuId>(n_ops);
    const FuId cmpSlot = static_cast<FuId>(n_ops + 1);
    const InstAddr lend = P + E;

    Program out(width);

    // Build one row: ops whose instance (level d, set) lands here.
    // `include(d)` decides whether stage d is active in this row;
    // `setOf(d)` names the register set for that stage's instance.
    auto makeRow = [&](ControlOp ctrl, auto include, auto setOf) {
        InstRow row(width, Parcel(ctrl, DataOp::nop()));
        for (std::size_t i = 0; i < n_ops; ++i) {
            const unsigned d = static_cast<unsigned>(level[i]);
            if (!include(d))
                continue;
            row[i] = Parcel(ctrl,
                            lowerOp(loop.body[i], loop, setOf(d)));
        }
        row[incSlot] = Parcel(
            ctrl, DataOp::make(Opcode::Iadd,
                               Operand::reg(loop.inductionReg),
                               Operand::immInt(1),
                               loop.inductionReg));
        row[cmpSlot] = Parcel(
            ctrl, DataOp::makeCompare(Opcode::Eq,
                                      Operand::reg(loop.inductionReg),
                                      Operand::imm(kend)));
        return row;
    };

    // Prologue rows t = 0..P-1: stage d active once t >= d; the
    // instance at stage d belongs to iteration t-d+1, set (t-d) mod E.
    for (unsigned t = 0; t < P; ++t) {
        out.addRow(makeRow(
            ControlOp::jump(t + 1), [&](unsigned d) { return d <= t; },
            [&](unsigned d) { return (t - d) % E; }));
    }

    // Kernel rows r = 0..E-1 (addresses P+r): all stages active; the
    // stage-d instance uses set (r-d) mod E (P is a multiple of E).
    for (unsigned r = 0; r < E; ++r) {
        const InstAddr next = P + (r + 1) % E;
        out.addRow(makeRow(
            ControlOp::onCc(cmpSlot, lend, next),
            [&](unsigned) { return true; },
            [&](unsigned d) { return (r + E - d % E) % E; }));
        out.setLabel("K" + std::to_string(r), P + r);
    }

    out.addUniformRow(Parcel(ControlOp::halt(), DataOp::nop()));
    out.setLabel("LEND", lend);
    out.addRegInit(loop.inductionReg, 1);
    out.setSymbol("KEND", kend);
    // Modulo scheduling assumes single-cycle results throughout.
    out.setSymbol(kRawLatencySymbol, 1);

    if (info) {
        info->depth = depth;
        info->expansion = E;
        info->prologueRows = P;
        info->kernelRows = E;
        info->expectedCycles = loop.tripCount + depth;
    }

    out.validate();
    analysis::debugVerify(out);
    return out;
}

} // namespace ximd::sched
