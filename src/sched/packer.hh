/**
 * @file
 * Tile packing (Figure 13): "a packing algorithm is used to schedule
 * one implementation of each thread within a larger space representing
 * the entire instruction memory."
 *
 * The space is a strip of fixed width (the machine's FU count) and
 * unbounded height (instruction-memory rows); the packer chooses one
 * tile per thread, a column, and a starting row, minimizing the total
 * height — the static code density objective the paper illustrates.
 * The paper notes "it is still unknown which placement algorithm will
 * work best"; three are provided so they can be compared:
 *
 *   packStacked    — baseline: every thread at full machine width,
 *                    stacked vertically (no packing; what a plain
 *                    VLIW compiler would emit).
 *   packFirstFit   — pick each thread's minimum-area tile, sort by
 *                    height, place with first-fit on a skyline.
 *   packSkyline    — best-fit skyline with on-line tile (width)
 *                    selection: every (tile, column) option is scored
 *                    by resulting top edge, then wasted area.
 *   packExhaustive — optimal for small instances: all tile choices ×
 *                    thread orders, each placed bottom-left greedily.
 */

#ifndef XIMD_SCHED_PACKER_HH
#define XIMD_SCHED_PACKER_HH

#include <string>
#include <vector>

#include "sched/tile.hh"

namespace ximd::sched {

/** One placed tile. */
struct Placement
{
    int threadId = -1;
    FuId width = 1;
    unsigned height = 0;
    FuId col = 0;      ///< Leftmost FU column.
    unsigned row = 0;  ///< First instruction row.
};

/** A complete packing. */
struct PackResult
{
    std::string strategy;
    std::vector<Placement> placements; ///< One per thread.
    unsigned totalHeight = 0;

    /** FU-rows occupied / FU-rows available. */
    double
    utilization(FuId machineWidth) const
    {
        if (totalHeight == 0)
            return 0.0;
        unsigned used = 0;
        for (const Placement &p : placements)
            used += p.width * p.height;
        return static_cast<double>(used) /
               (static_cast<double>(machineWidth) * totalHeight);
    }
};

PackResult packStacked(const std::vector<TileSet> &sets,
                       FuId machineWidth);
PackResult packFirstFit(const std::vector<TileSet> &sets,
                        FuId machineWidth);
PackResult packSkyline(const std::vector<TileSet> &sets,
                       FuId machineWidth);
PackResult packExhaustive(const std::vector<TileSet> &sets,
                          FuId machineWidth);

/**
 * Laminar packing: split the strip into g equal column groups (for
 * every g that divides machineWidth), compile every thread at the
 * group width, assign threads to groups longest-processing-time
 * first, and keep the best g. Every pair of placements has equal or
 * disjoint column ranges, so the result is always composable into a
 * runnable program (compose.hh) — groups execute concurrently as
 * separate SSETs.
 */
PackResult packBalancedGroups(const std::vector<TileSet> &sets,
                              FuId machineWidth);

/**
 * Check structural validity: one placement per thread, tiles inside
 * the strip, pairwise non-overlapping, recorded height correct
 * (pass "pack"); returns the height.
 */
CompileResult<unsigned>
validatePackingChecked(const PackResult &result,
                       const std::vector<TileSet> &sets,
                       FuId machineWidth);

} // namespace ximd::sched

#endif // XIMD_SCHED_PACKER_HH
