/**
 * @file
 * The compiler's pass pipeline: an explicit, observable spine over
 * the sched stages.
 *
 * Historically each stage (ir validation, DDG construction, list
 * scheduling, code generation, modulo scheduling, tiling, packing,
 * composition) was a bare function call; drivers that wanted timing,
 * dumps, or uniform error reporting had to wrap every call site. The
 * pipeline reifies the stages as Pass objects run by a PassManager
 * over a shared CompileContext:
 *
 *   - every pass is timed (wall clock) and reports counters (ops
 *     scheduled, rows emitted, II/depth achieved, rows packed, ...);
 *   - a dump hook fires after every pass, so a driver can render the
 *     IR / DDG / program state at any pipeline point (xcc
 *     --dump-after=<pass>);
 *   - failures are structured CompileErrors (diag.hh), not throws;
 *   - with verifyBetween set, the manager re-validates the IR and
 *     runs the full static verifier (analysis::verify) over any
 *     emitted program after every pass — the compiler checks the
 *     contract it compiles to at every step, not only at the end.
 *
 * The Compiler facade assembles the standard pass sequences:
 *
 *   compile():     validate-ir [merge-blocks] regalloc build-ddg
 *                  list-schedule codegen [verify]
 *   compileLoop(): modulo [verify]
 *   compose():     tile pack compose [verify]
 *
 * Byte-for-byte, compile()/compileLoop()/compose() produce the same
 * Programs as the single-call entry points (generateCodeChecked,
 * pipelineLoopChecked, composeThreadsChecked) — pinned by
 * tests/sched/test_pipeline_equivalence.
 */

#ifndef XIMD_SCHED_PIPELINE_HH
#define XIMD_SCHED_PIPELINE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sched/codegen.hh"
#include "sched/compose.hh"
#include "sched/ddg.hh"
#include "sched/diag.hh"
#include "sched/exact.hh"
#include "sched/ir.hh"
#include "sched/list_scheduler.hh"
#include "sched/modulo.hh"
#include "sched/packer.hh"
#include "sched/tile.hh"

namespace ximd::sched {

/** Which scheduler fills block rows in compile(). */
enum class ScheduleTier
{
    Heuristic, ///< Greedy list scheduler (fast, no optimality claim).
    Exact,     ///< Branch-and-bound exact tier (sched/exact.hh),
               ///< falling back to the heuristic on budget timeout.
};

/** Options for a pipeline run (superset of CodegenOptions). */
struct PipelineOptions
{
    FuId width = kDefaultFus;

    /** Register window + spill policy for the regalloc pass. */
    RegAllocOptions alloc = {};

    bool nameVregs = true;
    unsigned rawLatency = 1;

    /** Run mergeStraightLineBlocks before scheduling. */
    bool mergeBlocks = false;

    /** Scheduler tier for compile() (xcc --schedule=...). */
    ScheduleTier schedule = ScheduleTier::Heuristic;

    /** Per-block budget for the exact tier. */
    ExactOptions exact;

    /** compose(): architectural registers reserved per thread. */
    RegId regsPerThread = 24;

    /** Re-verify IR and emitted program after every pass. */
    bool verifyBetween = false;

    /** Append a final static-verification pass. */
    bool verify = false;

    /**
     * Append a cross-stream race-analysis pass (analysis::analyzeRaces)
     * after verify: the emitted program must be free of cross-stream
     * races, lost signals, and unbounded busy-waits. With verifyBetween
     * also set, the race engine re-runs after every program-producing
     * pass.
     */
    bool analyzeRace = false;

    CodegenOptions
    codegen() const
    {
        CodegenOptions o;
        o.width = width;
        o.alloc = alloc;
        o.nameVregs = nameVregs;
        o.rawLatency = rawLatency;
        return o;
    }

    ComposeOptions
    compose() const
    {
        ComposeOptions c;
        c.regsPerThread = regsPerThread;
        c.spill = alloc.spill;
        c.spillBase = alloc.spillBase;
        c.spillSlotsPerThread = alloc.spillSlots;
        return c;
    }
};

/** Timing and counters for one executed pass. */
struct PassStat
{
    std::string pass;
    double wallMs = 0.0;
    std::map<std::string, double> counters;
};

/** State flowing through the pipeline. */
struct CompileContext
{
    PipelineOptions opts;

    // Block path.
    IrProgram ir;
    Allocation alloc;                    ///< Regalloc result.
    std::vector<Ddg> ddgs;               ///< One per block.
    std::vector<BlockSchedule> schedules; ///< One per block.
    CodegenResult code;

    // Loop path.
    PipelineLoop loop;
    PipelineInfo pipeInfo;

    // Compose path.
    std::vector<IrProgram> threads;
    std::vector<TileSet> tiles;
    PackResult packing;
    Composed composed;

    /** The final program (whichever path produced it). */
    Program program{1};
    bool hasProgram = false;

    std::vector<PassStat> stats;

    /**
     * Per-loop optimality report, one entry per block, filled by the
     * exact-schedule pass (and by modulo for the loop path, where
     * II = 1 is minimal by construction). Drives the "loops" section
     * of statsJson.
     */
    std::vector<ExactLoopStat> loopStats;
};

/** One pipeline stage. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name ("list-schedule", "codegen", ...). */
    virtual std::string name() const = 0;

    /** Transform @p cx; fill @p stat.counters with what happened. */
    virtual CompileResult<Ok> run(CompileContext &cx,
                                  PassStat &stat) = 0;
};

/** Called after each pass completes (dump hook). */
using PassHook =
    std::function<void(const std::string &pass,
                       const CompileContext &cx)>;

/** Runs passes in order: timing, hooks, inter-pass verification. */
class PassManager
{
  public:
    void add(std::unique_ptr<Pass> pass);

    /** Install the after-each-pass hook (dumps, tracing). */
    void setAfterPass(PassHook hook) { hook_ = std::move(hook); }

    /**
     * Run every pass over @p cx. Stops at the first failing pass;
     * cx.stats records one entry per pass that ran (the failing one
     * included). With cx.opts.verifyBetween, validates cx.ir and
     * statically verifies cx.program after every pass.
     */
    CompileResult<Ok> run(CompileContext &cx);

    /** Names of the registered passes, in order. */
    std::vector<std::string> passNames() const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    PassHook hook_;
};

/// @name Standard pass factories.
/// @{
std::unique_ptr<Pass> makeValidateIrPass();
std::unique_ptr<Pass> makeMergeBlocksPass();
std::unique_ptr<Pass> makeRegAllocPass();
std::unique_ptr<Pass> makeBuildDdgPass();
std::unique_ptr<Pass> makeListSchedulePass();
std::unique_ptr<Pass> makeExactSchedulePass();
std::unique_ptr<Pass> makeCodegenPass();
std::unique_ptr<Pass> makeModuloPass();
std::unique_ptr<Pass> makeTilePass();
std::unique_ptr<Pass> makePackPass(std::string strategy);
std::unique_ptr<Pass> makeComposePass(ComposeOptions opts = {});
std::unique_ptr<Pass> makeVerifyPass();
std::unique_ptr<Pass> makeRaceCheckPass();
/// @}

/**
 * Render cx.stats as JSON (xcc --stats-json), schema 2: a "schema"
 * tag, the per-pass timing/counters array, and — when @p loops is
 * non-empty — a per-loop optimality report ("loops") plus the
 * "exact_timeouts" total. Schema 1 was the untagged passes-only
 * shape emitted before the exact tier existed.
 */
std::string statsJson(const std::vector<PassStat> &stats,
                      const std::vector<ExactLoopStat> &loops);
std::string statsJson(const std::vector<PassStat> &stats);

/**
 * Facade over the standard pipelines. One Compiler instance holds the
 * options and the dump hook; each compile call builds the pass
 * sequence, runs it, and leaves the context (stats included)
 * available via context().
 */
class Compiler
{
  public:
    explicit Compiler(PipelineOptions opts = {}) : opts_(opts) {}

    void setAfterPass(PassHook hook) { hook_ = std::move(hook); }

    /** Blocks -> scheduled VLIW-style program. */
    CompileResult<CodegenResult> compile(IrProgram ir);

    /** Counted loop -> modulo-scheduled (II = 1) program. */
    CompileResult<Program> compileLoop(PipelineLoop loop);

    /** Threads -> tiles -> packed strip -> composed XIMD program. */
    CompileResult<Composed> compose(std::vector<IrProgram> threads,
                                    const std::string &strategy);

    const CompileContext &context() const { return cx_; }
    const std::vector<PassStat> &stats() const { return cx_.stats; }
    std::string
    statsJson() const
    {
        return sched::statsJson(cx_.stats, cx_.loopStats);
    }

  private:
    CompileResult<Ok> runPipeline(PassManager &pm);

    PipelineOptions opts_;
    PassHook hook_;
    CompileContext cx_;
};

/** Pack-strategy lookup ("stacked", "first-fit", "skyline",
 *  "balanced-groups", "exhaustive"); null when unknown. */
using PackFn = PackResult (*)(const std::vector<TileSet> &, FuId);
PackFn packStrategyByName(const std::string &name);

} // namespace ximd::sched

#endif // XIMD_SCHED_PIPELINE_HH
