/**
 * @file
 * Exact (provably II-minimal) scheduling of loop kernels by bounded
 * branch and bound — the compiler's ground-truth tier.
 *
 * The heuristic tier (list_scheduler.hh) is greedy: it never answers
 * how far its schedules are from optimal. Following the shape of
 * Roorda's SMT-based optimal software pipelining (PAPERS.md), this
 * module solves the same per-kernel scheduling problem exactly, as a
 * sequence of decision problems over the existing DDG:
 *
 *   for II = MII, MII+1, ... : does a schedule with II rows exist?
 *
 * where MII = max(ResMII, RecMII) with ResMII = ceil(ops / width) and
 * RecMII the longest dependence chain through the kernel including
 * the write-back drain and compare-visibility tails. Under the
 * repository's blocked-iteration execution model (a loop kernel block
 * re-executes only after its last row, there is no cross-iteration
 * overlap and no rotating register file), the initiation interval of
 * a loop IS its kernel row count, so minimizing rows is exactly the
 * modulo-scheduling objective and the first feasible candidate is the
 * provably minimal II.
 *
 * Each decision problem is solved by depth-first branch and bound
 * with full constraint propagation: every op carries an [est, lst]
 * issue window (ASAP from predecessor latencies, ALAP from the row
 * deadline through successor latencies), the op with the tightest
 * window is placed first (ties: smaller lst, then program order —
 * fully deterministic), per-row occupancy never exceeds the machine
 * width, and a placement that empties any window backtracks. The
 * encoding covers the same constraints the heuristic honors:
 * RAW/WAR/WAW and memory latencies from the DDG, <= width ops per
 * row, the rawLatency-1 drain rows before control leaves the block,
 * and compare results registered rawLatency rows before a CondBranch.
 *
 * The search is budgeted (wall-clock milliseconds plus a
 * deterministic node cap). On exhaustion the tier falls back to the
 * heuristic schedule and reports the best proven lower bound, so
 * `optimality_gap = achieved_ii - minimal_ii` is exact when `proven`
 * and an upper bound otherwise.
 *
 * Emission parity: the winning exact schedule pins every compare op
 * to the FU slot it occupied in the heuristic schedule (padding with
 * explicit nop slots, see BlockSchedule), so the exact- and
 * heuristic-scheduled programs retire compares on the same condition
 * code — final architectural state (registers, memory, CCs, hence
 * Machine::archStateHash) is identical across tiers by construction.
 */

#ifndef XIMD_SCHED_EXACT_HH
#define XIMD_SCHED_EXACT_HH

#include <cstdint>
#include <string>

#include "sched/ddg.hh"
#include "sched/diag.hh"
#include "sched/ir.hh"
#include "sched/list_scheduler.hh"

namespace ximd::sched {

/** Budget for one block's exact search. */
struct ExactOptions
{
    /**
     * Wall-clock budget in milliseconds; 0 = no wall-clock limit
     * (the node cap still applies, keeping every search finite and
     * bit-reproducible).
     */
    unsigned budgetMs = 100;

    /**
     * Deterministic cap on branch-and-bound placement attempts.
     * Exceeding it counts as a timeout; because the search order is
     * deterministic, a node-capped outcome is identical run to run.
     */
    std::uint64_t maxNodes = 2'000'000;
};

/** What the exact tier learned about one block (loop kernel). */
struct ExactLoopStat
{
    std::string block;
    bool loop = false;  ///< Block is the target of a CFG back edge.
    unsigned ops = 0;

    unsigned resMii = 0; ///< ceil(ops / width).
    unsigned recMii = 0; ///< Dependence-chain + drain/compare tail.
    unsigned mii = 0;    ///< max(1, resMii, recMii).

    unsigned heuristicIi = 0; ///< List-scheduled rows.
    unsigned achievedIi = 0;  ///< Rows of the emitted schedule.
    unsigned minimalIi = 0;   ///< Proven minimum, else best lower bound.

    bool proven = false;   ///< achievedIi == true minimum, proved.
    bool timedOut = false; ///< Budget exhausted; heuristic emitted.
    std::string tier = "heuristic"; ///< Which schedule was emitted.

    std::uint64_t nodes = 0; ///< Placement attempts explored.
    double solveMs = 0.0;    ///< Wall time of the exact search.

    /** achieved - minimal: 0 when proven, an upper bound otherwise. */
    unsigned
    optimalityGap() const
    {
        return achievedIi > minimalIi ? achievedIi - minimalIi : 0;
    }

    /** How far the heuristic is from the proven/bounded optimum. */
    unsigned
    heuristicGap() const
    {
        return heuristicIi > minimalIi ? heuristicIi - minimalIi : 0;
    }
};

/**
 * Exactly schedule @p block for @p width at result latency
 * @p rawLatency. Returns the emitted schedule: the proven-minimal one
 * when the search finishes within budget, the heuristic schedule
 * otherwise (never fails when the heuristic succeeds). @p stat, when
 * non-null, receives the full outcome including which tier won.
 */
CompileResult<BlockSchedule>
exactScheduleBlockChecked(const IrBlock &block, FuId width,
                          unsigned rawLatency,
                          const ExactOptions &opts = {},
                          ExactLoopStat *stat = nullptr);

} // namespace ximd::sched

#endif // XIMD_SCHED_EXACT_HH
