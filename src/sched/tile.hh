/**
 * @file
 * Tile generation for the paper's compilation strategy (Figure 13).
 *
 * "Each thread is compiled several times with varying resource
 * constraints ... Each can be modeled as a rectangle or tile whose
 * width is the required number of functional units and whose length
 * is the static code size. The best set of tiles for each thread is
 * saved."
 */

#ifndef XIMD_SCHED_TILE_HH
#define XIMD_SCHED_TILE_HH

#include <vector>

#include "sched/ir.hh"

namespace ximd::sched {

/** One compiled implementation choice of a thread. */
struct Tile
{
    int threadId = -1;
    FuId width = 1;      ///< FUs required.
    unsigned height = 0; ///< Static instruction rows.

    unsigned area() const { return width * height; }
};

/** The saved tile choices for one thread. */
struct TileSet
{
    int threadId = -1;
    std::vector<Tile> impls; ///< Pareto-optimal, by increasing width.

    /** Static height at every width 1..maxWidth (index w-1), kept so
     *  packers can request an exact width even when the Pareto set
     *  dropped it as dominated. */
    std::vector<unsigned> heightAtWidth;

    /** Height of this thread compiled at exactly @p w. */
    unsigned
    heightAt(FuId w) const
    {
        return heightAtWidth.at(w - 1);
    }
};

/**
 * Compile every thread at widths 1..maxWidth and keep the Pareto-
 * optimal tiles (wider implementations that do not reduce the height
 * are discarded, exactly the "best set of tiles" of Figure 13).
 */
std::vector<TileSet> generateTiles(const std::vector<IrProgram> &threads,
                                   FuId maxWidth);

/** Static height of @p thread compiled at @p width (sum over blocks). */
unsigned staticHeight(const IrProgram &thread, FuId width);

} // namespace ximd::sched

#endif // XIMD_SCHED_TILE_HH
