#include "sched/tile.hh"

#include "sched/list_scheduler.hh"
#include "support/logging.hh"

namespace ximd::sched {

unsigned
staticHeight(const IrProgram &thread, FuId width)
{
    unsigned rows = 0;
    for (const IrBlock &b : thread.blocks)
        rows += valueOrFatal(scheduleBlockChecked(b, width)).numRows();
    return rows;
}

std::vector<TileSet>
generateTiles(const std::vector<IrProgram> &threads, FuId maxWidth)
{
    if (maxWidth == 0 || maxWidth > kMaxFus)
        fatal("generateTiles: bad maximum width ", maxWidth);
    if (threads.empty())
        fatal("generateTiles: no threads");

    std::vector<TileSet> sets;
    for (std::size_t t = 0; t < threads.size(); ++t) {
        valueOrFatal(threads[t].validateChecked());
        TileSet set;
        set.threadId = static_cast<int>(t);
        unsigned best = ~0u;
        for (FuId w = 1; w <= maxWidth; ++w) {
            const unsigned h = staticHeight(threads[t], w);
            set.heightAtWidth.push_back(h);
            if (h >= best)
                continue; // dominated: wider but not shorter
            best = h;
            Tile tile;
            tile.threadId = static_cast<int>(t);
            tile.width = w;
            tile.height = h;
            set.impls.push_back(tile);
        }
        XIMD_ASSERT(!set.impls.empty(), "no tiles for thread ", t);
        sets.push_back(std::move(set));
    }
    return sets;
}

} // namespace ximd::sched
