#include "sched/exact.hh"

#include <algorithm>
#include <chrono>
#include <map>

#include "support/logging.hh"

namespace ximd::sched {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    const auto dt = Clock::now() - t0;
    return std::chrono::duration<double, std::milli>(dt).count();
}

/**
 * Rows the block must keep open at and after op @p i's issue row:
 * rows >= issue(i) + tail(i). Encodes the same end-of-block rules the
 * list scheduler pads for — the rawLatency-1 write-back drain before
 * control leaves the block, and CC registration (rawLatency rows
 * between a branch compare's issue and the branching row).
 */
int
tailRows(const IrBlock &b, int i, unsigned rawLatency)
{
    int tail = rawLatency > 1 ? static_cast<int>(rawLatency) : 1;
    if (b.term.kind == Terminator::Kind::CondBranch &&
        b.term.compareIdx == i)
        tail = std::max(tail, static_cast<int>(rawLatency) + 1);
    return tail;
}

/**
 * Depth-first branch and bound for one decision problem: does a
 * schedule of the block's DDG into L rows of `width` slots exist?
 * Deterministic: op selection and row order are fully tie-broken, so
 * identical inputs explore identical trees (and the node counter
 * makes even capped searches reproducible).
 */
struct Searcher
{
    const IrBlock &block;
    const Ddg &ddg;
    int n;
    int width;
    unsigned rawLatency;
    int L = 0;

    std::vector<int> tail;    ///< Per-op end-of-block tail rows.
    std::vector<int> cycleOf; ///< -1 = not yet placed.
    std::vector<int> usage;   ///< Ops placed per row.

    std::uint64_t nodes = 0;
    std::uint64_t maxNodes;
    Clock::time_point deadline;
    bool useDeadline;
    bool timedOut = false;

    Searcher(const IrBlock &b, const Ddg &d, int width_,
             unsigned rawLatency_, const ExactOptions &opts,
             Clock::time_point t0)
        : block(b), ddg(d), n(static_cast<int>(b.ops.size())),
          width(width_), rawLatency(rawLatency_),
          maxNodes(opts.maxNodes),
          deadline(t0 + std::chrono::milliseconds(opts.budgetMs)),
          useDeadline(opts.budgetMs > 0)
    {
        tail.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            tail[static_cast<std::size_t>(i)] =
                tailRows(block, i, rawLatency);
    }

    bool
    budgetExhausted()
    {
        if (nodes >= maxNodes) {
            timedOut = true;
            return true;
        }
        // The wall clock is sampled every 256 placements: cheap, and
        // irrelevant to the search order (which stays deterministic).
        if (useDeadline && (nodes & 0xFF) == 0 &&
            Clock::now() > deadline) {
            timedOut = true;
            return true;
        }
        return false;
    }

    /**
     * Recompute every op's [est, lst] issue window from the current
     * placements. DDG edges always point forward in program order, so
     * one forward sweep (est from preds) and one backward sweep (lst
     * from succs) reach the fixpoint. Returns false when any window
     * empties, a row is overcommitted by single-row windows, or fewer
     * free slots remain than unplaced ops.
     */
    bool
    propagate(std::vector<int> &est, std::vector<int> &lst) const
    {
        for (int i = 0; i < n; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            if (cycleOf[ui] >= 0)
                est[ui] = lst[ui] = cycleOf[ui];
            else {
                est[ui] = 0;
                lst[ui] = L - tail[ui];
            }
        }
        for (int i = 0; i < n; ++i)
            for (const DdgEdge &e : ddg.succs(i)) {
                auto &t = est[static_cast<std::size_t>(e.to)];
                t = std::max(
                    t, est[static_cast<std::size_t>(i)] + e.latency);
            }
        for (int i = n - 1; i >= 0; --i)
            for (const DdgEdge &e : ddg.preds(i)) {
                auto &f = lst[static_cast<std::size_t>(e.from)];
                f = std::min(
                    f, lst[static_cast<std::size_t>(i)] - e.latency);
            }

        std::vector<int> forced(static_cast<std::size_t>(L), 0);
        int unplaced = 0;
        for (int i = 0; i < n; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            if (est[ui] > lst[ui])
                return false;
            if (est[ui] == lst[ui] &&
                ++forced[static_cast<std::size_t>(est[ui])] > width)
                return false;
            if (cycleOf[ui] < 0)
                ++unplaced;
        }
        int freeSlots = 0;
        for (int t = 0; t < L; ++t)
            freeSlots += width - usage[static_cast<std::size_t>(t)];
        return freeSlots >= unplaced;
    }

    bool
    dfs(int placed)
    {
        std::vector<int> est(static_cast<std::size_t>(n));
        std::vector<int> lst(static_cast<std::size_t>(n));
        if (!propagate(est, lst))
            return false;
        if (placed == n)
            return true;

        // Most-constrained op first: smallest window, then earlier
        // deadline, then program order.
        int pick = -1;
        for (int i = 0; i < n; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            if (cycleOf[ui] >= 0)
                continue;
            if (pick < 0)
                pick = i;
            else {
                const auto up = static_cast<std::size_t>(pick);
                const int wi = lst[ui] - est[ui];
                const int wp = lst[up] - est[up];
                if (wi < wp || (wi == wp && lst[ui] < lst[up]))
                    pick = i;
            }
        }
        XIMD_ASSERT(pick >= 0, "unplaced op not found");

        const auto up = static_cast<std::size_t>(pick);
        for (int t = est[up]; t <= lst[up]; ++t) {
            const auto ut = static_cast<std::size_t>(t);
            if (usage[ut] >= width)
                continue;
            ++nodes;
            if (budgetExhausted())
                return false;
            cycleOf[up] = t;
            ++usage[ut];
            if (dfs(placed + 1))
                return true;
            cycleOf[up] = -1;
            --usage[ut];
            if (timedOut)
                return false;
        }
        return false;
    }

    /** Try to fit the block into @p rows rows. */
    bool
    decide(int rows)
    {
        L = rows;
        cycleOf.assign(static_cast<std::size_t>(n), -1);
        usage.assign(static_cast<std::size_t>(L), 0);
        return dfs(0);
    }
};

/**
 * Turn the search's op->row assignment into a BlockSchedule whose
 * CC-setting ops (compares) sit in the same FU slot they occupy in
 * the heuristic schedule, padding with explicit -1 nop slots. The
 * exact- and heuristic-scheduled programs then write every condition
 * code on the same FU, making final architectural state — which
 * includes the per-FU CC file — identical across tiers.
 */
BlockSchedule
canonicalize(const IrBlock &block, const std::vector<int> &cycleOf,
             int rows, int width, const BlockSchedule &heuristic)
{
    std::map<int, int> pinSlot; // op index -> heuristic FU slot
    for (const auto &cyc : heuristic.cycles)
        for (std::size_t s = 0; s < cyc.size(); ++s)
            if (cyc[s] >= 0 &&
                block.ops[static_cast<std::size_t>(cyc[s])]
                    .isCompare())
                pinSlot[cyc[s]] = static_cast<int>(s);

    BlockSchedule out;
    out.cycles.assign(static_cast<std::size_t>(rows), {});
    for (int t = 0; t < rows; ++t) {
        std::vector<int> members;
        for (std::size_t i = 0; i < cycleOf.size(); ++i)
            if (cycleOf[i] == t)
                members.push_back(static_cast<int>(i));

        std::vector<int> row(static_cast<std::size_t>(width), -1);
        auto firstFree = [&row]() {
            for (std::size_t s = 0; s < row.size(); ++s)
                if (row[s] < 0)
                    return static_cast<int>(s);
            XIMD_ASSERT(false, "schedule row over capacity");
            return -1;
        };
        for (int op : members) { // pinned compares claim slots first
            auto it = pinSlot.find(op);
            if (it == pinSlot.end())
                continue;
            const int s =
                row[static_cast<std::size_t>(it->second)] < 0
                    ? it->second
                    : firstFree();
            row[static_cast<std::size_t>(s)] = op;
        }
        for (int op : members) {
            if (pinSlot.count(op))
                continue;
            row[static_cast<std::size_t>(firstFree())] = op;
        }
        while (!row.empty() && row.back() < 0)
            row.pop_back();
        out.cycles[static_cast<std::size_t>(t)] = std::move(row);
    }
    return out;
}

} // namespace

CompileResult<BlockSchedule>
exactScheduleBlockChecked(const IrBlock &block, FuId width,
                          unsigned rawLatency,
                          const ExactOptions &opts,
                          ExactLoopStat *stat)
{
    if (width == 0 || width > kMaxFus)
        return compileError("exact-schedule",
                            cat("bad width ", width), block.name);
    if (rawLatency < 1)
        return compileError("exact-schedule",
                            cat("bad result latency ", rawLatency),
                            block.name);

    // The heuristic schedule is both the fallback and the initial
    // upper bound on the candidate row count.
    auto h = scheduleBlockChecked(block, width, rawLatency);
    if (!h)
        return h.error();
    const BlockSchedule heuristic = std::move(h).value();
    const unsigned heurRows = heuristic.numRows();

    const auto t0 = Clock::now();
    const int n = static_cast<int>(block.ops.size());
    const int w = static_cast<int>(width);
    Ddg ddg(block, rawLatency);

    ExactLoopStat st;
    st.block = block.name;
    st.ops = static_cast<unsigned>(n);
    st.resMii = static_cast<unsigned>((n + w - 1) / w);
    st.heuristicIi = heurRows;

    // RecMII: unlimited-width ASAP plus each op's end-of-block tail.
    {
        std::vector<int> est(static_cast<std::size_t>(n), 0);
        int need = 0;
        for (int i = 0; i < n; ++i) {
            for (const DdgEdge &e : ddg.succs(i)) {
                auto &t = est[static_cast<std::size_t>(e.to)];
                t = std::max(
                    t, est[static_cast<std::size_t>(i)] + e.latency);
            }
            need = std::max(need, est[static_cast<std::size_t>(i)] +
                                      tailRows(block, i, rawLatency));
        }
        st.recMii = static_cast<unsigned>(need);
    }
    st.mii = std::max(1u, std::max(st.resMii, st.recMii));
    XIMD_ASSERT(heurRows >= st.mii,
                "heuristic schedule beats the MII lower bound");

    Searcher search(block, ddg, w, rawLatency, opts, t0);
    BlockSchedule result;
    for (unsigned L = st.mii;; ++L) {
        if (L >= heurRows) {
            // Every shorter row count is refuted, and the heuristic
            // schedule witnesses feasibility at heurRows: the
            // heuristic is optimal. Emit it unchanged (byte-identical
            // codegen to the heuristic tier).
            st.tier = "heuristic";
            st.proven = true;
            st.achievedIi = st.minimalIi = heurRows;
            result = heuristic;
            break;
        }
        const bool feasible = search.decide(static_cast<int>(L));
        if (search.timedOut) {
            st.tier = "heuristic";
            st.timedOut = true;
            st.achievedIi = heurRows;
            st.minimalIi = L; // best refuted-below lower bound
            result = heuristic;
            break;
        }
        if (feasible) {
            st.tier = "exact";
            st.proven = true;
            st.achievedIi = st.minimalIi = L;
            result = canonicalize(block, search.cycleOf,
                                  static_cast<int>(L), w, heuristic);
            break;
        }
    }
    st.nodes = search.nodes;
    st.solveMs = msSince(t0);
    if (stat)
        *stat = st;
    return result;
}

} // namespace ximd::sched
