#include "sched/ir_print.hh"

#include <cctype>
#include <sstream>
#include <vector>

#include "support/logging.hh"

namespace ximd::sched {

namespace {

std::string
valueText(const IrValue &v)
{
    if (v.isVreg())
        return "v" + std::to_string(v.vreg);
    if (v.isImm())
        return "#" + std::to_string(v.imm);
    return "?";
}

/** Split @p s on whitespace and commas. */
std::vector<std::string>
tokens(std::string_view s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

struct Parser
{
    IrProgram prog;
    IrBlock *cur = nullptr;
    bool open = false;
    CompileError err;
    bool failed = false;

    bool
    fail(int line, std::string msg)
    {
        if (!failed) {
            err = compileError("ir-parse", std::move(msg),
                               cur ? cur->name : "");
            err.line = line;
            failed = true;
        }
        return false;
    }

    bool
    parseValue(const std::string &tok, int line, IrValue &out)
    {
        if (tok.size() >= 2 && tok[0] == 'v') {
            try {
                out = IrValue::reg(std::stoi(tok.substr(1)));
            } catch (...) {
                return fail(line, "bad vreg '" + tok + "'");
            }
            return true;
        }
        if (tok.size() >= 2 && tok[0] == '#') {
            try {
                out = IrValue::immRaw(static_cast<Word>(
                    std::stoull(tok.substr(1), nullptr, 0)));
            } catch (...) {
                return fail(line, "bad immediate '" + tok + "'");
            }
            return true;
        }
        return fail(line, "bad value '" + tok + "' (vN or #WORD)");
    }

    bool
    parseSources(const std::vector<std::string> &toks, std::size_t at,
                 int line, const OpInfo &info, IrOp &op)
    {
        const std::size_t want = info.numSrcs;
        if (toks.size() - at != want)
            return fail(line, cat("'", info.name, "' wants ", want,
                                  " sources, got ", toks.size() - at));
        if (want >= 1 && !parseValue(toks[at], line, op.a))
            return false;
        if (want >= 2 && !parseValue(toks[at + 1], line, op.b))
            return false;
        return true;
    }

    bool
    closeBlock(Terminator t, int line)
    {
        if (!open)
            return fail(line, "terminator outside a block");
        cur->term = std::move(t);
        open = false;
        return true;
    }

    bool
    parseLine(std::string_view raw, int line)
    {
        const auto comment = raw.find("//");
        if (comment != std::string_view::npos)
            raw = raw.substr(0, comment);
        auto toks = tokens(raw);
        if (toks.empty())
            return true;
        const std::string &head = toks[0];

        if (head == ".vregs") {
            if (toks.size() != 2)
                return fail(line, ".vregs wants a count");
            try {
                prog.numVregs = std::stoi(toks[1]);
            } catch (...) {
                return fail(line, "bad .vregs count");
            }
            return true;
        }
        if (head == ".vinit" || head == ".minit") {
            if (toks.size() != 3)
                return fail(line, head + " wants 2 arguments");
            try {
                const auto v = static_cast<Word>(
                    std::stoull(toks[2], nullptr, 0));
                if (head == ".vinit") {
                    if (toks[1].empty() || toks[1][0] != 'v')
                        return fail(line, ".vinit wants vN");
                    prog.vregInit.emplace_back(
                        std::stoi(toks[1].substr(1)), v);
                } else {
                    prog.memInit.emplace_back(
                        static_cast<Addr>(
                            std::stoull(toks[1], nullptr, 0)),
                        v);
                }
            } catch (...) {
                return fail(line, "bad " + head + " arguments");
            }
            return true;
        }
        if (head == "block") {
            if (open)
                return fail(line, "block '" + cur->name +
                                      "' not terminated");
            if (toks.size() != 2 || toks[1].empty() ||
                toks[1].back() != ':')
                return fail(line, "block wants 'block NAME:'");
            IrBlock b;
            b.name = toks[1].substr(0, toks[1].size() - 1);
            prog.blocks.push_back(std::move(b));
            cur = &prog.blocks.back();
            open = true;
            return true;
        }
        if (head == "jump") {
            if (toks.size() != 2)
                return fail(line, "jump wants a target");
            Terminator t;
            t.kind = Terminator::Kind::Jump;
            t.taken = toks[1];
            return closeBlock(std::move(t), line);
        }
        if (head == "branch") {
            if (toks.size() != 4)
                return fail(line,
                            "branch wants 'branch K TAKEN FALLTHRU'");
            Terminator t;
            t.kind = Terminator::Kind::CondBranch;
            try {
                t.compareIdx = std::stoi(toks[1]);
            } catch (...) {
                return fail(line, "bad branch compare index");
            }
            t.taken = toks[2];
            t.fallthrough = toks[3];
            return closeBlock(std::move(t), line);
        }
        if (head == "halt") {
            Terminator t;
            t.kind = Terminator::Kind::Halt;
            return closeBlock(std::move(t), line);
        }

        // An op line: either "vN = MNEMONIC ..." or "MNEMONIC ...".
        if (!open)
            return fail(line, "op outside a block");
        IrOp op;
        std::size_t at = 0;
        if (toks.size() >= 2 && toks[1] == "=") {
            if (toks.size() < 3)
                return fail(line, "missing mnemonic after '='");
            if (head.empty() || head[0] != 'v')
                return fail(line, "destination must be vN");
            try {
                op.dest = std::stoi(head.substr(1));
            } catch (...) {
                return fail(line, "bad destination '" + head + "'");
            }
            at = 2;
        }
        const auto opc = parseOpcode(toks[at]);
        if (!opc)
            return fail(line, "unknown mnemonic '" + toks[at] + "'");
        op.op = *opc;
        const OpInfo &info = opInfo(*opc);
        if (info.hasDest && at == 0)
            return fail(line, cat("'", info.name,
                                  "' needs a destination ('vN = ...')"));
        if (!info.hasDest && at != 0)
            return fail(line, cat("'", info.name,
                                  "' cannot have a destination"));
        if (!parseSources(toks, at + 1, line, info, op))
            return false;
        op.line = line;
        cur->ops.push_back(op);
        return true;
    }
};

} // namespace

std::string
printIr(const IrProgram &prog)
{
    std::ostringstream os;
    os << ".vregs " << prog.numVregs << "\n";
    for (const auto &[v, value] : prog.vregInit)
        os << ".vinit v" << v << " " << value << "\n";
    for (const auto &[a, value] : prog.memInit)
        os << ".minit " << a << " " << value << "\n";
    for (const IrBlock &b : prog.blocks) {
        os << "block " << b.name << ":\n";
        for (const IrOp &op : b.ops) {
            const OpInfo &info = opInfo(op.op);
            os << "  ";
            if (info.hasDest)
                os << "v" << op.dest << " = ";
            os << info.name;
            if (info.numSrcs >= 1)
                os << " " << valueText(op.a);
            if (info.numSrcs >= 2)
                os << ", " << valueText(op.b);
            os << "\n";
        }
        switch (b.term.kind) {
          case Terminator::Kind::Halt:
            os << "  halt\n";
            break;
          case Terminator::Kind::Jump:
            os << "  jump " << b.term.taken << "\n";
            break;
          case Terminator::Kind::CondBranch:
            os << "  branch " << b.term.compareIdx << " "
               << b.term.taken << " " << b.term.fallthrough << "\n";
            break;
        }
    }
    return os.str();
}

CompileResult<IrProgram>
parseIr(std::string_view source)
{
    Parser p;
    int line = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
        const auto nl = source.find('\n', pos);
        const auto end = nl == std::string_view::npos ? source.size()
                                                      : nl;
        ++line;
        if (!p.parseLine(source.substr(pos, end - pos), line))
            return p.err;
        if (nl == std::string_view::npos)
            break;
        pos = nl + 1;
    }
    if (p.open) {
        p.fail(line, "block '" + p.cur->name + "' not terminated");
        return p.err;
    }
    if (auto v = p.prog.validateChecked(); !v) {
        CompileError e = v.error();
        e.pass = "ir-parse";
        return e;
    }
    return std::move(p.prog);
}

} // namespace ximd::sched
