#include "sched/ddg.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ximd::sched {

Ddg::Ddg(const IrBlock &block, unsigned rawLatency)
    : numNodes_(static_cast<int>(block.ops.size())),
      preds_(block.ops.size()), succs_(block.ops.size())
{
    XIMD_ASSERT(rawLatency >= 1, "bad result latency");
    const int raw = static_cast<int>(rawLatency);
    const auto &ops = block.ops;
    const int n = numNodes_;

    auto reads = [&](int i, VregId v) {
        const IrOp &op = ops[static_cast<std::size_t>(i)];
        return (op.a.isVreg() && op.a.vreg == v) ||
               (op.b.isVreg() && op.b.vreg == v);
    };
    auto writes = [&](int i, VregId v) {
        const IrOp &op = ops[static_cast<std::size_t>(i)];
        return opInfo(op.op).hasDest && op.dest == v;
    };

    for (int j = 0; j < n; ++j) {
        const IrOp &later = ops[static_cast<std::size_t>(j)];
        for (int i = 0; i < j; ++i) {
            const IrOp &earlier = ops[static_cast<std::size_t>(i)];

            // Register dependences.
            if (opInfo(earlier.op).hasDest) {
                const VregId d = earlier.dest;
                if (reads(j, d))
                    addEdge(i, j, raw); // RAW
                if (writes(j, d))
                    addEdge(i, j, 1); // WAW: retire in issue order
            }
            if (opInfo(later.op).hasDest && reads(i, later.dest))
                addEdge(i, j, 0); // WAR

            // Memory dependences (no alias analysis).
            const bool eStore = earlier.isStore();
            const bool lStore = later.isStore();
            const bool eLoad = earlier.isLoad();
            const bool lLoad = later.isLoad();
            if (eStore && lStore)
                addEdge(i, j, 1); // store-store: same-addr race
            else if (eStore && lLoad)
                addEdge(i, j, raw); // RAW through memory
            else if (eLoad && lStore)
                addEdge(i, j, 0); // WAR through memory
        }
    }
    computeHeights();
}

void
Ddg::addEdge(int from, int to, int latency)
{
    XIMD_ASSERT(from >= 0 && from < numNodes_ && to >= 0 &&
                    to < numNodes_ && from != to,
                "bad DDG edge ", from, " -> ", to);
    edges_.push_back({from, to, latency});
    succs_[static_cast<std::size_t>(from)].push_back(
        {from, to, latency});
    preds_[static_cast<std::size_t>(to)].push_back({from, to, latency});
}

const std::vector<DdgEdge> &
Ddg::preds(int n) const
{
    XIMD_ASSERT(n >= 0 && n < numNodes_, "node out of range");
    return preds_[static_cast<std::size_t>(n)];
}

const std::vector<DdgEdge> &
Ddg::succs(int n) const
{
    XIMD_ASSERT(n >= 0 && n < numNodes_, "node out of range");
    return succs_[static_cast<std::size_t>(n)];
}

void
Ddg::computeHeights()
{
    heights_.assign(static_cast<std::size_t>(numNodes_), 0);
    // Nodes are in program order, so edges always point forward;
    // a reverse sweep computes longest path to any sink.
    for (int i = numNodes_ - 1; i >= 0; --i) {
        int h = 0;
        for (const DdgEdge &e : succs_[static_cast<std::size_t>(i)])
            h = std::max(h,
                         e.latency +
                             heights_[static_cast<std::size_t>(e.to)]);
        heights_[static_cast<std::size_t>(i)] = h;
    }
}

int
Ddg::criticalPathLength() const
{
    int best = 0;
    for (int h : heights_)
        best = std::max(best, h);
    return best;
}

} // namespace ximd::sched
