#include "sched/list_scheduler.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ximd::sched {

CompileResult<BlockSchedule>
scheduleBlockChecked(const IrBlock &block, FuId width,
                     unsigned rawLatency)
{
    if (width == 0 || width > kMaxFus)
        return compileError("schedule", cat("bad width ", width),
                            block.name);
    if (rawLatency < 1)
        return compileError("schedule",
                            cat("bad result latency ", rawLatency),
                            block.name);

    const int n = static_cast<int>(block.ops.size());
    Ddg ddg(block, rawLatency);

    BlockSchedule sched;
    std::vector<int> cycleOf(static_cast<std::size_t>(n), -1);
    std::vector<int> unscheduledPreds(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i)
        unscheduledPreds[static_cast<std::size_t>(i)] =
            static_cast<int>(ddg.preds(i).size());

    int scheduled = 0;
    int cycle = 0;
    while (scheduled < n) {
        sched.cycles.emplace_back();
        // Re-scan after every issue so that latency-0 (WAR) successors
        // of ops issued this very cycle can share the row.
        while (sched.cycles.back().size() <
               static_cast<std::size_t>(width)) {
            int pick = -1;
            for (int i = 0; i < n; ++i) {
                if (cycleOf[static_cast<std::size_t>(i)] >= 0)
                    continue;
                bool ok = true;
                for (const DdgEdge &e : ddg.preds(i)) {
                    const int pc =
                        cycleOf[static_cast<std::size_t>(e.from)];
                    if (pc < 0 || pc + e.latency > cycle) {
                        ok = false;
                        break;
                    }
                }
                if (!ok)
                    continue;
                // Highest critical path wins; program order breaks
                // ties (strict > keeps the earlier op).
                if (pick < 0 ||
                    ddg.heights()[static_cast<std::size_t>(i)] >
                        ddg.heights()[static_cast<std::size_t>(pick)])
                    pick = i;
            }
            if (pick < 0)
                break; // nothing else fits this cycle
            sched.cycles.back().push_back(pick);
            cycleOf[static_cast<std::size_t>(pick)] = cycle;
            ++scheduled;
        }
        ++cycle;
        XIMD_ASSERT(cycle < 4 * n + 16,
                    "list scheduler failed to converge");
    }

    if (sched.cycles.empty())
        sched.cycles.emplace_back(); // terminator needs a row

    // With a pipelined datapath (rawLatency > 1), results issued near
    // the block's end must be written back before control can leave
    // the block: a successor block may read them on its first row.
    // Pad with drain rows so the last issue is rawLatency-1 rows
    // before the final (terminator) row.
    if (rawLatency > 1) {
        int lastIssue = -1;
        for (int c = 0; c < static_cast<int>(sched.cycles.size());
             ++c)
            if (!sched.cycles[static_cast<std::size_t>(c)].empty())
                lastIssue = c;
        while (static_cast<int>(sched.cycles.size()) - 1 <
               lastIssue + static_cast<int>(rawLatency) - 1)
            sched.cycles.emplace_back();
    }

    // A conditional branch reads a registered CC: its compare result
    // must have written back (rawLatency cycles) by the final row.
    if (block.term.kind == Terminator::Kind::CondBranch) {
        const int cmpCycle =
            cycleOf[static_cast<std::size_t>(block.term.compareIdx)];
        XIMD_ASSERT(cmpCycle >= 0, "compare not scheduled");
        while (static_cast<int>(sched.cycles.size()) - 1 <
               cmpCycle + static_cast<int>(rawLatency))
            sched.cycles.emplace_back();
    }
    return sched;
}

} // namespace ximd::sched
