/**
 * @file
 * Resource-constrained list scheduler for one basic block.
 *
 * The classic algorithm: ready ops are issued by decreasing critical-
 * path height into cycles of at most `width` slots. Latency-0 edges
 * (WAR) allow issue in the same cycle as the predecessor; latency-1
 * edges (RAW/WAW and memory) force the next cycle, matching the
 * XIMD-1 end-of-cycle commit semantics.
 *
 * The block's terminator is not a node: a conditional branch requires
 * its compare to be scheduled at least one cycle before the block's
 * final row (condition codes are registered), which the scheduler
 * enforces by extending the schedule if needed.
 */

#ifndef XIMD_SCHED_LIST_SCHEDULER_HH
#define XIMD_SCHED_LIST_SCHEDULER_HH

#include <vector>

#include "sched/ddg.hh"
#include "sched/ir.hh"

namespace ximd::sched {

/** Schedule of one block: per-cycle lists of op indices. */
struct BlockSchedule
{
    /**
     * cycles[c] = ops issued in cycle c (at most `width` each). The
     * list index is the FU slot the op executes on. A -1 entry is an
     * explicit nop slot: the exact tier (sched/exact.hh) uses it to
     * pin compare ops to the FU slot the heuristic schedule chose,
     * keeping the per-FU condition-code file identical across tiers.
     * The list scheduler itself never emits -1.
     */
    std::vector<std::vector<int>> cycles;

    /** Rows the block occupies (>= cycles.size(), see below). */
    unsigned
    numRows() const
    {
        return static_cast<unsigned>(cycles.size());
    }
};

/**
 * List-schedule @p block for @p width functional units at data-path
 * result latency @p rawLatency (1 = research model, 3 = the
 * section 4.3 pipelined prototype).
 *
 * Guarantees on the result:
 *  - every op appears exactly once;
 *  - no cycle holds more than @p width ops;
 *  - all DDG latencies respected;
 *  - for a CondBranch terminator, the compare op's result is visible
 *    (rawLatency cycles after issue) by the last row — trailing rows
 *    are added when necessary;
 *  - at least one row, so the terminator has a home.
 *
 * Bad width/latency come back as CompileError (pass "schedule").
 */
CompileResult<BlockSchedule>
scheduleBlockChecked(const IrBlock &block, FuId width,
                     unsigned rawLatency = 1);

} // namespace ximd::sched

#endif // XIMD_SCHED_LIST_SCHEDULER_HH
