/**
 * @file
 * Register allocation: virtual registers -> a physical window, with
 * optional spill-to-memory.
 *
 * The IR (ir.hh) is written over unbounded virtual registers;
 * physical registers are a product of this pass, not an input. Every
 * consumer of allocated IR — straight-line codegen, the modulo
 * pipeliner's fixed layout, and thread composition — goes through the
 * same RegWindow contract instead of carrying its own reg-base /
 * regs-per-thread convention.
 *
 * Two strategies:
 *
 *   - Direct (spill = false, the default): the identity map
 *     vreg v -> window.base + v. This is the historical layout and
 *     keeps every pinned golden byte-identical; it fails with a
 *     pressure-point diagnostic when the window cannot hold numVregs.
 *
 *   - LinearScan (spill = true): lifetime intervals over the layout
 *     order (Poletto/Sarkar), smallest free register first, and when
 *     the window is full the interval with the furthest end is
 *     spilled to a deterministic memory slot. Spills are rewritten
 *     into the IR as ordinary Load/Store ops *before* scheduling, so
 *     the list, exact, and modulo tiers see them like any other
 *     memory op. After a successful scan the IR is collapsed so that
 *     vreg ids ARE window-relative physical indices — register reuse
 *     then shows up as ordinary WAR/WAW edges in the DDG, which is
 *     what makes scheduling after allocation sound.
 *
 * Spill slots live in a reserved region (default base 0x10000, well
 * above the workloads' data at 1024..): slot s of a unit sits at
 * spillBase + s. Composition gives thread t the sub-region
 * spillBase + t * spillSlots, mirroring its register window.
 */

#ifndef XIMD_SCHED_REGALLOC_HH
#define XIMD_SCHED_REGALLOC_HH

#include <string>
#include <vector>

#include "sched/diag.hh"
#include "sched/ir.hh"
#include "support/types.hh"

namespace ximd::sched {

/** Default base address of the spill region. */
inline constexpr Addr kDefaultSpillBase = 0x10000;

/** Default spill-slot count per compilation unit. */
inline constexpr unsigned kDefaultSpillSlots = 64;

/** The physical-register range a compilation unit may use. */
struct RegWindow
{
    RegId base = 0;
    unsigned count = kNumRegisters;

    /** Usable registers: count clipped to the register file. */
    unsigned
    capacity() const
    {
        if (base >= kNumRegisters)
            return 0;
        const unsigned room = kNumRegisters - base;
        return count < room ? count : room;
    }
};

/** Allocation parameters (the shared interface CodegenOptions,
 *  compose and the pipeline all embed). */
struct RegAllocOptions
{
    RegWindow window = {};

    /** Spill to memory instead of failing on window exhaustion. */
    bool spill = false;

    /** First address of this unit's spill region. */
    Addr spillBase = kDefaultSpillBase;

    /** Slots available in the region; exhaustion is an error. */
    unsigned spillSlots = kDefaultSpillSlots;
};

/**
 * One vreg's lifetime as a closed position interval over the layout
 * order (positions number every op, block by block; empty blocks
 * still occupy one position so live-through ranges cover them).
 */
struct LiveInterval
{
    VregId vreg = kNoVreg;
    int start = -1; ///< First position live; -1 = never live.
    int end = -1;   ///< Last position live (inclusive).

    bool live() const { return start >= 0; }
};

/** Where register pressure peaks (exhaustion diagnostics). */
struct PressurePoint
{
    unsigned pressure = 0;
    std::string block;
    int op = -1;   ///< Op index inside the block; -1 for empty blocks.
    int line = -1; ///< Source line of that op, when known.
};

/** Liveness over a program: per-vreg intervals plus the peak. */
struct Liveness
{
    std::vector<LiveInterval> intervals; ///< Indexed by vreg.
    PressurePoint peak;
};

/** Compute lifetime intervals (iterative dataflow over the CFG,
 *  then one backward walk per block). @p prog must validate. */
Liveness computeLiveness(const IrProgram &prog);

/** Final home of one ORIGINAL vreg after allocation. */
struct VregHome
{
    enum class Kind : std::uint8_t
    {
        Dead, ///< Never live; no storage assigned.
        Reg,  ///< In register `reg` (absolute physical id).
        Slot, ///< Spilled to memory address `addr`.
    };

    Kind kind = Kind::Dead;
    RegId reg = 0;
    Addr addr = 0;
};

/** Allocation result and counters (pipeline pass stats). */
struct Allocation
{
    /** Indexed by the vreg ids the program had on entry. */
    std::vector<VregHome> homes;

    unsigned regsUsed = 0;     ///< Distinct physical registers.
    unsigned spilledVregs = 0; ///< Original vregs sent to memory.
    unsigned spillStores = 0;  ///< Store ops inserted.
    unsigned spillReloads = 0; ///< Load ops inserted.
    unsigned slotsUsed = 0;
    unsigned deadInitsDropped = 0;
    unsigned maxPressure = 0; ///< Peak live intervals, final IR.
    unsigned rounds = 0;      ///< Spill iterations until fixpoint.

    bool spilled() const { return spilledVregs > 0; }
};

/**
 * Allocate @p prog's virtual registers into @p opts.window,
 * rewriting the program in place (pass "regalloc").
 *
 * Postcondition on success: every vreg id in @p prog is a
 * window-relative physical index (codegen maps id i to register
 * window.base + i), and numVregs <= window.capacity(). Under the
 * direct strategy the program is untouched. Under linear scan the
 * vreg ids are collapsed onto their assigned indices and spill
 * Load/Store ops appear inline, so downstream DDG construction sees
 * physical-register reuse as WAR/WAW dependences.
 *
 * Failure modes: window exhausted (direct; reports the pressure
 * point and suggests --spill), spill region exhausted, or a window
 * too small to stage reloads through (< 4 registers with spilling).
 */
CompileResult<Allocation> allocateRegisters(IrProgram &prog,
                                            const RegAllocOptions &opts);

/**
 * Shared capacity check for fixed-layout register consumers (the
 * modulo pipeliner): @p regsNeeded registers must fit in @p window.
 */
CompileResult<Ok> checkWindow(const std::string &pass,
                              const RegWindow &window,
                              unsigned regsNeeded);

} // namespace ximd::sched

#endif // XIMD_SCHED_REGALLOC_HH
