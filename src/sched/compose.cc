#include "sched/compose.hh"

#include <algorithm>
#include <map>

#include "analysis/verify.hh"
#include "sched/codegen.hh"
#include "support/logging.hh"

namespace ximd::sched {

CompileResult<Composed>
composeThreadsChecked(const std::vector<IrProgram> &threads,
                      const PackResult &packing, FuId machineWidth,
                      const ComposeOptions &copts)
{
    auto err = [](std::string msg) {
        return CompileResult<Composed>(
            compileError("compose", std::move(msg)));
    };

    if (machineWidth == 0 || machineWidth > kMaxFus)
        return err(cat("bad machine width ", machineWidth));
    if (packing.placements.size() != threads.size())
        return err(cat("packing covers ", packing.placements.size(),
                       " of ", threads.size(), " threads"));

    // Synchronization-signal discipline: a masked start barrier reads
    // every masked FU's 1-bit SS, and an FU parked at *another*
    // barrier also drives DONE. Two concurrent barriers are therefore
    // only unambiguous when their masks never mix, which the composer
    // guarantees by requiring every pair of placements to occupy
    // EQUAL or DISJOINT column ranges (tiles with equal ranges stack
    // and run strictly in sequence; disjoint ranges never interact).
    for (std::size_t i = 0; i < packing.placements.size(); ++i) {
        for (std::size_t j = i + 1; j < packing.placements.size();
             ++j) {
            const Placement &a = packing.placements[i];
            const Placement &b = packing.placements[j];
            const bool equal =
                a.col == b.col && a.width == b.width;
            const bool disjoint = a.col + a.width <= b.col ||
                                  b.col + b.width <= a.col;
            if (!equal && !disjoint)
                return err(cat(
                    "threads ", a.threadId, " and ", b.threadId,
                    " occupy partially overlapping column ranges; "
                    "start-barrier sync signals would alias (use a "
                    "laminar packing)"));
        }
    }

    const auto numThreads = threads.size();
    const unsigned k = static_cast<unsigned>(numThreads);
    const unsigned h = packing.totalHeight;
    const InstAddr bodyBase = 1 + k;          // after dispatch+barriers
    const InstAddr finalBarrier = bodyBase + h;
    const InstAddr haltRow = finalBarrier + 1;

    Composed out;
    out.program = Program(machineWidth);
    out.finalBarrier = finalBarrier;
    Program &prog = out.program;

    // Pre-size the grid with never-executed halt filler.
    const Parcel filler(ControlOp::halt(), DataOp::nop());
    for (InstAddr r = 0; r < haltRow + 1; ++r)
        prog.addUniformRow(filler);

    // Compile each thread at its packed width.
    struct Compiled
    {
        const Placement *place = nullptr;
        CodegenResult code;
    };
    std::vector<Compiled> compiled(numThreads);
    for (const Placement &p : packing.placements) {
        const auto t = static_cast<std::size_t>(p.threadId);
        if (t >= numThreads)
            return err(cat("placement for unknown thread ",
                           p.threadId));
        CodegenOptions opts;
        opts.width = p.width;
        opts.alloc = copts.threadAlloc(t);
        opts.nameVregs = false;
        compiled[t].place = &p;
        auto code = generateCodeChecked(threads[t], opts);
        if (!code) {
            // Locate window/allocation failures at the thread.
            CompileError e = code.error();
            e.message = cat("thread ", p.threadId, ": ", e.message);
            return e;
        }
        compiled[t].code = std::move(code).value();
        if (compiled[t].code.program.size() != p.height)
            return err(cat("thread ", p.threadId, " compiled to ",
                           compiled[t].code.program.size(),
                           " rows but was packed as ", p.height));
    }

    // Per-column tile chains, ordered by packed row.
    std::vector<std::vector<std::size_t>> chain(machineWidth);
    for (std::size_t t = 0; t < numThreads; ++t) {
        const Placement &p = *compiled[t].place;
        for (FuId c = p.col; c < p.col + p.width; ++c)
            chain[c].push_back(t);
    }
    for (auto &col : chain) {
        std::sort(col.begin(), col.end(),
                  [&](std::size_t a, std::size_t b) {
                      return compiled[a].place->row <
                             compiled[b].place->row;
                  });
    }

    auto barrierRowOf = [&](std::size_t t) {
        return static_cast<InstAddr>(1 + t);
    };
    auto bodyStartOf = [&](std::size_t t) {
        return bodyBase + compiled[t].place->row;
    };
    /** Where column @p c goes after finishing thread @p t. */
    auto nextTarget = [&](FuId c, std::size_t t) -> InstAddr {
        const auto &col = chain[c];
        for (std::size_t i = 0; i < col.size(); ++i)
            if (col[i] == t)
                return i + 1 < col.size() ? barrierRowOf(col[i + 1])
                                          : finalBarrier;
        panic("thread ", t, " missing from column ", c, " chain");
    };

    // Dispatch row: each FU heads for its first tile's barrier.
    for (FuId c = 0; c < machineWidth; ++c) {
        const InstAddr target =
            chain[c].empty() ? finalBarrier : barrierRowOf(chain[c][0]);
        prog.parcel(0, c) = Parcel(ControlOp::jump(target),
                                   DataOp::nop());
    }

    // Start-barrier rows: thread t's columns wait for each other.
    for (std::size_t t = 0; t < numThreads; ++t) {
        const Placement &p = *compiled[t].place;
        std::uint32_t mask = 0;
        for (FuId c = p.col; c < p.col + p.width; ++c)
            mask |= 1u << c;
        for (FuId c = p.col; c < p.col + p.width; ++c) {
            prog.parcel(barrierRowOf(t), c) =
                Parcel(ControlOp::onAllSync(bodyStartOf(t),
                                            barrierRowOf(t), mask),
                       DataOp::nop(), SyncVal::Done);
        }
    }

    // Relocate tile bodies into the grid.
    for (std::size_t t = 0; t < numThreads; ++t) {
        const Placement &p = *compiled[t].place;
        const Program &src = compiled[t].code.program;
        const InstAddr base = bodyStartOf(t);
        for (InstAddr a = 0; a < src.size(); ++a) {
            for (FuId fu = 0; fu < p.width; ++fu) {
                Parcel parcel = src.parcel(a, fu);
                ControlOp &ctrl = parcel.ctrl;
                if (ctrl.isHalt()) {
                    // End of thread: continue down this column.
                    ctrl = ControlOp::jump(
                        nextTarget(p.col + fu, t));
                } else {
                    ctrl.t1 += base;
                    if (ctrl.isConditional())
                        ctrl.t2 += base;
                    else
                        ctrl.t2 = ctrl.t1;
                    if (ctrl.kind == CondKind::CcTrue)
                        ctrl.index =
                            static_cast<std::uint8_t>(ctrl.index +
                                                      p.col);
                }
                prog.parcel(base + a, p.col + fu) = parcel;
            }
        }
        // Thread state initializers, relocated registers included.
        for (const auto &[reg, value] : src.regInit())
            prog.addRegInit(reg, value);
        for (const auto &[addr, value] : src.memInit())
            prog.addMemInit(addr, value);

        ComposedThread info;
        info.threadId = static_cast<int>(t);
        info.col = p.col;
        info.width = p.width;
        info.barrierRow = barrierRowOf(t);
        info.bodyStart = base;
        info.bodyRows = p.height;
        info.regBase = copts.threadAlloc(t).window.base;
        out.threads.push_back(info);
    }

    // Final whole-machine barrier, then halt.
    for (FuId c = 0; c < machineWidth; ++c) {
        prog.parcel(finalBarrier, c) =
            Parcel(ControlOp::onAllSync(haltRow, finalBarrier),
                   DataOp::nop(), SyncVal::Done);
        prog.parcel(haltRow, c) = Parcel(ControlOp::halt(),
                                         DataOp::nop());
    }

    // Composition compiles every tile at the default single-cycle
    // latency; stamp the composed program accordingly.
    prog.setSymbol(kRawLatencySymbol, 1);

    prog.validate();
    // Composition introduces the sync protocol (start barriers,
    // final barrier); self-check the whole contract in debug builds.
    analysis::debugVerify(prog);
    return out;
}

} // namespace ximd::sched
