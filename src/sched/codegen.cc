#include "sched/codegen.hh"

#include "analysis/verify.hh"
#include "sched/list_scheduler.hh"
#include "support/logging.hh"

namespace ximd::sched {

namespace {

Operand
lowerValue(const IrValue &v, RegId regBase)
{
    if (v.isImm())
        return Operand::imm(v.imm);
    if (v.isVreg())
        return Operand::reg(static_cast<RegId>(regBase + v.vreg));
    return Operand::none();
}

DataOp
lowerOp(const IrOp &op, RegId regBase)
{
    DataOp d;
    d.op = op.op;
    const OpInfo &info = opInfo(op.op);
    if (info.numSrcs >= 1)
        d.a = lowerValue(op.a, regBase);
    if (info.numSrcs >= 2)
        d.b = lowerValue(op.b, regBase);
    if (info.hasDest)
        d.dest = static_cast<RegId>(regBase + op.dest);
    d.validate();
    return d;
}

} // namespace

CompileResult<CodegenResult>
emitScheduled(const IrProgram &prog,
              const std::vector<BlockSchedule> &schedules,
              const CodegenOptions &opts)
{
    // Allocation already fit the vregs into the window; this guards
    // callers that skip the regalloc pass.
    if (static_cast<unsigned>(prog.numVregs) >
        opts.alloc.window.capacity())
        return compileError(
            "codegen", cat("register window exhausted: ",
                           prog.numVregs, " vregs at base ",
                           opts.alloc.window.base,
                           " (run the regalloc pass)"));
    XIMD_ASSERT(schedules.size() == prog.blocks.size(),
                "one schedule per block required");

    // Lay out block addresses.
    std::map<std::string, InstAddr> blockAddr;
    InstAddr next = 0;
    for (std::size_t bi = 0; bi < prog.blocks.size(); ++bi) {
        blockAddr[prog.blocks[bi].name] = next;
        next += schedules[bi].numRows();
    }

    // Emit parcels.
    CodegenResult result;
    result.program = Program(opts.width);
    result.blockAddr = blockAddr;
    Program &out = result.program;

    for (std::size_t bi = 0; bi < prog.blocks.size(); ++bi) {
        const IrBlock &b = prog.blocks[bi];
        const BlockSchedule &sched = schedules[bi];
        const InstAddr base = blockAddr[b.name];
        const unsigned rows = sched.numRows();

        // Where did the branch compare land?
        FuId compareFu = 0;
        if (b.term.kind == Terminator::Kind::CondBranch) {
            bool found = false;
            for (unsigned c = 0; c < rows && !found; ++c) {
                const auto &cyc = sched.cycles[c];
                for (std::size_t s = 0; s < cyc.size(); ++s) {
                    if (cyc[s] == b.term.compareIdx) {
                        compareFu = static_cast<FuId>(s);
                        found = true;
                        break;
                    }
                }
            }
            XIMD_ASSERT(found, "branch compare missing from schedule");
        }

        for (unsigned c = 0; c < rows; ++c) {
            ControlOp ctrl;
            if (c + 1 < rows) {
                ctrl = ControlOp::jump(base + c + 1);
            } else {
                switch (b.term.kind) {
                  case Terminator::Kind::Halt:
                    ctrl = ControlOp::halt();
                    break;
                  case Terminator::Kind::Jump:
                    ctrl = ControlOp::jump(blockAddr.at(b.term.taken));
                    break;
                  case Terminator::Kind::CondBranch:
                    ctrl = ControlOp::onCc(
                        compareFu, blockAddr.at(b.term.taken),
                        blockAddr.at(b.term.fallthrough));
                    break;
                }
            }
            InstRow row;
            const auto &cyc = sched.cycles[c];
            for (FuId fu = 0; fu < opts.width; ++fu) {
                DataOp d = DataOp::nop();
                if (fu < cyc.size() && cyc[fu] >= 0)
                    d = lowerOp(b.ops[static_cast<std::size_t>(
                                    cyc[fu])],
                                opts.alloc.window.base);
                row.push_back(Parcel(ctrl, d));
            }
            out.addRow(std::move(row));
        }
        out.setLabel(b.name, base);
    }

    for (const auto &[v, value] : prog.vregInit)
        out.addRegInit(
            static_cast<RegId>(opts.alloc.window.base + v), value);
    for (const auto &[a, value] : prog.memInit)
        out.addMemInit(a, value);
    if (opts.nameVregs) {
        for (VregId v = 0; v < prog.numVregs; ++v)
            out.nameRegister(
                "v" + std::to_string(v),
                static_cast<RegId>(opts.alloc.window.base + v));
    }
    out.setSymbol(kRawLatencySymbol, opts.rawLatency);

    out.validate();
    // Debug builds run the full static verifier over every emitted
    // program: the compiler must honor the contract it compiles to.
    analysis::debugVerify(out);
    return result;
}

CompileResult<CodegenResult>
generateCodeChecked(const IrProgram &prog, const CodegenOptions &opts)
{
    if (auto v = prog.validateChecked(); !v)
        return v.error();

    IrProgram allocated = prog;
    if (auto a = allocateRegisters(allocated, opts.alloc); !a)
        return a.error();

    std::vector<BlockSchedule> schedules;
    for (const IrBlock &b : allocated.blocks) {
        auto s = scheduleBlockChecked(b, opts.width, opts.rawLatency);
        if (!s)
            return s.error();
        schedules.push_back(std::move(s).value());
    }
    return emitScheduled(allocated, schedules, opts);
}

} // namespace ximd::sched
