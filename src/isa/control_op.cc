#include "isa/control_op.hh"

#include <sstream>

#include "support/logging.hh"
#include "support/str.hh"

namespace ximd {

ControlOp
ControlOp::jump(InstAddr t)
{
    ControlOp c;
    c.kind = CondKind::Always;
    c.t1 = t;
    c.t2 = t;
    return c;
}

ControlOp
ControlOp::onCc(unsigned cc, InstAddr t1, InstAddr t2)
{
    XIMD_ASSERT(cc < kMaxFus, "condition-code index out of range: ", cc);
    ControlOp c;
    c.kind = CondKind::CcTrue;
    c.index = static_cast<std::uint8_t>(cc);
    c.t1 = t1;
    c.t2 = t2;
    return c;
}

ControlOp
ControlOp::onSync(unsigned fu, InstAddr t1, InstAddr t2)
{
    XIMD_ASSERT(fu < kMaxFus, "sync-signal index out of range: ", fu);
    ControlOp c;
    c.kind = CondKind::SyncDone;
    c.index = static_cast<std::uint8_t>(fu);
    c.t1 = t1;
    c.t2 = t2;
    return c;
}

ControlOp
ControlOp::onAllSync(InstAddr t1, InstAddr t2, std::uint32_t mask)
{
    XIMD_ASSERT(mask != 0, "barrier mask must include at least one FU");
    ControlOp c;
    c.kind = CondKind::AllSync;
    c.mask = mask;
    c.t1 = t1;
    c.t2 = t2;
    return c;
}

ControlOp
ControlOp::onAnySync(InstAddr t1, InstAddr t2, std::uint32_t mask)
{
    XIMD_ASSERT(mask != 0, "any-sync mask must include at least one FU");
    ControlOp c;
    c.kind = CondKind::AnySync;
    c.mask = mask;
    c.t1 = t1;
    c.t2 = t2;
    return c;
}

ControlOp
ControlOp::halt()
{
    ControlOp c;
    c.kind = CondKind::Halt;
    return c;
}

bool
ControlOp::operator==(const ControlOp &other) const
{
    if (kind != other.kind)
        return false;
    switch (kind) {
      case CondKind::Halt:
        return true;
      case CondKind::Always:
        return t1 == other.t1;
      case CondKind::CcTrue:
      case CondKind::SyncDone:
        return index == other.index && t1 == other.t1 && t2 == other.t2;
      case CondKind::AllSync:
      case CondKind::AnySync:
        return mask == other.mask && t1 == other.t1 && t2 == other.t2;
    }
    return false;
}

std::string
ControlOp::toString() const
{
    std::ostringstream os;
    switch (kind) {
      case CondKind::Always:
        os << "-> " << hex2(t1) << ":";
        break;
      case CondKind::CcTrue:
        os << "if cc" << unsigned(index) << " " << hex2(t1) << ":|"
           << hex2(t2) << ":";
        break;
      case CondKind::SyncDone:
        os << "if ss" << unsigned(index) << " " << hex2(t1) << ":|"
           << hex2(t2) << ":";
        break;
      case CondKind::AllSync:
      case CondKind::AnySync: {
        os << "if " << (kind == CondKind::AllSync ? "all" : "any");
        if (mask != ~0u) {
            os << "(";
            bool first = true;
            for (FuId i = 0; i < kMaxFus; ++i) {
                if (mask & (1u << i)) {
                    if (!first)
                        os << ",";
                    os << i;
                    first = false;
                }
            }
            os << ")";
        }
        os << " " << hex2(t1) << ":|" << hex2(t2) << ":";
        break;
      }
      case CondKind::Halt:
        os << "halt";
        break;
    }
    return os.str();
}

std::string
syncValName(SyncVal v)
{
    return v == SyncVal::Done ? "DONE" : "BUSY";
}

} // namespace ximd
