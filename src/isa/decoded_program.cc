#include "isa/decoded_program.hh"

#include "support/logging.hh"

namespace ximd {

namespace {

DecodedSrc
decodeSrc(const Operand &operand)
{
    DecodedSrc src;
    if (operand.isReg()) {
        src.isReg = true;
        src.value = operand.regId();
    } else if (operand.isImm()) {
        src.isReg = false;
        src.value = operand.immValue();
    }
    // None stays {0, false}: validate() guarantees such operands are
    // never read by the executed op class.
    return src;
}

} // namespace

DecodedProgram::DecodedProgram(const Program &program)
    : width_(program.width()), size_(program.size())
{
    parcels_.resize(static_cast<std::size_t>(size_) * width_);
    for (InstAddr addr = 0; addr < size_; ++addr) {
        for (FuId fu = 0; fu < width_; ++fu) {
            const Parcel &p = program.parcel(addr, fu);
            DecodedParcel &d =
                parcels_[static_cast<std::size_t>(addr) * width_ + fu];

            d.op = p.data.op;
            d.cls = opInfo(p.data.op).cls;
            d.a = decodeSrc(p.data.a);
            d.b = decodeSrc(p.data.b);
            d.dest = p.data.dest;

            d.ckind = p.ctrl.kind;
            d.cindex = p.ctrl.index;
            d.cmask = p.ctrl.mask;
            d.t1 = p.ctrl.t1;
            d.t2 = p.ctrl.t2;
            d.conditional = p.ctrl.isConditional();

            d.sync = p.sync;

            const bool selfTarget =
                (d.ckind == CondKind::Always && d.t1 == addr) ||
                (d.conditional && (d.t1 == addr || d.t2 == addr));
            d.canSelfSpin = d.cls == OpClass::Nop && selfTarget;
        }
    }
}

PreparedProgram::PreparedProgram(Program program)
    : program_(std::move(program))
{
    if (program_.empty())
        fatal("cannot prepare an empty program");
    program_.validate();
    decoded_ = DecodedProgram(program_);
}

std::shared_ptr<const PreparedProgram>
PreparedProgram::make(Program program)
{
    // Not make_shared: the constructor is private.
    return std::shared_ptr<const PreparedProgram>(
        new PreparedProgram(std::move(program)));
}

} // namespace ximd
