#include "isa/decoded_program.hh"

#include <map>
#include <tuple>

#include "support/logging.hh"

namespace ximd {

namespace {

DecodedSrc
decodeSrc(const Operand &operand)
{
    DecodedSrc src;
    if (operand.isReg()) {
        src.isReg = true;
        src.value = operand.regId();
    } else if (operand.isImm()) {
        src.isReg = false;
        src.value = operand.immValue();
    }
    // None stays {0, false}: validate() guarantees such operands are
    // never read by the executed op class.
    return src;
}

/** Fused token kind for a control-only (nop data op) parcel. */
ExecKind
fusedKind(CondKind ckind)
{
    switch (ckind) {
      case CondKind::Halt:     return ExecKind::HaltTok;
      case CondKind::Always:   return ExecKind::Jump;
      case CondKind::CcTrue:   return ExecKind::PollCc;
      case CondKind::SyncDone: return ExecKind::PollSs;
      case CondKind::AllSync:  return ExecKind::PollAll;
      case CondKind::AnySync:  return ExecKind::PollAny;
    }
    return ExecKind::Nop;
}

/** Data-op token kind; one ExecKind per opcode. */
ExecKind
dataKind(Opcode op)
{
    switch (op) {
      case Opcode::Iadd:  return ExecKind::Iadd;
      case Opcode::Isub:  return ExecKind::Isub;
      case Opcode::Imult: return ExecKind::Imult;
      case Opcode::Idiv:  return ExecKind::Idiv;
      case Opcode::Imod:  return ExecKind::Imod;
      case Opcode::Ineg:  return ExecKind::Ineg;
      case Opcode::And:   return ExecKind::And;
      case Opcode::Or:    return ExecKind::Or;
      case Opcode::Xor:   return ExecKind::Xor;
      case Opcode::Not:   return ExecKind::Not;
      case Opcode::Shl:   return ExecKind::Shl;
      case Opcode::Shr:   return ExecKind::Shr;
      case Opcode::Sar:   return ExecKind::Sar;
      case Opcode::Mov:   return ExecKind::Mov;
      case Opcode::Eq:    return ExecKind::Eq;
      case Opcode::Ne:    return ExecKind::Ne;
      case Opcode::Lt:    return ExecKind::Lt;
      case Opcode::Le:    return ExecKind::Le;
      case Opcode::Gt:    return ExecKind::Gt;
      case Opcode::Ge:    return ExecKind::Ge;
      case Opcode::Fadd:  return ExecKind::Fadd;
      case Opcode::Fsub:  return ExecKind::Fsub;
      case Opcode::Fmult: return ExecKind::Fmult;
      case Opcode::Fdiv:  return ExecKind::Fdiv;
      case Opcode::Fneg:  return ExecKind::Fneg;
      case Opcode::Feq:   return ExecKind::Feq;
      case Opcode::Fne:   return ExecKind::Fne;
      case Opcode::Flt:   return ExecKind::Flt;
      case Opcode::Fle:   return ExecKind::Fle;
      case Opcode::Fgt:   return ExecKind::Fgt;
      case Opcode::Fge:   return ExecKind::Fge;
      case Opcode::Itof:  return ExecKind::Itof;
      case Opcode::Ftoi:  return ExecKind::Ftoi;
      case Opcode::Load:  return ExecKind::Load;
      case Opcode::Store: return ExecKind::Store;
      case Opcode::Nop:   break;
    }
    panic("dataKind: no token for ", opcodeName(op));
}

/** Does the op read its second source (b)? Mirrors executeParcel. */
bool
readsB(const DecodedParcel &d)
{
    switch (d.cls) {
      case OpClass::IntAlu:
        return d.op != Opcode::Ineg && d.op != Opcode::Not &&
               d.op != Opcode::Mov;
      case OpClass::FloatAlu:
        return d.op != Opcode::Fneg;
      case OpClass::IntCompare:
      case OpClass::FloatCompare:
      case OpClass::MemLoad:
      case OpClass::MemStore:
        return true;
      case OpClass::Nop:
      case OpClass::Convert:
        return false;
    }
    return false;
}

} // namespace

DecodedProgram::DecodedProgram(const Program &program)
    : width_(program.width()), size_(program.size())
{
    parcels_.resize(static_cast<std::size_t>(size_) * width_);
    for (InstAddr addr = 0; addr < size_; ++addr) {
        for (FuId fu = 0; fu < width_; ++fu) {
            const Parcel &p = program.parcel(addr, fu);
            DecodedParcel &d =
                parcels_[static_cast<std::size_t>(addr) * width_ + fu];

            d.op = p.data.op;
            d.cls = opInfo(p.data.op).cls;
            d.a = decodeSrc(p.data.a);
            d.b = decodeSrc(p.data.b);
            d.dest = p.data.dest;

            d.ckind = p.ctrl.kind;
            d.cindex = p.ctrl.index;
            d.cmask = p.ctrl.mask;
            d.t1 = p.ctrl.t1;
            d.t2 = p.ctrl.t2;
            d.conditional = p.ctrl.isConditional();

            d.sync = p.sync;

            const bool selfTarget =
                (d.ckind == CondKind::Always && d.t1 == addr) ||
                (d.conditional && (d.t1 == addr || d.t2 == addr));
            d.canSelfSpin = d.cls == OpClass::Nop && selfTarget;
        }
    }
}

FlatProgram::FlatProgram(const DecodedProgram &decoded)
    : width_(decoded.width()), size_(decoded.size())
{
    parcels_.resize(static_cast<std::size_t>(size_) * width_);

    // Grouping keys intern PartitionTracker::update()'s tuples — with
    // the RAW branch mask, so two parcels whose masks differ only in
    // nonexistent-FU bits land in distinct SSETs exactly as the
    // tracker would place them. An unconditional parcel's key is its
    // resolved next PC, which for Always control is statically T1.
    using Key =
        std::tuple<int, unsigned, std::uint32_t, InstAddr, InstAddr>;
    std::map<Key, std::uint16_t> keys;
    const std::uint32_t fuMask = fuMaskAll(width_);

    for (InstAddr addr = 0; addr < size_; ++addr) {
        bool rowAllNop = true;
        for (FuId fu = 0; fu < width_; ++fu)
            rowAllNop &= decoded.at(addr, fu).cls == OpClass::Nop;
        for (FuId fu = 0; fu < width_; ++fu) {
            const DecodedParcel &d = decoded.at(addr, fu);
            FlatParcel &f =
                parcels_[static_cast<std::size_t>(fu) * size_ + addr];

            f.kind = d.cls == OpClass::Nop ? fusedKind(d.ckind)
                                           : dataKind(d.op);
            f.ckind = d.ckind;
            f.cindex = d.cindex;
            f.cls = static_cast<std::uint8_t>(d.cls);
            f.dest = d.dest;
            f.ssDoneBit = d.sync == SyncVal::Done ? 1u << fu : 0;
            f.cmask = d.cmask & fuMask;
            f.aVal = d.a.value;
            f.bVal = d.b.value;
            f.t1 = d.t1;
            f.t2 = d.t2;

            const bool usesA = d.cls != OpClass::Nop;
            const bool usesB = readsB(d);
            f.readCount =
                static_cast<std::uint8_t>((usesA && d.a.isReg ? 1 : 0) +
                                          (usesB && d.b.isReg ? 1 : 0));
            if (usesA && d.a.isReg)
                f.flags |= FlatParcel::kAReg;
            if (usesB && d.b.isReg)
                f.flags |= FlatParcel::kBReg;
            if (d.conditional)
                f.flags |= FlatParcel::kConditional;
            if (d.canSelfSpin)
                f.flags |= FlatParcel::kCanSelfSpin;
            if (fu == 0 && rowAllNop)
                f.flags |= FlatParcel::kRowAllNop;

            if (d.ckind != CondKind::Halt) {
                const Key key =
                    d.conditional
                        ? Key{static_cast<int>(d.ckind), d.cindex,
                              d.cmask, d.t1, d.t2}
                        : Key{static_cast<int>(CondKind::Always), 0u,
                              0u, d.t1, d.t1};
                if (keys.size() > 0xffff)
                    fatal("program has more than 65535 distinct "
                          "branch keys");
                f.keyId =
                    keys.emplace(key,
                                 static_cast<std::uint16_t>(keys.size()))
                        .first->second;
            }
        }
    }
    numKeys_ = static_cast<unsigned>(keys.size());
}

PreparedProgram::PreparedProgram(Program program)
    : program_(std::move(program))
{
    if (program_.empty())
        fatal("cannot prepare an empty program");
    program_.validate();
    decoded_ = DecodedProgram(program_);
    flat_ = FlatProgram(decoded_);
}

std::shared_ptr<const PreparedProgram>
PreparedProgram::make(Program program)
{
    // Not make_shared: the constructor is private.
    return std::shared_ptr<const PreparedProgram>(
        new PreparedProgram(std::move(program)));
}

} // namespace ximd
