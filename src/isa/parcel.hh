/**
 * @file
 * The instruction parcel — the unit of control in an XIMD machine.
 *
 * Section 2.4: "Instruction Parcel: The set of instruction fields which
 * control each FU. This includes the fields for the control path, data
 * path, and synchronization signals for each FU. Each instruction
 * parcel is independent. Eight instruction parcels comprise one
 * instruction, whether or not they were issued from the same physical
 * address."
 */

#ifndef XIMD_ISA_PARCEL_HH
#define XIMD_ISA_PARCEL_HH

#include "isa/control_op.hh"
#include "isa/data_op.hh"

namespace ximd {

/** One parcel: control op + data op + sync field for one FU. */
struct Parcel
{
    ControlOp ctrl;             ///< Next-address selection.
    DataOp data;                ///< Data-path operation.
    SyncVal sync = SyncVal::Busy; ///< SS value emitted this cycle.

    Parcel() = default;

    Parcel(ControlOp c, DataOp d, SyncVal s = SyncVal::Busy)
        : ctrl(c), data(d), sync(s) {}

    bool operator==(const Parcel &other) const
    {
        return ctrl == other.ctrl && data == other.data &&
               sync == other.sync;
    }
};

} // namespace ximd

#endif // XIMD_ISA_PARCEL_HH
