/**
 * @file
 * The XIMD-1 data-path operation set.
 *
 * Section 2.2 of the paper defines 3-address register-to-register
 * operations on 32-bit integers and 32-bit floats, plus load/store and
 * compare operations that set the executing FU's condition-code
 * register. Figure 7 lists representative instructions (iadd, isub,
 * imult, idiv, load, store); the text adds "the common integer and
 * floating point arithmetic, logical, and compare instructions".
 */

#ifndef XIMD_ISA_OPCODE_HH
#define XIMD_ISA_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace ximd {

/** Every data-path operation executable by a universal FU in one cycle. */
enum class Opcode : std::uint8_t {
    Nop,

    // Integer arithmetic (Figure 7 plus the usual complement).
    Iadd, Isub, Imult, Idiv, Imod, Ineg,

    // Bitwise / shifts.
    And, Or, Xor, Not, Shl, Shr, Sar,

    // Register move (a -> d); shorthand for iadd a, #0, d.
    Mov,

    // Integer compares; set the executing FU's CC register.
    Eq, Ne, Lt, Le, Gt, Ge,

    // Floating-point arithmetic.
    Fadd, Fsub, Fmult, Fdiv, Fneg,

    // Floating-point compares; set the executing FU's CC register.
    Feq, Fne, Flt, Fle, Fgt, Fge,

    // Conversions.
    Itof, Ftoi,

    // Memory: load M(a+b) -> d ; store a -> M(b).
    Load, Store,

    NumOpcodes,
};

/** Broad functional classification used by stats and the scheduler. */
enum class OpClass : std::uint8_t {
    Nop,
    IntAlu,
    FloatAlu,
    IntCompare,
    FloatCompare,
    Convert,
    MemLoad,
    MemStore,
};

/** Static description of one opcode. */
struct OpInfo
{
    std::string_view name;  ///< Assembler mnemonic.
    OpClass cls;            ///< Functional class.
    std::uint8_t numSrcs;   ///< Source operands consumed (0..2).
    bool hasDest;           ///< Writes a destination register.
};

/** Look up the static descriptor for @p op. */
const OpInfo &opInfo(Opcode op);

/** Assembler mnemonic for @p op. */
std::string_view opcodeName(Opcode op);

/** Parse a mnemonic (lower case); std::nullopt when unknown. */
std::optional<Opcode> parseOpcode(std::string_view name);

/** True when @p op sets the executing FU's condition code. */
bool setsCondCode(Opcode op);

/** True when @p op touches memory. */
bool isMemOp(Opcode op);

/** True when @p op belongs to the floating-point data path. */
bool isFloatOp(Opcode op);

} // namespace ximd

#endif // XIMD_ISA_OPCODE_HH
