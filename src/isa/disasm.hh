/**
 * @file
 * Disassembler: renders programs in the paper's listing format
 * (Figure 9): per-address rows of boxed parcels, the control operation
 * on top, the data operation below, and the sync field when any parcel
 * in the program uses DONE.
 */

#ifndef XIMD_ISA_DISASM_HH
#define XIMD_ISA_DISASM_HH

#include <string>

#include "isa/program.hh"

namespace ximd {

/** Options controlling listing appearance. */
struct DisasmOptions
{
    bool useRegNames = true;   ///< Substitute symbolic register names.
    bool showSync = true;      ///< Show SS fields (when any is DONE).
    unsigned columnWidth = 22; ///< Minimum per-FU column width.
};

/** Render one operand, substituting register names when enabled. */
std::string formatOperand(const Program &prog, const Operand &op,
                          const DisasmOptions &opts = {});

/** Render one data op with symbolic registers. */
std::string formatDataOp(const Program &prog, const DataOp &op,
                         const DisasmOptions &opts = {});

/** Render one parcel: "ctrl ; data ; sync". */
std::string formatParcel(const Program &prog, const Parcel &parcel,
                         const DisasmOptions &opts = {});

/** Render a full program listing in the paper's row format. */
std::string formatProgram(const Program &prog,
                          const DisasmOptions &opts = {});

} // namespace ximd

#endif // XIMD_ISA_DISASM_HH
