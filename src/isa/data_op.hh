/**
 * @file
 * A single 3-address data-path operation, one per instruction parcel.
 *
 * The shapes follow Figure 7 of the paper:
 *   binary alu:   op  a, b, d     (a op b -> d)
 *   unary alu:    op  a, d
 *   compare:      op  a, b        (sets CC of the executing FU)
 *   load:         load a, b, d    (M(a+b) -> d)
 *   store:        store a, b      (a -> M(b))
 */

#ifndef XIMD_ISA_DATA_OP_HH
#define XIMD_ISA_DATA_OP_HH

#include <string>

#include "isa/opcode.hh"
#include "isa/operand.hh"
#include "support/types.hh"

namespace ximd {

/** One data operation: opcode, up to two sources, optional dest reg. */
struct DataOp
{
    Opcode op = Opcode::Nop;
    Operand a;          ///< Source operand A (value source for store).
    Operand b;          ///< Source operand B (address source for store).
    RegId dest = 0;     ///< Destination register; valid iff hasDest().

    DataOp() = default;

    /** Binary op with destination: op a, b -> dest. */
    static DataOp make(Opcode op, Operand a, Operand b, RegId dest);

    /** Unary op with destination: op a -> dest. */
    static DataOp makeUnary(Opcode op, Operand a, RegId dest);

    /** Compare (no destination): op a, b -> CC. */
    static DataOp makeCompare(Opcode op, Operand a, Operand b);

    /** load a, b, dest: M(a+b) -> dest. */
    static DataOp makeLoad(Operand a, Operand b, RegId dest);

    /** store a, b: a -> M(b). */
    static DataOp makeStore(Operand value, Operand addr);

    /** The canonical no-op. */
    static DataOp nop();

    bool isNop() const { return op == Opcode::Nop; }
    bool hasDest() const { return opInfo(op).hasDest; }

    /**
     * Check operand shape against the opcode descriptor.
     * Throws FatalError on malformed operations (e.g. a compare with a
     * destination source missing, or a binary op with an absent source).
     */
    void validate() const;

    bool operator==(const DataOp &other) const;

    /** Assembler rendering, e.g. "iadd r1,#4,r2" or "nop". */
    std::string toString() const;
};

} // namespace ximd

#endif // XIMD_ISA_DATA_OP_HH
