/**
 * @file
 * Predecoded program representation for the simulator hot loop.
 *
 * A Program stores parcels the way the assembler and tools want them:
 * symbolic Operand variants, an OpClass reachable only through the
 * opInfo() descriptor table, control fields behind ControlOp methods.
 * Re-interrogating all of that every cycle is pure interpreter
 * overhead — none of it changes after load.
 *
 * DecodedProgram is built once at machine construction and resolves
 * every parcel into a dense, flat execute record:
 *
 *  - operand kinds collapse into a two-way tag (register / literal)
 *    with the register index or immediate bits pre-extracted;
 *  - the opcode's functional class is copied inline so dispatch needs
 *    no descriptor lookup;
 *  - control fields (condition kind, CC/SS index, FU mask, T1/T2) and
 *    the SS field are copied inline;
 *  - a `canSelfSpin` flag marks parcels that can possibly busy-wait
 *    at their own address with no data-path side effects — the cheap
 *    pre-filter for the core's busy-wait fast-forward.
 *
 * Invariants: the source Program must be validate()-clean before
 * decoding (the machine constructors guarantee this); the decoded
 * records are immutable for the machine's lifetime; records are laid
 * out row-major (address * width + fu), mirroring Program's grid.
 */

#ifndef XIMD_ISA_DECODED_PROGRAM_HH
#define XIMD_ISA_DECODED_PROGRAM_HH

#include <memory>
#include <vector>

#include "isa/program.hh"
#include "support/types.hh"

namespace ximd {

/** A resolved source operand: register index or immediate bits. */
struct DecodedSrc
{
    Word value = 0;     ///< Register index when isReg, else raw bits.
    bool isReg = false;
};

/** One parcel, fully resolved for execution. */
struct DecodedParcel
{
    // Data path.
    Opcode op = Opcode::Nop;
    OpClass cls = OpClass::Nop;
    DecodedSrc a;
    DecodedSrc b;
    RegId dest = 0;

    // Control path.
    CondKind ckind = CondKind::Always;
    std::uint8_t cindex = 0;    ///< CC or SS index.
    std::uint32_t cmask = ~0u;  ///< FU mask for AllSync / AnySync.
    InstAddr t1 = 0;
    InstAddr t2 = 0;
    bool conditional = false;

    // Synchronization field.
    SyncVal sync = SyncVal::Busy;

    /**
     * True when this parcel could busy-wait at its own address: the
     * data op is a nop (no architectural side effects) and some
     * selectable branch target is the parcel's own row.
     */
    bool canSelfSpin = false;

    /** Reconstruct the control fields (partition keys, diagnostics). */
    ControlOp controlOp() const
    {
        ControlOp c;
        c.kind = ckind;
        c.index = cindex;
        c.mask = cmask;
        c.t1 = t1;
        c.t2 = t2;
        return c;
    }
};

/** The dense per-parcel execute records of one Program. */
class DecodedProgram
{
  public:
    DecodedProgram() = default;

    /** Decode @p program, which must already be validate()-clean. */
    explicit DecodedProgram(const Program &program);

    FuId width() const { return width_; }
    InstAddr size() const { return size_; }

    /** Record for (row @p addr, column @p fu); no bounds check. */
    const DecodedParcel &at(InstAddr addr, FuId fu) const
    {
        return parcels_[static_cast<std::size_t>(addr) * width_ + fu];
    }

  private:
    FuId width_ = 0;
    InstAddr size_ = 0;
    std::vector<DecodedParcel> parcels_;
};

/**
 * A validated Program together with its predecode, frozen for
 * execution.
 *
 * Decoding a program costs one pass over every parcel; a parameter
 * sweep runs the same program under dozens of configurations. A
 * PreparedProgram performs validation and predecode exactly once and
 * is immutable afterwards, so any number of MachineCore instances —
 * including cores running concurrently on different threads — can
 * execute from one shared instance. The thread-safety contract is
 * const-correctness: every accessor is const and no member mutates
 * after construction.
 *
 * Handed around as std::shared_ptr<const PreparedProgram> so the
 * owning batch and every in-flight run keep it alive together.
 */
class PreparedProgram
{
  public:
    /**
     * Validate @p program and predecode it. Throws FatalError when the
     * program is empty or structurally invalid.
     */
    static std::shared_ptr<const PreparedProgram> make(Program program);

    const Program &program() const { return program_; }
    const DecodedProgram &decoded() const { return decoded_; }
    FuId width() const { return program_.width(); }

  private:
    explicit PreparedProgram(Program program);

    Program program_;
    DecodedProgram decoded_;
};

} // namespace ximd

#endif // XIMD_ISA_DECODED_PROGRAM_HH
