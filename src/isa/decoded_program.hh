/**
 * @file
 * Predecoded program representation for the simulator hot loop.
 *
 * A Program stores parcels the way the assembler and tools want them:
 * symbolic Operand variants, an OpClass reachable only through the
 * opInfo() descriptor table, control fields behind ControlOp methods.
 * Re-interrogating all of that every cycle is pure interpreter
 * overhead — none of it changes after load.
 *
 * DecodedProgram is built once at machine construction and resolves
 * every parcel into a dense, flat execute record:
 *
 *  - operand kinds collapse into a two-way tag (register / literal)
 *    with the register index or immediate bits pre-extracted;
 *  - the opcode's functional class is copied inline so dispatch needs
 *    no descriptor lookup;
 *  - control fields (condition kind, CC/SS index, FU mask, T1/T2) and
 *    the SS field are copied inline;
 *  - a `canSelfSpin` flag marks parcels that can possibly busy-wait
 *    at their own address with no data-path side effects — the cheap
 *    pre-filter for the core's busy-wait fast-forward.
 *
 * Invariants: the source Program must be validate()-clean before
 * decoding (the machine constructors guarantee this); the decoded
 * records are immutable for the machine's lifetime; records are laid
 * out row-major (address * width + fu), mirroring Program's grid.
 */

#ifndef XIMD_ISA_DECODED_PROGRAM_HH
#define XIMD_ISA_DECODED_PROGRAM_HH

#include <memory>
#include <vector>

#include "isa/program.hh"
#include "support/types.hh"

namespace ximd {

/** A resolved source operand: register index or immediate bits. */
struct DecodedSrc
{
    Word value = 0;     ///< Register index when isReg, else raw bits.
    bool isReg = false;
};

/** One parcel, fully resolved for execution. */
struct DecodedParcel
{
    // Data path.
    Opcode op = Opcode::Nop;
    OpClass cls = OpClass::Nop;
    DecodedSrc a;
    DecodedSrc b;
    RegId dest = 0;

    // Control path.
    CondKind ckind = CondKind::Always;
    std::uint8_t cindex = 0;    ///< CC or SS index.
    std::uint32_t cmask = ~0u;  ///< FU mask for AllSync / AnySync.
    InstAddr t1 = 0;
    InstAddr t2 = 0;
    bool conditional = false;

    // Synchronization field.
    SyncVal sync = SyncVal::Busy;

    /**
     * True when this parcel could busy-wait at its own address: the
     * data op is a nop (no architectural side effects) and some
     * selectable branch target is the parcel's own row.
     */
    bool canSelfSpin = false;

    /** Reconstruct the control fields (partition keys, diagnostics). */
    ControlOp controlOp() const
    {
        ControlOp c;
        c.kind = ckind;
        c.index = cindex;
        c.mask = cmask;
        c.t1 = t1;
        c.t2 = t2;
        return c;
    }
};

/** The dense per-parcel execute records of one Program. */
class DecodedProgram
{
  public:
    DecodedProgram() = default;

    /** Decode @p program, which must already be validate()-clean. */
    explicit DecodedProgram(const Program &program);

    FuId width() const { return width_; }
    InstAddr size() const { return size_; }

    /** Record for (row @p addr, column @p fu); no bounds check. */
    const DecodedParcel &at(InstAddr addr, FuId fu) const
    {
        return parcels_[static_cast<std::size_t>(addr) * width_ + fu];
    }

  private:
    FuId width_ = 0;
    InstAddr size_ = 0;
    std::vector<DecodedParcel> parcels_;
};

/**
 * Exec-dispatch token kind for the token-threaded backend.
 *
 * Most kinds name exactly one opcode, so a threaded handler calls the
 * ALU helper with a compile-time-constant opcode and the per-op switch
 * folds away. The first group is the superinstruction fusion for
 * control-only parcels (data op is a nop): fetch, execute, and
 * sequence collapse into a single dispatch — Jump / HaltTok for
 * unconditional flow and the Poll* family for the busy-wait poll
 * idiom (spin on a CC or sync-signal condition).
 */
enum class ExecKind : std::uint8_t {
    // Fused control-only tokens.
    Nop,     ///< Nop data op with a conditional CC/SS control op that
             ///< did not match a fused form (never emitted today).
    Jump,    ///< nop + unconditional branch.
    HaltTok, ///< nop + halt.
    PollCc,  ///< nop + branch on CCk.
    PollSs,  ///< nop + branch on SSk == DONE.
    PollAll, ///< nop + branch on ALL(mask) DONE.
    PollAny, ///< nop + branch on ANY(mask) DONE.
    // Data-op tokens; sequencing runs through the shared control path.
    Iadd, Isub, Imult, Idiv, Imod, Ineg, And, Or, Xor, Not, Shl, Shr,
    Sar, Mov,
    Eq, Ne, Lt, Le, Gt, Ge,
    Fadd, Fsub, Fmult, Fdiv, Fneg,
    Feq, Fne, Flt, Fle, Fgt, Fge,
    Itof, Ftoi,
    Load, Store,
};

/** Number of ExecKind values (dispatch-table size). */
inline constexpr unsigned kNumExecKinds =
    static_cast<unsigned>(ExecKind::Store) + 1;

/**
 * One parcel flattened into a threaded execute record. Everything the
 * threaded backend's dispatch loop reads per cycle is precomputed
 * here; the backend only adds per-core operand pointers on top.
 */
struct FlatParcel
{
    ExecKind kind = ExecKind::Nop;
    CondKind ckind = CondKind::Always;
    std::uint8_t cindex = 0;  ///< CC or SS index.
    std::uint8_t cls = 0;     ///< OpClass as an array index.
    std::uint8_t readCount = 0; ///< Register reads the exec performs.
    std::uint8_t flags = 0;
    RegId dest = 0;
    std::uint16_t keyId = 0;  ///< Interned SSET-grouping key.
    std::uint32_t ssDoneBit = 0; ///< 1u<<fu when the SS field is DONE.
    std::uint32_t cmask = 0;  ///< Branch mask, premasked to real FUs.
    Word aVal = 0;            ///< Register index or immediate bits.
    Word bVal = 0;
    InstAddr t1 = 0;
    InstAddr t2 = 0;

    static constexpr std::uint8_t kAReg = 1u << 0;
    static constexpr std::uint8_t kBReg = 1u << 1;
    static constexpr std::uint8_t kConditional = 1u << 2;
    static constexpr std::uint8_t kCanSelfSpin = 1u << 3;
    /** On FU0 records: every lane of this row is a nop (VLIW spin). */
    static constexpr std::uint8_t kRowAllNop = 1u << 4;
};

/**
 * The threading tables of one program: FlatParcel records laid out
 * column-major — one contiguous stream per FU, indexed by address —
 * plus the interned SSET-grouping keys.
 *
 * The grouping keys reproduce PartitionTracker::update()'s keying
 * statically: every parcel's key — (kind, index, raw mask, T1, T2)
 * for conditional control, (Always, T1) for unconditional — is known
 * at decode time, so the threaded backend computes per-cycle SSET
 * partitions by comparing small integers instead of tuples.
 *
 * Immutable after construction and shared through PreparedProgram
 * exactly like DecodedProgram.
 */
class FlatProgram
{
  public:
    FlatProgram() = default;

    /** Flatten @p decoded (which must outlive nothing — all copied). */
    explicit FlatProgram(const DecodedProgram &decoded);

    FuId width() const { return width_; }
    InstAddr size() const { return size_; }

    /** Record for (row @p addr, FU @p fu); no bounds check. */
    const FlatParcel &at(InstAddr addr, FuId fu) const
    {
        return parcels_[static_cast<std::size_t>(fu) * size_ + addr];
    }

    /** FU @p fu's contiguous instruction stream (size() records). */
    const FlatParcel *stream(FuId fu) const
    {
        return parcels_.data() + static_cast<std::size_t>(fu) * size_;
    }

    /** Number of distinct interned grouping keys. */
    unsigned numKeys() const { return numKeys_; }

  private:
    FuId width_ = 0;
    InstAddr size_ = 0;
    unsigned numKeys_ = 0;
    std::vector<FlatParcel> parcels_;
};

/**
 * A validated Program together with its predecode, frozen for
 * execution.
 *
 * Decoding a program costs one pass over every parcel; a parameter
 * sweep runs the same program under dozens of configurations. A
 * PreparedProgram performs validation and predecode exactly once and
 * is immutable afterwards, so any number of MachineCore instances —
 * including cores running concurrently on different threads — can
 * execute from one shared instance. The thread-safety contract is
 * const-correctness: every accessor is const and no member mutates
 * after construction.
 *
 * Handed around as std::shared_ptr<const PreparedProgram> so the
 * owning batch and every in-flight run keep it alive together.
 */
class PreparedProgram
{
  public:
    /**
     * Validate @p program and predecode it. Throws FatalError when the
     * program is empty or structurally invalid.
     */
    static std::shared_ptr<const PreparedProgram> make(Program program);

    const Program &program() const { return program_; }
    const DecodedProgram &decoded() const { return decoded_; }

    /** The threaded backend's flattened per-FU streams. */
    const FlatProgram &flat() const { return flat_; }

    FuId width() const { return program_.width(); }

  private:
    explicit PreparedProgram(Program program);

    Program program_;
    DecodedProgram decoded_;
    FlatProgram flat_;
};

} // namespace ximd

#endif // XIMD_ISA_DECODED_PROGRAM_HH
