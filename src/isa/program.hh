/**
 * @file
 * An assembled XIMD program: a grid of instruction parcels.
 *
 * The program is a matrix: one row per instruction-memory address, one
 * column per functional unit. Each FU's separate program counter indexes
 * rows of its own column (section 2.2). Alongside the parcel grid the
 * Program carries the symbol information needed by tools and tests:
 * labels, named constants, register names, and initial memory contents.
 */

#ifndef XIMD_ISA_PROGRAM_HH
#define XIMD_ISA_PROGRAM_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/parcel.hh"
#include "support/types.hh"

namespace ximd {

/** One instruction-memory row: `width()` parcels. */
using InstRow = std::vector<Parcel>;

/** A complete XIMD program plus its symbol tables. */
class Program
{
  public:
    /** Create an empty program for @p width functional units. */
    explicit Program(FuId width = kDefaultFus);

    /** Number of functional-unit columns. */
    FuId width() const { return width_; }

    /** Number of instruction-memory rows. */
    InstAddr size() const
    {
        return static_cast<InstAddr>(rows_.size());
    }

    bool empty() const { return rows_.empty(); }

    /** Append a row; must contain exactly width() parcels. */
    InstAddr addRow(InstRow row);

    /** Append a row of identical parcels (VLIW-style duplication). */
    InstAddr addUniformRow(const Parcel &parcel);

    /** Access a row; fatal on out-of-range address. */
    const InstRow &row(InstAddr addr) const;
    InstRow &row(InstAddr addr);

    /** Access a single parcel; fatal on out-of-range address or FU. */
    const Parcel &parcel(InstAddr addr, FuId fu) const;
    Parcel &parcel(InstAddr addr, FuId fu);

    /** Attach a label to an address (first label per address wins). */
    void setLabel(const std::string &name, InstAddr addr);

    /** Address of @p label, if defined. */
    std::optional<InstAddr> label(const std::string &name) const;

    /** Every label, by name (asm writer, listings). */
    const std::map<std::string, InstAddr> &labels() const
    {
        return labels_;
    }

    /** Label attached to @p addr, if any (first one set). */
    std::optional<std::string> labelAt(InstAddr addr) const;

    /** Define a named constant (data addresses, sizes, ...). */
    void setSymbol(const std::string &name, Word value);

    /** Value of a named constant, if defined. */
    std::optional<Word> symbol(const std::string &name) const;

    /** Value of a named constant; fatal when undefined. */
    Word symbolOrDie(const std::string &name) const;

    /** Every named constant (asm writer, tools). */
    const std::map<std::string, Word> &symbols() const
    {
        return symbols_;
    }

    /** Give register @p r a symbolic name (for listings and tests). */
    void nameRegister(const std::string &name, RegId r);

    /** Register bound to @p name, if any. */
    std::optional<RegId> regByName(const std::string &name) const;

    /** Name bound to register @p r, if any. */
    std::optional<std::string> regName(RegId r) const;

    /** Every register-name binding, by register (asm writer). */
    const std::map<RegId, std::string> &regNames() const
    {
        return regNames_;
    }

    /** Request that memory[addr] = value before execution starts. */
    void addMemInit(Addr addr, Word value);

    /** All initial-memory requests, in insertion order. */
    const std::vector<std::pair<Addr, Word>> &memInit() const
    {
        return memInit_;
    }

    /** Request that register r = value before execution starts. */
    void addRegInit(RegId r, Word value);

    /**
     * Bind instruction row @p addr to the 1-based source line it was
     * assembled from. Purely diagnostic provenance: tools use it to
     * point findings back at the listing; it never affects execution
     * or the snapshot digest.
     */
    void setRowLine(InstAddr addr, int line);

    /** Source line of row @p addr, or 0 when unknown. */
    int rowLine(InstAddr addr) const;

    /** All initial-register requests, in insertion order. */
    const std::vector<std::pair<RegId, Word>> &regInit() const
    {
        return regInit_;
    }

    /**
     * Validate structural invariants: every row has width() parcels,
     * every branch target is a valid address, every data op is well
     * formed. Throws FatalError on violation.
     */
    void validate() const;

  private:
    FuId width_;
    std::vector<InstRow> rows_;
    std::map<std::string, InstAddr> labels_;
    std::map<InstAddr, std::string> labelAt_;
    std::map<std::string, Word> symbols_;
    std::map<std::string, RegId> regByName_;
    std::map<RegId, std::string> regNames_;
    std::vector<std::pair<Addr, Word>> memInit_;
    std::vector<std::pair<RegId, Word>> regInit_;
    std::vector<int> rowLines_; ///< 1-based source lines; 0 unknown.
};

} // namespace ximd

#endif // XIMD_ISA_PROGRAM_HH
