#include "isa/disasm.hh"

#include <sstream>

#include "support/str.hh"

namespace ximd {

std::string
formatOperand(const Program &prog, const Operand &op,
              const DisasmOptions &opts)
{
    if (op.isReg() && opts.useRegNames) {
        if (auto name = prog.regName(op.regId()))
            return *name;
    }
    return op.toString();
}

std::string
formatDataOp(const Program &prog, const DataOp &op,
             const DisasmOptions &opts)
{
    if (op.isNop())
        return "nop";
    const OpInfo &info = opInfo(op.op);
    std::ostringstream os;
    os << info.name << " ";
    bool first = true;
    auto emit = [&](const std::string &s) {
        if (!first)
            os << ",";
        os << s;
        first = false;
    };
    if (info.numSrcs >= 1)
        emit(formatOperand(prog, op.a, opts));
    if (info.numSrcs >= 2)
        emit(formatOperand(prog, op.b, opts));
    if (info.hasDest) {
        Operand d = Operand::reg(op.dest);
        emit(formatOperand(prog, d, opts));
    }
    return os.str();
}

std::string
formatParcel(const Program &prog, const Parcel &parcel,
             const DisasmOptions &opts)
{
    std::string s = parcel.ctrl.toString() + " ; " +
                    formatDataOp(prog, parcel.data, opts);
    if (opts.showSync && parcel.sync == SyncVal::Done)
        s += " ; done";
    return s;
}

std::string
formatProgram(const Program &prog, const DisasmOptions &opts)
{
    std::ostringstream os;
    // Determine whether any parcel uses a non-default sync value so the
    // sync line can be omitted for pure VLIW-mode listings, exactly as
    // the paper omits it in Examples 1 and 2.
    bool any_sync = false;
    for (InstAddr a = 0; a < prog.size() && !any_sync; ++a)
        for (FuId fu = 0; fu < prog.width() && !any_sync; ++fu)
            any_sync = prog.row(a)[fu].sync == SyncVal::Done;

    for (InstAddr a = 0; a < prog.size(); ++a) {
        if (auto lbl = prog.labelAt(a))
            os << *lbl << ":\n";
        os << hex2(a) << ": ";
        const InstRow &row = prog.row(a);
        for (FuId fu = 0; fu < prog.width(); ++fu) {
            if (fu > 0)
                os << " || ";
            std::string ctrl = row[fu].ctrl.toString();
            std::string data = formatDataOp(prog, row[fu].data, opts);
            std::string cell = ctrl + " ; " + data;
            if (opts.showSync && any_sync)
                cell += " ; " + toLower(syncValName(row[fu].sync));
            os << padRight(cell, opts.columnWidth);
        }
        os << "\n";
    }
    return os.str();
}

} // namespace ximd
