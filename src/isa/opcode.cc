#include "isa/opcode.hh"

#include <array>
#include <unordered_map>

#include "support/logging.hh"

namespace ximd {

namespace {

constexpr std::size_t kNumOps =
    static_cast<std::size_t>(Opcode::NumOpcodes);

constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    // name      class                   srcs  dest
    {"nop",    OpClass::Nop,          0, false},

    {"iadd",   OpClass::IntAlu,       2, true},
    {"isub",   OpClass::IntAlu,       2, true},
    {"imult",  OpClass::IntAlu,       2, true},
    {"idiv",   OpClass::IntAlu,       2, true},
    {"imod",   OpClass::IntAlu,       2, true},
    {"ineg",   OpClass::IntAlu,       1, true},

    {"and",    OpClass::IntAlu,       2, true},
    {"or",     OpClass::IntAlu,       2, true},
    {"xor",    OpClass::IntAlu,       2, true},
    {"not",    OpClass::IntAlu,       1, true},
    {"shl",    OpClass::IntAlu,       2, true},
    {"shr",    OpClass::IntAlu,       2, true},
    {"sar",    OpClass::IntAlu,       2, true},

    {"mov",    OpClass::IntAlu,       1, true},

    {"eq",     OpClass::IntCompare,   2, false},
    {"ne",     OpClass::IntCompare,   2, false},
    {"lt",     OpClass::IntCompare,   2, false},
    {"le",     OpClass::IntCompare,   2, false},
    {"gt",     OpClass::IntCompare,   2, false},
    {"ge",     OpClass::IntCompare,   2, false},

    {"fadd",   OpClass::FloatAlu,     2, true},
    {"fsub",   OpClass::FloatAlu,     2, true},
    {"fmult",  OpClass::FloatAlu,     2, true},
    {"fdiv",   OpClass::FloatAlu,     2, true},
    {"fneg",   OpClass::FloatAlu,     1, true},

    {"feq",    OpClass::FloatCompare, 2, false},
    {"fne",    OpClass::FloatCompare, 2, false},
    {"flt",    OpClass::FloatCompare, 2, false},
    {"fle",    OpClass::FloatCompare, 2, false},
    {"fgt",    OpClass::FloatCompare, 2, false},
    {"fge",    OpClass::FloatCompare, 2, false},

    {"itof",   OpClass::Convert,      1, true},
    {"ftoi",   OpClass::Convert,      1, true},

    {"load",   OpClass::MemLoad,      2, true},
    {"store",  OpClass::MemStore,     2, false},
}};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    XIMD_ASSERT(idx < kNumOps, "opcode out of range: ", idx);
    return kOpTable[idx];
}

std::string_view
opcodeName(Opcode op)
{
    return opInfo(op).name;
}

std::optional<Opcode>
parseOpcode(std::string_view name)
{
    static const std::unordered_map<std::string_view, Opcode> byName = [] {
        std::unordered_map<std::string_view, Opcode> m;
        for (std::size_t i = 0; i < kNumOps; ++i)
            m.emplace(kOpTable[i].name, static_cast<Opcode>(i));
        return m;
    }();
    auto it = byName.find(name);
    if (it == byName.end())
        return std::nullopt;
    return it->second;
}

bool
setsCondCode(Opcode op)
{
    const OpClass c = opInfo(op).cls;
    return c == OpClass::IntCompare || c == OpClass::FloatCompare;
}

bool
isMemOp(Opcode op)
{
    const OpClass c = opInfo(op).cls;
    return c == OpClass::MemLoad || c == OpClass::MemStore;
}

bool
isFloatOp(Opcode op)
{
    const OpClass c = opInfo(op).cls;
    return c == OpClass::FloatAlu || c == OpClass::FloatCompare;
}

} // namespace ximd
